#!/usr/bin/env sh
# Full verification: configure, build, test, and regenerate every
# table/figure of the paper. Mirrors what CI would run.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] && echo "===== $b" && "$b" "$@"
done
