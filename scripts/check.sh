#!/usr/bin/env sh
# Full verification, mirroring what CI would run:
#   1. configure + build into a throwaway build dir
#   2. fast static-verification smoke pass over every workload
#   3. full test suite
#   4. parallel-sweep determinism smoke (--jobs=1 vs --jobs=N CSV)
#      plus byte-identity against the committed golden CSV
#   5. breakdown/report-diff smoke: golden CSV byte-identical with
#      --breakdown on, breakdown JSON validated (conservation, ordered
#      quantiles), and distda_stats diff of two identical runs is
#      empty with exit 0
#   6. plan-analysis smoke: --analyze=json over every workload on
#      both distributed substrates, validated with python3 (no
#      violations, affine bounds proven, liveness proven, at least
#      one memoizable kernel)
#   7. plan-artifact round trip: dump every plan of the quick sweep
#      to a --plan-dir, validate each artifact with distda_plan,
#      re-run loading from the artifacts and from a disabled cache —
#      the golden quick-sweep CSV must stay byte-identical both ways
#   8. offload-service smoke: distda_serve on a Unix socket under a
#      1k-request mixed distda_load replay (zero failures, >=90%
#      plan-cache hit rate), raw-socket robustness pokes, a served
#      probe report diffed clean against a direct --stats-json run,
#      and a SIGINT drain under load that must exit 0
#   9. quick bench smoke through the sweep engine
#  10. Release build + perf-regression gate (bench/perf_baseline vs
#      the most recent committed BENCH_*.json, via
#      scripts/perf_check.sh)
#  11. ASan+UBSan and TSan test-suite runs, plus a TSan parallel
#      sweep smoke
#  12. clang-tidy (when available): strict over src/verify + src/sim
#      + src/compiler + src/offload + src/serve (warnings are
#      errors), advisory elsewhere
#  13. optionally ($RUN_BENCH=1) regenerate every table/figure
set -e
cd "$(dirname "$0")/.."

BUILD="${BUILD_DIR:-build-check}"
JOBS="$(nproc)"
GEN=""
command -v ninja >/dev/null 2>&1 && GEN="-G Ninja"

echo "===== configure + build ($BUILD)"
# shellcheck disable=SC2086
cmake -B "$BUILD" $GEN >/dev/null
cmake --build "$BUILD" -j "$(nproc)"

echo "===== static verification smoke (all workloads, Dist-DA-F)"
for w in dis tra fdt cho adi sei pf nw bfs pr pch pca spmv; do
    "$BUILD"/tools/distda_run --workload="$w" --config=Dist-DA-F \
        --verify-only
done

echo "===== tests"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "===== differential fuzz smoke (fixed seed + corpus replay)"
"$BUILD"/tools/distda_fuzz --seed=1 --runs=200 --jobs="$JOBS" --quiet
"$BUILD"/tools/distda_fuzz --corpus=tests/corpus --quiet

echo "===== parallel sweep determinism (--jobs=1 vs --jobs=$JOBS)"
"$BUILD"/tools/distda_run --workload=all --config=all --quick --csv \
    --jobs=1 >"$BUILD/sweep-serial.csv" 2>/dev/null
"$BUILD"/tools/distda_run --workload=all --config=all --quick --csv \
    --jobs="$JOBS" >"$BUILD/sweep-parallel.csv" 2>/dev/null
cmp "$BUILD/sweep-serial.csv" "$BUILD/sweep-parallel.csv"
cmp tests/golden/quick_sweep.csv "$BUILD/sweep-serial.csv"

echo "===== observability smoke (--timeline / --stats-json)"
"$BUILD"/tools/distda_run --workload=pr --config=Dist-DA-F --quick \
    --timeline="$BUILD/pr.timeline.json" \
    --stats-json="$BUILD/pr.stats.json" >/dev/null
python3 - "$BUILD/pr.timeline.json" "$BUILD/pr.stats.json" <<'EOF'
import json
import sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "timeline has no events"
phases = {e.get("ph") for e in events}
assert {"X", "M"} <= phases, f"missing event phases: {phases}"
cats = {e.get("cat") for e in events if e.get("ph") == "X"}
assert len(cats) >= 4, f"expected spans from >=4 subsystems: {cats}"

report = json.load(open(sys.argv[2]))
for key in ("workload", "config", "validated", "metrics", "stats",
            "timeline"):
    assert key in report, f"report missing '{key}'"
dists = report["stats"]["dist"]
assert any(isinstance(v, dict) and v.get("type") == "distribution"
           and v.get("count", 0) > 0 for v in dists.values()), \
    "report has no populated distribution"
print("observability outputs OK "
      f"({len(events)} events, {len(cats)} span categories)")
EOF
# Reports go to files only: the sweep CSV on stdout must stay
# byte-identical with observability enabled.
"$BUILD"/tools/distda_run --workload=all --config=all --quick --csv \
    --jobs="$JOBS" --report-dir="$BUILD/reports" \
    >"$BUILD/sweep-obs.csv" 2>/dev/null
cmp tests/golden/quick_sweep.csv "$BUILD/sweep-obs.csv"

echo "===== breakdown + report-diff smoke (--breakdown / distda_stats)"
# The golden CSV must stay byte-identical with the breakdown table on
# (it rides stderr under --csv).
"$BUILD"/tools/distda_run --workload=all --config=all --quick --csv \
    --jobs="$JOBS" --breakdown \
    >"$BUILD/sweep-breakdown.csv" 2>/dev/null
cmp tests/golden/quick_sweep.csv "$BUILD/sweep-breakdown.csv"
"$BUILD"/tools/distda_run --workload=fdt --config=all --quick \
    --breakdown=json >"$BUILD/breakdown.json" 2>/dev/null
python3 - "$BUILD/breakdown.json" <<'EOF'
import json
import sys

doc = json.load(open(sys.argv[1]))
runs = doc["breakdown"]
assert len(runs) == 6, f"expected 6 configs, got {len(runs)}"
rows = 0
for run in runs:
    for k in run["kernels"]:
        name = f"{run['workload']}/{run['config']}/{k['kernel']}"
        phases = sum(k["phases"].values())
        assert phases == k["e2e_ticks"], \
            f"{name}: phases {phases} != e2e {k['e2e_ticks']}"
        assert k["p50_ticks"] <= k["p95_ticks"] <= k["p99_ticks"], \
            f"{name}: quantiles out of order"
        assert k["min_ticks"] <= k["max_ticks"], f"{name}: min > max"
        assert k["invocations"] > 0, f"{name}: no invocations"
        rows += 1
assert rows > 0, "breakdown document has no kernel rows"
print(f"breakdown OK ({rows} kernel rows, conservation holds)")
EOF
# Two identical runs must diff clean with exit status 0.
"$BUILD"/tools/distda_run --workload=bfs --config=Dist-DA-IO --quick \
    --stats-json="$BUILD/diff-a.json" >/dev/null 2>&1
"$BUILD"/tools/distda_run --workload=bfs --config=Dist-DA-IO --quick \
    --stats-json="$BUILD/diff-b.json" >/dev/null 2>&1
"$BUILD"/tools/distda_stats diff "$BUILD/diff-a.json" \
    "$BUILD/diff-b.json" --changed-only

echo "===== plan-analysis smoke (--analyze=json, both substrates)"
"$BUILD"/tools/distda_run --workload=all --config=Dist-DA-IO --quick \
    --analyze=json >"$BUILD/analysis-io.json" 2>/dev/null
"$BUILD"/tools/distda_run --workload=all --config=Dist-DA-F --quick \
    --analyze=json >"$BUILD/analysis-f.json" 2>/dev/null
python3 - "$BUILD/analysis-io.json" "$BUILD/analysis-f.json" <<'EOF'
import json
import sys

for path in sys.argv[1:]:
    doc = json.load(open(path))
    assert doc["violations"] == 0, f"{path}: violations reported"
    entries = doc["analysis"]
    assert entries, f"{path}: empty analysis section"
    kernels = [k for e in entries for k in e["kernels"]]
    assert kernels, f"{path}: no kernels analyzed"
    memoizable = 0
    for k in kernels:
        name = k["kernel"]
        assert k["bounds"]["violated"] == 0, \
            f"{path}: {name} has violated bounds"
        for a in k["bounds"]["accesses"]:
            if a["affine"]:
                assert a["verdict"] == "proven", \
                    f"{path}: {name} affine access not proven: {a}"
        assert k["channels"]["deadlock_free"] == "proven", \
            f"{path}: {name} liveness not proven"
        memoizable += 1 if k["purity"]["memoizable"] else 0
    assert memoizable >= 1, f"{path}: no memoizable kernel"
    print(f"analysis OK: {path} ({len(kernels)} kernels, "
          f"{memoizable} memoizable)")
EOF

echo "===== plan-artifact round trip (--plan-dir / --plan-cache=off)"
rm -rf "$BUILD/plans"
"$BUILD"/tools/distda_run --workload=all --config=all --quick --csv \
    --jobs="$JOBS" --plan-dir="$BUILD/plans" \
    >"$BUILD/sweep-plandump.csv" 2>/dev/null
cmp tests/golden/quick_sweep.csv "$BUILD/sweep-plandump.csv"
"$BUILD"/tools/distda_plan validate "$BUILD"/plans/*.plan >/dev/null
# Reload every artifact: metrics must not depend on whether a plan
# was freshly compiled, deserialized, or compiled with caching off.
"$BUILD"/tools/distda_run --workload=all --config=all --quick --csv \
    --jobs="$JOBS" --plan-dir="$BUILD/plans" \
    >"$BUILD/sweep-planload.csv" 2>/dev/null
cmp tests/golden/quick_sweep.csv "$BUILD/sweep-planload.csv"
"$BUILD"/tools/distda_run --workload=all --config=all --quick --csv \
    --jobs="$JOBS" --plan-cache=off \
    >"$BUILD/sweep-nocache.csv" 2>/dev/null
cmp tests/golden/quick_sweep.csv "$BUILD/sweep-nocache.csv"

echo "===== offload service smoke (distda_serve + distda_load)"
SOCK="$BUILD/serve.sock"
rm -f "$SOCK"
"$BUILD"/tools/distda_serve --socket="$SOCK" --jobs="$JOBS" \
    --max-request-bytes=65536 >"$BUILD/serve.log" 2>&1 &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
done
[ -S "$SOCK" ] || { cat "$BUILD/serve.log"; exit 1; }

# 1k-request mixed replay over concurrent connections: zero failures
# allowed, and >=90% of plan lookups must hit the daemon-wide cache
# (4 fingerprints compile once each; everything else reuses them).
"$BUILD"/tools/distda_load --socket="$SOCK" --requests=1000 \
    --connections=8 --workloads=fdt,bfs \
    --configs=Dist-DA-IO,Dist-DA-F --scale=0.25 --min-hit-rate=0.9

# Robustness pokes with a raw socket: malformed JSON, an unknown
# workload and an oversized line each earn an error reply; a client
# that hangs up without reading its reply is survived. The daemon
# must keep serving throughout.
python3 - "$SOCK" <<'EOF'
import json
import socket
import sys

def rpc(path, payload, expect_reply=True):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(path)
    try:
        s.sendall(payload)
    except (BrokenPipeError, ConnectionResetError):
        pass  # oversize: server replied and closed mid-send
    if not expect_reply:
        s.close()
        return None
    data = b""
    while not data.endswith(b"\n"):
        chunk = s.recv(65536)
        if not chunk:
            break
        data += chunk
    s.close()
    return json.loads(data)

path = sys.argv[1]
ok_line = b'{"workload":"fdt","config":"Dist-DA-IO","scale":0.25}\n'
r = rpc(path, b'{"workload": \n')
assert r["ok"] is False and r["kind"] == "parse", r
assert "offset" in r["error"], r
r = rpc(path, b'{"workload":"nope","config":"Dist-DA-IO"}\n')
assert r["ok"] is False and r["kind"] == "request", r
r = rpc(path, b"x" * (1 << 20) + b"\n")
assert r["ok"] is False and r["kind"] == "oversize", r
rpc(path, ok_line, expect_reply=False)  # rude hang-up
r = rpc(path, ok_line)
assert r["ok"] is True, r
print("robustness pokes OK")
EOF

# Served vs direct: the report a probe request streams back must diff
# clean against a direct --stats-json run of the same offload.
"$BUILD"/tools/distda_load --socket="$SOCK" --requests=1 \
    --connections=1 --workloads=bfs --configs=Dist-DA-IO --scale=0.25 \
    --probe --report-out="$BUILD/served-report.json" >/dev/null
"$BUILD"/tools/distda_run --workload=bfs --config=Dist-DA-IO --quick \
    --stats-json="$BUILD/direct-report.json" >/dev/null 2>&1
"$BUILD"/tools/distda_stats diff "$BUILD/direct-report.json" \
    "$BUILD/served-report.json" --changed-only

# SIGINT under load: the daemon stops accepting, finishes in-flight
# requests, prints its summary and exits 0; the socket is unlinked.
"$BUILD"/tools/distda_load --socket="$SOCK" --requests=1000000 \
    --connections=4 --workloads=fdt --configs=Dist-DA-IO --scale=0.25 \
    --allow-errors --quiet >"$BUILD/load-drain.out" 2>&1 &
LOAD_PID=$!
sleep 2
kill -INT "$SERVE_PID"
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
[ "$SERVE_RC" -eq 0 ] || {
    echo "daemon exited $SERVE_RC after SIGINT"
    cat "$BUILD/serve.log"
    exit 1
}
wait "$LOAD_PID" || true
[ ! -S "$SOCK" ] || { echo "socket not unlinked on drain"; exit 1; }
grep -q "served=" "$BUILD/serve.log" || {
    echo "daemon summary missing"
    cat "$BUILD/serve.log"
    exit 1
}

echo "===== quick bench smoke (--quick --jobs=$JOBS)"
"$BUILD"/bench/fig11_performance --quick --jobs="$JOBS" >/dev/null
"$BUILD"/bench/table06_offload_characteristics --quick \
    --jobs="$JOBS" >/dev/null

echo "===== Release build + perf-regression gate"
# shellcheck disable=SC2086
cmake -B "$BUILD-release" $GEN -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD-release" -j "$(nproc)" --target perf_baseline \
    distda_run
"$BUILD-release"/tools/distda_run --workload=pr --config=Dist-DA-F \
    --quick >/dev/null
"$BUILD-release"/bench/perf_baseline --label=check \
    --out="$BUILD-release"
scripts/perf_check.sh "$BUILD-release/BENCH_check.json"

for SAN in address thread; do
    echo "===== tests under $SAN sanitizer"
    # shellcheck disable=SC2086
    cmake -B "$BUILD-$SAN" $GEN -DDISTDA_SANITIZE="$SAN" >/dev/null
    cmake --build "$BUILD-$SAN" -j "$(nproc)"
    ctest --test-dir "$BUILD-$SAN" --output-on-failure -j "$(nproc)"
done

echo "===== differential fuzz smoke under address sanitizer"
"$BUILD-address"/tools/distda_fuzz --seed=1 --runs=200 \
    --jobs="$JOBS" --quiet
"$BUILD-address"/tools/distda_fuzz --corpus=tests/corpus --quiet

echo "===== TSan parallel sweep smoke"
"$BUILD-thread"/tools/distda_run --workload=all --config=all --quick \
    --jobs=4 >/dev/null

if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B "$BUILD" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    echo "===== clang-tidy (strict: src/verify + src/sim + src/compiler + src/offload + src/serve)"
    git ls-files 'src/verify/*.cc' 'src/sim/*.cc' 'src/compiler/*.cc' \
        'src/offload/*.cc' 'src/serve/*.cc' |
        xargs clang-tidy -p "$BUILD" --quiet --warnings-as-errors='*'
    echo "===== clang-tidy (advisory: remaining sources)"
    git ls-files 'src/*.cc' 'tools/*.cc' |
        grep -v -e '^src/verify/' -e '^src/sim/' -e '^src/compiler/' \
            -e '^src/offload/' -e '^src/serve/' |
        xargs clang-tidy -p "$BUILD" --quiet
else
    echo "===== clang-tidy not installed; skipping lint"
fi

if [ "${RUN_BENCH:-0}" = "1" ]; then
    for b in "$BUILD"/bench/*; do
        [ -f "$b" ] && [ -x "$b" ] || continue
        echo "===== $b"
        case "$b" in
          # google-benchmark / no-sweep binaries take no sweep flags.
          */micro_primitives|*/table_area) "$b" ;;
          *) "$b" --jobs="$JOBS" ;;
        esac
    done
fi
echo "===== all checks passed"
