#!/usr/bin/env bash
# Compare a perf record written by bench/perf_baseline against the
# committed baseline and fail on wall-clock regressions beyond the
# tolerance band.
#
# Usage: scripts/perf_check.sh <current.json> [baseline.json] [tolerance]
#
#   current.json   record to check (from bench/perf_baseline)
#   baseline.json  reference record (default: the committed repo-root
#                  BENCH_*.json with the highest "seq" field — the most
#                  recently recorded baseline; records without seq,
#                  like the original BENCH_seed.json, sort as 0)
#   tolerance      allowed fractional slowdown of total wall-clock
#                  (default 0.50: fail only when > 1.5x the baseline,
#                  generous because CI machines are noisy and shared)
#
# Per-workload slowdowns beyond the band are reported as warnings;
# only the total gates, so one noisy tiny workload cannot fail a run.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
current="${1:?usage: perf_check.sh <current.json> [baseline.json] [tol]}"
baseline="${2:-}"
tolerance="${3:-0.50}"

if [ -z "$baseline" ]; then
    # Latest committed baseline: highest seq wins; ties go to the
    # later file in sorted glob order (>= on a sorted scan).
    baseline="$(python3 - "$repo_root" <<'EOF'
import glob, json, os, sys
root = sys.argv[1]
best, best_seq = "", -1
for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
    try:
        with open(path) as f:
            seq = int(json.load(f).get("seq", 0))
    except (OSError, ValueError):
        continue
    if seq >= best_seq:
        best, best_seq = path, seq
print(best)
EOF
)"
    [ -n "$baseline" ] || {
        echo "perf_check: no BENCH_*.json baseline in $repo_root" >&2
        exit 2
    }
    echo "perf_check: baseline $(basename "$baseline")"
fi

[ -f "$current" ] || { echo "perf_check: missing $current" >&2; exit 2; }
[ -f "$baseline" ] || { echo "perf_check: missing $baseline" >&2; exit 2; }

python3 - "$current" "$baseline" "$tolerance" <<'EOF'
import json
import sys
from collections import defaultdict

cur_path, base_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(cur_path) as f:
    cur = json.load(f)
with open(base_path) as f:
    base = json.load(f)

if cur.get("scale") != base.get("scale") or cur.get("jobs") != base.get("jobs"):
    print(f"perf_check: records not comparable: "
          f"scale {cur.get('scale')} vs {base.get('scale')}, "
          f"jobs {cur.get('jobs')} vs {base.get('jobs')}", file=sys.stderr)
    sys.exit(2)


def per_workload(rec):
    acc = defaultdict(float)
    for run in rec["runs"]:
        acc[run["workload"]] += run["wall_ms"]
    return acc


cur_wl, base_wl = per_workload(cur), per_workload(base)
for wl in sorted(base_wl):
    if wl not in cur_wl:
        print(f"perf_check: WARNING workload '{wl}' missing from current "
              "record", file=sys.stderr)
        continue
    if base_wl[wl] >= 1.0 and cur_wl[wl] > base_wl[wl] * (1.0 + tol):
        print(f"perf_check: WARNING {wl}: {cur_wl[wl]:.0f} ms vs baseline "
              f"{base_wl[wl]:.0f} ms (+{cur_wl[wl] / base_wl[wl] - 1.0:.0%})",
              file=sys.stderr)

cur_total = cur["total_wall_ms"]
base_total = base["total_wall_ms"]
ratio = cur_total / base_total
print(f"perf_check: total {cur_total:.0f} ms vs baseline {base_total:.0f} ms "
      f"({ratio:.2f}x, tolerance {1.0 + tol:.2f}x)")
if ratio > 1.0 + tol:
    print("perf_check: FAIL: wall-clock regression beyond tolerance",
          file=sys.stderr)
    sys.exit(1)
print("perf_check: OK")
EOF
