/**
 * @file
 * Graph analytics example: degree-weighted neighbor averaging over a
 * synthetic power-law graph, exercising the indirect (cp_read /
 * cp_write) side of the interface — the access pattern class where
 * decentralized near-data execution pays off most (§VI-C).
 */

#include <cstdio>
#include <vector>

#include "src/driver/context.hh"
#include "src/driver/system.hh"
#include "src/sim/rng.hh"

using namespace distda;
using driver::ExecContext;

int
main()
{
    setInformEnabled(false);
    const std::int64_t nodes = 1 << 13;
    const std::int64_t edges = nodes * 8;

    // Synthetic edge list with skewed endpoints.
    sim::Rng rng(77);
    std::vector<std::int64_t> src(static_cast<std::size_t>(edges));
    std::vector<std::int64_t> dst(static_cast<std::size_t>(edges));
    for (std::int64_t e = 0; e < edges; ++e) {
        src[static_cast<std::size_t>(e)] = static_cast<std::int64_t>(
            rng.nextBelow(static_cast<std::uint64_t>(nodes)));
        dst[static_cast<std::size_t>(e)] = static_cast<std::int64_t>(
            rng.nextBelow(static_cast<std::uint64_t>(nodes)) / 2);
    }

    // Kernel: acc[dst[e]] += w[src[e]] over all edges (edge-centric
    // scatter with two indirect reads and one indirect RMW).
    compiler::KernelBuilder kb("scatter_avg");
    const int o_src = kb.object("src", static_cast<std::uint64_t>(edges),
                                8, false);
    const int o_dst = kb.object("dst", static_cast<std::uint64_t>(edges),
                                8, false);
    const int o_w =
        kb.object("w", static_cast<std::uint64_t>(nodes), 8, true);
    const int o_acc =
        kb.object("acc", static_cast<std::uint64_t>(nodes), 8, true);
    kb.loopStatic(edges);
    auto s = kb.load(o_src, kb.affine(0, 1));
    auto d = kb.load(o_dst, kb.affine(0, 1));
    auto wv = kb.loadIdx(o_w, s);
    auto cur = kb.loadIdx(o_acc, d);
    kb.storeIdx(o_acc, d, kb.fadd(cur, wv));
    compiler::Kernel kernel = kb.build();

    std::printf("edge-centric scatter over %lld edges\n",
                static_cast<long long>(edges));
    std::printf("%-12s %12s %14s %12s %12s\n", "config", "time (us)",
                "energy (nJ)", "cache-acc", "%indirect-DA");
    for (driver::ArchModel m :
         {driver::ArchModel::OoO, driver::ArchModel::MonoDA_IO,
          driver::ArchModel::DistDA_IO, driver::ArchModel::DistDA_F}) {
        driver::SystemParams sp;
        sp.arenaBytes = 16 << 20;
        driver::System sys(sp);
        auto a_src =
            sys.alloc("src", static_cast<std::uint64_t>(edges), 8,
                      false);
        auto a_dst =
            sys.alloc("dst", static_cast<std::uint64_t>(edges), 8,
                      false);
        auto a_w = sys.alloc("w", static_cast<std::uint64_t>(nodes), 8,
                             true);
        auto a_acc = sys.alloc("acc",
                               static_cast<std::uint64_t>(nodes), 8,
                               true);
        for (std::int64_t e = 0; e < edges; ++e) {
            a_src.setI(static_cast<std::uint64_t>(e),
                       src[static_cast<std::size_t>(e)]);
            a_dst.setI(static_cast<std::uint64_t>(e),
                       dst[static_cast<std::size_t>(e)]);
        }
        for (std::int64_t v = 0; v < nodes; ++v) {
            a_w.setF(static_cast<std::uint64_t>(v),
                     1.0 / (1.0 + static_cast<double>(v % 13)));
            a_acc.setF(static_cast<std::uint64_t>(v), 0.0);
        }

        driver::RunConfig cfg;
        cfg.model = m;
        ExecContext ctx(sys, cfg);
        ctx.invoke(kernel, {a_src, a_dst, a_w, a_acc}, {});
        const auto metrics = ctx.finish();
        const double da_share =
            metrics.daBytes > 0.0
                ? 100.0 * metrics.daBytes /
                      (metrics.intraBytes + metrics.daBytes +
                       metrics.aaBytes)
                : 0.0;
        std::printf("%-12s %12.2f %14.1f %12.0f %11.1f%%\n",
                    archModelName(m), metrics.timeNs / 1000.0,
                    metrics.totalEnergyPj / 1000.0,
                    metrics.cacheAccesses, da_share);
    }
    return 0;
}
