/**
 * @file
 * Quickstart: offload a vector triad (c[i] = a[i] + s * b[i]) to the
 * distributed accelerators and compare against running it on the host.
 *
 * Walks the whole public API surface:
 *  1. build a System (Table III memory hierarchy + energy model);
 *  2. allocate accelerator-visible arrays from the slab arena;
 *  3. express the hot loop as a kernel DFG with KernelBuilder;
 *  4. run it under two architecture models via ExecContext;
 *  5. read the collected metrics.
 */

#include <cstdio>

#include "src/driver/context.hh"
#include "src/driver/runner.hh"
#include "src/driver/system.hh"

using namespace distda;
using driver::ExecContext;

namespace
{

driver::Metrics
runTriad(driver::ArchModel model)
{
    // 1. A fresh simulated system.
    driver::SystemParams sp;
    sp.arenaBytes = 32 << 20;
    driver::System sys(sp);

    // 2. Three 64K-element double arrays in the accelerator arena.
    const std::uint64_t n = 1 << 16;
    auto a = sys.alloc("a", n, 8, true);
    auto b = sys.alloc("b", n, 8, true);
    auto c = sys.alloc("c", n, 8, true);
    for (std::uint64_t i = 0; i < n; ++i) {
        a.setF(i, 1.0 + static_cast<double>(i % 7));
        b.setF(i, 0.5 * static_cast<double>(i % 11));
    }

    // 3. The kernel: for i in [0, n): c[i] = a[i] + s * b[i].
    compiler::KernelBuilder kb("triad");
    const int oa = kb.object("a", n, 8, true);
    const int ob = kb.object("b", n, 8, true);
    const int oc = kb.object("c", n, 8, true);
    const int ps = kb.param("s");
    kb.loopStatic(static_cast<std::int64_t>(n));
    auto av = kb.load(oa, kb.affine(0, 1));
    auto bv = kb.load(ob, kb.affine(0, 1));
    auto scaled = kb.fmul(kb.paramValue(ps), bv);
    kb.store(oc, kb.affine(0, 1), kb.fadd(av, scaled));
    compiler::Kernel kernel = kb.build();

    // 4. Execute under the chosen architecture model.
    driver::RunConfig cfg;
    cfg.model = model;
    ExecContext ctx(sys, cfg);
    ctx.invoke(kernel, {a, b, c}, {ExecContext::wf(3.0)});

    // Verify the output before trusting any numbers.
    for (std::uint64_t i = 0; i < n; ++i) {
        const double want = a.getF(i) + 3.0 * b.getF(i);
        if (c.getF(i) != want)
            fatal("triad mismatch at %llu",
                  static_cast<unsigned long long>(i));
    }
    return ctx.finish();
}

} // namespace

int
main()
{
    setInformEnabled(false);
    const auto host = runTriad(driver::ArchModel::OoO);
    const auto dist = runTriad(driver::ArchModel::DistDA_F);

    std::printf("vector triad, 64K doubles\n");
    std::printf("%-12s %12s %14s %14s\n", "config", "time (us)",
                "energy (nJ)", "NoC bytes");
    std::printf("%-12s %12.2f %14.1f %14.0f\n", "OoO",
                host.timeNs / 1000.0, host.totalEnergyPj / 1000.0,
                host.nocTotalBytes());
    std::printf("%-12s %12.2f %14.1f %14.0f\n", "Dist-DA-F",
                dist.timeNs / 1000.0, dist.totalEnergyPj / 1000.0,
                dist.nocTotalBytes());
    std::printf("\nspeedup %.2fx, energy efficiency %.2fx\n",
                host.timeNs / dist.timeNs,
                host.totalEnergyPj / dist.totalEnergyPj);
    return 0;
}
