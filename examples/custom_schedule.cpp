/**
 * @file
 * Custom-schedule example (the Fig 5b use case): drive the Table II
 * interface by hand, without the compiler — configure access units
 * with cp_config_stream / cp_config_random, fill a source block,
 * stream it through a reversal into a remote destination buffer, and
 * drain the result (cp_fill_ra / cp_drain_ra semantics). This is the
 * "user-specified schedule" path the §VI-D case studies build on.
 */

#include <cstdio>
#include <vector>

#include "src/accel/access_unit.hh"
#include "src/driver/system.hh"
#include "src/engine/channel.hh"
#include "src/offload/interface.hh"

using namespace distda;

int
main()
{
    setInformEnabled(false);
    driver::SystemParams sp;
    sp.arenaBytes = 8 << 20;
    driver::System sys(sp);

    const std::uint64_t n = 4096;
    auto src = sys.alloc("src", n, 8, true);
    auto dst = sys.alloc("dst", n, 8, true);
    for (std::uint64_t i = 0; i < n; ++i)
        src.setF(i, static_cast<double>(i));

    auto &hier = sys.hier();
    const int c_src = hier.l3().clusterOf(src.base);
    const int c_dst = hier.l3().clusterOf(dst.base);

    offload::CoprocessorInterface iface(&hier, &sys.acct());

    // Host configuration, exactly the Fig 5b pseudocode: a
    // forward-stepping write access and reverse-stepping read access
    // share the source buffer; a third access fills the destination.
    sim::Tick t = 0;
    int buf_s = -1, buf_sr = -1, buf_d = -1;
    t = iface.cpConfigStream(c_src, /*accW*/ 0, src.base, 8,
                             static_cast<std::uint32_t>(n * 8), 4096, t,
                             &buf_s);
    t = iface.cpConfigStream(c_src, /*accR*/ 1, src.base, 8,
                             static_cast<std::uint32_t>(n * 8), 4096, t,
                             &buf_sr);
    t = iface.cpConfigStream(c_dst, /*accD*/ 2, dst.base, 8,
                             static_cast<std::uint32_t>(n * 8), 4096, t,
                             &buf_d);
    std::printf("scheduler combined accW/accR onto one buffer: %s "
                "(buf %d == buf %d)\n",
                buf_s == buf_sr ? "yes" : "no", buf_s, buf_sr);

    accel::AccessStats stats;
    auto port = [&hier](int cluster) {
        return accel::MemPort(
            [](void *ctx, mem::Addr a, std::uint32_t s, bool w,
               sim::Tick tk) {
                return static_cast<mem::Cache *>(ctx)
                    ->access(a, s, w, tk)
                    .latency;
            },
            &hier.acp(cluster));
    };

    accel::StreamParams rp;
    rp.base = src.base;
    rp.strideBytes = 8;
    rp.elemBytes = 8;
    rp.unitCluster = c_src;
    rp.consumerCluster = c_src;
    rp.totalElems = n;
    accel::StreamUnit read_stream(rp, port(c_src), &hier.mesh(),
                                  &stats);

    accel::StreamParams wp = rp;
    wp.base = dst.base;
    wp.hasLoads = false;
    wp.hasStores = true;
    wp.unitCluster = c_dst;
    wp.consumerCluster = c_dst;
    accel::StreamUnit write_stream(wp, port(c_dst), &hier.mesh(),
                                   &stats);

    engine::Channel channel(64, 8, false, c_src, c_dst);

    // Partition-1: cp_fill the source block, then repeatedly consume
    // and step (reverse order) producing into the network.
    // Partition-2: receive and write into the destination buffer; the
    // buffer drains to memory as it fills and flushes at the end.
    sim::Tick p1 = iface.cpRun(c_src, t);
    sim::Tick p2 = iface.cpRun(c_dst, t);
    std::uint64_t sent = 0, received = 0;
    while (received < n) {
        while (sent < n && !channel.full()) {
            const std::uint64_t k = n - 1 - sent; // reverse stepping
            p1 = read_stream.readAt(static_cast<std::int64_t>(k), p1,
                                    0);
            compiler::Word w;
            w.f = src.getF(k);
            auto xfer = hier.mesh().transfer(
                c_src, c_dst, 8, noc::TrafficClass::AccData, p1);
            channel.push(w, p1 + xfer.latency);
            p1 += 500;
            ++sent;
        }
        while (!channel.empty()) {
            const auto &item = channel.front();
            p2 = std::max(p2, item.readyAt) + 500;
            dst.setF(received, item.value.f);
            p2 = write_stream.writeAt(
                static_cast<std::int64_t>(received), p2, 0);
            channel.pop();
            ++received;
        }
    }
    const sim::Tick done = write_stream.flush(p2);

    // Validate the reversal.
    bool ok = true;
    for (std::uint64_t i = 0; i < n; ++i)
        ok = ok && dst.getF(i) == src.getF(n - 1 - i);

    std::printf("reversed %llu elements in %.2f us (%s)\n",
                static_cast<unsigned long long>(n),
                static_cast<double>(done) / 1e6,
                ok ? "validated" : "MISMATCH");
    std::printf("traffic: intra=%.0fB, D-A=%.0fB, A-A over NoC=%.0fB, "
                "MMIO ops=%.0f\n",
                stats.intraBytes, stats.daBytes,
                hier.mesh().bytesInClass(noc::TrafficClass::AccData),
                iface.mmioOps());
    return ok ? 0 : 1;
}
