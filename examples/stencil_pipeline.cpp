/**
 * @file
 * Stencil pipeline example: a two-stage blur + gradient-magnitude
 * pipeline over an image, showing how the compiler partitions
 * multi-object kernels into distributed accelerator definitions and
 * what the plan looks like (partitions, channels, buffers, microcode),
 * then comparing the tested architecture models.
 */

#include <cstdio>

#include "src/driver/context.hh"
#include "src/driver/system.hh"
#include "src/sim/rng.hh"

using namespace distda;
using driver::ExecContext;

namespace
{

constexpr std::int64_t width = 256;
constexpr std::int64_t height = 128;

compiler::Kernel
makeBlurKernel(std::uint64_t n)
{
    // blur[p] = (img[p-1] + img[p] + img[p+1]) / 3 over a flat image.
    compiler::KernelBuilder kb("blur");
    const int img = kb.object("img", n, 8, true);
    const int blur = kb.object("blur", n, 8, true);
    kb.loopStatic(static_cast<std::int64_t>(n) - 2);
    auto a = kb.load(img, kb.affine(0, 1));
    auto b = kb.load(img, kb.affine(1, 1));
    auto c = kb.load(img, kb.affine(2, 1));
    auto sum = kb.fadd(kb.fadd(a, b), c);
    kb.store(blur, kb.affine(1, 1),
             kb.fdiv(sum, kb.constFloat(3.0)));
    return kb.build();
}

compiler::Kernel
makeGradKernel(std::uint64_t n)
{
    // mag[p] = |blur[p+1] - blur[p-1]| + |blur[p+W] - blur[p-W]|.
    compiler::KernelBuilder kb("grad");
    const int blur = kb.object("blur", n, 8, true);
    const int mag = kb.object("mag", n, 8, true);
    kb.loopStatic(static_cast<std::int64_t>(n) - 2 * width - 2);
    const std::int64_t off = width + 1;
    auto dx = kb.fsub(kb.load(blur, kb.affine(off + 1, 1)),
                      kb.load(blur, kb.affine(off - 1, 1)));
    auto dy = kb.fsub(kb.load(blur, kb.affine(off + width, 1)),
                      kb.load(blur, kb.affine(off - width, 1)));
    kb.store(mag, kb.affine(off, 1),
             kb.fadd(kb.fsqrt(kb.fmul(dx, dx)),
                     kb.fsqrt(kb.fmul(dy, dy))));
    return kb.build();
}

void
describePlan(const compiler::OffloadPlan &plan)
{
    std::printf("kernel '%s': %s, %d partition(s), %zu channel(s), "
                "DFG %dx%d\n",
                plan.kernel.name.c_str(),
                compiler::dfgClassName(plan.dep.cls),
                plan.characteristics.numPartitions,
                plan.channels.size(), plan.characteristics.dfgWidth,
                plan.characteristics.dfgLevels);
    for (const auto &part : plan.partitions) {
        std::printf("  partition %d: object=%s, %zu insts (%uB "
                    "microcode), %d stream buffer(s)\n",
                    part.id,
                    part.objId >= 0
                        ? plan.kernel.objects[static_cast<std::size_t>(
                                                  part.objId)]
                              .name.c_str()
                        : "<none>",
                    part.program.insts.size(), part.program.byteSize(),
                    part.streamBuffers);
    }
    for (const auto &ch : plan.channels) {
        std::printf("  channel %d: partition %d -> %d (%s, %u bits)\n",
                    ch.id, ch.srcPartition, ch.dstPartition,
                    ch.control ? "control" : "data", ch.bits);
    }
}

} // namespace

int
main()
{
    setInformEnabled(false);
    const std::uint64_t n = static_cast<std::uint64_t>(width * height);
    compiler::Kernel blur = makeBlurKernel(n);
    compiler::Kernel grad = makeGradKernel(n);

    // Show what the compiler produces for the distributed model.
    std::printf("== compiled offload plans (Dist-DA) ==\n");
    describePlan(compiler::compileKernel(blur));
    describePlan(compiler::compileKernel(grad));

    std::printf("\n== architecture comparison ==\n");
    std::printf("%-12s %12s %14s\n", "config", "time (us)",
                "energy (nJ)");
    for (driver::ArchModel m : driver::headlineModels()) {
        driver::SystemParams sp;
        sp.arenaBytes = 16 << 20;
        driver::System sys(sp);
        auto img = sys.alloc("img", n, 8, true);
        auto blur_arr = sys.alloc("blur", n, 8, true);
        auto mag = sys.alloc("mag", n, 8, true);
        sim::Rng rng(9);
        for (std::uint64_t i = 0; i < n; ++i) {
            img.setF(i, rng.nextDouble());
            blur_arr.setF(i, 0.0);
            mag.setF(i, 0.0);
        }
        driver::RunConfig cfg;
        cfg.model = m;
        ExecContext ctx(sys, cfg);
        ctx.invoke(blur, {img, blur_arr}, {});
        ctx.invoke(grad, {blur_arr, mag}, {});
        const auto metrics = ctx.finish();
        std::printf("%-12s %12.2f %14.1f\n", archModelName(m),
                    metrics.timeNs / 1000.0,
                    metrics.totalEnergyPj / 1000.0);
    }
    return 0;
}
