/**
 * @file
 * Memory-services example: the §IV-B interface-generality claim in
 * action. A Livia-style task layer — built purely from cp_config,
 * cp_set_rf and cp_run — dispatches single-cacheline min-update tasks
 * over a scattered array under three policies: host-only execution, a
 * coin-flip migration (Livia) and data-location lookup (NSC-style).
 */

#include <cstdio>
#include <vector>

#include "src/driver/system.hh"
#include "src/offload/migration.hh"
#include "src/sim/rng.hh"

using namespace distda;
using offload::MemoryServiceLayer;
using offload::MigrationPolicy;

int
main()
{
    setInformEnabled(false);
    const std::uint64_t n = 1 << 17; // 1MB of doubles
    const std::uint64_t tasks = 16384;

    std::printf("min-update memory services: %llu tasks over %llu "
                "elements\n",
                static_cast<unsigned long long>(tasks),
                static_cast<unsigned long long>(n));
    std::printf("%-16s %12s %14s %10s %10s\n", "policy", "time (us)",
                "energy (nJ)", "migrated", "local%");

    for (MigrationPolicy policy :
         {MigrationPolicy::HostOnly, MigrationPolicy::CoinFlip,
          MigrationPolicy::DataLocation}) {
        driver::SystemParams sp;
        sp.arenaBytes = 16 << 20;
        driver::System sys(sp);
        auto arr = sys.alloc("vals", n, 8, true);
        for (std::uint64_t i = 0; i < n; ++i)
            arr.setF(i, 1e18);

        MemoryServiceLayer svc(&sys.hier(), &sys.acct(), policy);
        sim::Rng rng(2024);
        sim::Tick now = 0;
        for (std::uint64_t t = 0; t < tasks; ++t) {
            now = svc.runTask(arr, rng.nextBelow(n),
                              rng.nextDouble() * 1000.0, now);
        }

        std::printf("%-16s %12.2f %14.1f %10.0f %9.1f%%\n",
                    migrationPolicyName(policy),
                    static_cast<double>(now) / 1e6,
                    sys.acct().totalPj() / 1000.0,
                    svc.stats().migrated,
                    100.0 * svc.stats().localExecutions /
                        svc.stats().tasks);
    }
    return 0;
}
