# Empty dependencies file for custom_schedule.
# This may be replaced when dependencies are built.
