file(REMOVE_RECURSE
  "CMakeFiles/custom_schedule.dir/custom_schedule.cpp.o"
  "CMakeFiles/custom_schedule.dir/custom_schedule.cpp.o.d"
  "custom_schedule"
  "custom_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
