file(REMOVE_RECURSE
  "CMakeFiles/memory_services.dir/memory_services.cpp.o"
  "CMakeFiles/memory_services.dir/memory_services.cpp.o.d"
  "memory_services"
  "memory_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
