# Empty compiler generated dependencies file for memory_services.
# This may be replaced when dependencies are built.
