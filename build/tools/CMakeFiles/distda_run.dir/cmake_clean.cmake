file(REMOVE_RECURSE
  "CMakeFiles/distda_run.dir/distda_run.cc.o"
  "CMakeFiles/distda_run.dir/distda_run.cc.o.d"
  "distda_run"
  "distda_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distda_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
