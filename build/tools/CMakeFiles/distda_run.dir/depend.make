# Empty dependencies file for distda_run.
# This may be replaced when dependencies are built.
