
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/access_unit.cc" "src/CMakeFiles/distda.dir/accel/access_unit.cc.o" "gcc" "src/CMakeFiles/distda.dir/accel/access_unit.cc.o.d"
  "/root/repo/src/casestudy/case_common.cc" "src/CMakeFiles/distda.dir/casestudy/case_common.cc.o" "gcc" "src/CMakeFiles/distda.dir/casestudy/case_common.cc.o.d"
  "/root/repo/src/casestudy/case_nw.cc" "src/CMakeFiles/distda.dir/casestudy/case_nw.cc.o" "gcc" "src/CMakeFiles/distda.dir/casestudy/case_nw.cc.o.d"
  "/root/repo/src/casestudy/case_spmv.cc" "src/CMakeFiles/distda.dir/casestudy/case_spmv.cc.o" "gcc" "src/CMakeFiles/distda.dir/casestudy/case_spmv.cc.o.d"
  "/root/repo/src/casestudy/multithread.cc" "src/CMakeFiles/distda.dir/casestudy/multithread.cc.o" "gcc" "src/CMakeFiles/distda.dir/casestudy/multithread.cc.o.d"
  "/root/repo/src/cgra/cgra.cc" "src/CMakeFiles/distda.dir/cgra/cgra.cc.o" "gcc" "src/CMakeFiles/distda.dir/cgra/cgra.cc.o.d"
  "/root/repo/src/compiler/classify.cc" "src/CMakeFiles/distda.dir/compiler/classify.cc.o" "gcc" "src/CMakeFiles/distda.dir/compiler/classify.cc.o.d"
  "/root/repo/src/compiler/compile.cc" "src/CMakeFiles/distda.dir/compiler/compile.cc.o" "gcc" "src/CMakeFiles/distda.dir/compiler/compile.cc.o.d"
  "/root/repo/src/compiler/dfg.cc" "src/CMakeFiles/distda.dir/compiler/dfg.cc.o" "gcc" "src/CMakeFiles/distda.dir/compiler/dfg.cc.o.d"
  "/root/repo/src/compiler/partitioner.cc" "src/CMakeFiles/distda.dir/compiler/partitioner.cc.o" "gcc" "src/CMakeFiles/distda.dir/compiler/partitioner.cc.o.d"
  "/root/repo/src/driver/config.cc" "src/CMakeFiles/distda.dir/driver/config.cc.o" "gcc" "src/CMakeFiles/distda.dir/driver/config.cc.o.d"
  "/root/repo/src/driver/context.cc" "src/CMakeFiles/distda.dir/driver/context.cc.o" "gcc" "src/CMakeFiles/distda.dir/driver/context.cc.o.d"
  "/root/repo/src/driver/runner.cc" "src/CMakeFiles/distda.dir/driver/runner.cc.o" "gcc" "src/CMakeFiles/distda.dir/driver/runner.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/distda.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/distda.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/engine/actor.cc" "src/CMakeFiles/distda.dir/engine/actor.cc.o" "gcc" "src/CMakeFiles/distda.dir/engine/actor.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/distda.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/distda.dir/engine/engine.cc.o.d"
  "/root/repo/src/engine/host_exec.cc" "src/CMakeFiles/distda.dir/engine/host_exec.cc.o" "gcc" "src/CMakeFiles/distda.dir/engine/host_exec.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/distda.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/distda.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/distda.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/distda.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/distda.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/distda.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/nuca_l3.cc" "src/CMakeFiles/distda.dir/mem/nuca_l3.cc.o" "gcc" "src/CMakeFiles/distda.dir/mem/nuca_l3.cc.o.d"
  "/root/repo/src/mem/slab_allocator.cc" "src/CMakeFiles/distda.dir/mem/slab_allocator.cc.o" "gcc" "src/CMakeFiles/distda.dir/mem/slab_allocator.cc.o.d"
  "/root/repo/src/noc/mesh.cc" "src/CMakeFiles/distda.dir/noc/mesh.cc.o" "gcc" "src/CMakeFiles/distda.dir/noc/mesh.cc.o.d"
  "/root/repo/src/offload/interface.cc" "src/CMakeFiles/distda.dir/offload/interface.cc.o" "gcc" "src/CMakeFiles/distda.dir/offload/interface.cc.o.d"
  "/root/repo/src/offload/migration.cc" "src/CMakeFiles/distda.dir/offload/migration.cc.o" "gcc" "src/CMakeFiles/distda.dir/offload/migration.cc.o.d"
  "/root/repo/src/offload/runtime.cc" "src/CMakeFiles/distda.dir/offload/runtime.cc.o" "gcc" "src/CMakeFiles/distda.dir/offload/runtime.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/distda.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/distda.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/distda.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/distda.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/distda.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/distda.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/distda.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/distda.dir/sim/trace.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/CMakeFiles/distda.dir/workloads/graph.cc.o" "gcc" "src/CMakeFiles/distda.dir/workloads/graph.cc.o.d"
  "/root/repo/src/workloads/polybench.cc" "src/CMakeFiles/distda.dir/workloads/polybench.cc.o" "gcc" "src/CMakeFiles/distda.dir/workloads/polybench.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/distda.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/distda.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/rodinia.cc" "src/CMakeFiles/distda.dir/workloads/rodinia.cc.o" "gcc" "src/CMakeFiles/distda.dir/workloads/rodinia.cc.o.d"
  "/root/repo/src/workloads/spmv.cc" "src/CMakeFiles/distda.dir/workloads/spmv.cc.o" "gcc" "src/CMakeFiles/distda.dir/workloads/spmv.cc.o.d"
  "/root/repo/src/workloads/vision.cc" "src/CMakeFiles/distda.dir/workloads/vision.cc.o" "gcc" "src/CMakeFiles/distda.dir/workloads/vision.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
