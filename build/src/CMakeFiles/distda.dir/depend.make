# Empty dependencies file for distda.
# This may be replaced when dependencies are built.
