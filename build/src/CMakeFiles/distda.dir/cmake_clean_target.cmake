file(REMOVE_RECURSE
  "libdistda.a"
)
