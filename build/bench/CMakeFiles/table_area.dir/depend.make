# Empty dependencies file for table_area.
# This may be replaced when dependencies are built.
