file(REMOVE_RECURSE
  "CMakeFiles/table_area.dir/table_area.cc.o"
  "CMakeFiles/table_area.dir/table_area.cc.o.d"
  "table_area"
  "table_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
