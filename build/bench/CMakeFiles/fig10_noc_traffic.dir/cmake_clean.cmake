file(REMOVE_RECURSE
  "CMakeFiles/fig10_noc_traffic.dir/fig10_noc_traffic.cc.o"
  "CMakeFiles/fig10_noc_traffic.dir/fig10_noc_traffic.cc.o.d"
  "fig10_noc_traffic"
  "fig10_noc_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_noc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
