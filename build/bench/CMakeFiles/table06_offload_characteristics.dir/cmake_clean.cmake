file(REMOVE_RECURSE
  "CMakeFiles/table06_offload_characteristics.dir/table06_offload_characteristics.cc.o"
  "CMakeFiles/table06_offload_characteristics.dir/table06_offload_characteristics.cc.o.d"
  "table06_offload_characteristics"
  "table06_offload_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_offload_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
