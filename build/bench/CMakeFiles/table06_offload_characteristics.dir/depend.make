# Empty dependencies file for table06_offload_characteristics.
# This may be replaced when dependencies are built.
