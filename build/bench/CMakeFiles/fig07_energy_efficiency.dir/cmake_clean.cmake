file(REMOVE_RECURSE
  "CMakeFiles/fig07_energy_efficiency.dir/fig07_energy_efficiency.cc.o"
  "CMakeFiles/fig07_energy_efficiency.dir/fig07_energy_efficiency.cc.o.d"
  "fig07_energy_efficiency"
  "fig07_energy_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_energy_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
