# Empty compiler generated dependencies file for fig07_energy_efficiency.
# This may be replaced when dependencies are built.
