# Empty compiler generated dependencies file for fig13_clocking.
# This may be replaced when dependencies are built.
