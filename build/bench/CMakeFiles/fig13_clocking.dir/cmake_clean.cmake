file(REMOVE_RECURSE
  "CMakeFiles/fig13_clocking.dir/fig13_clocking.cc.o"
  "CMakeFiles/fig13_clocking.dir/fig13_clocking.cc.o.d"
  "fig13_clocking"
  "fig13_clocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_clocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
