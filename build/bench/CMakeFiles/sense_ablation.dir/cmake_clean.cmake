file(REMOVE_RECURSE
  "CMakeFiles/sense_ablation.dir/sense_ablation.cc.o"
  "CMakeFiles/sense_ablation.dir/sense_ablation.cc.o.d"
  "sense_ablation"
  "sense_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sense_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
