# Empty compiler generated dependencies file for sense_ablation.
# This may be replaced when dependencies are built.
