# Empty compiler generated dependencies file for sense_working_set.
# This may be replaced when dependencies are built.
