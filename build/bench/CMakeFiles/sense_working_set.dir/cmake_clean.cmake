file(REMOVE_RECURSE
  "CMakeFiles/sense_working_set.dir/sense_working_set.cc.o"
  "CMakeFiles/sense_working_set.dir/sense_working_set.cc.o.d"
  "sense_working_set"
  "sense_working_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sense_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
