file(REMOVE_RECURSE
  "CMakeFiles/table05_interface_coverage.dir/table05_interface_coverage.cc.o"
  "CMakeFiles/table05_interface_coverage.dir/table05_interface_coverage.cc.o.d"
  "table05_interface_coverage"
  "table05_interface_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_interface_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
