# Empty dependencies file for table05_interface_coverage.
# This may be replaced when dependencies are built.
