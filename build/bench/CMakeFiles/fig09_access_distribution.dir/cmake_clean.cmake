file(REMOVE_RECURSE
  "CMakeFiles/fig09_access_distribution.dir/fig09_access_distribution.cc.o"
  "CMakeFiles/fig09_access_distribution.dir/fig09_access_distribution.cc.o.d"
  "fig09_access_distribution"
  "fig09_access_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_access_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
