# Empty dependencies file for fig09_access_distribution.
# This may be replaced when dependencies are built.
