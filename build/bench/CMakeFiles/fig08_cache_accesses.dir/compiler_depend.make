# Empty compiler generated dependencies file for fig08_cache_accesses.
# This may be replaced when dependencies are built.
