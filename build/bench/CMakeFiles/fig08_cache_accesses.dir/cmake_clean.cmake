file(REMOVE_RECURSE
  "CMakeFiles/fig08_cache_accesses.dir/fig08_cache_accesses.cc.o"
  "CMakeFiles/fig08_cache_accesses.dir/fig08_cache_accesses.cc.o.d"
  "fig08_cache_accesses"
  "fig08_cache_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cache_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
