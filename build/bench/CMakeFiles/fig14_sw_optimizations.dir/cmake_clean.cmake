file(REMOVE_RECURSE
  "CMakeFiles/fig14_sw_optimizations.dir/fig14_sw_optimizations.cc.o"
  "CMakeFiles/fig14_sw_optimizations.dir/fig14_sw_optimizations.cc.o.d"
  "fig14_sw_optimizations"
  "fig14_sw_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sw_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
