file(REMOVE_RECURSE
  "CMakeFiles/fig12_case_studies.dir/fig12_case_studies.cc.o"
  "CMakeFiles/fig12_case_studies.dir/fig12_case_studies.cc.o.d"
  "fig12_case_studies"
  "fig12_case_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
