file(REMOVE_RECURSE
  "CMakeFiles/test_offload.dir/test_offload.cc.o"
  "CMakeFiles/test_offload.dir/test_offload.cc.o.d"
  "test_offload"
  "test_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
