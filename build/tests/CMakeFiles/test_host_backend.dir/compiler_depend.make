# Empty compiler generated dependencies file for test_host_backend.
# This may be replaced when dependencies are built.
