file(REMOVE_RECURSE
  "CMakeFiles/test_host_backend.dir/test_host_backend.cc.o"
  "CMakeFiles/test_host_backend.dir/test_host_backend.cc.o.d"
  "test_host_backend"
  "test_host_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
