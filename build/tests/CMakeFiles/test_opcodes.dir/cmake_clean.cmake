file(REMOVE_RECURSE
  "CMakeFiles/test_opcodes.dir/test_opcodes.cc.o"
  "CMakeFiles/test_opcodes.dir/test_opcodes.cc.o.d"
  "test_opcodes"
  "test_opcodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opcodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
