file(REMOVE_RECURSE
  "CMakeFiles/test_cgra.dir/test_cgra.cc.o"
  "CMakeFiles/test_cgra.dir/test_cgra.cc.o.d"
  "test_cgra"
  "test_cgra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cgra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
