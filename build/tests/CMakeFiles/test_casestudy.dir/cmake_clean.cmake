file(REMOVE_RECURSE
  "CMakeFiles/test_casestudy.dir/test_casestudy.cc.o"
  "CMakeFiles/test_casestudy.dir/test_casestudy.cc.o.d"
  "test_casestudy"
  "test_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
