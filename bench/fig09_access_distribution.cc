/**
 * @file
 * Figure 9 reproduction: distribution of dynamic accesses between
 * accelerator resources, in bytes — intra (local buffer traffic),
 * D-A (accelerator <-> cache hierarchy) and A-A (inter-accelerator) —
 * for each accelerator configuration. Applications with good spatial
 * locality show a high intra share.
 */

#include "bench/bench_common.hh"

using namespace distda;
using driver::ArchModel;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    const std::vector<ArchModel> models = {
        ArchModel::MonoCA, ArchModel::MonoDA_IO, ArchModel::DistDA_IO,
        ArchModel::DistDA_F};
    bench::Sweep sweep(models, opts);

    std::printf("== Figure 9: dynamic access distribution "
                "(share of bytes) ==\n");
    for (ArchModel m : models) {
        std::printf("\n-- %s --\n", archModelName(m));
        std::printf("%-14s%10s%10s%10s\n", "benchmark", "intra", "D-A",
                    "A-A");
        for (const std::string &w : sweep.workloads()) {
            const auto &r = sweep.at(w, m);
            const double total =
                r.intraBytes + r.daBytes + r.aaBytes;
            if (total <= 0.0)
                continue;
            std::printf("%-14s%9.1f%%%9.1f%%%9.1f%%\n", w.c_str(),
                        100.0 * r.intraBytes / total,
                        100.0 * r.daBytes / total,
                        100.0 * r.aaBytes / total);
        }
    }
    return 0;
}
