/**
 * @file
 * Figure 7 reproduction: normalized energy efficiency of every tested
 * configuration against the OoO baseline, per benchmark, with the
 * geometric-mean summary row. The paper reports Dist-DA-F at a GM of
 * 3.3x vs OoO, 2.46x vs Mono-CA and 1.46x vs Mono-DA-IO.
 */

#include "bench/bench_common.hh"

using namespace distda;
using driver::ArchModel;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    const auto models = driver::headlineModels();
    bench::Sweep sweep(models, opts);

    std::printf("== Figure 7: normalized energy efficiency "
                "(higher is better) ==\n");
    bench::printModelHeader(models);

    std::map<ArchModel, std::vector<double>> per_model;
    for (const std::string &w : sweep.workloads()) {
        const auto &base = sweep.at(w, ArchModel::OoO);
        std::vector<double> cells;
        for (ArchModel m : models) {
            const double eff =
                sweep.at(w, m).energyEfficiencyVs(base);
            cells.push_back(eff);
            per_model[m].push_back(eff);
        }
        bench::printRow(w, cells);
    }
    std::vector<double> gm;
    for (ArchModel m : models)
        gm.push_back(driver::geomean(per_model[m]));
    bench::printRow("geomean", gm);

    const double vs_ooo = gm[5];
    const double vs_monoca = gm[5] / gm[1];
    const double vs_monodaio = gm[5] / gm[2];
    std::printf("\nDist-DA-F energy efficiency: %.2fx vs OoO "
                "(paper 3.3x), %.2fx vs Mono-CA (paper 2.46x), "
                "%.2fx vs Mono-DA-IO (paper 1.46x)\n",
                vs_ooo, vs_monoca, vs_monodaio);
    std::printf("Dist-DA-IO energy efficiency: %.2fx vs OoO "
                "(paper 2.67x)\n", gm[4]);
    return 0;
}
