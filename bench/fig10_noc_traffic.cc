/**
 * @file
 * Figure 10 reproduction: bytes transferred through the NoC, broken
 * into host-initiated control (ctrl) and data (data) and
 * inter-accelerator control (acc_ctrl) and data (acc_data), normalized
 * to the OoO total. Sub-computation partitioning moves computation to
 * the data, cutting acc_ctrl/acc_data in Dist-DA vs Mono-DA.
 */

#include "bench/bench_common.hh"

using namespace distda;
using driver::ArchModel;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    const auto models = driver::headlineModels();
    bench::Sweep sweep(models, opts);

    std::printf("== Figure 10: NoC traffic breakdown "
                "(bytes, normalized to OoO total) ==\n");
    for (const std::string &w : sweep.workloads()) {
        std::printf("\n-- %s --\n", w.c_str());
        std::printf("%-12s%10s%10s%10s%10s%10s\n", "config", "ctrl",
                    "data", "acc_ctrl", "acc_data", "total");
        const double base =
            std::max(sweep.at(w, ArchModel::OoO).nocTotalBytes(), 1.0);
        for (ArchModel m : models) {
            const auto &r = sweep.at(w, m);
            std::printf("%-12s%10.3f%10.3f%10.3f%10.3f%10.3f\n",
                        archModelName(m), r.nocCtrlBytes / base,
                        r.nocDataBytes / base, r.nocAccCtrlBytes / base,
                        r.nocAccDataBytes / base,
                        r.nocTotalBytes() / base);
        }
    }

    std::printf("\n== Geomean NoC bytes normalized to OoO ==\n");
    bench::printModelHeader(models, "metric");
    std::map<ArchModel, std::vector<double>> totals;
    for (const std::string &w : sweep.workloads()) {
        const double base =
            std::max(sweep.at(w, ArchModel::OoO).nocTotalBytes(), 1.0);
        for (ArchModel m : models)
            totals[m].push_back(
                std::max(sweep.at(w, m).nocTotalBytes(), 1.0) / base);
    }
    std::vector<double> gm;
    for (ArchModel m : models)
        gm.push_back(driver::geomean(totals[m]));
    bench::printRow("noc_total", gm);
    return 0;
}
