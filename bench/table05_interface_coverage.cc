/**
 * @file
 * Table V reproduction: which interface mechanisms each benchmark
 * exercises. The core 12 use compiler-automated (C) mechanisms derived
 * from their compiled plans; the §VI-D case studies additionally use
 * user-annotated (U) mechanisms (blocked loop nests, explicit
 * fill/drain schedules).
 */

#include "bench/bench_common.hh"
#include "src/driver/pool.hh"
#include "src/driver/system.hh"

using namespace distda;
using compiler::Mechanism;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    setInformEnabled(false);

    const auto num_mechs =
        static_cast<std::size_t>(Mechanism::NumMechanisms);

    std::printf("== Table V: interface mechanism coverage "
                "(C: compiler automated, U: user annotated) ==\n");
    std::printf("%-18s", "benchmark");
    for (std::size_t i = 0; i < num_mechs; ++i) {
        std::string n =
            compiler::mechanismName(static_cast<Mechanism>(i));
        std::printf(" %-9s", n.substr(3).c_str());
    }
    std::printf("\n");

    // Each workload's compile+coverage pass is independent: fan out on
    // the driver pool, then print the rows in Table IV order.
    const auto wnames = workloads::workloadNames();
    std::vector<compiler::MechanismSet> coverage(wnames.size());
    {
        driver::ThreadPool pool(opts.sweep.jobs > 0
                                    ? opts.sweep.jobs
                                    : driver::defaultJobCount());
        for (std::size_t wi = 0; wi < wnames.size(); ++wi) {
            pool.submit([&, wi] {
                auto wl = workloads::makeWorkload(
                    wnames[wi], opts.run.scale * 0.25);
                driver::SystemParams sp;
                sp.arenaBytes = wl->arenaBytes();
                driver::System sys(sp);
                wl->setup(sys);

                compiler::MechanismSet set{};
                for (const compiler::Kernel *k : wl->kernels()) {
                    auto plan = compiler::compileKernel(*k);
                    for (std::size_t i = 0; i < num_mechs; ++i)
                        set[i] = set[i] || plan.mechanisms[i];
                }
                coverage[wi] = set;
            });
        }
        pool.wait();
    }
    for (std::size_t wi = 0; wi < wnames.size(); ++wi) {
        std::printf("%-18s", wnames[wi].c_str());
        for (std::size_t i = 0; i < num_mechs; ++i)
            std::printf(" %-9s", coverage[wi][i] ? "C" : "");
        std::printf("\n");
    }

    // User-annotated case studies (§VI-D): the manual schedules use
    // produce/consume/step plus the random-access fill/drain path.
    struct AnnotatedRow
    {
        const char *name;
        std::vector<Mechanism> used;
    };
    const std::vector<AnnotatedRow> annotated = {
        {"spmv (annotated)",
         {Mechanism::CpProduce, Mechanism::CpConsume, Mechanism::CpStep,
          Mechanism::CpRead, Mechanism::CpFillRa, Mechanism::CpDrainRa,
          Mechanism::CpConfig, Mechanism::CpConfigStream,
          Mechanism::CpConfigRandom, Mechanism::CpSetRf,
          Mechanism::CpRun}},
        {"nw (annotated)",
         {Mechanism::CpProduce, Mechanism::CpConsume, Mechanism::CpStep,
          Mechanism::CpFillBuf, Mechanism::CpDrainBuf,
          Mechanism::CpFillRa, Mechanism::CpDrainRa,
          Mechanism::CpConfig, Mechanism::CpConfigStream,
          Mechanism::CpConfigRandom, Mechanism::CpSetRf,
          Mechanism::CpRun}},
        {"bfs (multi-thread)",
         {Mechanism::CpProduce, Mechanism::CpConsume, Mechanism::CpStep,
          Mechanism::CpRead, Mechanism::CpWrite, Mechanism::CpDrainRa,
          Mechanism::CpConfig, Mechanism::CpConfigStream,
          Mechanism::CpSetRf, Mechanism::CpRun}},
        {"pf (multi-thread)",
         {Mechanism::CpProduce, Mechanism::CpConsume, Mechanism::CpStep,
          Mechanism::CpRead, Mechanism::CpWrite, Mechanism::CpDrainRa,
          Mechanism::CpConfig, Mechanism::CpConfigStream,
          Mechanism::CpSetRf, Mechanism::CpRun}},
    };
    for (const AnnotatedRow &row : annotated) {
        compiler::MechanismSet set{};
        for (Mechanism m : row.used)
            set[static_cast<std::size_t>(m)] = true;
        std::printf("%-18s", row.name);
        for (std::size_t i = 0; i < num_mechs; ++i)
            std::printf(" %-9s", set[i] ? "U" : "");
        std::printf("\n");
    }
    return 0;
}
