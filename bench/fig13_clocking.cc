/**
 * @file
 * Figure 13 reproduction: accelerator clock sensitivity. Dist-DA-IO
 * clocked at 1, 2 and 3 GHz; speedup rises for most benchmarks while
 * IPC drops for the access-dominated ones (seidel-2d, with its higher
 * arithmetic share, degrades least) — the paper's argument that
 * distributed accelerator-level parallelism beats clock scaling.
 */

#include "bench/bench_common.hh"

using namespace distda;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    setInformEnabled(false);
    const double clocks[] = {1.0, 2.0, 3.0};

    std::vector<driver::SweepJob> jobs;
    for (const std::string &w : workloads::workloadNames()) {
        for (double ghz : clocks) {
            driver::SweepJob job;
            job.workload = w;
            job.config.model = driver::ArchModel::DistDA_IO;
            job.config.accelGHz = ghz;
            job.options = opts.run;
            job.label = strfmt("Dist-DA-IO@%.0fG", ghz);
            jobs.push_back(job);
        }
    }
    const auto sweep = driver::runSweep(jobs, opts.sweep);
    driver::dieOnFailures(sweep);

    std::map<std::pair<std::string, int>, driver::Metrics> results;
    std::size_t next = 0;
    for (const std::string &w : workloads::workloadNames()) {
        for (int c = 0; c < 3; ++c)
            results[{w, c}] = sweep[next++].metrics;
    }

    std::printf("== Figure 13: Dist-DA-IO clock sweep, normalized to "
                "1GHz ==\n");
    std::printf("%-14s%10s%10s%10s%12s%12s\n", "benchmark", "spd@2G",
                "spd@3G", "ipc@1G", "ipc@2G", "ipc@3G");
    for (const std::string &w : workloads::workloadNames()) {
        const auto &r1 = results[{w, 0}];
        const auto &r2 = results[{w, 1}];
        const auto &r3 = results[{w, 2}];
        // IPC against the accelerator clock: insts / (time * GHz).
        auto ipc_at = [](const driver::Metrics &m, double ghz) {
            return m.totalInsts() / (m.timeNs * ghz);
        };
        std::printf("%-14s%10.3f%10.3f%10.3f%12.3f%12.3f\n", w.c_str(),
                    r1.timeNs / r2.timeNs, r1.timeNs / r3.timeNs,
                    ipc_at(r1, 1.0) / ipc_at(r1, 1.0),
                    ipc_at(r2, 2.0) / ipc_at(r1, 1.0),
                    ipc_at(r3, 3.0) / ipc_at(r1, 1.0));
    }
    return 0;
}
