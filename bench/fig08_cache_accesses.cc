/**
 * @file
 * Figure 8 reproduction: cache access counts normalized to OoO (lower
 * is better). Decentralizing accesses cuts traffic through the cache
 * hierarchy; the paper notes the count "remains the same for all DA
 * configurations" since it is the access decentralization, not the
 * compute organization, that determines it.
 */

#include "bench/bench_common.hh"

using namespace distda;
using driver::ArchModel;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    const auto models = driver::headlineModels();
    bench::Sweep sweep(models, opts);

    std::printf("== Figure 8: normalized cache accesses "
                "(lower is better) ==\n");
    bench::printModelHeader(models);
    std::map<ArchModel, std::vector<double>> per_model;
    for (const std::string &w : sweep.workloads()) {
        const auto &base = sweep.at(w, ArchModel::OoO);
        std::vector<double> cells;
        for (ArchModel m : models) {
            const double v =
                sweep.at(w, m).cacheAccesses / base.cacheAccesses;
            cells.push_back(v);
            per_model[m].push_back(v);
        }
        bench::printRow(w, cells);
    }
    std::vector<double> gm;
    for (ArchModel m : models)
        gm.push_back(driver::geomean(per_model[m]));
    bench::printRow("geomean", gm);

    std::printf("\n== Data movement (bytes) normalized to OoO ==\n");
    bench::printModelHeader(models);
    std::map<ArchModel, std::vector<double>> dm;
    for (const std::string &w : sweep.workloads()) {
        const auto &base = sweep.at(w, ArchModel::OoO);
        std::vector<double> cells;
        for (ArchModel m : models) {
            const double v = sweep.at(w, m).dataMovementBytes /
                             base.dataMovementBytes;
            cells.push_back(v);
            dm[m].push_back(v);
        }
        bench::printRow(w, cells);
    }
    std::vector<double> gm2;
    for (ArchModel m : models)
        gm2.push_back(driver::geomean(dm[m]));
    bench::printRow("geomean", gm2);
    std::printf("\nDist-DA-F data movement reduction: %.2fx vs OoO "
                "(paper 2.4x), %.2fx vs Mono-CA (paper 3.5x), %.2fx vs "
                "Mono-DA-IO (paper 1.48x)\n",
                1.0 / gm2[5], gm2[1] / gm2[5], gm2[2] / gm2[5]);
    return 0;
}
