/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out, on the
 * Dist-DA-F configuration (geomean over the suite, normalized to the
 * full design):
 *  - multi-access combining off (Fig 2d): followers refetch their own
 *    windows;
 *  - buffer retention off (§V-B): no reuse across outer-loop
 *    invocations;
 *  - buffer capacity swept 1KB / 4KB / 16KB per cluster;
 *  - channel decoupling depth swept 4 / 64 elements.
 */

#include "bench/bench_common.hh"

using namespace distda;

namespace
{

struct Variant
{
    const char *name;
    driver::RunConfig cfg;
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    setInformEnabled(false);

    driver::RunConfig base;
    base.model = driver::ArchModel::DistDA_F;

    std::vector<Variant> variants;
    variants.push_back({"full design", base});
    {
        auto c = base;
        c.disableCombining = true;
        variants.push_back({"no combining", c});
    }
    {
        auto c = base;
        c.disableRetention = true;
        variants.push_back({"no retention", c});
    }
    {
        auto c = base;
        c.bufferBytesOverride = 1024;
        variants.push_back({"1KB buffers", c});
    }
    {
        auto c = base;
        c.bufferBytesOverride = 16 * 1024;
        variants.push_back({"16KB buffers", c});
    }
    {
        auto c = base;
        c.channelCapacityOverride = 4;
        variants.push_back({"4-deep channels", c});
    }

    // One flat sweep over variant x workload; the sweep engine returns
    // results in job order, so [vi * |workloads| + wi] indexes them.
    const auto wnames = workloads::workloadNames();
    std::vector<driver::SweepJob> jobs;
    for (const Variant &v : variants) {
        for (const std::string &w : wnames) {
            driver::SweepJob job;
            job.workload = w;
            job.config = v.cfg;
            job.options = opts.run;
            job.label = v.name;
            jobs.push_back(job);
        }
    }
    const auto results = driver::runSweep(jobs, opts.sweep);
    driver::dieOnFailures(results);
    const auto at = [&](std::size_t vi,
                        std::size_t wi) -> const driver::Metrics & {
        return results[vi * wnames.size() + wi].metrics;
    };

    std::printf("== Ablation: Dist-DA-F design choices "
                "(geomean, normalized to full design) ==\n");
    std::printf("%-18s%12s%12s%14s\n", "variant", "speed", "energy",
                "D-A bytes");

    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        std::vector<double> rt, re, rd;
        for (std::size_t wi = 0; wi < wnames.size(); ++wi) {
            const driver::Metrics &base = at(0, wi);
            const driver::Metrics &m = at(vi, wi);
            rt.push_back(base.timeNs / m.timeNs);
            re.push_back(base.totalEnergyPj / m.totalEnergyPj);
            rd.push_back(std::max(m.daBytes, 1.0) /
                         std::max(base.daBytes, 1.0));
        }
        std::printf("%-18s%12.3f%12.3f%14.3f\n", variants[vi].name,
                    driver::geomean(rt), driver::geomean(re),
                    driver::geomean(rd));
    }
    return 0;
}
