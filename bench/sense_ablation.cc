/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out, on the
 * Dist-DA-F configuration (geomean over the suite, normalized to the
 * full design):
 *  - multi-access combining off (Fig 2d): followers refetch their own
 *    windows;
 *  - buffer retention off (§V-B): no reuse across outer-loop
 *    invocations;
 *  - buffer capacity swept 1KB / 4KB / 16KB per cluster;
 *  - channel decoupling depth swept 4 / 64 elements.
 */

#include "bench/bench_common.hh"

using namespace distda;

namespace
{

struct Variant
{
    const char *name;
    driver::RunConfig cfg;
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    setInformEnabled(false);

    driver::RunConfig base;
    base.model = driver::ArchModel::DistDA_F;

    std::vector<Variant> variants;
    variants.push_back({"full design", base});
    {
        auto c = base;
        c.disableCombining = true;
        variants.push_back({"no combining", c});
    }
    {
        auto c = base;
        c.disableRetention = true;
        variants.push_back({"no retention", c});
    }
    {
        auto c = base;
        c.bufferBytesOverride = 1024;
        variants.push_back({"1KB buffers", c});
    }
    {
        auto c = base;
        c.bufferBytesOverride = 16 * 1024;
        variants.push_back({"16KB buffers", c});
    }
    {
        auto c = base;
        c.channelCapacityOverride = 4;
        variants.push_back({"4-deep channels", c});
    }

    std::printf("== Ablation: Dist-DA-F design choices "
                "(geomean, normalized to full design) ==\n");
    std::printf("%-18s%12s%12s%14s\n", "variant", "speed", "energy",
                "D-A bytes");

    std::vector<double> base_time, base_energy, base_da;
    for (const Variant &v : variants) {
        std::vector<double> rt, re, rd;
        std::size_t wi = 0;
        for (const std::string &w : workloads::workloadNames()) {
            const auto m = driver::runWorkload(w, v.cfg, opts);
            if (v.name == std::string("full design")) {
                base_time.push_back(m.timeNs);
                base_energy.push_back(m.totalEnergyPj);
                base_da.push_back(std::max(m.daBytes, 1.0));
            }
            rt.push_back(base_time[wi] / m.timeNs);
            re.push_back(base_energy[wi] / m.totalEnergyPj);
            rd.push_back(std::max(m.daBytes, 1.0) / base_da[wi]);
            ++wi;
        }
        std::printf("%-18s%12.3f%12.3f%14.3f\n", v.name,
                    driver::geomean(rt), driver::geomean(re),
                    driver::geomean(rd));
    }
    return 0;
}
