/**
 * @file
 * Shared harness for the table/figure reproduction binaries: runs the
 * workload x configuration matrix once and exposes the metrics, plus
 * small table-printing helpers.
 *
 * Flags understood by every bench binary:
 *   --scale=<f>  problem-size multiplier (default 1.0)
 *   --paper      paper-scale inputs (scale 2.0; slower)
 *   --quick      tiny inputs for smoke runs (scale 0.25)
 */

#ifndef DISTDA_BENCH_BENCH_COMMON_HH
#define DISTDA_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/driver/runner.hh"
#include "src/sim/logging.hh"
#include "src/workloads/workload.hh"

namespace distda::bench
{

/** Parse the common CLI flags. */
inline driver::RunOptions
parseOptions(int argc, char **argv)
{
    driver::RunOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            opts.scale = std::atof(argv[i] + 8);
        else if (std::strcmp(argv[i], "--paper") == 0)
            opts.scale = 2.0;
        else if (std::strcmp(argv[i], "--quick") == 0)
            opts.scale = 0.25;
    }
    return opts;
}

/** Results of a full workload x model sweep. */
class Sweep
{
  public:
    Sweep(const std::vector<driver::ArchModel> &models,
          const driver::RunOptions &opts)
        : _models(models)
    {
        setInformEnabled(false);
        for (const std::string &w : workloads::workloadNames()) {
            for (driver::ArchModel m : models) {
                driver::RunConfig cfg;
                cfg.model = m;
                _metrics[{w, m}] = driver::runWorkload(w, cfg, opts);
            }
        }
    }

    const driver::Metrics &
    at(const std::string &workload, driver::ArchModel m) const
    {
        return _metrics.at({workload, m});
    }

    const std::vector<driver::ArchModel> &models() const
    {
        return _models;
    }

    std::vector<std::string>
    workloads() const
    {
        return distda::workloads::workloadNames();
    }

  private:
    std::vector<driver::ArchModel> _models;
    std::map<std::pair<std::string, driver::ArchModel>,
             driver::Metrics>
        _metrics;
};

/** Print one table row: label then fixed-width numeric cells. */
inline void
printRow(const std::string &label, const std::vector<double> &cells,
         const char *fmt = "%10.3f")
{
    std::printf("%-14s", label.c_str());
    for (double v : cells)
        std::printf(fmt, v);
    std::printf("\n");
}

/** Print the header row for a set of models. */
inline void
printModelHeader(const std::vector<driver::ArchModel> &models,
                 const char *first_col = "benchmark")
{
    std::printf("%-14s", first_col);
    for (driver::ArchModel m : models)
        std::printf("%10s", driver::archModelName(m));
    std::printf("\n");
}

} // namespace distda::bench

#endif // DISTDA_BENCH_BENCH_COMMON_HH
