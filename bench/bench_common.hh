/**
 * @file
 * Shared harness for the table/figure reproduction binaries: builds the
 * workload x configuration matrix as a declarative job list, executes
 * it on the driver's parallel sweep engine and exposes the metrics,
 * plus small table-printing helpers.
 *
 * Flags understood by every bench binary:
 *   --scale=<f>  problem-size multiplier (default 1.0)
 *   --paper      paper-scale inputs (scale 2.0; slower)
 *   --quick      tiny inputs for smoke runs (scale 0.25)
 *   --jobs=<n>   concurrent simulations (default DISTDA_JOBS or
 *                hardware_concurrency)
 */

#ifndef DISTDA_BENCH_BENCH_COMMON_HH
#define DISTDA_BENCH_BENCH_COMMON_HH

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/driver/sweep.hh"
#include "src/sim/logging.hh"
#include "src/workloads/workload.hh"

namespace distda::bench
{

/** Per-binary options: run shape plus sweep-executor knobs. */
struct Options
{
    driver::RunOptions run;
    driver::SweepOptions sweep;
};

/** Parse the common CLI flags. */
inline Options
parseOptions(int argc, char **argv)
{
    Options opts;
    // Progress/ETA on stderr when someone is watching; never when
    // redirected, so captured output stays clean.
    opts.sweep.progress = ::isatty(2) != 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            opts.run.scale = std::atof(argv[i] + 8);
        else if (std::strcmp(argv[i], "--paper") == 0)
            opts.run.scale = 2.0;
        else if (std::strcmp(argv[i], "--quick") == 0)
            opts.run.scale = 0.25;
        else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            opts.sweep.jobs = std::atoi(argv[i] + 7);
    }
    return opts;
}

/** Results of a full workload x model sweep. */
class Sweep
{
  public:
    Sweep(const std::vector<driver::ArchModel> &models,
          const Options &opts)
        : _models(models)
    {
        setInformEnabled(false);
        std::vector<driver::SweepJob> jobs;
        for (const std::string &w : workloads::workloadNames()) {
            for (driver::ArchModel m : models) {
                driver::SweepJob job;
                job.workload = w;
                job.config.model = m;
                job.options = opts.run;
                jobs.push_back(job);
            }
        }
        const auto results = driver::runSweep(jobs, opts.sweep);
        driver::dieOnFailures(results);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            _metrics[{jobs[i].workload, jobs[i].config.model}] =
                results[i].metrics;
        }
    }

    const driver::Metrics &
    at(const std::string &workload, driver::ArchModel m) const
    {
        return _metrics.at({workload, m});
    }

    const std::vector<driver::ArchModel> &models() const
    {
        return _models;
    }

    std::vector<std::string>
    workloads() const
    {
        return distda::workloads::workloadNames();
    }

  private:
    std::vector<driver::ArchModel> _models;
    std::map<std::pair<std::string, driver::ArchModel>,
             driver::Metrics>
        _metrics;
};

/** Print one table row: label then fixed-width numeric cells. */
inline void
printRow(const std::string &label, const std::vector<double> &cells,
         const char *fmt = "%10.3f")
{
    std::printf("%-14s", label.c_str());
    for (double v : cells)
        std::printf(fmt, v);
    std::printf("\n");
}

/** Print the header row for a set of models. */
inline void
printModelHeader(const std::vector<driver::ArchModel> &models,
                 const char *first_col = "benchmark")
{
    std::printf("%-14s", first_col);
    for (driver::ArchModel m : models)
        std::printf("%10s", driver::archModelName(m));
    std::printf("\n");
}

} // namespace distda::bench

#endif // DISTDA_BENCH_BENCH_COMMON_HH
