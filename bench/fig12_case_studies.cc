/**
 * @file
 * Figure 12 reproduction.
 * (a) Control-intensive offload case studies: spmv and nw under
 *     Dist-DA-B (automated, per-row), Dist-DA-BN (user blocked loop
 *     nest, Fig 5a) and Dist-DA-BNS (user fill/drain schedule,
 *     Fig 5b), normalized to OoO. Paper spmv: 0.44x / 1.22x / 1.95x.
 * (b) Multithreaded pathfinder and bfs at 1/2/4/8 threads.
 */

#include "bench/bench_common.hh"
#include "src/casestudy/case_spmv.hh"
#include "src/casestudy/multithread.hh"
#include "src/driver/pool.hh"

using namespace distda;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    setInformEnabled(false);

    // The three case-study units are independent simulations; run them
    // concurrently on the driver's pool and print in fixed order.
    std::vector<casestudy::CaseResult> spmv_results, nw_results;
    std::vector<casestudy::MtResult> mt;
    {
        driver::ThreadPool pool(opts.sweep.jobs > 0
                                    ? opts.sweep.jobs
                                    : driver::defaultJobCount());
        pool.submit([&] {
            spmv_results = casestudy::runSpmvCaseStudy(opts.run.scale);
        });
        pool.submit([&] {
            nw_results = casestudy::runNwCaseStudy(opts.run.scale);
        });
        pool.submit([&] {
            mt = casestudy::runMultithreadCaseStudy(opts.run.scale);
        });
        pool.wait();
    }

    std::printf("== Figure 12a: control-intensive offloads "
                "(speedup vs OoO) ==\n");
    for (const char *wname : {"spmv", "nw"}) {
        const auto &results = (std::string(wname) == "spmv")
                                  ? spmv_results
                                  : nw_results;
        const double base = results.front().timeNs;
        for (const auto &r : results) {
            std::printf("%-5s %-12s %8.3fx%s%s\n", wname,
                        r.config.c_str(), base / r.timeNs,
                        r.validated ? "" : "  [VALIDATION FAILED]",
                        r.config == "Dist-DA-B" &&
                                std::string(wname) == "spmv"
                            ? "   (paper: 0.44x)"
                            : (r.config == "Dist-DA-BN" &&
                                       std::string(wname) == "spmv"
                                   ? "   (paper: 1.22x)"
                                   : (r.config == "Dist-DA-BNS" &&
                                              std::string(wname) ==
                                                  "spmv"
                                          ? "   (paper: 1.95x)"
                                          : "")));
        }
        std::printf("\n");
    }

    std::printf("== Figure 12b: multithreading (speedup vs 1-thread "
                "OoO) ==\n");
    std::printf("%-5s %-12s %8s %8s %8s %8s\n", "bench", "config",
                "T=1", "T=2", "T=4", "T=8");
    for (std::size_t i = 0; i < mt.size(); i += 4) {
        std::printf("%-5s %-12s %8.3f %8.3f %8.3f %8.3f\n",
                    mt[i].workload.c_str(), mt[i].config.c_str(),
                    mt[i].speedupVsOoO1, mt[i + 1].speedupVsOoO1,
                    mt[i + 2].speedupVsOoO1, mt[i + 3].speedupVsOoO1);
    }
    return 0;
}
