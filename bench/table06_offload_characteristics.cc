/**
 * @file
 * Table VI reproduction: offload characteristics of each benchmark
 * under Dist-DA — dynamic code coverage (%cc), data coverage (%dc),
 * MMIO initialization overhead (%init), average buffers per partition
 * (#buf), maximum static instructions and DFG dimensions, and the
 * in-order microcode size in bytes (8B per instruction).
 */

#include "bench/bench_common.hh"
#include "src/driver/system.hh"

using namespace distda;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    setInformEnabled(false);

    std::vector<driver::SweepJob> jobs;
    for (const std::string &w : workloads::workloadNames()) {
        driver::SweepJob job;
        job.workload = w;
        job.config.model = driver::ArchModel::DistDA_IO;
        job.options = opts.run;
        jobs.push_back(job);
    }
    const auto sweep = driver::runSweep(jobs, opts.sweep);
    driver::dieOnFailures(sweep);

    std::printf("== Table VI: offload characteristics (Dist-DA-IO) "
                "==\n");
    std::printf("%-6s%8s%8s%8s%7s%8s%10s%10s%8s\n", "bench", "%cc",
                "%dc", "%init", "#buf", "#parts", "#insts", "DFGdim",
                "insts(B)");

    std::size_t next = 0;
    for (const std::string &w : workloads::workloadNames()) {
        const driver::Metrics &m = sweep[next++].metrics;

        // Static characteristics from the compiled plans.
        auto wl = workloads::makeWorkload(w, opts.run.scale);
        driver::SystemParams sp;
        sp.arenaBytes = wl->arenaBytes();
        driver::System sys(sp);
        wl->setup(sys);
        compiler::OffloadCharacteristics agg;
        double buf_sum = 0.0;
        int buf_count = 0;
        for (const compiler::Kernel *k : wl->kernels()) {
            auto plan = compiler::compileKernel(*k);
            const auto &c = plan.characteristics;
            agg.maxInsts = std::max(agg.maxInsts, c.maxInsts);
            agg.maxInstBytes =
                std::max(agg.maxInstBytes, c.maxInstBytes);
            agg.dfgLevels = std::max(agg.dfgLevels, c.dfgLevels);
            agg.dfgWidth = std::max(agg.dfgWidth, c.dfgWidth);
            agg.numPartitions =
                std::max(agg.numPartitions, c.numPartitions);
            buf_sum += c.avgBuffers * c.numPartitions;
            buf_count += c.numPartitions;
        }
        const double avg_buf =
            buf_count > 0 ? buf_sum / buf_count : 0.0;

        std::printf("%-6s%8.1f%8.2f%8.2f%7.1f%8d%10d%7dx%-3d%8d\n",
                    w.c_str(), m.codeCoverage(), m.dataCoverage(),
                    m.initOverhead(), avg_buf, agg.numPartitions,
                    agg.maxInsts, agg.dfgWidth, agg.dfgLevels,
                    agg.maxInstBytes);
    }
    std::printf("\n(paper ranges: %%cc 74-99, %%dc 60-99.98, %%init "
                "0-1.73, #buf 0-3, #insts 4-55, insts(B) 32-440)\n");
    return 0;
}
