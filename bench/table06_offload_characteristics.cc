/**
 * @file
 * Table VI reproduction: offload characteristics of each benchmark
 * under Dist-DA — dynamic code coverage (%cc), data coverage (%dc),
 * MMIO initialization overhead (%init), average buffers per partition
 * (#buf), maximum static instructions and DFG dimensions, and the
 * in-order microcode size in bytes (8B per instruction).
 *
 * A second table (VI-b) prints the offload-lifecycle latency
 * breakdown the instrumentation records per workload: each phase's
 * share of end-to-end invocation latency (the shares sum to 100% by
 * the conservation invariant) plus per-invocation p50/p95/p99.
 */

#include "bench/bench_common.hh"
#include "src/driver/system.hh"
#include "src/offload/lifecycle.hh"

using namespace distda;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    setInformEnabled(false);

    std::vector<driver::SweepJob> jobs;
    for (const std::string &w : workloads::workloadNames()) {
        driver::SweepJob job;
        job.workload = w;
        job.config.model = driver::ArchModel::DistDA_IO;
        job.options = opts.run;
        jobs.push_back(job);
    }
    const auto sweep = driver::runSweep(jobs, opts.sweep);
    driver::dieOnFailures(sweep);

    std::printf("== Table VI: offload characteristics (Dist-DA-IO) "
                "==\n");
    std::printf("%-6s%8s%8s%8s%7s%8s%10s%10s%8s\n", "bench", "%cc",
                "%dc", "%init", "#buf", "#parts", "#insts", "DFGdim",
                "insts(B)");

    std::size_t next = 0;
    for (const std::string &w : workloads::workloadNames()) {
        const driver::Metrics &m = sweep[next++].metrics;

        // Static characteristics from the compiled plans.
        auto wl = workloads::makeWorkload(w, opts.run.scale);
        driver::SystemParams sp;
        sp.arenaBytes = wl->arenaBytes();
        driver::System sys(sp);
        wl->setup(sys);
        compiler::OffloadCharacteristics agg;
        double buf_sum = 0.0;
        int buf_count = 0;
        for (const compiler::Kernel *k : wl->kernels()) {
            auto plan = compiler::compileKernel(*k);
            const auto &c = plan.characteristics;
            agg.maxInsts = std::max(agg.maxInsts, c.maxInsts);
            agg.maxInstBytes =
                std::max(agg.maxInstBytes, c.maxInstBytes);
            agg.dfgLevels = std::max(agg.dfgLevels, c.dfgLevels);
            agg.dfgWidth = std::max(agg.dfgWidth, c.dfgWidth);
            agg.numPartitions =
                std::max(agg.numPartitions, c.numPartitions);
            buf_sum += c.avgBuffers * c.numPartitions;
            buf_count += c.numPartitions;
        }
        const double avg_buf =
            buf_count > 0 ? buf_sum / buf_count : 0.0;

        std::printf("%-6s%8.1f%8.2f%8.2f%7.1f%8d%10d%7dx%-3d%8d\n",
                    w.c_str(), m.codeCoverage(), m.dataCoverage(),
                    m.initOverhead(), avg_buf, agg.numPartitions,
                    agg.maxInsts, agg.dfgWidth, agg.dfgLevels,
                    agg.maxInstBytes);
    }
    std::printf("\n(paper ranges: %%cc 74-99, %%dc 60-99.98, %%init "
                "0-1.73, #buf 0-3, #insts 4-55, insts(B) 32-440)\n");

    std::printf("\n== Table VI-b: offload-lifecycle latency "
                "breakdown (Dist-DA-IO, %% of e2e) ==\n");
    std::printf("%-6s%9s", "bench", "invokes");
    for (std::size_t p = 0; p < offload::kNumPhases; ++p) {
        std::printf("%13s",
                    offload::phaseName(static_cast<offload::Phase>(p)));
    }
    std::printf("%10s%10s%10s\n", "p50_ns", "p95_ns", "p99_ns");
    next = 0;
    for (const std::string &w : workloads::workloadNames()) {
        const driver::Metrics &m = sweep[next++].metrics;
        // Workload-level aggregation over the per-kernel rows; the
        // quantiles shown are invocation-weighted means of the
        // per-kernel estimates.
        double invokes = 0.0, e2e = 0.0;
        double phases[offload::kNumPhases] = {};
        double p50 = 0.0, p95 = 0.0, p99 = 0.0;
        for (const driver::OffloadPhaseBreakdown &row :
             m.offloadBreakdown) {
            invokes += row.invocations;
            e2e += row.e2eTicks;
            for (std::size_t p = 0; p < offload::kNumPhases; ++p)
                phases[p] += row.phaseTicks[p];
            p50 += row.p50 * row.invocations;
            p95 += row.p95 * row.invocations;
            p99 += row.p99 * row.invocations;
        }
        std::printf("%-6s%9.0f", w.c_str(), invokes);
        for (std::size_t p = 0; p < offload::kNumPhases; ++p) {
            std::printf("%12.2f%%",
                        e2e > 0.0 ? 100.0 * phases[p] / e2e : 0.0);
        }
        const double inv = invokes > 0.0 ? invokes : 1.0;
        std::printf("%10.1f%10.1f%10.1f\n", p50 / inv / 1000.0,
                    p95 / inv / 1000.0, p99 / inv / 1000.0);
    }
    return 0;
}
