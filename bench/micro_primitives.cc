/**
 * @file
 * google-benchmark microbenchmarks of the simulator's primitives: the
 * event queue, the cache model, NoC transfers, the multilevel
 * partitioner, kernel compilation and a small end-to-end engine
 * invocation. These guard the simulator's own performance (wall-clock
 * per simulated event), not the paper's metrics.
 */

#include <benchmark/benchmark.h>

#include <atomic>

#include "src/compiler/partitioner.hh"
#include "src/compiler/plan.hh"
#include "src/driver/context.hh"
#include "src/driver/pool.hh"
#include "src/driver/system.hh"
#include "src/mem/hierarchy.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/rng.hh"

using namespace distda;

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.scheduleIn(static_cast<sim::Tick>((i * 37) % 101),
                          [&fired] { ++fired; });
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueue);

void
BM_CacheAccess(benchmark::State &state)
{
    energy::Accountant acct;
    mem::CacheParams cp;
    cp.sizeBytes = 32 * 1024;
    mem::Cache cache(cp, &acct,
                     mem::Cache::Downstream(
                         [](void *, mem::Addr, bool, sim::Tick) {
                             return sim::Tick(20000);
                         },
                         nullptr));
    sim::Rng rng(1);
    sim::Tick now = 0;
    for (auto _ : state) {
        const mem::Addr a = rng.nextBelow(1 << 20) * 8;
        benchmark::DoNotOptimize(cache.access(a, 8, false, now));
        now += 500;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_MeshTransfer(benchmark::State &state)
{
    energy::Accountant acct;
    noc::Mesh mesh(noc::MeshParams{}, &acct);
    sim::Rng rng(2);
    sim::Tick now = 0;
    for (auto _ : state) {
        const int src = static_cast<int>(rng.nextBelow(8));
        const int dst = static_cast<int>(rng.nextBelow(8));
        benchmark::DoNotOptimize(
            mesh.transfer(src, dst, 64, noc::TrafficClass::Data, now));
        now += 1000;
    }
}
BENCHMARK(BM_MeshTransfer);

void
BM_Partitioner(benchmark::State &state)
{
    // A synthetic 64-vertex DFG-shaped graph with 4 object vertices.
    compiler::PartitionGraph g;
    for (int i = 0; i < 64; ++i)
        g.addVertex(1.0, i < 4 ? i : -1);
    sim::Rng rng(3);
    for (int i = 4; i < 64; ++i) {
        g.addEdge(static_cast<int>(rng.nextBelow(4)), i, 8.0);
        g.addEdge(i, static_cast<int>(rng.nextBelow(
                         static_cast<std::uint64_t>(i))),
                  4.0);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(compiler::sweepPartition(g));
}
BENCHMARK(BM_Partitioner);

compiler::Kernel
makeStencilKernel()
{
    compiler::KernelBuilder kb("bm_stencil");
    const int obj = kb.object("A", 1 << 16, 8, true);
    kb.loopStatic(1 << 10);
    auto a = kb.load(obj, kb.affine(0, 1));
    auto b = kb.load(obj, kb.affine(1, 1));
    auto c = kb.load(obj, kb.affine(2, 1));
    kb.store(obj, kb.affine(1, 1),
             kb.fdiv(kb.fadd(kb.fadd(a, b), c), kb.constFloat(3.0)));
    return kb.build();
}

void
BM_CompileKernel(benchmark::State &state)
{
    const compiler::Kernel kernel = makeStencilKernel();
    for (auto _ : state)
        benchmark::DoNotOptimize(compiler::compileKernel(kernel));
}
BENCHMARK(BM_CompileKernel);

void
BM_EngineInvoke(benchmark::State &state)
{
    driver::SystemParams sp;
    sp.arenaBytes = 16 << 20;
    driver::System sys(sp);
    auto arr = sys.alloc("A", 1 << 16, 8, true);
    for (std::uint64_t i = 0; i < arr.count; ++i)
        arr.setF(i, 1.0);
    const compiler::Kernel kernel = makeStencilKernel();
    driver::RunConfig cfg;
    cfg.model = driver::ArchModel::DistDA_IO;
    driver::ExecContext ctx(sys, cfg);
    for (auto _ : state)
        ctx.invoke(kernel, {arr}, {});
    state.SetItemsProcessed(state.iterations() * (1 << 10));
}
BENCHMARK(BM_EngineInvoke);

void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    // Submit/drain overhead of the sweep executor's pool; one sweep
    // job costs milliseconds-to-seconds, so dispatch must stay micro.
    driver::ThreadPool pool(2);
    std::atomic<int> done{0};
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            pool.submit([&done] {
                done.fetch_add(1, std::memory_order_relaxed);
            });
        }
        pool.wait();
    }
    benchmark::DoNotOptimize(done.load());
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolDispatch);

} // namespace

BENCHMARK_MAIN();
