/**
 * @file
 * Figure 11 reproduction: (a) normalized rate of memory operations and
 * IPC, (b) speedup over the OoO baseline. The paper reports Dist-DA-F
 * at a GM speedup of 1.59x vs OoO, 1.43x vs Mono-CA and 1.65x vs
 * Mono-DA-IO.
 */

#include "bench/bench_common.hh"

using namespace distda;
using driver::ArchModel;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    const auto models = driver::headlineModels();
    bench::Sweep sweep(models, opts);

    std::printf("== Figure 11a: normalized memory-operation rate ==\n");
    bench::printModelHeader(models);
    for (const std::string &w : sweep.workloads()) {
        const auto &base = sweep.at(w, ArchModel::OoO);
        std::vector<double> cells;
        for (ArchModel m : models)
            cells.push_back(sweep.at(w, m).memOpRate() /
                            base.memOpRate());
        bench::printRow(w, cells);
    }

    std::printf("\n== Figure 11a: normalized IPC ==\n");
    bench::printModelHeader(models);
    for (const std::string &w : sweep.workloads()) {
        const auto &base = sweep.at(w, ArchModel::OoO);
        std::vector<double> cells;
        for (ArchModel m : models)
            cells.push_back(sweep.at(w, m).ipc() / base.ipc());
        bench::printRow(w, cells);
    }

    std::printf("\n== Figure 11b: speedup vs OoO ==\n");
    bench::printModelHeader(models);
    std::map<ArchModel, std::vector<double>> per_model;
    for (const std::string &w : sweep.workloads()) {
        const auto &base = sweep.at(w, ArchModel::OoO);
        std::vector<double> cells;
        for (ArchModel m : models) {
            const double s = sweep.at(w, m).speedupVs(base);
            cells.push_back(s);
            per_model[m].push_back(s);
        }
        bench::printRow(w, cells);
    }
    std::vector<double> gm;
    for (ArchModel m : models)
        gm.push_back(driver::geomean(per_model[m]));
    bench::printRow("geomean", gm);

    std::printf("\nDist-DA-F speedup: %.2fx vs OoO (paper 1.59x), "
                "%.2fx vs Mono-CA (paper 1.43x), %.2fx vs Mono-DA-IO "
                "(paper 1.65x)\n",
                gm[5], gm[5] / gm[1], gm[5] / gm[2]);
    return 0;
}
