/**
 * @file
 * §VI-E area reproduction: accelerator area overheads at 32nm.
 * Paper: in-order-core option 1.9% of one L3 cluster (0.3% of chip);
 * 5x5 CGRA with buffers and ACP 2.9% per cluster (0.48% of chip).
 */

#include <cstdio>

#include "src/cgra/cgra.hh"

using namespace distda;

int
main()
{
    const cgra::AreaModel area;
    const cgra::CgraParams small;
    const cgra::CgraParams large = cgra::CgraParams::large();

    const double io = area.ioAcceleratorMm2();
    const double f5 = area.cgraAcceleratorMm2(small);
    const double f8 = area.cgraAcceleratorMm2(large);

    std::printf("== Accelerator area overheads (32nm) ==\n");
    std::printf("%-28s%10s%12s%12s\n", "accelerator", "mm^2",
                "% cluster", "% chip");
    std::printf("%-28s%10.4f%11.2f%%%11.2f%%   (paper 1.9%% / 0.3%%)\n",
                "in-order core + buf + ACP", io,
                100.0 * area.clusterFraction(io),
                100.0 * area.chipFraction(io));
    std::printf("%-28s%10.4f%11.2f%%%11.2f%%   (paper 2.9%% / 0.48%%)\n",
                "5x5 CGRA + buf + ACP", f5,
                100.0 * area.clusterFraction(f5),
                100.0 * area.chipFraction(f5));
    std::printf("%-28s%10.4f%11.2f%%%11.2f%%\n",
                "8x8 CGRA + buf + ACP (Mono)", f8,
                100.0 * area.clusterFraction(f8),
                100.0 * area.chipFraction(f8, 1));
    return 0;
}
