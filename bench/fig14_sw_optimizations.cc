/**
 * @file
 * Figure 14 reproduction: software optimizations on the Dist-DA model,
 * normalized to Dist-DA-IO.
 *  - Dist-DA-IO+SW: 4-issue in-order cores with compiler-inserted
 *    software prefetches (helps indirect-access benchmarks, most
 *    prominently pca and pr);
 *  - Dist-DA-F+A: data-structure allocation customized for
 *    intra-cluster locality (minor gains — innermost-loop offloads
 *    already have intra-cluster locality most of the time).
 */

#include "bench/bench_common.hh"

using namespace distda;
using driver::ArchModel;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    const std::vector<ArchModel> models = {
        ArchModel::DistDA_IO, ArchModel::DistDA_IO_SW,
        ArchModel::DistDA_F, ArchModel::DistDA_F_A};
    bench::Sweep sweep(models, opts);

    std::printf("== Figure 14: software optimizations "
                "(normalized to Dist-DA-IO / Dist-DA-F) ==\n");
    std::printf("%-14s%14s%14s%14s%14s\n", "benchmark", "+SW spd",
                "+SW eff", "+A spd", "+A eff");
    std::vector<double> sw_s, sw_e, a_s, a_e;
    for (const std::string &w : sweep.workloads()) {
        const auto &io = sweep.at(w, ArchModel::DistDA_IO);
        const auto &sw = sweep.at(w, ArchModel::DistDA_IO_SW);
        const auto &f = sweep.at(w, ArchModel::DistDA_F);
        const auto &fa = sweep.at(w, ArchModel::DistDA_F_A);
        const double s1 = io.timeNs / sw.timeNs;
        const double e1 = io.totalEnergyPj / sw.totalEnergyPj;
        const double s2 = f.timeNs / fa.timeNs;
        const double e2 = f.totalEnergyPj / fa.totalEnergyPj;
        std::printf("%-14s%14.3f%14.3f%14.3f%14.3f\n", w.c_str(), s1,
                    e1, s2, e2);
        sw_s.push_back(s1);
        sw_e.push_back(e1);
        a_s.push_back(s2);
        a_e.push_back(e2);
    }
    std::printf("%-14s%14.3f%14.3f%14.3f%14.3f\n", "geomean",
                driver::geomean(sw_s), driver::geomean(sw_e),
                driver::geomean(a_s), driver::geomean(a_e));
    return 0;
}
