/**
 * @file
 * Perf-regression baseline recorder: times the fixed quick-sweep job
 * list (every workload x every headline configuration, --quick scale)
 * on the driver's sweep engine and writes BENCH_<label>.json with
 * per-run wall-clock, simulated time and simulation rate, plus enough
 * host/build info to judge whether two records are comparable.
 *
 * scripts/perf_check.sh compares such a record against the committed
 * baseline (BENCH_seed.json) and fails on wall-clock regressions
 * beyond its tolerance band.
 *
 * Flags (besides the common bench flags):
 *   --label=<name>  record label; output file BENCH_<label>.json
 *   --out=<dir>     output directory (default .)
 *   --seq=<n>       baseline sequence number (default 0); committed
 *                   records carry the PR number so perf_check.sh can
 *                   pick the most recent one as its reference
 *
 * Timing defaults to --jobs=1 so records are comparable across
 * machines with different core counts; pass --jobs explicitly to
 * measure parallel throughput instead.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "src/driver/config.hh"
#include "src/driver/sweep.hh"

namespace
{

using namespace distda;

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opts = bench::parseOptions(argc, argv);
    opts.run.scale = 0.25; // fixed quick scale: records must compare
    opts.sweep.quietRuns = true;

    std::string label = "local";
    std::string out_dir = ".";
    long long seq = 0;
    bool jobs_given = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--label=", 8) == 0)
            label = argv[i] + 8;
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out_dir = argv[i] + 6;
        else if (std::strncmp(argv[i], "--seq=", 6) == 0)
            seq = driver::parseInt(argv[i] + 6, "--seq");
        else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            jobs_given = true;
    }
    if (!jobs_given)
        opts.sweep.jobs = 1;

    setInformEnabled(false);

    std::vector<driver::SweepJob> jobs;
    for (const std::string &w : workloads::workloadNames()) {
        for (driver::ArchModel m : driver::headlineModels()) {
            driver::SweepJob job;
            job.workload = w;
            job.config.model = m;
            job.options = opts.run;
            jobs.push_back(job);
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto results = driver::runSweep(jobs, opts.sweep);
    const double total_wall_ms = wallMsSince(t0);
    driver::dieOnFailures(results);

    double sim_ns_total = 0.0;
    double job_wall_ms_total = 0.0;
    double plan_hits = 0.0;
    double plan_misses = 0.0;
    double plan_compile_ms = 0.0;
    double plan_saved_ms = 0.0;
    for (const auto &r : results) {
        sim_ns_total += r.metrics.timeNs;
        job_wall_ms_total += r.wallMs;
        plan_hits += r.metrics.planCacheHits;
        plan_misses += r.metrics.planCacheMisses;
        plan_compile_ms += r.metrics.planCompileMs;
        plan_saved_ms += r.metrics.planCompileMsSaved;
    }

    const std::string path = out_dir + "/BENCH_" + label + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write %s", path.c_str());

    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"label\": \"%s\",\n", label.c_str());
    std::fprintf(f, "  \"scale\": %.3f,\n", opts.run.scale);
    std::fprintf(f, "  \"jobs\": %d,\n", opts.sweep.jobs);
    std::fprintf(f, "  \"seq\": %lld,\n", seq);
    std::fprintf(f, "  \"host\": {\n");
    std::fprintf(f, "    \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "    \"compiler\": \"%s\",\n", __VERSION__);
#ifdef NDEBUG
    std::fprintf(f, "    \"build\": \"release\"\n");
#else
    std::fprintf(f, "    \"build\": \"debug\"\n");
#endif
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"total_wall_ms\": %.1f,\n", total_wall_ms);
    std::fprintf(f, "  \"job_wall_ms_total\": %.1f,\n",
                 job_wall_ms_total);
    std::fprintf(f, "  \"sim_ns_total\": %.0f,\n", sim_ns_total);
    // Compile amortization across the matrix: one miss per distinct
    // (kernel, options), every other job hits the shared PlanCache.
    std::fprintf(f,
                 "  \"plan_cache\": {\"hits\": %.0f, \"misses\": %.0f, "
                 "\"compile_ms\": %.2f, \"compile_ms_saved\": %.2f},\n",
                 plan_hits, plan_misses, plan_compile_ms,
                 plan_saved_ms);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::fprintf(f,
                     "    {\"workload\": \"%s\", \"config\": \"%s\", "
                     "\"wall_ms\": %.2f, \"sim_ns\": %.0f, "
                     "\"sim_rate\": %.1f}%s\n",
                     r.workload.c_str(), r.label.c_str(), r.wallMs,
                     r.metrics.timeNs, r.metrics.simRate(),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);

    std::printf("%zu runs in %.0f ms (%.0f ms of worker time) -> %s\n",
                results.size(), total_wall_ms, job_wall_ms_total,
                path.c_str());
    return 0;
}
