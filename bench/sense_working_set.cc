/**
 * @file
 * §VI-E working-set sensitivity: fdtd-2d grown past the 2MB LLC. The
 * paper grows 5.8MB to 1.11GB and finds delay/energy dominated by
 * memory, with Dist-DA still cutting on-chip data movement 2.5x for a
 * 9.5% energy edge over the Mono-DA baseline. We sweep to the largest
 * size that fits the build machine (--paper extends the sweep).
 */

#include "bench/bench_common.hh"

using namespace distda;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    setInformEnabled(false);

    std::vector<double> sizes = {0.5, 1.0, 2.0, 4.0};
    if (opts.run.scale >= 2.0)
        sizes.push_back(8.0); // --paper: ~680MB working set

    // Two jobs (Mono-DA-IO, Dist-DA-F) per working-set size.
    std::vector<driver::SweepJob> jobs;
    for (double s : sizes) {
        for (driver::ArchModel model :
             {driver::ArchModel::MonoDA_IO, driver::ArchModel::DistDA_F}) {
            driver::SweepJob job;
            job.workload = "fdt";
            job.config.model = model;
            job.options.scale = s;
            jobs.push_back(job);
        }
    }
    const auto results = driver::runSweep(jobs, opts.sweep);
    driver::dieOnFailures(results);

    std::printf("== fdtd-2d working-set sweep: Dist-DA-F vs Mono-DA-IO "
                "==\n");
    std::printf("%10s%12s%14s%14s%16s\n", "scale", "set(MB)",
                "energy-eff", "speedup", "onchip-move-x");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const double s = sizes[i];
        const driver::Metrics &mm = results[2 * i].metrics;
        const driver::Metrics &dm = results[2 * i + 1].metrics;

        // On-chip data movement excludes the DRAM interface bytes.
        auto onchip = [](const driver::Metrics &m) {
            const double dram_bytes =
                m.energyByComponent.at("dram") / 18000.0 * 64.0;
            return std::max(m.dataMovementBytes - dram_bytes, 1.0);
        };
        const double n = 192.0 * s;
        std::printf("%10.2f%12.1f%14.3f%14.3f%16.2f\n", s,
                    3.0 * n * n * 8.0 / 1e6,
                    mm.totalEnergyPj / dm.totalEnergyPj,
                    mm.timeNs / dm.timeNs, onchip(mm) / onchip(dm));
    }
    std::printf("\n(paper at 1.11GB: on-chip movement cut 2.5x, energy "
                "edge 9.5%% over Mono-DA)\n");
    return 0;
}
