#include "src/serve/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/sim/logging.hh"

namespace distda::serve
{

namespace
{

std::string
errnoMessage(const char *what)
{
    return strfmt("%s: %s", what, std::strerror(errno));
}

} // namespace

bool
ServeClient::connectUnix(const std::string &path, std::string &err)
{
    disconnect();
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + path;
        return false;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = errnoMessage("socket");
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = errnoMessage(("connect " + path).c_str());
        ::close(fd);
        return false;
    }
    _fd = fd;
    _buf.clear();
    return true;
}

bool
ServeClient::connectTcp(const std::string &host, int port,
                        std::string &err)
{
    disconnect();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = errnoMessage("socket");
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    const std::string target = host.empty() ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1) {
        err = "bad address: " + target;
        ::close(fd);
        return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = errnoMessage(
            strfmt("connect %s:%d", target.c_str(), port).c_str());
        ::close(fd);
        return false;
    }
    _fd = fd;
    _buf.clear();
    return true;
}

void
ServeClient::disconnect()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    _buf.clear();
}

bool
ServeClient::sendLine(const std::string &line, std::string &err)
{
    if (_fd < 0) {
        err = "not connected";
        return false;
    }
    std::string payload = line;
    payload += '\n';
    std::size_t off = 0;
    while (off < payload.size()) {
        // MSG_NOSIGNAL: a server that closed mid-send must surface as
        // EPIPE, not as a process-killing SIGPIPE.
        const ssize_t n =
            ::send(_fd, payload.data() + off, payload.size() - off,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            err = errnoMessage("send");
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
ServeClient::recvLine(std::string &line, std::string &err,
                      int timeout_ms)
{
    if (_fd < 0) {
        err = "not connected";
        return false;
    }
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(
                           timeout_ms < 0 ? 0 : timeout_ms);
    while (true) {
        const std::size_t nl = _buf.find('\n');
        if (nl != std::string::npos) {
            line.assign(_buf, 0, nl);
            _buf.erase(0, nl + 1);
            return true;
        }
        if (timeout_ms >= 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            if (left <= 0) {
                err = "timed out waiting for response";
                return false;
            }
            pollfd pfd{_fd, POLLIN, 0};
            const int pr =
                ::poll(&pfd, 1, static_cast<int>(left));
            if (pr < 0 && errno != EINTR) {
                err = errnoMessage("poll");
                return false;
            }
            if (pr <= 0)
                continue;
        }
        char chunk[4096];
        const ssize_t n = ::recv(_fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            err = errnoMessage("recv");
            return false;
        }
        if (n == 0) {
            err = "connection closed by server";
            return false;
        }
        _buf.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
ServeClient::request(const std::string &line, std::string &response,
                     std::string &err, int timeout_ms)
{
    return sendLine(line, err) && recvLine(response, err, timeout_ms);
}

} // namespace distda::serve
