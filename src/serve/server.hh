/**
 * @file
 * The offload-as-a-service daemon core (tools/distda_serve is a thin
 * CLI over this class). The paper's economics — compile once, invoke
 * cheaply — only pay off across many offload requests, so the server
 * turns the one-shot driver into a long-lived service:
 *
 *  - listens on a Unix-domain or loopback-TCP stream socket;
 *  - an accept thread admits connections up to a bound, each driven by
 *    a lightweight reader thread (cheap: blocked on poll between
 *    requests), while the simulation work itself is scheduled on the
 *    shared sweep ThreadPool — so `jobs` bounds concurrent *runs*, and
 *    idle connections never starve active ones;
 *  - each request line is parsed with the strict sim::json parser,
 *    validated against the serve protocol schema, executed via
 *    driver::runWorkload — plans resolve through the process-wide
 *    PlanCache, so the first request per (kernel, config) fingerprint
 *    compiles and every later one reuses the cached plan — and the
 *    run-report JSON is streamed back as the response;
 *  - failures are per-request: malformed JSON, schema violations,
 *    oversized or timed-out requests, unknown workloads and
 *    simulation fatal()s (captured per-thread via
 *    ScopedFailureCapture, exactly like sweep failure isolation) all
 *    produce an error reply on the same connection and never
 *    terminate the daemon. A client disconnecting mid-response is
 *    counted and survived (sends use MSG_NOSIGNAL; the CLI also
 *    ignores SIGPIPE process-wide).
 *
 * Shutdown is a drain: stop() (or SIGINT/SIGTERM via
 * installSignalHandlers) stops accepting, lets every in-flight
 * request finish and flush its response, closes idle connections, and
 * returns. Connections accepted but never served during the drain are
 * closed without a reply.
 */

#ifndef DISTDA_SERVE_SERVER_HH
#define DISTDA_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/protocol.hh"

namespace distda::driver
{
class ThreadPool;
}

namespace distda::serve
{

/** Daemon configuration. */
struct ServeOptions
{
    /** Unix-domain socket path; preferred transport when non-empty. */
    std::string socketPath;
    /**
     * Loopback TCP port; used when socketPath is empty. 0 binds an
     * ephemeral port (read it back from Server::port()); < 0 means
     * no TCP listener.
     */
    int tcpPort = -1;
    /**
     * Concurrent simulation runs (sweep ThreadPool size); <= 0 means
     * driver::defaultJobCount(). Connections beyond this still make
     * progress — their requests queue FIFO for a pool worker.
     */
    int jobs = 0;
    /** listen(2) backlog. */
    int backlog = 64;
    /**
     * Admission bound on concurrently held connections (serving or
     * queued for a worker). Beyond it a connection is answered with a
     * "busy" error reply and closed immediately, so overload degrades
     * into fast rejections instead of unbounded queueing.
     */
    int maxConnections = 256;
    /** Request lines longer than this get an "oversize" error reply. */
    std::size_t maxRequestBytes = 1 << 20;
    /**
     * Once the first byte of a request line has arrived, the rest
     * must follow within this budget or the connection gets a
     * "timeout" error reply and is closed. A connection idling
     * *between* requests is fine indefinitely.
     */
    int requestTimeoutMs = 30'000;
    /** Upper bound on the per-request "scale" knob. */
    double maxScale = 4.0;
};

/** Long-lived offload service. */
class Server
{
  public:
    explicit Server(const ServeOptions &opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen and start the accept thread + worker pool.
     * fatal() on unusable options (bad socket path, port in use).
     */
    void start();

    /**
     * Drain and shut down: stop accepting, finish in-flight requests,
     * join everything. Idempotent; safe from any thread except a
     * worker's own connection handler.
     */
    void stop();

    /** Block until a stop was requested (signal or stop()). */
    void waitUntilStopRequested();

    /** Resolved TCP port (after start(); -1 when Unix-only). */
    int port() const { return _port; }

    /** Cumulative service counters. */
    struct Stats
    {
        std::uint64_t accepted = 0;  ///< connections admitted
        std::uint64_t busyRejected = 0;
        std::uint64_t served = 0;    ///< successful run replies
        std::uint64_t errors = 0;    ///< error replies sent
        std::uint64_t disconnects = 0; ///< clients lost mid-stream
    };

    Stats stats() const;

    /**
     * Ignore SIGPIPE process-wide and route SIGINT/SIGTERM to a
     * graceful drain of @p server (stop accepting, finish in-flight
     * requests, wake waitUntilStopRequested). One server per process.
     */
    static void installSignalHandlers(Server &server);

  private:
    enum class ReadStatus
    {
        Line,     ///< a complete request line was read
        Eof,      ///< clean close (or error) from the client
        Stopped,  ///< server is draining
        Oversize, ///< line exceeded maxRequestBytes
        Timeout,  ///< partial line stalled past requestTimeoutMs
    };

    /** Per-connection receive state. */
    struct Conn
    {
        int fd = -1;
        std::string buf; ///< bytes past the last extracted line
    };

    void acceptLoop();
    void handleConnection(int fd);
    ReadStatus readRequestLine(Conn &conn, std::string &line);
    std::string processRequest(const std::string &line);
    /** Run processRequest on a pool worker; park the reader thread. */
    std::string processOnPool(const std::string &line);
    bool sendLine(int fd, const std::string &line);
    void requestStop();

    ServeOptions _opts;
    int _listenFd = -1;
    int _port = -1;
    int _wakePipe[2] = {-1, -1};

    std::unique_ptr<driver::ThreadPool> _pool;
    std::thread _acceptThread;
    std::mutex _connMu;
    std::vector<std::thread> _connThreads;

    std::atomic<bool> _stopping{false};
    std::atomic<int> _activeConns{0};
    bool _started = false;
    bool _stopped = false;

    mutable std::mutex _mu;
    std::condition_variable _cv;
    bool _stopRequested = false;

    std::atomic<std::uint64_t> _accepted{0};
    std::atomic<std::uint64_t> _busyRejected{0};
    std::atomic<std::uint64_t> _served{0};
    std::atomic<std::uint64_t> _errors{0};
    std::atomic<std::uint64_t> _disconnects{0};
};

} // namespace distda::serve

#endif // DISTDA_SERVE_SERVER_HH
