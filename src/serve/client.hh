/**
 * @file
 * Minimal blocking client for the offload service: connect to a Unix
 * or loopback-TCP daemon, send newline-delimited request lines and
 * read newline-delimited responses. Used by tools/distda_load, the
 * serve tests, and anything else that wants to poke the daemon
 * in-process. All methods report failures through an out-parameter
 * message instead of fatal(): a dead or misbehaving server must never
 * take the client process down.
 */

#ifndef DISTDA_SERVE_CLIENT_HH
#define DISTDA_SERVE_CLIENT_HH

#include <string>

namespace distda::serve
{

/** One blocking connection to a serve daemon. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient() { disconnect(); }

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to a Unix-domain socket at @p path. */
    bool connectUnix(const std::string &path, std::string &err);

    /** Connect to TCP @p host:@p port (host empty = 127.0.0.1). */
    bool connectTcp(const std::string &host, int port, std::string &err);

    bool connected() const { return _fd >= 0; }
    void disconnect();

    /** Send one request line (newline appended). */
    bool sendLine(const std::string &line, std::string &err);

    /**
     * Read one response line (newline stripped). @p timeout_ms < 0
     * blocks indefinitely; on timeout, EOF or error returns false
     * with a message.
     */
    bool recvLine(std::string &line, std::string &err,
                  int timeout_ms = -1);

    /** sendLine + recvLine in one step. */
    bool request(const std::string &line, std::string &response,
                 std::string &err, int timeout_ms = -1);

    /** Raw fd for tests that want to misbehave on purpose. */
    int fd() const { return _fd; }

  private:
    int _fd = -1;
    std::string _buf; ///< bytes past the last returned line
};

} // namespace distda::serve

#endif // DISTDA_SERVE_CLIENT_HH
