#include "src/serve/protocol.hh"

#include <cmath>

#include "src/sim/json.hh"
#include "src/sim/logging.hh"

namespace distda::serve
{

namespace
{

/** Fail with a message naming the offending member. */
bool
schemaError(std::string &err, const std::string &what)
{
    err = what;
    return false;
}

bool
wantBool(const sim::JsonValue &v, const std::string &key, bool &out,
         std::string &err)
{
    if (v.kind != sim::JsonValue::Kind::Bool)
        return schemaError(err, "member '" + key + "' must be a boolean");
    out = v.b;
    return true;
}

bool
wantNumber(const sim::JsonValue &v, const std::string &key, double &out,
           std::string &err)
{
    if (!v.isNumber())
        return schemaError(err, "member '" + key + "' must be a number");
    out = v.num;
    return true;
}

bool
wantCount(const sim::JsonValue &v, const std::string &key,
          std::uint64_t &out, std::string &err)
{
    double num = 0.0;
    if (!wantNumber(v, key, num, err))
        return false;
    if (num < 0.0 || num != std::floor(num) || num > 1e18) {
        return schemaError(err, "member '" + key +
                                    "' must be a non-negative integer");
    }
    out = static_cast<std::uint64_t>(num);
    return true;
}

/** Parse the "config" member (object, or model-name shorthand). */
bool
parseConfig(const sim::JsonValue &v, driver::RunConfig &cfg,
            std::string &err)
{
    if (v.isString()) {
        // Shorthand: just the architecture model name.
        try {
            ScopedFailureCapture capture;
            cfg.model = driver::parseArchModel(v.str);
        } catch (const SimFailure &e) {
            return schemaError(err, e.what());
        }
        return true;
    }
    if (!v.isObject())
        return schemaError(
            err, "member 'config' must be an object or a model name");

    bool have_model = false;
    for (const auto &[key, member] : v.obj) {
        if (key == "model") {
            if (!member.isString())
                return schemaError(err,
                                   "member 'model' must be a string");
            try {
                ScopedFailureCapture capture;
                cfg.model = driver::parseArchModel(member.str);
            } catch (const SimFailure &e) {
                return schemaError(err, e.what());
            }
            have_model = true;
        } else if (key == "ghz") {
            double ghz = 0.0;
            if (!wantNumber(member, key, ghz, err))
                return false;
            if (ghz < 0.0 || ghz > 100.0)
                return schemaError(err, "member 'ghz' out of range");
            cfg.accelGHz = ghz;
        } else if (key == "no_combining") {
            if (!wantBool(member, key, cfg.disableCombining, err))
                return false;
        } else if (key == "no_retention") {
            if (!wantBool(member, key, cfg.disableRetention, err))
                return false;
        } else if (key == "buffer_bytes") {
            std::uint64_t bytes = 0;
            if (!wantCount(member, key, bytes, err))
                return false;
            if (bytes > (1ULL << 32))
                return schemaError(err,
                                   "member 'buffer_bytes' out of range");
            cfg.bufferBytesOverride =
                static_cast<std::uint32_t>(bytes);
        } else if (key == "channel_capacity") {
            std::uint64_t cap = 0;
            if (!wantCount(member, key, cap, err))
                return false;
            if (cap > (1ULL << 20))
                return schemaError(
                    err, "member 'channel_capacity' out of range");
            cfg.channelCapacityOverride = static_cast<int>(cap);
        } else if (key == "plan_cache") {
            if (!wantBool(member, key, cfg.planCache, err))
                return false;
        } else {
            return schemaError(err,
                               "unknown config member '" + key + "'");
        }
    }
    if (!have_model)
        return schemaError(err, "config is missing required 'model'");
    return true;
}

} // namespace

bool
parseServeRequest(const std::string &line, ServeRequest &out,
                  std::string &err)
{
    out = ServeRequest{};
    sim::JsonValue doc;
    if (!sim::tryParseJson(line, doc, err))
        return false;
    if (!doc.isObject())
        return schemaError(err, "request must be a JSON object");

    // Pull the id first so schema errors can echo it.
    if (const sim::JsonValue *id = doc.find("id")) {
        if (!wantCount(*id, "id", out.id, err))
            return false;
    }

    bool have_workload = false, have_config = false;
    for (const auto &[key, member] : doc.obj) {
        if (key == "id") {
            continue; // handled above
        } else if (key == "workload") {
            if (!member.isString())
                return schemaError(
                    err, "member 'workload' must be a string");
            out.workload = member.str;
            have_workload = true;
        } else if (key == "config") {
            if (!parseConfig(member, out.config, err))
                return false;
            have_config = true;
        } else if (key == "scale") {
            if (!wantNumber(member, key, out.scale, err))
                return false;
            if (!std::isfinite(out.scale) || out.scale <= 0.0)
                return schemaError(err, "member 'scale' must be > 0");
        } else if (key == "probe") {
            if (!wantBool(member, key, out.probe, err))
                return false;
        } else {
            return schemaError(err,
                               "unknown request member '" + key + "'");
        }
    }
    if (!have_workload)
        return schemaError(err, "request is missing required 'workload'");
    if (!have_config)
        return schemaError(err, "request is missing required 'config'");
    return true;
}

std::string
buildRequestLine(const ServeRequest &req)
{
    sim::JsonWriter w;
    w.beginObject();
    w.key("id").value(req.id);
    w.key("workload").value(req.workload);
    w.key("config").beginObject();
    w.key("model").value(driver::archModelName(req.config.model));
    w.key("ghz").value(req.config.accelGHz);
    w.key("no_combining").value(req.config.disableCombining);
    w.key("no_retention").value(req.config.disableRetention);
    w.key("buffer_bytes")
        .value(static_cast<std::uint64_t>(req.config.bufferBytesOverride));
    w.key("channel_capacity")
        .value(static_cast<std::int64_t>(
            req.config.channelCapacityOverride));
    w.key("plan_cache").value(req.config.planCache);
    w.endObject();
    w.key("scale").value(req.scale);
    w.key("probe").value(req.probe);
    w.endObject();
    return w.str();
}

std::string
buildErrorResponse(std::uint64_t id, const char *kind,
                   const std::string &message)
{
    sim::JsonWriter w;
    w.beginObject();
    w.key("id").value(id);
    w.key("ok").value(false);
    w.key("kind").value(kind);
    w.key("error").value(message);
    w.endObject();
    return w.str();
}

std::string
buildRunResponse(const ServeRequest &req,
                 const driver::Metrics &metrics,
                 const std::string &report, double run_ms,
                 const compiler::PlanCache::Stats &cache)
{
    sim::JsonWriter w;
    w.beginObject();
    w.key("id").value(req.id);
    w.key("ok").value(true);
    w.key("workload").value(metrics.workload);
    w.key("config").value(metrics.config);
    w.key("service").beginObject();
    w.key("run_ms").value(run_ms);
    w.key("plan_cache_hits").value(metrics.planCacheHits);
    w.key("plan_cache_misses").value(metrics.planCacheMisses);
    w.endObject();
    w.key("server").beginObject();
    w.key("plan_cache").beginObject();
    w.key("hits").value(cache.hits);
    w.key("misses").value(cache.misses);
    w.key("evictions").value(cache.evictions);
    w.key("entries").value(static_cast<std::uint64_t>(cache.entries));
    w.key("capacity").value(static_cast<std::uint64_t>(cache.capacity));
    w.key("hit_rate").value(cache.hitRate());
    w.endObject();
    w.endObject();
    if (report.empty())
        w.key("report").nullValue();
    else
        w.key("report").rawValue(report);
    w.endObject();
    return w.str();
}

} // namespace distda::serve
