/**
 * @file
 * Wire protocol of the offload service (tools/distda_serve).
 *
 * Transport is newline-delimited JSON over a stream socket: a client
 * sends one request object per line and receives exactly one response
 * object per line, in order, on the same connection. The request is a
 * declarative description of one offload run — workload name plus a
 * RunConfig — in the spirit of DFI's flow/source/target API: the
 * client says *what* to run, the daemon owns scheduling, plan-cache
 * reuse and execution.
 *
 * Request schema (all keys optional unless marked required):
 *
 *   {
 *     "id": 7,                      // echoed in the response
 *     "workload": "fdt",            // required: Table IV name
 *     "config": {                   // required: object or model name
 *       "model": "Dist-DA-F",       // required: archModelName()
 *       "ghz": 1.0,                 // accel clock override (0=default)
 *       "no_combining": false,
 *       "no_retention": false,
 *       "buffer_bytes": 0,
 *       "channel_capacity": 0,
 *       "plan_cache": true
 *     },
 *     "scale": 0.25,                // problem-size multiplier
 *     "probe": false                // full report (timeline dists +
 *   }                               // analysis facts), costs more
 *
 * `"config": "Dist-DA-F"` is accepted as shorthand for an object with
 * only "model". Unknown keys anywhere are errors: a typo'd knob must
 * be a diagnostic, never a silently ignored default.
 *
 * Success response:
 *   { "id": 7, "ok": true, "workload": ..., "config": ...,
 *     "service": { "run_ms": ..., "plan_cache_hits": ...,
 *                  "plan_cache_misses": ... },
 *     "server": { "plan_cache": { hits/misses/entries/... } },
 *     "report": { <the --stats-json run report, verbatim> } }
 *
 * Error response (the daemon never dies on a bad request):
 *   { "id": 7, "ok": false, "kind": "parse|request|oversize|timeout|
 *     busy|run|shutdown", "error": "<position-annotated message>" }
 */

#ifndef DISTDA_SERVE_PROTOCOL_HH
#define DISTDA_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "src/compiler/plan_cache.hh"
#include "src/driver/config.hh"
#include "src/driver/metrics.hh"

namespace distda::serve
{

/** One parsed offload request. */
struct ServeRequest
{
    std::uint64_t id = 0;
    std::string workload;
    driver::RunConfig config;
    double scale = 1.0;
    bool probe = false;
};

/**
 * Parse one request line (strict sim::json underneath). On failure
 * returns false with a position-annotated message in @p err; @p out.id
 * is still filled when the document parsed far enough to name one, so
 * error replies can echo it.
 */
bool parseServeRequest(const std::string &line, ServeRequest &out,
                       std::string &err);

/** Serialize @p req as one request line (no trailing newline). */
std::string buildRequestLine(const ServeRequest &req);

/** Error reply of the given kind (no trailing newline). */
std::string buildErrorResponse(std::uint64_t id, const char *kind,
                               const std::string &message);

/**
 * Success reply embedding the (already serialized) run report
 * produced by driver::buildRunReport, plus per-request service
 * accounting and the daemon-wide plan-cache counters.
 */
std::string buildRunResponse(const ServeRequest &req,
                             const driver::Metrics &metrics,
                             const std::string &report, double run_ms,
                             const compiler::PlanCache::Stats &cache);

} // namespace distda::serve

#endif // DISTDA_SERVE_PROTOCOL_HH
