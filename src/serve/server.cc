#include "src/serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/driver/pool.hh"
#include "src/driver/runner.hh"
#include "src/driver/sweep.hh"
#include "src/sim/logging.hh"
#include "src/workloads/workload.hh"

namespace distda::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Poll slice so blocked reads notice a drain within ~100 ms. */
constexpr int kPollSliceMs = 100;

/** The one server signal handlers talk to (write-only wake pipe). */
std::atomic<int> g_signalWakeFd{-1};

extern "C" void
serveSignalHandler(int)
{
    // Async-signal-safe: one byte into the wake pipe; the accept
    // thread turns it into an orderly drain.
    const int fd = g_signalWakeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    }
}

} // namespace

Server::Server(const ServeOptions &opts) : _opts(opts)
{
    if (_opts.backlog < 1)
        _opts.backlog = 1;
    if (_opts.maxConnections < 0)
        _opts.maxConnections = 0;
    if (_opts.requestTimeoutMs < 1)
        _opts.requestTimeoutMs = 1;
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    DISTDA_ASSERT(!_started, "serve: start() called twice");
    _started = true;

    if (::pipe(_wakePipe) != 0)
        fatal("serve: pipe: %s", std::strerror(errno));

    if (!_opts.socketPath.empty()) {
        sockaddr_un addr{};
        if (_opts.socketPath.size() >= sizeof(addr.sun_path)) {
            fatal("serve: socket path too long: %s",
                  _opts.socketPath.c_str());
        }
        _listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (_listenFd < 0)
            fatal("serve: socket: %s", std::strerror(errno));
        // A stale socket file from a crashed daemon would fail bind;
        // a live one is a real conflict, surfaced by connect().
        ::unlink(_opts.socketPath.c_str());
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, _opts.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(_listenFd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            fatal("serve: bind %s: %s", _opts.socketPath.c_str(),
                  std::strerror(errno));
        }
    } else if (_opts.tcpPort >= 0) {
        _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (_listenFd < 0)
            fatal("serve: socket: %s", std::strerror(errno));
        const int one = 1;
        ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(_opts.tcpPort));
        if (::bind(_listenFd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            fatal("serve: bind 127.0.0.1:%d: %s", _opts.tcpPort,
                  std::strerror(errno));
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(_listenFd,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0) {
            _port = static_cast<int>(ntohs(bound.sin_port));
        }
    } else {
        fatal("serve: no listen address (need socketPath or tcpPort)");
    }

    if (::listen(_listenFd, _opts.backlog) != 0)
        fatal("serve: listen: %s", std::strerror(errno));

    const int workers =
        _opts.jobs > 0 ? _opts.jobs : driver::defaultJobCount();
    _pool = std::make_unique<driver::ThreadPool>(workers);
    _acceptThread = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    while (!_stopping.load(std::memory_order_acquire)) {
        pollfd fds[2] = {
            {_listenFd, POLLIN, 0},
            {_wakePipe[0], POLLIN, 0},
        };
        const int pr = ::poll(fds, 2, -1);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: accept poll: %s", std::strerror(errno));
            break;
        }
        if (fds[1].revents & POLLIN)
            break; // stop() or a signal: begin the drain
        if (!(fds[0].revents & POLLIN))
            continue;

        const int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno != EINTR && errno != ECONNABORTED)
                warn("serve: accept: %s", std::strerror(errno));
            continue;
        }
        if (_activeConns.load(std::memory_order_acquire) >=
            _opts.maxConnections) {
            // Bounded admission: overload turns into an immediate,
            // explicit rejection the client can retry against.
            _busyRejected.fetch_add(1, std::memory_order_relaxed);
            sendLine(fd, buildErrorResponse(
                             0, "busy",
                             strfmt("server at connection limit (%d)",
                                    _opts.maxConnections)));
            ::close(fd);
            continue;
        }
        _accepted.fetch_add(1, std::memory_order_relaxed);
        _activeConns.fetch_add(1, std::memory_order_acq_rel);
        // A reader thread per connection is cheap (blocked on poll
        // between requests); the simulation work itself is scheduled
        // on the shared pool, so idle connections never starve active
        // ones and `jobs` bounds concurrent runs, not connections.
        std::lock_guard<std::mutex> lk(_connMu);
        _connThreads.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
    requestStop();
}

Server::ReadStatus
Server::readRequestLine(Conn &conn, std::string &line)
{
    Clock::time_point first_byte{};
    bool mid_request = !conn.buf.empty();
    if (mid_request)
        first_byte = Clock::now();
    while (true) {
        const std::size_t nl = conn.buf.find('\n');
        if (nl != std::string::npos) {
            // A complete line over the limit is as oversized as one
            // still streaming in.
            if (nl > _opts.maxRequestBytes)
                return ReadStatus::Oversize;
            line.assign(conn.buf, 0, nl);
            conn.buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return ReadStatus::Line;
        }
        if (conn.buf.size() > _opts.maxRequestBytes)
            return ReadStatus::Oversize;
        if (_stopping.load(std::memory_order_acquire))
            return ReadStatus::Stopped;
        if (mid_request &&
            msSince(first_byte) >
                static_cast<double>(_opts.requestTimeoutMs))
            return ReadStatus::Timeout;

        pollfd pfd{conn.fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, kPollSliceMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return ReadStatus::Eof;
        }
        if (pr == 0)
            continue; // slice expired; re-check stop/timeout
        char chunk[4096];
        const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ReadStatus::Eof;
        }
        if (n == 0)
            return ReadStatus::Eof;
        if (!mid_request) {
            mid_request = true;
            first_byte = Clock::now();
        }
        conn.buf.append(chunk, static_cast<std::size_t>(n));
    }
}

std::string
Server::processRequest(const std::string &line)
{
    ServeRequest req;
    std::string err;
    if (!parseServeRequest(line, req, err)) {
        _errors.fetch_add(1, std::memory_order_relaxed);
        return buildErrorResponse(req.id, "parse", err);
    }
    if (!workloads::hasWorkload(req.workload)) {
        _errors.fetch_add(1, std::memory_order_relaxed);
        return buildErrorResponse(
            req.id, "request",
            "unknown workload '" + req.workload + "'");
    }
    if (req.scale > _opts.maxScale) {
        _errors.fetch_add(1, std::memory_order_relaxed);
        return buildErrorResponse(
            req.id, "request",
            strfmt("scale %g exceeds server limit %g", req.scale,
                   _opts.maxScale));
    }

    std::string report;
    driver::RunOptions run_opts;
    run_opts.scale = req.scale;
    run_opts.obs.reportOut = &report;
    run_opts.obs.forceProbe = req.probe;

    driver::Metrics metrics;
    const auto t0 = Clock::now();
    try {
        // Same isolation as a sweep job: a fatal()/panic() inside the
        // simulation fails this request, not the daemon.
        ScopedFailureCapture capture;
        metrics =
            driver::runWorkload(req.workload, req.config, run_opts);
    } catch (const SimFailure &e) {
        _errors.fetch_add(1, std::memory_order_relaxed);
        return buildErrorResponse(req.id, "run", e.what());
    } catch (const std::exception &e) {
        _errors.fetch_add(1, std::memory_order_relaxed);
        return buildErrorResponse(req.id, "run", e.what());
    }
    const double run_ms = msSince(t0);

    _served.fetch_add(1, std::memory_order_relaxed);
    return buildRunResponse(req, metrics, report, run_ms,
                            compiler::PlanCache::process().stats());
}

std::string
Server::processOnPool(const std::string &line)
{
    // The reader thread parks here while a pool worker runs the
    // request; everything lives on this stack frame, and the wait
    // below keeps it alive until the worker is done with it.
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::string response;
    _pool->submit([&] {
        std::string r = processRequest(line);
        std::lock_guard<std::mutex> lk(m);
        response = std::move(r);
        done = true;
        cv.notify_one();
    });
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done; });
    return response;
}

bool
Server::sendLine(int fd, const std::string &line)
{
    std::string payload = line;
    payload += '\n';
    std::size_t off = 0;
    while (off < payload.size()) {
        // MSG_NOSIGNAL: a client gone mid-response must be an EPIPE
        // we count, never a SIGPIPE that kills the daemon.
        const ssize_t n =
            ::send(fd, payload.data() + off, payload.size() - off,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void
Server::handleConnection(int fd)
{
    Conn conn;
    conn.fd = fd;
    while (!_stopping.load(std::memory_order_acquire)) {
        std::string line;
        const ReadStatus rs = readRequestLine(conn, line);
        if (rs == ReadStatus::Eof || rs == ReadStatus::Stopped)
            break;
        if (rs == ReadStatus::Oversize) {
            _errors.fetch_add(1, std::memory_order_relaxed);
            sendLine(fd,
                     buildErrorResponse(
                         0, "oversize",
                         strfmt("request exceeds %zu bytes",
                                _opts.maxRequestBytes)));
            break; // the rest of the oversized line is unrecoverable
        }
        if (rs == ReadStatus::Timeout) {
            _errors.fetch_add(1, std::memory_order_relaxed);
            sendLine(fd,
                     buildErrorResponse(
                         0, "timeout",
                         strfmt("request not completed within %d ms",
                                _opts.requestTimeoutMs)));
            break;
        }
        if (line.empty())
            continue; // tolerate keep-alive blank lines
        const std::string response = processOnPool(line);
        if (!sendLine(fd, response)) {
            _disconnects.fetch_add(1, std::memory_order_relaxed);
            break;
        }
    }
    ::close(fd);
    _activeConns.fetch_sub(1, std::memory_order_acq_rel);
}

void
Server::requestStop()
{
    _stopping.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lk(_mu);
    _stopRequested = true;
    _cv.notify_all();
}

void
Server::waitUntilStopRequested()
{
    std::unique_lock<std::mutex> lk(_mu);
    _cv.wait(lk, [this] { return _stopRequested; });
}

void
Server::stop()
{
    if (!_started || _stopped)
        return;
    _stopped = true;

    _stopping.store(true, std::memory_order_release);
    {
        const char byte = 'q';
        [[maybe_unused]] const ssize_t n =
            ::write(_wakePipe[1], &byte, 1);
    }
    if (_acceptThread.joinable())
        _acceptThread.join();

    // No new connections can arrive now. Reader threads notice
    // _stopping within a poll slice; ones with a request in flight
    // wait for their pool worker (still alive below), flush the
    // response and exit — the drain loses no accepted request.
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lk(_connMu);
        readers.swap(_connThreads);
    }
    for (std::thread &t : readers)
        t.join();
    _pool.reset();

    if (_listenFd >= 0) {
        ::close(_listenFd);
        _listenFd = -1;
    }
    if (!_opts.socketPath.empty())
        ::unlink(_opts.socketPath.c_str());
    for (int &fd : _wakePipe) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    g_signalWakeFd.store(-1, std::memory_order_relaxed);
    requestStop(); // wake any waitUntilStopRequested() caller
}

Server::Stats
Server::stats() const
{
    Stats s;
    s.accepted = _accepted.load(std::memory_order_relaxed);
    s.busyRejected = _busyRejected.load(std::memory_order_relaxed);
    s.served = _served.load(std::memory_order_relaxed);
    s.errors = _errors.load(std::memory_order_relaxed);
    s.disconnects = _disconnects.load(std::memory_order_relaxed);
    return s;
}

void
Server::installSignalHandlers(Server &server)
{
    DISTDA_ASSERT(server._wakePipe[1] >= 0,
                  "serve: install handlers after start()");
    g_signalWakeFd.store(server._wakePipe[1],
                         std::memory_order_relaxed);

    // A client that vanishes mid-write must surface as EPIPE on the
    // write path, not as a process-terminating SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);

    struct sigaction sa = {};
    sa.sa_handler = serveSignalHandler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: poll() must wake
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

} // namespace distda::serve
