#include "src/driver/context.hh"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "src/compiler/plan_cache.hh"
#include "src/compiler/plan_io.hh"
#include "src/sim/logging.hh"
#include "src/sim/probe.hh"

namespace distda::driver
{

ExecContext::ExecContext(System &sys, const RunConfig &config,
                         sim::Probe *probe)
    : _sys(sys), _config(config), _probe(probe),
      _hostClock(2'000'000'000ULL)
{
}

ExecContext::~ExecContext() = default;

std::shared_ptr<const compiler::OffloadPlan>
ExecContext::acquirePlan(const compiler::Kernel &kernel)
{
    const compiler::CompileOptions opts = _config.compileOptions();
    const std::string fp = compiler::planFingerprint(kernel, opts);
    std::shared_ptr<const compiler::OffloadPlan> plan;
    std::string artifact;

    if (!_config.planDir.empty()) {
        artifact = _config.planDir + "/" +
                   compiler::planArtifactFile(kernel.name, fp);
        if (std::ifstream(artifact).good()) {
            auto loaded = std::make_shared<compiler::OffloadPlan>(
                compiler::loadPlan(artifact));
            if (loaded->fingerprint != fp) {
                fatal("plan artifact %s: fingerprint %s does not "
                      "match expected %s (stale artifact?)",
                      artifact.c_str(), loaded->fingerprint.c_str(),
                      fp.c_str());
            }
            const std::string defect =
                compiler::validatePlanArtifact(*loaded);
            if (!defect.empty()) {
                fatal("plan artifact %s: %s", artifact.c_str(),
                      defect.c_str());
            }
            plan = std::move(loaded);
            _planHits += 1.0;
            if (_config.planCache)
                compiler::PlanCache::process().insert(plan);
        }
    }

    if (!plan) {
        if (_config.planCache) {
            compiler::PlanCache::Lookup res =
                compiler::PlanCache::process().getOrCompile(kernel,
                                                            opts);
            plan = res.plan;
            if (res.hit)
                _planHits += 1.0;
            else
                _planMisses += 1.0;
            _planCompileMs += res.compileMs;
            _planSavedMs += res.savedMs;
        } else {
            const auto t0 = std::chrono::steady_clock::now();
            plan = std::make_shared<compiler::OffloadPlan>(
                compiler::compileKernel(kernel, opts));
            const auto t1 = std::chrono::steady_clock::now();
            _planMisses += 1.0;
            _planCompileMs +=
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
        }
        if (!artifact.empty())
            compiler::savePlan(*plan, artifact);
    }

    if (_config.planRoundTrip) {
        // The deserialized copy must be indistinguishable from the
        // original, and it (not the original) is what gets executed.
        const std::string text = compiler::serializePlan(*plan);
        auto reparsed = std::make_shared<compiler::OffloadPlan>(
            compiler::parsePlan(text));
        const std::string text2 = compiler::serializePlan(*reparsed);
        if (text != text2) {
            panic("plan round-trip for kernel '%s' is not "
                  "byte-identical",
                  kernel.name.c_str());
        }
        const std::string defect =
            compiler::validatePlanArtifact(*reparsed);
        if (!defect.empty()) {
            panic("plan round-trip for kernel '%s': %s",
                  kernel.name.c_str(), defect.c_str());
        }
        plan = std::move(reparsed);
    }
    return plan;
}

ExecContext::CompiledKernel &
ExecContext::compiled(const compiler::Kernel &kernel)
{
    auto it = _kernels.find(kernel.name);
    if (it != _kernels.end())
        return it->second;

    CompiledKernel ck;
    ck.plan = acquirePlan(kernel);
    if (_probe) {
        ck.probeTrack = _probe->addTrack(
            _sys.hier().mesh().hostNode(), "invoke:" + kernel.name);
    }
    if (_config.usesAccelerator()) {
        engine::EngineConfig ec = _config.engineConfig();
        ec.probe = _probe;
        ck.runtime = offload::instantiate(ck.plan, ec, &_sys.hier(),
                                          &_sys.backend(),
                                          &_sys.acct());
    } else {
        ck.host = std::make_unique<engine::HostExecutor>(
            ck.plan, &_sys.hier(), &_sys.backend(), &_sys.acct());
    }
    auto [pos, ok] = _kernels.emplace(kernel.name, std::move(ck));
    DISTDA_ASSERT(ok, "kernel '%s' compiled twice",
                  kernel.name.c_str());
    return pos->second;
}

void
ExecContext::invoke(const compiler::Kernel &kernel,
                    const std::vector<engine::ArrayRef> &bindings,
                    const std::vector<compiler::Word> &params)
{
    CompiledKernel &ck = compiled(kernel);
    if (_config.analyzePlans || _probe)
        recordProfile(ck, kernel, bindings, params);
    const sim::Tick t0 = _now;
    offload::OffloadRecord rec;
    if (ck.host) {
        engine::HostRunResult res = ck.host->run(bindings, params, _now);
        _now = res.endTick;
        _hostInsts += res.insts;
        _memOps += res.memOps;
        _lastResults = std::move(res.results);
        rec = res.record;
    } else {
        offload::OffloadRunResult res =
            ck.runtime->invoke(bindings, params, _now);
        _now = res.endTick;
        _accelInsts += res.accelInsts;
        _memOps += res.memOps;
        _lastResults = std::move(res.results);
        rec = res.record;
    }
    ck.lifecycle.add(rec); // asserts the conservation invariant
    if (_probe) {
        _probe->span(ck.probeTrack, "invoke", t0, _now);
        recordLifecycle(rec);
    }
}

void
ExecContext::recordLifecycle(const offload::OffloadRecord &rec)
{
    // Aggregate (cross-kernel) lifecycle distributions for the
    // timeline/stats report. Registration is idempotent, so paying the
    // map lookups only with a probe attached keeps the common path
    // cheap.
    for (std::size_t p = 0; p < offload::kNumPhases; ++p) {
        _probe
            ->addDist(std::string("offload.") +
                          offload::phaseName(
                              static_cast<offload::Phase>(p)) +
                          "_ticks",
                      0.0, 1e9, 50)
            .sample(static_cast<double>(
                rec.ticksIn(static_cast<offload::Phase>(p))));
    }
    _probe->addDist("offload.e2e_ticks", 0.0, 1e9, 50)
        .sample(static_cast<double>(rec.endToEnd()));
}

double
ExecContext::resultF(std::size_t idx) const
{
    DISTDA_ASSERT(idx < _lastResults.size(), "result %zu missing", idx);
    return _lastResults[idx].second.f;
}

std::int64_t
ExecContext::resultI(std::size_t idx) const
{
    DISTDA_ASSERT(idx < _lastResults.size(), "result %zu missing", idx);
    return _lastResults[idx].second.i;
}

void
ExecContext::hostOps(double n)
{
    const double cycles = n / 5.0; // 5-wide issue
    _now += static_cast<sim::Tick>(cycles * _hostClock.period());
    _hostInsts += n;
    _sys.acct().addEvents(energy::Component::OoOCore, n);
}

std::int64_t
ExecContext::hostLoadI(const engine::ArrayRef &arr, std::uint64_t i)
{
    const auto res =
        _sys.hier().hostAccess(arr.addrOf(i), arr.elemBytes, false, _now);
    _now += res.latency;
    _hostInsts += 1.0;
    _hostMemOps += 1.0;
    _sys.acct().addEvents(energy::Component::OoOCore, 1.0);
    return arr.getI(i);
}

double
ExecContext::hostLoadF(const engine::ArrayRef &arr, std::uint64_t i)
{
    const auto res =
        _sys.hier().hostAccess(arr.addrOf(i), arr.elemBytes, false, _now);
    _now += res.latency;
    _hostInsts += 1.0;
    _hostMemOps += 1.0;
    _sys.acct().addEvents(energy::Component::OoOCore, 1.0);
    return arr.getF(i);
}

void
ExecContext::hostStoreI(engine::ArrayRef &arr, std::uint64_t i,
                        std::int64_t v)
{
    _sys.hier().hostAccess(arr.addrOf(i), arr.elemBytes, true, _now);
    _now += _hostClock.period();
    _hostInsts += 1.0;
    _hostMemOps += 1.0;
    _sys.acct().addEvents(energy::Component::OoOCore, 1.0);
    arr.setI(i, v);
}

void
ExecContext::hostStoreF(engine::ArrayRef &arr, std::uint64_t i, double v)
{
    _sys.hier().hostAccess(arr.addrOf(i), arr.elemBytes, true, _now);
    _now += _hostClock.period();
    _hostInsts += 1.0;
    _hostMemOps += 1.0;
    _sys.acct().addEvents(energy::Component::OoOCore, 1.0);
    arr.setF(i, v);
}

void
ExecContext::recordProfile(CompiledKernel &ck,
                           const compiler::Kernel &kernel,
                           const std::vector<engine::ArrayRef> &bindings,
                           const std::vector<compiler::Word> &params)
{
    std::vector<std::int64_t> param_ints(params.size());
    for (std::size_t i = 0; i < params.size(); ++i)
        param_ints[i] = params[i].i;
    std::vector<std::uint64_t> object_elems(bindings.size());
    for (std::size_t i = 0; i < bindings.size(); ++i)
        object_elems[i] = bindings[i].count;
    bool aliased = false;
    for (std::size_t i = 0; i < bindings.size() && !aliased; ++i) {
        const auto &a = bindings[i];
        const std::uint64_t a_end = a.base + a.count * a.elemBytes;
        for (std::size_t j = i + 1; j < bindings.size(); ++j) {
            const auto &b = bindings[j];
            const std::uint64_t b_end = b.base + b.count * b.elemBytes;
            if (a.base < b_end && b.base < a_end) {
                aliased = true;
                break;
            }
        }
    }
    ck.profile.record(kernel, param_ints, object_elems, aliased);
}

std::vector<verify::FactStore>
ExecContext::analyzeAll() const
{
    std::vector<verify::FactStore> all;
    for (const auto &[name, ck] : _kernels) {
        verify::AnalysisOptions ao;
        ao.channelCapacity = ck.plan->options.channelCapacity;
        ao.mesh = _sys.hier().mesh().params();
        ao.profile = &ck.profile;
        if (ck.runtime) {
            // The engine's instantiated topology is authoritative for
            // per-channel FIFO depths.
            for (const engine::DataflowEngine::ChannelEdge &e :
                 ck.runtime->engine().channelTopology()) {
                if (e.id < 0)
                    continue;
                if (static_cast<std::size_t>(e.id) >=
                    ao.channelCapacities.size())
                    ao.channelCapacities.resize(
                        static_cast<std::size_t>(e.id) + 1, 0);
                ao.channelCapacities[static_cast<std::size_t>(e.id)] =
                    e.capacity;
            }
        }
        all.push_back(verify::analyzePlan(*ck.plan, ao));
    }
    return all;
}

const compiler::OffloadPlan *
ExecContext::planOf(const std::string &kernel_name) const
{
    auto it = _kernels.find(kernel_name);
    return it == _kernels.end() ? nullptr : it->second.plan.get();
}

const compiler::OffloadPlan &
ExecContext::compileOnly(const compiler::Kernel &kernel)
{
    return *compiled(kernel).plan;
}

Metrics
ExecContext::finish()
{
    Metrics m;
    m.config = archModelName(_config.model);
    m.timeNs = nowNs();
    // ipc() counts cycles of the clock actually configured; 0 means
    // "model default", reported against the 2GHz host clock as before.
    m.clockGHz = _config.accelGHz > 0.0 ? _config.accelGHz : 2.0;
    m.hostInsts = _hostInsts;
    m.accelInsts = _accelInsts;
    m.kernelMemOps = _memOps;
    m.hostMemOps = _hostMemOps;
    m.planCacheHits = _planHits;
    m.planCacheMisses = _planMisses;
    m.planCompileMs = _planCompileMs;
    m.planCompileMsSaved = _planSavedMs;

    auto &hier = _sys.hier();
    m.cacheAccesses = hier.cacheAccesses();

    auto &acct = _sys.acct();
    m.totalEnergyPj = acct.totalPj();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(
                 energy::Component::NumComponents);
         ++i) {
        const auto c = static_cast<energy::Component>(i);
        m.energyByComponent[energy::componentName(c)] =
            acct.componentPj(c);
    }

    auto &mesh = hier.mesh();
    m.nocCtrlBytes = mesh.bytesInClass(noc::TrafficClass::Ctrl);
    m.nocDataBytes = mesh.bytesInClass(noc::TrafficClass::Data);
    m.nocAccCtrlBytes = mesh.bytesInClass(noc::TrafficClass::AccCtrl);
    m.nocAccDataBytes = mesh.bytesInClass(noc::TrafficClass::AccData);

    for (const auto &[name, ck] : _kernels) {
        if (ck.runtime) {
            const auto &st = ck.runtime->accessStats();
            m.intraBytes += st.intraBytes;
            m.daBytes += st.daBytes;
            m.aaBytes += st.aaBytes;
            m.mmioOps += ck.runtime->mmioOps();
        }
        // Per-kernel lifecycle rows, kernel-name order (std::map).
        // Host-executed kernels appear too: their latency is all
        // Execute, which makes the breakdown comparable across models.
        const offload::LifecycleStats &lc = ck.lifecycle;
        if (lc.invocations() == 0)
            continue;
        OffloadPhaseBreakdown row;
        row.kernel = name;
        row.invocations = static_cast<double>(lc.invocations());
        for (std::size_t p = 0; p < offload::kNumPhases; ++p)
            row.phaseTicks[p] = lc.phaseTicks(
                static_cast<offload::Phase>(p));
        row.e2eTicks = lc.e2eTicks();
        row.p50 = lc.e2eDist().p50();
        row.p95 = lc.e2eDist().p95();
        row.p99 = lc.e2eDist().p99();
        row.minTicks = lc.e2eDist().min();
        row.maxTicks = lc.e2eDist().max();
        m.offloadBreakdown.push_back(std::move(row));
    }

    // Data movement: bytes times interfaces crossed. Local buffer
    // reads (intra) are excluded — data staying inside one access unit
    // is precisely what "near-data" avoids moving — while traffic that
    // additionally rides the NoC is counted again there, so a byte
    // hauled across the chip (Mono-CA's centralized accesses) costs
    // more movement than the same byte served bank-to-buffer locally.
    const auto &l1 = hier.l1();
    const auto &l2 = hier.l2();
    m.dataMovementBytes =
        l1.accesses() * 8.0 +
        (l1.misses() + l1.writebacks()) * mem::lineBytes +
        (l2.misses() + l2.writebacks() + l2.prefetchesIssued()) *
            mem::lineBytes +
        (hier.dram().reads() + hier.dram().writes()) * mem::lineBytes +
        m.daBytes + m.aaBytes +
        mesh.hopFlits() * 8.0; // NoC bytes weighted by hops traveled

    return m;
}

} // namespace distda::driver
