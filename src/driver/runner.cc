#include "src/driver/runner.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>

#include "src/driver/report.hh"
#include "src/sim/json.hh"
#include "src/sim/logging.hh"
#include "src/sim/probe.hh"
#include "src/verify/verify.hh"
#include "src/workloads/workload.hh"

namespace distda::driver
{

Metrics
runWorkload(const std::string &workload, const RunConfig &config,
            const RunOptions &opts)
{
    using Clock = std::chrono::steady_clock;
    const auto wall_ms = [](Clock::time_point a, Clock::time_point b) {
        return std::chrono::duration<double, std::milli>(b - a).count();
    };
    const auto t0 = Clock::now();

    auto wl = workloads::makeWorkload(workload, opts.scale);

    SystemParams sp;
    sp.arenaBytes = wl->arenaBytes();
    sp.allocAffinity = config.allocAffinity();
    System sys(sp);

    wl->setup(sys);
    const auto t_setup = Clock::now();

    // Observability is opt-in per run: with no output requested no
    // probe exists and every instrumented site sees a null pointer.
    std::unique_ptr<sim::Probe> probe;
    if (opts.obs.enabled()) {
        sim::Probe::Options po;
        po.intervalTicks = opts.obs.statsIntervalTicks;
        probe = std::make_unique<sim::Probe>(po);
        sys.hier().attachProbe(*probe);
    }

    ExecContext ctx(sys, config, probe.get());
    wl->run(ctx);

    Metrics m = ctx.finish();
    m.workload = workload;
    m.validated = wl->validate(sys);
    if (!m.validated) {
        warn("workload '%s' under %s failed validation",
             workload.c_str(), archModelName(config.model));
    }
    m.setupWallMs = wall_ms(t0, t_setup);
    m.wallMs = wall_ms(t0, Clock::now());

    if (probe) {
        if (probe->dropped() > 0) {
            warn("probe ring buffer overflowed: %llu event(s) dropped "
                 "for %s/%s (oldest-first); raise the ring capacity or "
                 "shorten the run for a complete timeline",
                 static_cast<unsigned long long>(probe->dropped()),
                 workload.c_str(), archModelName(config.model));
        }
        if (!opts.obs.timelinePath.empty())
            probe->writeChromeTrace(opts.obs.timelinePath);
    }
    if (probe || opts.obs.reportOut) {
        // The probe implies invocation profiles were recorded, so the
        // analysis section rides along for free; a report requested
        // without a probe (serve fast path) omits it.
        std::vector<verify::FactStore> facts;
        const std::vector<verify::FactStore> *facts_ptr = nullptr;
        if (probe) {
            facts = ctx.analyzeAll();
            facts_ptr = &facts;
        }
        if (!opts.obs.statsJsonPath.empty()) {
            writeRunReport(opts.obs.statsJsonPath, m, sys, probe.get(),
                           facts_ptr);
        }
        if (opts.obs.reportOut) {
            *opts.obs.reportOut =
                buildRunReport(m, sys, probe.get(), facts_ptr);
        }
    }
    return m;
}

int
verifyWorkload(const std::string &workload, const RunConfig &config,
               const RunOptions &opts,
               std::vector<KernelVerifyResult> *collect)
{
    auto wl = workloads::makeWorkload(workload, opts.scale);

    SystemParams sp;
    sp.arenaBytes = wl->arenaBytes();
    sp.allocAffinity = config.allocAffinity();
    System sys(sp);
    wl->setup(sys);

    int errors = 0;
    for (const compiler::Kernel *kernel : wl->kernels()) {
        // Compile with in-pipeline enforcement off: the point here is
        // to surface every diagnostic, not to die on the first one.
        compiler::CompileOptions co = config.compileOptions();
        co.verifyPlans = compiler::VerifyMode::Off;
        const compiler::OffloadPlan plan =
            compiler::compileKernel(*kernel, co);

        verify::Options vo = verify::optionsFor(co);
        if (config.cgra()) {
            vo.checkCgra = true;
            vo.fabric = config.engineConfig().fabric;
        }
        const verify::Report report = verify::verifyPlan(plan, vo);
        std::printf("%s/%s under %s: %zu partitions, %zu channels: "
                    "%d error(s), %d warning(s)\n",
                    workload.c_str(), kernel->name.c_str(),
                    archModelName(config.model), plan.partitions.size(),
                    plan.channels.size(), report.errorCount(),
                    report.warningCount());
        if (!report.empty())
            std::printf("%s", report.str().c_str());
        errors += report.errorCount();
        if (collect) {
            KernelVerifyResult r;
            r.workload = workload;
            r.config = archModelName(config.model);
            r.kernel = kernel->name;
            r.partitions = plan.partitions.size();
            r.channels = plan.channels.size();
            r.report = report;
            collect->push_back(std::move(r));
        }
    }
    return errors;
}

int
analyzeWorkload(const std::string &workload, const RunConfig &config,
                const RunOptions &opts, sim::JsonWriter *json)
{
    RunConfig cfg = config;
    cfg.analyzePlans = true;

    auto wl = workloads::makeWorkload(workload, opts.scale);
    SystemParams sp;
    sp.arenaBytes = wl->arenaBytes();
    sp.allocAffinity = cfg.allocAffinity();
    System sys(sp);
    wl->setup(sys);

    ExecContext ctx(sys, cfg);
    wl->run(ctx);

    const std::vector<verify::FactStore> facts = ctx.analyzeAll();
    int violations = 0;
    for (const verify::FactStore &f : facts)
        violations += f.violations();

    if (json) {
        json->beginObject();
        json->key("workload").value(workload);
        json->key("config").value(archModelName(cfg.model));
        json->key("kernels").beginArray();
        for (const verify::FactStore &f : facts)
            f.json(*json);
        json->endArray();
        json->endObject();
    } else {
        std::printf("%s under %s: %zu kernel(s) analyzed, "
                    "%d violation(s)\n",
                    workload.c_str(), archModelName(cfg.model),
                    facts.size(), violations);
        for (const verify::FactStore &f : facts)
            std::printf("%s", f.str().c_str());
    }
    return violations;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace distda::driver
