#include "src/driver/runner.hh"

#include <cmath>

#include "src/sim/logging.hh"
#include "src/workloads/workload.hh"

namespace distda::driver
{

Metrics
runWorkload(const std::string &workload, const RunConfig &config,
            const RunOptions &opts)
{
    auto wl = workloads::makeWorkload(workload, opts.scale);

    SystemParams sp;
    sp.arenaBytes = wl->arenaBytes();
    sp.allocAffinity = config.allocAffinity();
    System sys(sp);

    wl->setup(sys);
    ExecContext ctx(sys, config);
    wl->run(ctx);

    Metrics m = ctx.finish();
    m.workload = workload;
    m.validated = wl->validate(sys);
    if (!m.validated) {
        warn("workload '%s' under %s failed validation",
             workload.c_str(), archModelName(config.model));
    }
    return m;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace distda::driver
