/**
 * @file
 * Minimal fixed-size thread pool used by the sweep executor (and
 * directly by bench binaries with irregular job shapes). Tasks are
 * plain callables drained FIFO by N worker threads; wait() blocks the
 * caller until the queue is empty and every in-flight task finished.
 *
 * Tasks must not throw: callers wrap their work (the sweep executor
 * catches SimFailure/std::exception per job). A task that escapes with
 * an exception terminates the process, same as std::thread.
 */

#ifndef DISTDA_DRIVER_POOL_HH
#define DISTDA_DRIVER_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace distda::driver
{

/** Fixed-size FIFO worker pool. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (values < 1 clamp to 1). */
    explicit ThreadPool(int threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until all submitted tasks have completed. */
    void wait();

    int size() const { return static_cast<int>(_workers.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> _workers;
    std::deque<std::function<void()>> _queue;
    std::mutex _mu;
    std::condition_variable _workReady; ///< workers: queue or stop
    std::condition_variable _allDone;   ///< wait(): queue empty + idle
    int _active = 0;                    ///< tasks currently executing
    bool _stop = false;
};

} // namespace distda::driver

#endif // DISTDA_DRIVER_POOL_HH
