/**
 * @file
 * One simulated system instance: energy accountant, memory hierarchy,
 * slab-allocated accelerator-visible arena with real backing bytes, and
 * the object translation table. A fresh System is built per
 * (workload, configuration) run.
 */

#ifndef DISTDA_DRIVER_SYSTEM_HH
#define DISTDA_DRIVER_SYSTEM_HH

#include <memory>
#include <string>

#include "src/energy/energy_model.hh"
#include "src/engine/backend.hh"
#include "src/mem/hierarchy.hh"
#include "src/mem/slab_allocator.hh"

namespace distda::driver
{

/** System-wide construction parameters. */
struct SystemParams
{
    mem::HierarchyParams hierarchy;
    energy::EnergyParams energy;
    mem::Addr arenaBase = 0x1000'0000;
    std::uint64_t arenaBytes = 64ULL << 20;
    /**
     * Dist-DA-F+A: anchor each allocation to one L3 cluster for
     * intra-cluster locality instead of page interleaving.
     */
    bool allocAffinity = false;
};

/** The simulated platform shared by host and accelerators. */
class System
{
  public:
    explicit System(const SystemParams &params = SystemParams{})
        : _params(params), _acct(params.energy),
          _hier(params.hierarchy, &_acct),
          _slab(params.arenaBase, params.arenaBytes),
          _backend(params.arenaBase, params.arenaBytes)
    {
    }

    energy::Accountant &acct() { return _acct; }
    mem::Hierarchy &hier() { return _hier; }
    mem::SlabAllocator &slab() { return _slab; }
    engine::MemBackend &backend() { return _backend; }
    mem::ObjectTable &objects() { return _objects; }
    const SystemParams &params() const { return _params; }

    /** Allocate a data structure in the accelerator-visible arena. */
    engine::ArrayRef
    alloc(const std::string &name, std::uint64_t count,
          std::uint32_t elem_bytes, bool is_float)
    {
        const mem::Addr base = _slab.allocate(count * elem_bytes, name);
        if (_params.allocAffinity) {
            // Dist-DA-F+A: stripe each object across clusters in 32KB
            // chunks so an inner-loop window stays intra-cluster
            // without exceeding a single bank's capacity.
            const std::uint64_t chunk = 32 * 1024;
            const std::uint64_t bytes = count * elem_bytes;
            for (std::uint64_t off = 0; off < bytes; off += chunk) {
                _hier.l3().setAffinity(base + off,
                                       std::min(chunk, bytes - off),
                                       _nextAffinityCluster);
                _nextAffinityCluster = (_nextAffinityCluster + 1) %
                                       _params.hierarchy.l3.clusters;
            }
        }
        const int obj_id = _nextObjId++;
        _objects.registerObject(obj_id, base, count, elem_bytes, name);
        engine::ArrayRef ref;
        ref.base = base;
        ref.count = count;
        ref.elemBytes = elem_bytes;
        ref.isFloat = is_float;
        ref.mem = &_backend;
        return ref;
    }

  private:
    SystemParams _params;
    energy::Accountant _acct;
    mem::Hierarchy _hier;
    mem::SlabAllocator _slab;
    engine::MemBackend _backend;
    mem::ObjectTable _objects;
    int _nextObjId = 0;
    int _nextAffinityCluster = 0;
};

} // namespace distda::driver

#endif // DISTDA_DRIVER_SYSTEM_HH
