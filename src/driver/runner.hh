/**
 * @file
 * Experiment runner: builds a fresh system per (workload,
 * configuration) pair, executes the workload to completion, validates
 * outputs and returns the collected metrics.
 */

#ifndef DISTDA_DRIVER_RUNNER_HH
#define DISTDA_DRIVER_RUNNER_HH

#include <string>

#include "src/driver/config.hh"
#include "src/driver/metrics.hh"
#include "src/sim/ticks.hh"

namespace distda::driver
{

/**
 * Observability outputs of one run. Both paths empty (the default)
 * means no probe is built and the simulation pays nothing beyond one
 * null-pointer test per instrumented site.
 */
struct ObsOptions
{
    /** Chrome trace-event timeline (Perfetto-loadable) output path. */
    std::string timelinePath;
    /** Machine-readable run report (metrics + stats tree) path. */
    std::string statsJsonPath;
    /** Counter-sampling coalescing interval (--stats-interval). */
    sim::Tick statsIntervalTicks = 1'000'000;

    bool enabled() const
    {
        return !timelinePath.empty() || !statsJsonPath.empty();
    }
};

/** Run options shared across sweeps. */
struct RunOptions
{
    double scale = 1.0; ///< problem-size multiplier
    ObsOptions obs;     ///< timeline/report outputs (off by default)
};

/** Run one workload under one configuration. */
Metrics runWorkload(const std::string &workload, const RunConfig &config,
                    const RunOptions &opts = RunOptions{});

/**
 * Compile every kernel of @p workload under @p config and statically
 * verify the resulting plans without executing anything. Prints each
 * diagnostic to stdout and returns the total error count (0 = clean).
 */
int verifyWorkload(const std::string &workload, const RunConfig &config,
                   const RunOptions &opts = RunOptions{});

/** Geometric mean helper for the summary rows. */
double geomean(const std::vector<double> &values);

} // namespace distda::driver

#endif // DISTDA_DRIVER_RUNNER_HH
