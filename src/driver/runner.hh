/**
 * @file
 * Experiment runner: builds a fresh system per (workload,
 * configuration) pair, executes the workload to completion, validates
 * outputs and returns the collected metrics.
 */

#ifndef DISTDA_DRIVER_RUNNER_HH
#define DISTDA_DRIVER_RUNNER_HH

#include <string>

#include "src/driver/config.hh"
#include "src/driver/metrics.hh"
#include "src/sim/ticks.hh"
#include "src/verify/diag.hh"

namespace distda::sim
{
class JsonWriter;
}

namespace distda::driver
{

/**
 * Observability outputs of one run. Both paths empty (the default)
 * means no probe is built and the simulation pays nothing beyond one
 * null-pointer test per instrumented site.
 */
struct ObsOptions
{
    /** Chrome trace-event timeline (Perfetto-loadable) output path. */
    std::string timelinePath;
    /** Machine-readable run report (metrics + stats tree) path. */
    std::string statsJsonPath;
    /** Counter-sampling coalescing interval (--stats-interval). */
    sim::Tick statsIntervalTicks = 1'000'000;

    /**
     * Build the probe even with no file outputs requested. The serve
     * daemon runs with this on when a request asks for a full report:
     * the probe's distributions/timeline counters (and the analysis
     * facts that ride along) then match a direct `--stats-json` run
     * section-for-section, without writing any file.
     */
    bool forceProbe = false;

    /**
     * When non-null, receives the complete run-report JSON document
     * (exactly what --stats-json would have written) after the run.
     * Independent of statsJsonPath; used by in-process consumers that
     * stream the report somewhere other than a file.
     */
    std::string *reportOut = nullptr;

    bool enabled() const
    {
        return forceProbe || !timelinePath.empty() ||
               !statsJsonPath.empty();
    }
};

/** Run options shared across sweeps. */
struct RunOptions
{
    double scale = 1.0; ///< problem-size multiplier
    ObsOptions obs;     ///< timeline/report outputs (off by default)
};

/** Run one workload under one configuration. */
Metrics runWorkload(const std::string &workload, const RunConfig &config,
                    const RunOptions &opts = RunOptions{});

/** Structured verification outcome of one kernel (for --verify-json). */
struct KernelVerifyResult
{
    std::string workload;
    std::string config;
    std::string kernel;
    std::size_t partitions = 0;
    std::size_t channels = 0;
    verify::Report report;
};

/**
 * Compile every kernel of @p workload under @p config and statically
 * verify the resulting plans without executing anything. Prints each
 * diagnostic to stdout and returns the total error count (0 = clean).
 * @p collect (optional) additionally receives one structured result
 * per kernel for JSON export.
 */
int verifyWorkload(const std::string &workload, const RunConfig &config,
                   const RunOptions &opts = RunOptions{},
                   std::vector<KernelVerifyResult> *collect = nullptr);

/**
 * Run @p workload under @p config with invocation profiling on, then
 * run the plan analyses (src/verify/analysis.hh) over every compiled
 * kernel. With @p json null the fact stores print to stdout as text;
 * otherwise one {workload, config, kernels: [...]} object is appended
 * to the writer. Returns the total count of Violated facts.
 */
int analyzeWorkload(const std::string &workload, const RunConfig &config,
                    const RunOptions &opts = RunOptions{},
                    sim::JsonWriter *json = nullptr);

/** Geometric mean helper for the summary rows. */
double geomean(const std::vector<double> &values);

} // namespace distda::driver

#endif // DISTDA_DRIVER_RUNNER_HH
