#include "src/driver/config.hh"

#include <cerrno>
#include <cstdlib>

#include "src/sim/logging.hh"

namespace distda::driver
{

std::int64_t
parseInt(const std::string &text, const char *what)
{
    if (text.empty())
        fatal("%s: empty value where an integer is required", what);
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal("%s: '%s' is not an integer", what, text.c_str());
    if (errno == ERANGE)
        fatal("%s: '%s' out of range", what, text.c_str());
    return v;
}

double
parseDouble(const std::string &text, const char *what)
{
    if (text.empty())
        fatal("%s: empty value where a number is required", what);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("%s: '%s' is not a number", what, text.c_str());
    if (errno == ERANGE)
        fatal("%s: '%s' out of range", what, text.c_str());
    return v;
}

BreakdownMode
parseBreakdownMode(const std::string &text, const char *what)
{
    if (text.empty() || text == "text")
        return BreakdownMode::Text;
    if (text == "json")
        return BreakdownMode::Json;
    if (text == "off")
        return BreakdownMode::Off;
    fatal("%s: '%s' is not a breakdown mode (text|json|off)", what,
          text.c_str());
    return BreakdownMode::Off; // unreachable
}

const char *
archModelName(ArchModel m)
{
    switch (m) {
      case ArchModel::OoO: return "OoO";
      case ArchModel::MonoCA: return "Mono-CA";
      case ArchModel::MonoDA_IO: return "Mono-DA-IO";
      case ArchModel::MonoDA_F: return "Mono-DA-F";
      case ArchModel::DistDA_IO: return "Dist-DA-IO";
      case ArchModel::DistDA_F: return "Dist-DA-F";
      case ArchModel::DistDA_IO_SW: return "Dist-DA-IO+SW";
      case ArchModel::DistDA_F_A: return "Dist-DA-F+A";
      default: panic("bad arch model %d", static_cast<int>(m));
    }
}

const std::vector<ArchModel> &
allArchModels()
{
    static const std::vector<ArchModel> models = {
        ArchModel::OoO,          ArchModel::MonoCA,
        ArchModel::MonoDA_IO,    ArchModel::MonoDA_F,
        ArchModel::DistDA_IO,    ArchModel::DistDA_F,
        ArchModel::DistDA_IO_SW, ArchModel::DistDA_F_A,
    };
    return models;
}

ArchModel
parseArchModel(const std::string &name)
{
    for (ArchModel m : allArchModels()) {
        if (name == archModelName(m))
            return m;
    }
    fatal("unknown config '%s' (try --list)", name.c_str());
}

std::vector<ArchModel>
headlineModels()
{
    return {ArchModel::OoO,       ArchModel::MonoCA,
            ArchModel::MonoDA_IO, ArchModel::MonoDA_F,
            ArchModel::DistDA_IO, ArchModel::DistDA_F};
}

compiler::CompileOptions
RunConfig::compileOptions() const
{
    compiler::CompileOptions opts;
    opts.partition = distributed();
    opts.swPrefetch = (model == ArchModel::DistDA_IO_SW);
    opts.enableCombining = !disableCombining;
    if (bufferBytesOverride)
        opts.bufferBytes = bufferBytesOverride;
    if (channelCapacityOverride)
        opts.channelCapacity = channelCapacityOverride;
    opts.verifyPlans = verifyPlans;
    return opts;
}

engine::EngineConfig
RunConfig::engineConfig() const
{
    engine::EngineConfig cfg;
    cfg.kind = cgra() ? engine::ActorKind::Cgra
                      : engine::ActorKind::InOrder;
    double ghz = accelGHz;
    if (ghz <= 0.0)
        ghz = cgra() ? 1.0 : 2.0;
    cfg.accelClockHz = static_cast<std::uint64_t>(ghz * 1e9);
    cfg.issueWidth = (model == ArchModel::DistDA_IO_SW) ? 4 : 1;
    cfg.swPrefetch = (model == ArchModel::DistDA_IO_SW);
    cfg.centralizedAccess = (model == ArchModel::MonoCA);
    cfg.distributedCompute = distributed();
    if (model == ArchModel::MonoCA) {
        // "Monolithic accelerator without area constraints": an
        // unconstrained engine on the L3 bus whose 2GHz clock (not
        // width) is its edge; each instruction costs several times a
        // minimal IO core's.
        cfg.instEnergyScale = 6.0;
    }
    cfg.privateCacheBytes =
        (model == ArchModel::MonoCA) ? 8 * 1024 : 0;
    cfg.fabric = (model == ArchModel::MonoDA_F)
                     ? cgra::CgraParams::large()
                     : cgra::CgraParams{};
    cfg.retainBuffers = !disableRetention;
    cfg.predecode = predecodeOverride;
    if (bufferBytesOverride)
        cfg.clusterBufferBytes = bufferBytesOverride;
    if (channelCapacityOverride)
        cfg.channelCapacity = channelCapacityOverride;
    return cfg;
}

} // namespace distda::driver
