#include "src/driver/report.hh"

#include "src/offload/lifecycle.hh"
#include "src/sim/json.hh"
#include "src/sim/probe.hh"
#include "src/sim/stats.hh"

namespace distda::driver
{

namespace
{

void
breakdownJson(sim::JsonWriter &w, const Metrics &m)
{
    w.beginArray();
    for (const OffloadPhaseBreakdown &row : m.offloadBreakdown) {
        w.beginObject();
        w.key("kernel").value(row.kernel);
        w.key("invocations").value(row.invocations);
        w.key("phases").beginObject();
        for (std::size_t p = 0; p < offload::kNumPhases; ++p) {
            w.key(offload::phaseName(static_cast<offload::Phase>(p)))
                .value(row.phaseTicks[p]);
        }
        w.endObject();
        w.key("e2e_ticks").value(row.e2eTicks);
        w.key("p50_ticks").value(row.p50);
        w.key("p95_ticks").value(row.p95);
        w.key("p99_ticks").value(row.p99);
        w.key("min_ticks").value(row.minTicks);
        w.key("max_ticks").value(row.maxTicks);
        w.endObject();
    }
    w.endArray();
}

void
metricsJson(sim::JsonWriter &w, const Metrics &m)
{
    w.beginObject();
    w.key("time_ns").value(m.timeNs);
    w.key("energy_pj").value(m.totalEnergyPj);
    w.key("host_insts").value(m.hostInsts);
    w.key("accel_insts").value(m.accelInsts);
    w.key("kernel_mem_ops").value(m.kernelMemOps);
    w.key("host_mem_ops").value(m.hostMemOps);
    w.key("mmio_ops").value(m.mmioOps);
    w.key("cache_accesses").value(m.cacheAccesses);
    w.key("data_movement_bytes").value(m.dataMovementBytes);
    w.key("clock_ghz").value(m.clockGHz);
    w.key("ipc").value(m.ipc());
    w.key("mem_op_rate").value(m.memOpRate());
    w.key("code_coverage_pct").value(m.codeCoverage());
    w.key("data_coverage_pct").value(m.dataCoverage());
    w.key("init_overhead_pct").value(m.initOverhead());
    w.key("noc_bytes").beginObject();
    w.key("ctrl").value(m.nocCtrlBytes);
    w.key("data").value(m.nocDataBytes);
    w.key("acc_ctrl").value(m.nocAccCtrlBytes);
    w.key("acc_data").value(m.nocAccDataBytes);
    w.endObject();
    w.key("accel_traffic_bytes").beginObject();
    w.key("intra").value(m.intraBytes);
    w.key("da").value(m.daBytes);
    w.key("aa").value(m.aaBytes);
    w.endObject();
    w.key("energy_by_component").beginObject();
    for (const auto &[name, pj] : m.energyByComponent)
        w.key(name).value(pj);
    w.endObject();
    w.key("wall_ms").value(m.wallMs);
    w.key("plan_cache").beginObject();
    w.key("hits").value(m.planCacheHits);
    w.key("misses").value(m.planCacheMisses);
    w.key("compile_ms").value(m.planCompileMs);
    w.key("compile_ms_saved").value(m.planCompileMsSaved);
    w.endObject();
    w.endObject();
}

} // namespace

std::string
buildRunReport(const Metrics &m, System &sys, const sim::Probe *probe,
               const std::vector<verify::FactStore> *analysis)
{
    // Fresh groups per report: exportStats() registers stat names, and
    // Group panics on duplicates, so the tree must not be reused.
    stats::Group root("run");
    stats::Group hier("hier");
    stats::Group energy("energy");
    sys.hier().exportStats(hier);
    sys.acct().exportStats(energy);
    root.addChild(&hier);
    root.addChild(&energy);

    stats::Group dists("dist");
    if (probe) {
        probe->exportDists(dists);
        root.addChild(&dists);
    }

    sim::JsonWriter w;
    w.beginObject();
    w.key("workload").value(m.workload);
    w.key("config").value(m.config);
    w.key("validated").value(m.validated);
    w.key("metrics");
    metricsJson(w, m);
    w.key("offload_breakdown");
    breakdownJson(w, m);
    // Ring-buffer losses, surfaced whether or not a probe ran so the
    // key is always present for schema consumers.
    w.key("dropped_events")
        .value(probe ? probe->dropped() : std::uint64_t{0});
    w.key("stats");
    root.jsonDump(w);
    if (probe) {
        w.key("timeline").beginObject();
        w.key("events").value(
            static_cast<std::uint64_t>(probe->eventCount()));
        w.key("dropped").value(probe->dropped());
        w.key("tracks").value(
            static_cast<std::uint64_t>(probe->numTracks()));
        w.endObject();
    }
    if (analysis) {
        w.key("analysis").beginArray();
        for (const verify::FactStore &f : *analysis)
            f.json(w);
        w.endArray();
    }
    w.endObject();
    return w.str();
}

bool
writeRunReport(const std::string &path, const Metrics &m, System &sys,
               const sim::Probe *probe,
               const std::vector<verify::FactStore> *analysis)
{
    return sim::writeTextFile(path,
                              buildRunReport(m, sys, probe, analysis));
}

} // namespace distda::driver
