/**
 * @file
 * Run metrics collected for the paper's tables and figures.
 *
 * The "data movement" metric sums the bytes crossing each interface
 * exactly once: core<->L1 words, L1<->L2 and L2<->L3 line fills and
 * writebacks, L3<->DRAM lines, accelerator buffer traffic (intra),
 * accelerator<->cache (D-A) and accelerator<->accelerator (A-A).
 */

#ifndef DISTDA_DRIVER_METRICS_HH
#define DISTDA_DRIVER_METRICS_HH

#include <array>
#include <map>
#include <string>
#include <vector>

namespace distda::driver
{

/**
 * Per-kernel offload-lifecycle latency breakdown (one row per kernel,
 * kernel-name order). Phase ticks follow src/offload/lifecycle.hh:
 * enqueue, decode, buffer_alloc, dispatch, execute, writeback,
 * complete — and always sum exactly to e2eTicks (the conservation
 * invariant, asserted at record time and re-checked by the fuzz
 * oracle). Quantiles are of the per-invocation end-to-end latency.
 *
 * Deliberately NOT part of the sweep CSV columns: it is surfaced via
 * stats-JSON and the --breakdown table so the golden CSV stays
 * byte-identical with the breakdown on or off.
 */
struct OffloadPhaseBreakdown
{
    std::string kernel;
    double invocations = 0.0;
    std::array<double, 7> phaseTicks{}; ///< lifecycle phase order
    double e2eTicks = 0.0;
    double p50 = 0.0; ///< per-invocation end-to-end, ticks
    double p95 = 0.0;
    double p99 = 0.0;
    double minTicks = 0.0;
    double maxTicks = 0.0;
};

/** Metrics of one (workload, configuration) run. */
struct Metrics
{
    std::string workload;
    std::string config;

    double timeNs = 0.0;
    double hostInsts = 0.0;
    double accelInsts = 0.0;
    double kernelMemOps = 0.0;
    double hostMemOps = 0.0; ///< host accesses outside offloads
    double mmioOps = 0.0;

    /** Table VI %cc: dynamic instruction share that is specialized. */
    double
    codeCoverage() const
    {
        return totalInsts() > 0.0 ? 100.0 * accelInsts / totalInsts()
                                  : 0.0;
    }

    /** Table VI %dc: share of memory accesses that are offloaded. */
    double
    dataCoverage() const
    {
        const double total = kernelMemOps + hostMemOps;
        return total > 0.0 ? 100.0 * kernelMemOps / total : 0.0;
    }

    /** Table VI %init: MMIO overhead per application memory access. */
    double
    initOverhead() const
    {
        const double total = kernelMemOps + hostMemOps;
        return total > 0.0 ? 100.0 * mmioOps / total : 0.0;
    }

    double cacheAccesses = 0.0; ///< Fig 8 metric
    double dataMovementBytes = 0.0;

    double totalEnergyPj = 0.0;
    std::map<std::string, double> energyByComponent;

    double nocCtrlBytes = 0.0;
    double nocDataBytes = 0.0;
    double nocAccCtrlBytes = 0.0;
    double nocAccDataBytes = 0.0;

    double intraBytes = 0.0; ///< Fig 9
    double daBytes = 0.0;
    double aaBytes = 0.0;

    bool validated = false;

    /** Per-kernel lifecycle breakdown (see OffloadPhaseBreakdown). */
    std::vector<OffloadPhaseBreakdown> offloadBreakdown;

    /**
     * Host wall-clock spent simulating this run (setup + execution +
     * validation), measured by the runner. Machine-dependent, so it is
     * excluded from the CSV columns to keep sweep output identical at
     * every --jobs level.
     */
    double wallMs = 0.0;
    double setupWallMs = 0.0; ///< workload construction + setup share

    /**
     * Plan-acquisition accounting for this run (PlanCache hits/misses
     * plus --plan-dir artifact loads; see src/compiler/plan_cache.hh).
     * The hit/miss split depends on process-wide cache state and the
     * sweep's job schedule, and the wall times are machine-dependent,
     * so — like wallMs — these are excluded from the CSV columns and
     * surface only in stats-JSON reports and the sweep summary.
     */
    double planCacheHits = 0.0;
    double planCacheMisses = 0.0;
    double planCompileMs = 0.0;      ///< wall time spent compiling
    double planCompileMsSaved = 0.0; ///< wall time cache hits avoided

    /**
     * Clock the ipc() denominator counts cycles against, in GHz. Set
     * by ExecContext::finish() from RunConfig::accelGHz when an
     * override is active; 2.0 (the host clock) otherwise.
     */
    double clockGHz = 2.0;

    double totalInsts() const { return hostInsts + accelInsts; }

    /** Simulated nanoseconds per host wall-clock millisecond. */
    double
    simRate() const
    {
        return wallMs > 0.0 ? timeNs / wallMs : 0.0;
    }

    /** IPC against clockGHz (Fig 11a; 2GHz host unless --ghz=). */
    double
    ipc() const
    {
        return timeNs > 0.0 && clockGHz > 0.0
                   ? totalInsts() / (timeNs * clockGHz)
                   : 0.0;
    }

    /** Memory operations per nanosecond (Fig 11a). */
    double
    memOpRate() const
    {
        return timeNs > 0.0 ? kernelMemOps / timeNs : 0.0;
    }

    double nocTotalBytes() const
    {
        return nocCtrlBytes + nocDataBytes + nocAccCtrlBytes +
               nocAccDataBytes;
    }

    /** Energy efficiency of this run relative to @p baseline. */
    double
    energyEfficiencyVs(const Metrics &baseline) const
    {
        return totalEnergyPj > 0.0
                   ? baseline.totalEnergyPj / totalEnergyPj
                   : 0.0;
    }

    double
    speedupVs(const Metrics &baseline) const
    {
        return timeNs > 0.0 ? baseline.timeNs / timeNs : 0.0;
    }
};

} // namespace distda::driver

#endif // DISTDA_DRIVER_METRICS_HH
