#include "src/driver/statsdiff.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/sim/logging.hh"

namespace distda::driver
{

double
DiffRow::pct() const
{
    if (a == 0.0)
        return 0.0;
    return 100.0 * (b - a) / std::fabs(a);
}

std::vector<std::string>
defaultIgnoreSubstrings()
{
    // Wall-clock and machine-shape leaves: legitimate runs differ in
    // these even when the simulation is bit-identical. plan_cache
    // hit/miss counts depend on process-wide cache warmth (a served
    // request against a warm daemon hits where a one-shot run
    // misses), not on what was simulated.
    return {"wall_ms", "compile_ms", "saved", "sim_rate",
            "hardware_threads", "plan_cache"};
}

namespace
{

void
flattenInto(const sim::JsonValue &v, const std::string &prefix,
            std::vector<std::pair<std::string, double>> &out)
{
    switch (v.kind) {
      case sim::JsonValue::Kind::Number:
        out.emplace_back(prefix, v.num);
        break;
      case sim::JsonValue::Kind::Bool:
        out.emplace_back(prefix, v.b ? 1.0 : 0.0);
        break;
      case sim::JsonValue::Kind::Object:
        for (const auto &[key, child] : v.obj) {
            flattenInto(child,
                        prefix.empty() ? key : prefix + "." + key, out);
        }
        break;
      case sim::JsonValue::Kind::Array:
        for (std::size_t i = 0; i < v.arr.size(); ++i) {
            flattenInto(v.arr[i],
                        prefix + "[" + std::to_string(i) + "]", out);
        }
        break;
      default:
        break; // strings and nulls are not comparable leaves
    }
}

bool
ignored(const std::string &path, const StatsDiffOptions &opts)
{
    for (const std::string &frag : opts.ignoreSubstrings) {
        if (path.find(frag) != std::string::npos)
            return true;
    }
    return false;
}

bool
rowFails(const DiffRow &r, const StatsDiffOptions &opts)
{
    if (!r.inA || !r.inB)
        return true; // structural difference always fails the gate
    if (r.a == r.b)
        return false;
    if (r.zeroBaseline())
        return true; // no finite percentage to gate on
    return std::fabs(r.pct()) > opts.thresholdPct;
}

std::string
fmtNum(double v)
{
    return strfmt("%.6g", v);
}

} // namespace

std::vector<std::pair<std::string, double>>
flattenNumericLeaves(const sim::JsonValue &v)
{
    std::vector<std::pair<std::string, double>> out;
    flattenInto(v, "", out);
    return out;
}

StatsDiff
diffReports(const sim::JsonValue &a, const sim::JsonValue &b,
            const StatsDiffOptions &opts)
{
    const auto leaves_a = flattenNumericLeaves(a);
    const auto leaves_b = flattenNumericLeaves(b);

    std::map<std::string, double> b_by_path;
    for (const auto &[path, val] : leaves_b) {
        if (!ignored(path, opts))
            b_by_path.emplace(path, val);
    }

    StatsDiff d;
    for (const auto &[path, val] : leaves_a) {
        if (ignored(path, opts))
            continue;
        DiffRow row;
        row.path = path;
        row.inA = true;
        row.a = val;
        auto it = b_by_path.find(path);
        if (it != b_by_path.end()) {
            row.inB = true;
            row.b = it->second;
            b_by_path.erase(it);
            ++d.compared;
        } else {
            ++d.onlyA;
        }
        d.rows.push_back(std::move(row));
    }
    for (const auto &[path, val] : b_by_path) {
        DiffRow row;
        row.path = path;
        row.inB = true;
        row.b = val;
        d.rows.push_back(std::move(row));
        ++d.onlyB;
    }

    for (const DiffRow &row : d.rows) {
        if (row.changed())
            ++d.changed;
        if (rowFails(row, opts))
            ++d.failed;
    }
    return d;
}

std::string
renderDiff(const StatsDiff &d, const StatsDiffOptions &opts,
           const std::string &label_a, const std::string &label_b)
{
    std::string out;
    const char *sep = opts.format == DiffFormat::Csv ? "," : " | ";

    auto cell = [&](const DiffRow &r, int col) -> std::string {
        switch (col) {
          case 0: return r.path;
          case 1: return r.inA ? fmtNum(r.a) : "-";
          case 2: return r.inB ? fmtNum(r.b) : "-";
          case 3:
            return r.inA && r.inB ? fmtNum(r.delta()) : "-";
          default:
            if (!r.inA || !r.inB)
                return r.inA ? "removed" : "added";
            if (r.a == r.b)
                return "0";
            if (r.zeroBaseline())
                return "inf";
            return fmtNum(r.pct());
        }
    };
    const std::string header[5] = {"metric", label_a, label_b, "delta",
                                   "delta_pct"};

    if (opts.format == DiffFormat::Text) {
        // Column widths over everything printed, so the table aligns.
        std::size_t width[5];
        for (int c = 0; c < 5; ++c)
            width[c] = header[c].size();
        for (const DiffRow &r : d.rows) {
            if (opts.changedOnly && !r.changed())
                continue;
            for (int c = 0; c < 5; ++c)
                width[c] = std::max(width[c], cell(r, c).size());
        }
        auto emitRow = [&](const std::string cols[5]) {
            for (int c = 0; c < 5; ++c) {
                const std::string &s = cols[c];
                if (c > 0)
                    out += "  ";
                if (c == 0) {
                    out += s;
                    out.append(width[0] - s.size(), ' ');
                } else {
                    out.append(width[c] - s.size(), ' ');
                    out += s;
                }
            }
            out += '\n';
        };
        emitRow(header);
        for (const DiffRow &r : d.rows) {
            if (opts.changedOnly && !r.changed())
                continue;
            const std::string cols[5] = {cell(r, 0), cell(r, 1),
                                         cell(r, 2), cell(r, 3),
                                         cell(r, 4)};
            emitRow(cols);
        }
        out += strfmt("%zu compared, %zu changed, %zu beyond "
                      "threshold (%.6g%%), %zu only in %s, %zu only "
                      "in %s\n",
                      d.compared, d.changed, d.failed,
                      opts.thresholdPct, d.onlyA, label_a.c_str(),
                      d.onlyB, label_b.c_str());
        return out;
    }

    // Markdown and CSV share the row loop; markdown adds the rule.
    for (int c = 0; c < 5; ++c) {
        if (c > 0)
            out += sep;
        else if (opts.format == DiffFormat::Markdown)
            out += "| ";
        out += header[c];
    }
    if (opts.format == DiffFormat::Markdown) {
        out += " |\n|---|---:|---:|---:|---:|";
    }
    out += '\n';
    for (const DiffRow &r : d.rows) {
        if (opts.changedOnly && !r.changed())
            continue;
        for (int c = 0; c < 5; ++c) {
            if (c > 0)
                out += sep;
            else if (opts.format == DiffFormat::Markdown)
                out += "| ";
            out += cell(r, c);
        }
        if (opts.format == DiffFormat::Markdown)
            out += " |";
        out += '\n';
    }
    return out;
}

} // namespace distda::driver
