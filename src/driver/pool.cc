#include "src/driver/pool.hh"

#include <algorithm>
#include <utility>

namespace distda::driver
{

ThreadPool::ThreadPool(int threads)
{
    const int n = std::max(threads, 1);
    _workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lk(_mu);
        _stop = true;
    }
    _workReady.notify_all();
    for (std::thread &t : _workers)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lk(_mu);
        _queue.push_back(std::move(task));
    }
    _workReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lk(_mu);
    _allDone.wait(lk, [this] { return _queue.empty() && _active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(_mu);
            _workReady.wait(
                lk, [this] { return _stop || !_queue.empty(); });
            // Keep draining after stop: the destructor promises
            // completion of everything already submitted.
            if (_queue.empty())
                return;
            task = std::move(_queue.front());
            _queue.pop_front();
            ++_active;
        }
        task();
        {
            std::unique_lock<std::mutex> lk(_mu);
            --_active;
            if (_queue.empty() && _active == 0)
                _allDone.notify_all();
        }
    }
}

} // namespace distda::driver
