/**
 * @file
 * Report comparison for stats-JSON documents (tools/distda_stats): two
 * parsed reports are flattened into dotted numeric leaf paths, joined
 * by path, and rendered as a delta table. The same machinery compares
 * BENCH_*.json perf-baseline files — any JSON document whose leaves
 * are numbers works.
 *
 * Machine-dependent leaves (wall-clock times, simulation rates) are
 * ignored by default so two runs of the same binary on the same inputs
 * diff clean; --all clears the ignore list for raw comparisons.
 */

#ifndef DISTDA_DRIVER_STATSDIFF_HH
#define DISTDA_DRIVER_STATSDIFF_HH

#include <cstddef>
#include <string>
#include <vector>

#include "src/sim/json.hh"

namespace distda::driver
{

/** One joined leaf: present in A, B or both. */
struct DiffRow
{
    std::string path; ///< dotted leaf path, arrays as "[i]"
    bool inA = false;
    bool inB = false;
    double a = 0.0;
    double b = 0.0;

    double delta() const { return b - a; }

    /**
     * Percent change relative to A; 0 when both are 0. A zero
     * baseline with a nonzero B has no finite percentage — callers
     * must test zeroBaseline() before trusting pct().
     */
    double pct() const;
    bool zeroBaseline() const { return a == 0.0 && b != 0.0; }
    bool changed() const { return !inA || !inB || a != b; }
};

/** Output table format. */
enum class DiffFormat
{
    Text,
    Markdown,
    Csv,
};

/** Comparison options. */
struct StatsDiffOptions
{
    /**
     * Gate: a row fails when |pct()| exceeds this (percent), or the
     * value appears/disappears, or the baseline is zero with a
     * nonzero B. The default 0 means any numeric change fails — two
     * identical runs must diff clean.
     */
    double thresholdPct = 0.0;
    /** Leaf paths containing any of these substrings are skipped. */
    std::vector<std::string> ignoreSubstrings;
    DiffFormat format = DiffFormat::Text;
    /** Emit only rows with a change (the summary still counts all). */
    bool changedOnly = false;
};

/** Machine-dependent leaf fragments skipped by default. */
std::vector<std::string> defaultIgnoreSubstrings();

/** Outcome of a comparison. */
struct StatsDiff
{
    std::vector<DiffRow> rows; ///< A's document order, B-only last
    std::size_t compared = 0;  ///< rows present in both
    std::size_t changed = 0;
    std::size_t failed = 0; ///< rows beyond the threshold gate
    std::size_t onlyA = 0;
    std::size_t onlyB = 0;

    bool pass() const { return failed == 0; }
};

/**
 * Flatten every numeric leaf of @p v (numbers, and booleans as 0/1)
 * into ("dotted.path", value) pairs, depth-first in document order.
 * Array elements get "[index]" path segments.
 */
std::vector<std::pair<std::string, double>> flattenNumericLeaves(
    const sim::JsonValue &v);

/** Compare two parsed reports. */
StatsDiff diffReports(const sim::JsonValue &a, const sim::JsonValue &b,
                      const StatsDiffOptions &opts);

/** Render @p d as a table in the requested format. */
std::string renderDiff(const StatsDiff &d, const StatsDiffOptions &opts,
                       const std::string &label_a,
                       const std::string &label_b);

} // namespace distda::driver

#endif // DISTDA_DRIVER_STATSDIFF_HH
