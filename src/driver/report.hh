/**
 * @file
 * Machine-readable run reports: one JSON document per run combining
 * the headline Metrics, the full stats tree (memory hierarchy, NoC,
 * energy accountant) and every probe-registered distribution. This is
 * the `--stats-json=` / `--report-dir=` output format; `--timeline=`
 * is handled by sim::Probe's Chrome-trace export directly.
 */

#ifndef DISTDA_DRIVER_REPORT_HH
#define DISTDA_DRIVER_REPORT_HH

#include <string>
#include <vector>

#include "src/driver/metrics.hh"
#include "src/driver/system.hh"
#include "src/verify/facts.hh"

namespace distda::sim
{
class Probe;
}

namespace distda::driver
{

/**
 * Serialize a run report as JSON text. @p probe may be null (report
 * without timeline-derived distributions); @p sys supplies the
 * hierarchy and energy stats trees. @p analysis (optional) adds an
 * "analysis" section with one fact store per analyzed kernel.
 */
std::string
buildRunReport(const Metrics &m, System &sys, const sim::Probe *probe,
               const std::vector<verify::FactStore> *analysis = nullptr);

/** buildRunReport() written to @p path; false (with warn) on error. */
bool
writeRunReport(const std::string &path, const Metrics &m, System &sys,
               const sim::Probe *probe,
               const std::vector<verify::FactStore> *analysis = nullptr);

} // namespace distda::driver

#endif // DISTDA_DRIVER_REPORT_HH
