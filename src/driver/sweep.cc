#include "src/driver/sweep.hh"

#include <sys/stat.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "src/compiler/plan_cache.hh"
#include "src/driver/config.hh"
#include "src/driver/pool.hh"
#include "src/sim/logging.hh"

namespace distda::driver
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Serialized stderr progress line: "[done/total] label ... eta". */
class ProgressReporter
{
  public:
    ProgressReporter(std::size_t total, bool enabled)
        : _total(total), _enabled(enabled), _start(Clock::now())
    {}

    ~ProgressReporter()
    {
        if (_enabled && _total > 0)
            std::fprintf(stderr, "\n");
    }

    void
    jobDone(const SweepResult &r)
    {
        if (!_enabled)
            return;
        std::lock_guard<std::mutex> lk(_mu);
        ++_done;
        const double elapsed_ms = msSince(_start);
        const double eta_s =
            _done > 0 ? elapsed_ms / 1000.0 *
                            static_cast<double>(_total - _done) /
                            static_cast<double>(_done)
                      : 0.0;
        std::fprintf(stderr,
                     "\r[%3zu/%3zu] %-24s %6.1fs elapsed, eta %5.1fs%s",
                     _done, _total,
                     (r.workload + "/" + r.label).c_str(),
                     elapsed_ms / 1000.0, eta_s,
                     r.ok ? "" : "  [FAILED]");
        std::fflush(stderr);
    }

  private:
    std::size_t _total;
    bool _enabled;
    Clock::time_point _start;
    std::mutex _mu;
    std::size_t _done = 0;
};

/** Report-file stem component: anything path-hostile becomes '-'. */
std::string
fileSafe(const std::string &s)
{
    std::string out = s;
    for (char &c : out) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
            c != '_' && c != '.')
            c = '-';
    }
    return out;
}

} // namespace

int
defaultJobCount()
{
    if (const char *env = std::getenv("DISTDA_JOBS")) {
        // Strict parse: "4x", "abc" or "" must not silently become 0
        // (atoi) and fall through to hardware_concurrency as if unset.
        std::int64_t n = 0;
        bool parsed = false;
        try {
            ScopedFailureCapture capture;
            n = parseInt(env, "DISTDA_JOBS");
            parsed = true;
        } catch (const SimFailure &) {
        }
        if (parsed && n > 0)
            return static_cast<int>(n);
        warn("ignoring DISTDA_JOBS='%s' (want a positive integer)",
             env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<SweepResult>
runSweep(const std::vector<SweepJob> &jobs, const SweepOptions &opts)
{
    std::vector<SweepResult> results(jobs.size());
    if (jobs.empty())
        return results;

    const bool prior_inform = informEnabled();
    if (opts.quietRuns)
        setInformEnabled(false);

    if (!opts.reportDir.empty() &&
        ::mkdir(opts.reportDir.c_str(), 0755) != 0 && errno != EEXIST) {
        warn("cannot create report dir '%s'", opts.reportDir.c_str());
    }

    ProgressReporter progress(jobs.size(), opts.progress);
    {
        const int workers =
            opts.jobs > 0 ? opts.jobs : defaultJobCount();
        ThreadPool pool(workers);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([&jobs, &results, &progress, &opts, i] {
                const SweepJob &job = jobs[i];
                SweepResult &r = results[i];
                r.index = i;
                r.workload = job.workload;
                r.label = job.label.empty()
                              ? archModelName(job.config.model)
                              : job.label;
                RunOptions run_opts = job.options;
                if (!opts.reportDir.empty()) {
                    const std::string stem =
                        opts.reportDir + "/" + fileSafe(r.workload) +
                        "_" + fileSafe(r.label);
                    run_opts.obs.timelinePath = stem + ".timeline.json";
                    run_opts.obs.statsJsonPath = stem + ".stats.json";
                }
                const auto t0 = Clock::now();
                try {
                    ScopedFailureCapture capture;
                    r.metrics =
                        runWorkload(job.workload, job.config,
                                    run_opts);
                    if (!job.label.empty())
                        r.metrics.config = job.label;
                    r.ok = true;
                } catch (const SimFailure &e) {
                    r.error = e.what();
                } catch (const std::exception &e) {
                    r.error = e.what();
                }
                r.wallMs = msSince(t0);
                progress.jobDone(r);
            });
        }
        pool.wait();
    }

    if (opts.quietRuns)
        setInformEnabled(prior_inform);

    if (opts.progress) {
        double hits = 0.0, misses = 0.0, saved_ms = 0.0;
        for (const SweepResult &r : results) {
            if (!r.ok)
                continue;
            hits += r.metrics.planCacheHits;
            misses += r.metrics.planCacheMisses;
            saved_ms += r.metrics.planCompileMsSaved;
        }
        const auto cache = compiler::PlanCache::process().stats();
        std::fprintf(stderr,
                     "plan cache: %.0f hit(s), %.0f miss(es), "
                     "%.1f ms compile saved (%zu cached plan(s))\n",
                     hits, misses, saved_ms, cache.entries);
    }
    return results;
}

bool
allOk(const std::vector<SweepResult> &results)
{
    for (const SweepResult &r : results) {
        if (!r.ok)
            return false;
    }
    return true;
}

void
dieOnFailures(const std::vector<SweepResult> &results)
{
    std::size_t failed = 0;
    for (const SweepResult &r : results) {
        if (!r.ok) {
            ++failed;
            warn("sweep job %zu (%s under %s) failed: %s", r.index,
                 r.workload.c_str(), r.label.c_str(), r.error.c_str());
        }
    }
    if (failed > 0)
        fatal("%zu of %zu sweep job(s) failed", failed, results.size());
}

std::string
csvHeader()
{
    return "workload,config,validated,time_ns,energy_pj,"
           "host_insts,accel_insts,mem_ops,cache_accesses,"
           "data_movement_bytes,noc_ctrl,noc_data,noc_acc_ctrl,"
           "noc_acc_data,intra,da,aa,mmio";
}

std::string
csvRow(const Metrics &m)
{
    return strfmt("%s,%s,%d,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,"
                  "%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f",
                  m.workload.c_str(), m.config.c_str(), m.validated,
                  m.timeNs, m.totalEnergyPj, m.hostInsts, m.accelInsts,
                  m.kernelMemOps, m.cacheAccesses, m.dataMovementBytes,
                  m.nocCtrlBytes, m.nocDataBytes, m.nocAccCtrlBytes,
                  m.nocAccDataBytes, m.intraBytes, m.daBytes, m.aaBytes,
                  m.mmioOps);
}

} // namespace distda::driver
