/**
 * @file
 * Declarative multi-run executor: every figure/table reproduction is a
 * sweep over independent (workload, configuration) simulations, so the
 * driver exposes them as a job list executed concurrently on a thread
 * pool. Results come back in job order regardless of completion order,
 * and — because each simulation is deterministic given its fixed RNG
 * seed — a sweep's metrics are bit-identical at any --jobs level;
 * parallelism is purely a wall-clock win.
 *
 * A job that panic()s or fatal()s is isolated: it surfaces as a failed
 * SweepResult (ok == false, error set) while its siblings run to
 * completion and the pool drains cleanly.
 */

#ifndef DISTDA_DRIVER_SWEEP_HH
#define DISTDA_DRIVER_SWEEP_HH

#include <string>
#include <vector>

#include "src/driver/metrics.hh"
#include "src/driver/runner.hh"

namespace distda::driver
{

/** One independent simulation in a sweep. */
struct SweepJob
{
    std::string workload;
    RunConfig config;
    RunOptions options;
    /**
     * Display name for this job's configuration (ablation variants
     * etc.); empty means the architecture model's name. Propagated
     * into Metrics::config on success.
     */
    std::string label;
};

/** Outcome of one SweepJob, in the same position as its job. */
struct SweepResult
{
    std::size_t index = 0; ///< position in the submitted job list
    std::string workload;
    std::string label;   ///< resolved job label (model name if unset)
    Metrics metrics;     ///< valid only when ok
    bool ok = false;
    std::string error;   ///< failure message when !ok
    double wallMs = 0.0; ///< wall-clock of this job on its worker
};

/** Executor knobs shared by every sweep entry point. */
struct SweepOptions
{
    /** Worker threads; <= 0 means defaultJobCount(). */
    int jobs = 0;
    /** Live "done/total + ETA" line on stderr while running. */
    bool progress = false;
    /** Silence inform() for the duration of the sweep (restored). */
    bool quietRuns = true;
    /**
     * When non-empty, every job writes its observability outputs into
     * this directory (created if missing) as
     * `<workload>_<label>.stats.json` / `<workload>_<label>.timeline.json`,
     * overriding any per-job ObsOptions paths. Stdout is untouched, so
     * CSV output stays byte-identical with reports enabled.
     */
    std::string reportDir;
};

/**
 * Worker-thread default: DISTDA_JOBS when set to a positive integer,
 * else std::thread::hardware_concurrency() (min 1).
 */
int defaultJobCount();

/**
 * Execute @p jobs concurrently and return one SweepResult per job, in
 * job order. Thread-safe to call from one thread at a time; the jobs
 * themselves may run on any worker.
 */
std::vector<SweepResult> runSweep(const std::vector<SweepJob> &jobs,
                                  const SweepOptions &opts = {});

/** True when every result completed without failure. */
bool allOk(const std::vector<SweepResult> &results);

/**
 * Die (fatal) listing every failed job; no-op when all succeeded.
 * Drivers whose output is meaningless on partial sweeps use this.
 */
void dieOnFailures(const std::vector<SweepResult> &results);

/**
 * Consolidated CSV reporting for sweep results (one header + one row
 * per run; columns exclude wall-clock so output is --jobs-invariant).
 */
std::string csvHeader();
std::string csvRow(const Metrics &m);

} // namespace distda::driver

#endif // DISTDA_DRIVER_SWEEP_HH
