/**
 * @file
 * The execution context a workload's host program runs in. It owns the
 * host timeline, compiles kernels on first use for the active
 * architecture model, dispatches invocations either to the host core
 * (OoO) or through the offload runtime, and charges host "glue"
 * instructions and accesses for code outside the offloaded regions.
 */

#ifndef DISTDA_DRIVER_CONTEXT_HH
#define DISTDA_DRIVER_CONTEXT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/driver/config.hh"
#include "src/driver/metrics.hh"
#include "src/driver/system.hh"
#include "src/engine/host_exec.hh"
#include "src/offload/runtime.hh"
#include "src/verify/analysis.hh"

namespace distda::driver
{

/** Host-program execution context for one run. */
class ExecContext
{
  public:
    /**
     * @p probe (optional, caller-owned, must outlive the context)
     * turns on timeline recording: the context threads it into every
     * engine it builds and emits one "invoke" span per kernel call.
     */
    ExecContext(System &sys, const RunConfig &config,
                sim::Probe *probe = nullptr);
    ~ExecContext();

    System &sys() { return _sys; }
    const RunConfig &config() const { return _config; }

    /** Integer parameter word. */
    static compiler::Word
    wi(std::int64_t v)
    {
        compiler::Word w;
        w.i = v;
        return w;
    }

    /** Floating-point parameter word. */
    static compiler::Word
    wf(double v)
    {
        compiler::Word w;
        w.f = v;
        return w;
    }

    /**
     * Invoke @p kernel with object @p bindings and scalar @p params.
     * Results of result-carries are retrievable afterwards.
     */
    void invoke(const compiler::Kernel &kernel,
                const std::vector<engine::ArrayRef> &bindings,
                const std::vector<compiler::Word> &params);

    /** Result value of the i-th result carry of the last invoke. */
    double resultF(std::size_t idx) const;
    std::int64_t resultI(std::size_t idx) const;

    /** Charge @p n host instructions of glue code. */
    void hostOps(double n);

    /** Host-side load/store (outside offloaded regions). */
    std::int64_t hostLoadI(const engine::ArrayRef &arr,
                           std::uint64_t i);
    double hostLoadF(const engine::ArrayRef &arr, std::uint64_t i);
    void hostStoreI(engine::ArrayRef &arr, std::uint64_t i,
                    std::int64_t v);
    void hostStoreF(engine::ArrayRef &arr, std::uint64_t i, double v);

    sim::Tick nowTick() const { return _now; }
    double nowNs() const { return static_cast<double>(_now) / 1000.0; }

    /** Compiled plan of a kernel (after first invoke). */
    const compiler::OffloadPlan *planOf(const std::string &kernel_name)
        const;

    /** Compile a kernel without running it (tables/characteristics). */
    const compiler::OffloadPlan &compileOnly(
        const compiler::Kernel &kernel);

    /**
     * Run the plan analyses over every kernel compiled so far, against
     * the invocation profiles recorded during the run (kernel-name
     * order). Profiles are recorded when config().analyzePlans is set
     * or a probe is attached; otherwise the analyses fall back to
     * static-only facts.
     */
    std::vector<verify::FactStore> analyzeAll() const;

    /** Collect final metrics (workload/validated filled by runner). */
    Metrics finish();

  private:
    struct CompiledKernel
    {
        std::shared_ptr<const compiler::OffloadPlan> plan;
        std::unique_ptr<offload::OffloadRuntime> runtime;
        std::unique_ptr<engine::HostExecutor> host;
        int probeTrack = -1; ///< per-kernel "invoke" span track
        verify::InvocationProfile profile;
        /**
         * Per-phase latency aggregation over this kernel's invocations;
         * add() asserts each record's conservation invariant.
         */
        offload::LifecycleStats lifecycle;
    };

    CompiledKernel &compiled(const compiler::Kernel &kernel);

    /**
     * The compile half of the compile→instantiate split: obtain an
     * immutable plan from (in order) a --plan-dir artifact, the
     * process-wide PlanCache, or a fresh compile, optionally
     * round-tripping it through the text artifact format.
     */
    std::shared_ptr<const compiler::OffloadPlan> acquirePlan(
        const compiler::Kernel &kernel);
    void recordProfile(CompiledKernel &ck,
                       const compiler::Kernel &kernel,
                       const std::vector<engine::ArrayRef> &bindings,
                       const std::vector<compiler::Word> &params);
    /** Sample one invocation's record into the probe's dists. */
    void recordLifecycle(const offload::OffloadRecord &rec);

    System &_sys;
    RunConfig _config;
    sim::Probe *_probe;
    sim::ClockDomain _hostClock;
    sim::Tick _now = 0;
    std::map<std::string, CompiledKernel> _kernels;
    std::map<const compiler::Kernel *, std::string> _kernelNames;
    std::vector<std::pair<int, compiler::Word>> _lastResults;
    double _hostInsts = 0.0;
    double _accelInsts = 0.0;
    double _memOps = 0.0;
    double _hostMemOps = 0.0;
    double _planHits = 0.0;
    double _planMisses = 0.0;
    double _planCompileMs = 0.0;
    double _planSavedMs = 0.0;
};

} // namespace distda::driver

#endif // DISTDA_DRIVER_CONTEXT_HH
