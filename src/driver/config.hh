/**
 * @file
 * The tested configurations of §VI-A:
 *   1. OoO            — out-of-order host alone
 *   2. Mono-CA        — monolithic accelerator @L3 bus @2GHz,
 *                        centralized stream accesses, 8KB private cache
 *   3. Mono-DA-IO     — monolithic IO-core accelerator @2GHz,
 *                        decentralized accesses
 *   4. Mono-DA-F      — monolithic 8x8 CGRA @1GHz, decentralized
 *   5. Dist-DA-IO     — distributed IO cores @2GHz
 *   6. Dist-DA-F      — distributed 5x5 CGRAs @1GHz
 * plus the Fig 14 software-optimization variants.
 */

#ifndef DISTDA_DRIVER_CONFIG_HH
#define DISTDA_DRIVER_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/compiler/plan.hh"
#include "src/engine/engine.hh"

namespace distda::driver
{

/** Architecture models under evaluation. */
enum class ArchModel
{
    OoO,
    MonoCA,
    MonoDA_IO,
    MonoDA_F,
    DistDA_IO,
    DistDA_F,
    DistDA_IO_SW, ///< Fig 14: 4-issue IO + software prefetching
    DistDA_F_A,   ///< Fig 14: allocation customized for locality
};

const char *archModelName(ArchModel m);

/** Every ArchModel, in --list order (headline six + Fig 14 variants). */
const std::vector<ArchModel> &allArchModels();

/**
 * Inverse of archModelName(); fatal (capturable) on an unknown name,
 * so a serve request naming a bogus config turns into an error reply
 * under ScopedFailureCapture rather than killing the daemon.
 */
ArchModel parseArchModel(const std::string &name);

/**
 * Strict numeric parsing for CLI flag values. Unlike atoi/atof these
 * are hard errors on empty strings, non-numeric input, trailing
 * garbage, and out-of-range values: a typo'd `--runs=1O0` must abort
 * with a diagnostic naming @p what, never silently become zero.
 */
std::int64_t parseInt(const std::string &text, const char *what);
double parseDouble(const std::string &text, const char *what);

/** Output mode for the per-kernel offload-lifecycle breakdown. */
enum class BreakdownMode
{
    Off,  ///< no breakdown output
    Text, ///< Table-VI-style per-kernel phase table
    Json, ///< machine-readable JSON document on stdout
};

/**
 * Strict parse of a --breakdown value: "" (bare flag) and "text" mean
 * Text, "json" means Json; anything else is a fatal error naming
 * @p what. "off" is accepted for script symmetry.
 */
BreakdownMode parseBreakdownMode(const std::string &text,
                                 const char *what);

/** All models evaluated in the headline figures, in plot order. */
std::vector<ArchModel> headlineModels();

/** One run's configuration. */
struct RunConfig
{
    ArchModel model = ArchModel::OoO;
    /** Accelerator clock override in GHz (0 = model default). */
    double accelGHz = 0.0;

    // Ablation knobs (defaults keep the paper's design choices).
    bool disableCombining = false;  ///< drop Fig 2d combining
    bool disableRetention = false;  ///< drop §V-B buffer reuse
    std::uint32_t bufferBytesOverride = 0; ///< per-cluster SRAM (0=4KB)
    int channelCapacityOverride = 0;       ///< decoupling depth (0=64)

    /** Static verification of compiled plans (src/verify). */
    compiler::VerifyMode verifyPlans = compiler::VerifyMode::Error;

    /**
     * Record invocation profiles and run the plan analyses
     * (src/verify/analysis.hh) over every compiled kernel. Off by
     * default: profile recording costs a little per invoke and the
     * perf gate measures the plain path.
     */
    bool analyzePlans = false;

    /**
     * Actor predecode control: -1 follows the process-wide
     * engine::setPredecodeEnabled toggle, 0 forces the microcode
     * interpreter, 1 forces the predecoded stream. Differential
     * jobs running both paths concurrently set this per run.
     */
    int predecodeOverride = -1;

    /**
     * Reuse compiled plans through the process-wide PlanCache
     * (src/compiler/plan_cache.hh). On by default: compilation is
     * deterministic, so a cached plan is bit-identical to a fresh
     * compile and sweep metrics do not depend on this flag.
     */
    bool planCache = true;
    /**
     * Plan-artifact directory (--plan-dir=): an existing
     * `<kernel>-<fingerprint>.plan` artifact is loaded, validated and
     * used instead of compiling; misses compile and dump the artifact
     * for the next run. Empty disables artifact I/O.
     */
    std::string planDir;
    /**
     * Round-trip every acquired plan through serialize → parse →
     * validate and hand the engine the deserialized copy; panics
     * unless re-serialization is byte-identical. The differential
     * fuzzer's replan leg runs with this on.
     */
    bool planRoundTrip = false;

    bool usesAccelerator() const { return model != ArchModel::OoO; }
    bool distributed() const
    {
        return model == ArchModel::DistDA_IO ||
               model == ArchModel::DistDA_F ||
               model == ArchModel::DistDA_IO_SW ||
               model == ArchModel::DistDA_F_A;
    }
    bool cgra() const
    {
        return model == ArchModel::MonoDA_F ||
               model == ArchModel::DistDA_F ||
               model == ArchModel::DistDA_F_A;
    }
    bool allocAffinity() const { return model == ArchModel::DistDA_F_A; }

    /** Compiler options implied by the model. */
    compiler::CompileOptions compileOptions() const;

    /** Engine configuration implied by the model. */
    engine::EngineConfig engineConfig() const;
};

} // namespace distda::driver

#endif // DISTDA_DRIVER_CONFIG_HH
