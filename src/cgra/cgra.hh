/**
 * @file
 * Statically-mapped CGRA fabric model and mapper (§VI-A, §VI-E).
 *
 * The paper provisions a 5x5 tile per L3 cluster for Dist-DA-F (four
 * float ALUs, four complex ALUs, fifteen integer ALUs plus port tiles)
 * and an 8x8 fabric for Mono-DA-F. Offload DFGs are mapped statically:
 * each operation is pinned to a processing element; the initiation
 * interval (II) follows from resource contention (ResMII), recurrences
 * (RecMII) and routing; larger DFGs than the fabric fold over it,
 * multiplying the II.
 */

#ifndef DISTDA_CGRA_CGRA_HH
#define DISTDA_CGRA_CGRA_HH

#include <cstdint>

#include "src/compiler/microcode.hh"

namespace distda::cgra
{

/** Fabric geometry and heterogeneous FU provisioning. */
struct CgraParams
{
    int rows = 5;
    int cols = 5;
    int intFus = 15;
    int floatFus = 4;
    int complexFus = 4;
    int portFus = 2;  ///< memory/channel port tiles
    std::uint64_t clockHz = 1'000'000'000ULL;

    int tiles() const { return rows * cols; }

    /** The Mono-DA-F 8x8 provisioning. */
    static CgraParams large();
};

/** Result of mapping one partition program onto a fabric. */
struct CgraMapping
{
    bool feasible = true;
    int ii = 1;            ///< cycles between iteration initiations
    int scheduleDepth = 1; ///< pipeline fill depth in cycles
    int opsMapped = 0;
    int tilesUsed = 0;
    int resMii = 1;
    int recMii = 1;
    int folds = 1;         ///< times the DFG folds over the fabric
};

/** FU class an individual microcode instruction needs. */
compiler::FuClass fuClassOfInst(const compiler::MicroInst &inst);

/** Statically map @p prog onto @p fabric. */
CgraMapping mapProgram(const compiler::MicroProgram &prog,
                       const CgraParams &fabric);

/**
 * Area model (mm^2 at 32nm), calibrated so that the paper's §VI-E
 * results hold: a 5x5 CGRA tile with buffers and ACP is 2.9% of one
 * L3 cluster (0.48% of the chip over 8 clusters) and the in-order-core
 * accelerator option is 1.9% of a cluster (0.3% of the chip).
 */
struct AreaModel
{
    double l3ClusterMm2 = 3.40;   ///< 256KB bank group + router slice
    double chipMm2 = 164.0;       ///< whole SoC
    double intFuMm2 = 0.00225;
    double floatFuMm2 = 0.00525;
    double complexFuMm2 = 0.00680;
    double portFuMm2 = 0.00150;
    double bufferPerKbMm2 = 0.00240; ///< access-unit SRAM
    double acpMm2 = 0.00310;
    double ioCoreMm2 = 0.05150;   ///< 1-issue IO core, 2 FP + 2 complex

    /** Area of one CGRA accelerator instance (fabric + 4KB buf + ACP). */
    double cgraAcceleratorMm2(const CgraParams &fabric) const;

    /** Area of one in-order-core accelerator instance. */
    double ioAcceleratorMm2() const;

    /** Fraction of one L3 cluster taken by @p accel_mm2. */
    double clusterFraction(double accel_mm2) const
    {
        return accel_mm2 / l3ClusterMm2;
    }

    /** Fraction of the chip for one accelerator per cluster (x8). */
    double chipFraction(double accel_mm2, int clusters = 8) const
    {
        return accel_mm2 * clusters / chipMm2;
    }
};

} // namespace distda::cgra

#endif // DISTDA_CGRA_CGRA_HH
