#include "src/cgra/cgra.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "src/sim/logging.hh"

namespace distda::cgra
{

using compiler::FuClass;
using compiler::MicroInst;
using compiler::MicroKind;
using compiler::MicroProgram;

CgraParams
CgraParams::large()
{
    CgraParams p;
    p.rows = 8;
    p.cols = 8;
    p.intFus = 38;
    p.floatFus = 10;
    p.complexFus = 10;
    p.portFus = 6;
    return p;
}

FuClass
fuClassOfInst(const MicroInst &inst)
{
    switch (inst.kind) {
      case MicroKind::Alu:
        return compiler::fuClassOf(inst.op);
      case MicroKind::LoadStream:
      case MicroKind::StoreStream:
      case MicroKind::LoadIdx:
      case MicroKind::StoreIdx:
        return FuClass::Mem;
      case MicroKind::Consume:
      case MicroKind::Produce:
      case MicroKind::CarryWrite:
        return FuClass::Ctrl;
      default:
        return FuClass::Int;
    }
}

namespace
{

/** Per-class op counts of a program. */
struct ClassCounts
{
    int intOps = 0, floatOps = 0, complexOps = 0, memOps = 0,
        ctrlOps = 0;
};

ClassCounts
countClasses(const MicroProgram &prog)
{
    ClassCounts c;
    for (const MicroInst &inst : prog.insts) {
        switch (fuClassOfInst(inst)) {
          case FuClass::Int: ++c.intOps; break;
          case FuClass::Float: ++c.floatOps; break;
          case FuClass::Complex: ++c.complexOps; break;
          case FuClass::Mem: ++c.memOps; break;
          case FuClass::Ctrl: ++c.ctrlOps; break;
        }
    }
    return c;
}

int
ceilDiv(int a, int b)
{
    return (a + b - 1) / b;
}

} // namespace

CgraMapping
mapProgram(const MicroProgram &prog, const CgraParams &fabric)
{
    CgraMapping m;
    m.opsMapped = static_cast<int>(prog.insts.size());
    if (prog.insts.empty())
        return m;

    const ClassCounts c = countClasses(prog);

    // ResMII: the most contended FU class bounds the initiation rate.
    // Ctrl ops share port tiles with memory ops.
    m.resMii = 1;
    if (c.intOps)
        m.resMii = std::max(m.resMii,
                            ceilDiv(c.intOps, std::max(fabric.intFus, 1)));
    if (c.floatOps)
        m.resMii = std::max(
            m.resMii, ceilDiv(c.floatOps, std::max(fabric.floatFus, 1)));
    if (c.complexOps)
        m.resMii = std::max(
            m.resMii,
            ceilDiv(c.complexOps, std::max(fabric.complexFus, 1)));
    if (c.memOps + c.ctrlOps) {
        // Port tiles front double-pumped access-unit buffers: two
        // buffer taps per port tile per fabric cycle.
        m.resMii = std::max(
            m.resMii, ceilDiv(c.memOps + c.ctrlOps,
                              2 * std::max(fabric.portFus, 1)));
    }

    // RecMII: the longest register-dependence chain from a carry
    // register read back to its CarryWrite must complete within II.
    std::vector<int> depth(prog.insts.size(), 1);
    std::vector<int> def_of(static_cast<std::size_t>(prog.numRegs), -1);
    m.recMii = 1;
    std::vector<bool> carry_reg(static_cast<std::size_t>(prog.numRegs),
                                false);
    for (const auto &cs : prog.carries)
        carry_reg[cs.reg] = true;
    for (std::size_t i = 0; i < prog.insts.size(); ++i) {
        const MicroInst &inst = prog.insts[i];
        int in_depth = 0;
        auto look = [&](std::uint16_t r) {
            if (r == compiler::noReg)
                return;
            if (carry_reg[r]) {
                in_depth = std::max(in_depth, 1);
            } else if (def_of[r] >= 0) {
                in_depth = std::max(
                    in_depth, depth[static_cast<std::size_t>(def_of[r])]);
            }
        };
        look(inst.a);
        look(inst.b);
        look(inst.c);
        depth[i] = in_depth + 1;
        if (inst.dst != compiler::noReg)
            def_of[inst.dst] = static_cast<int>(i);
        if (inst.kind == MicroKind::CarryWrite)
            m.recMii = std::max(m.recMii, depth[i] - 1);
    }

    // Greedy spatial placement: ops take PEs in topological order;
    // routing distance to the farthest input adds schedule depth.
    const int tiles = fabric.tiles();
    std::vector<std::pair<int, int>> pos(prog.insts.size());
    std::vector<bool> used(static_cast<std::size_t>(tiles), false);
    std::vector<int> sched(prog.insts.size(), 0);
    int used_count = 0;
    int depth_max = 0;
    for (std::size_t i = 0; i < prog.insts.size(); ++i) {
        const MicroInst &inst = prog.insts[i];
        // Inputs placed earlier define the preferred location.
        int px = 0, py = 0, ninputs = 0;
        int in_sched = 0;
        auto look = [&](std::uint16_t r) {
            if (r == compiler::noReg || def_of[r] < 0)
                return;
            const auto j = static_cast<std::size_t>(def_of[r]);
            if (j >= i)
                return;
            px += pos[j].first;
            py += pos[j].second;
            ++ninputs;
        };
        // def_of currently reflects the whole program; rebuild lazily:
        // approximate by using final def positions (static mapping).
        look(inst.a);
        look(inst.b);
        look(inst.c);
        const int want_x = ninputs ? px / ninputs : (fabric.cols / 2);
        const int want_y = ninputs ? py / ninputs : (fabric.rows / 2);
        // Nearest free tile (folding reuses tiles when all are busy).
        int best = -1, best_d = 1 << 30;
        for (int t = 0; t < tiles; ++t) {
            if (used[static_cast<std::size_t>(t)])
                continue;
            const int tx = t % fabric.cols, ty = t / fabric.cols;
            const int d = std::abs(tx - want_x) + std::abs(ty - want_y);
            if (d < best_d) {
                best_d = d;
                best = t;
            }
        }
        if (best < 0) {
            // Fabric full: fold — reuse tile 0 and clear usage.
            std::fill(used.begin(), used.end(), false);
            best = 0;
            best_d = 1;
        }
        used[static_cast<std::size_t>(best)] = true;
        ++used_count;
        pos[i] = {best % fabric.cols, best / fabric.cols};

        auto look2 = [&](std::uint16_t r) {
            if (r == compiler::noReg || def_of[r] < 0)
                return;
            const auto j = static_cast<std::size_t>(def_of[r]);
            if (j >= i)
                return;
            const int route = std::abs(pos[j].first - pos[i].first) +
                              std::abs(pos[j].second - pos[i].second);
            in_sched = std::max(in_sched,
                                sched[j] + 1 + std::max(route - 1, 0));
        };
        look2(inst.a);
        look2(inst.b);
        look2(inst.c);
        sched[i] = in_sched + 1;
        depth_max = std::max(depth_max, sched[i]);
    }

    m.tilesUsed = std::min(used_count, tiles);
    m.folds = ceilDiv(m.opsMapped, tiles);
    m.scheduleDepth = depth_max;
    m.ii = std::max({m.resMii, m.recMii, 1}) * m.folds;
    m.feasible = true;
    return m;
}

double
AreaModel::cgraAcceleratorMm2(const CgraParams &fabric) const
{
    const double fus = fabric.intFus * intFuMm2 +
                       fabric.floatFus * floatFuMm2 +
                       fabric.complexFus * complexFuMm2 +
                       fabric.portFus * portFuMm2;
    return fus + 4.0 * bufferPerKbMm2 + acpMm2;
}

double
AreaModel::ioAcceleratorMm2() const
{
    return ioCoreMm2 + 4.0 * bufferPerKbMm2 + acpMm2;
}

} // namespace distda::cgra
