/**
 * @file
 * Fuzz campaign driver: generate N cases from a base seed, run each
 * through the differential oracle (optionally across a thread pool),
 * shrink every failure to a minimal reproducer, and write the
 * reproducers out as .repro files. Also replays saved corpus files so
 * every past counterexample stays a permanent regression test.
 */

#ifndef DISTDA_FUZZ_CAMPAIGN_HH
#define DISTDA_FUZZ_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/diff.hh"
#include "src/fuzz/gen.hh"
#include "src/fuzz/shrink.hh"

namespace distda::fuzz
{

struct CampaignOptions
{
    std::uint64_t seed = 1;
    int runs = 100;
    int jobs = 1;
    GenOptions gen;
    DiffOptions diff;
    /** Minimize failures before reporting/saving them. */
    bool shrink = true;
    int shrinkRounds = 8;
    /** Directory to save .repro files into ("" = don't save). */
    std::string outDir;
    /** Per-run progress lines on stderr. */
    bool verbose = false;
};

/** One failing run, already shrunk when options asked for it. */
struct CampaignFailure
{
    int run = 0;             ///< index within the campaign
    std::uint64_t caseSeed = 0;
    std::string signature;   ///< DiffOutcome::signature of the original
    std::string summary;     ///< report for the minimized case
    FuzzCase minimized;
    std::string savedPath;   ///< "" unless written to outDir
};

struct CampaignResult
{
    int runs = 0;
    int failures = 0; ///< distinct failing runs (pre-dedup)
    /** One entry per failing run, sorted by run index. */
    std::vector<CampaignFailure> details;

    bool ok() const { return failures == 0; }
};

/** Seed for run @p run of a campaign based at @p seed. */
std::uint64_t caseSeedFor(std::uint64_t seed, int run);

/** Run the campaign described by @p opts. */
CampaignResult runCampaign(const CampaignOptions &opts);

/**
 * Replay saved reproducers. Each file is loaded, re-validated, and run
 * through the full oracle; any finding is reported. Returns the number
 * of files that failed (0 = corpus green).
 */
int replayCorpus(const std::vector<std::string> &files,
                 const DiffOptions &opts = {}, bool verbose = false);

} // namespace distda::fuzz

#endif // DISTDA_FUZZ_CAMPAIGN_HH
