/**
 * @file
 * Greedy case minimizer. Given a failing case and an oracle ("does
 * this candidate still fail the same way?"), repeatedly applies
 * reductions — drop invocations, drop kernels, delete DFG nodes with
 * their transitive users, halve trip counts, simplify affine
 * patterns — keeping each candidate only if it remains structurally
 * valid (validateCase) and the oracle still fires. Runs to fixpoint,
 * producing the smallest reproducer to commit under tests/corpus/.
 */

#ifndef DISTDA_FUZZ_SHRINK_HH
#define DISTDA_FUZZ_SHRINK_HH

#include <functional>

#include "src/fuzz/case.hh"

namespace distda::fuzz
{

/** true = the candidate still exhibits the original failure. */
using ShrinkOracle = std::function<bool(const FuzzCase &)>;

struct ShrinkStats
{
    int attempts = 0;
    int accepted = 0;
};

/**
 * Minimize @p c under @p still_fails. The oracle is never called with
 * a case that fails validateCase(). @p max_rounds bounds full passes
 * over the reduction set (each pass is quadratic-ish in case size).
 */
FuzzCase shrinkCase(const FuzzCase &c, const ShrinkOracle &still_fails,
                    int max_rounds = 8, ShrinkStats *stats = nullptr);

} // namespace distda::fuzz

#endif // DISTDA_FUZZ_SHRINK_HH
