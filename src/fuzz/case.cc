#include "src/fuzz/case.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/compiler/plan_io.hh"
#include "src/sim/logging.hh"

namespace distda::fuzz
{

using compiler::AccessDir;
using compiler::Kernel;
using compiler::MemObjectDecl;
using compiler::Node;
using compiler::NodeKind;
using compiler::OpCode;
using compiler::PatternKind;
using compiler::Word;

// The kernel-section line format (kernel/loop/kobject/kparam/node/
// result/endkernel) is owned by src/compiler/plan_io.{hh,cc} and
// shared byte-for-byte with plan artifacts; reproducers add only the
// case-level lines (seed/object/invoke) around it.
using compiler::planio::hexWord;
using compiler::planio::readHex;
using compiler::planio::readI64;
using compiler::planio::readName;
using compiler::planio::readU64;
using compiler::planio::sanitizeName;
using compiler::planio::wordFromBits;

namespace
{

constexpr const char *magic = "distda-fuzz-repro v1";

} // namespace

std::int64_t
FuzzCase::tripOf(const Invocation &inv) const
{
    const Kernel &k = kernels[static_cast<std::size_t>(inv.kernel)];
    if (k.loop.extentParam < 0)
        return k.loop.staticExtent;
    const std::size_t p = static_cast<std::size_t>(k.loop.extentParam);
    if (p >= inv.paramBits.size())
        return 0;
    return wordFromBits(inv.paramBits[p]).i;
}

std::string
serializeCase(const FuzzCase &c)
{
    std::ostringstream out;
    out << magic << '\n';
    out << "seed " << c.seed << '\n';
    out << "dataseed " << c.dataSeed << '\n';
    for (const CaseObject &o : c.objects) {
        out << "object " << o.elemCount << ' ' << o.elemBytes << ' '
            << (o.isFloat ? 1 : 0) << ' ' << o.indexBound << ' '
            << sanitizeName(o.name) << '\n';
    }
    for (const Kernel &k : c.kernels)
        compiler::planio::writeKernelLines(out, k);
    for (const Invocation &inv : c.invocations) {
        out << "invoke " << inv.kernel << " objs " << inv.objects.size();
        for (int o : inv.objects)
            out << ' ' << o;
        out << " params " << inv.paramBits.size();
        for (std::uint64_t p : inv.paramBits)
            out << ' ' << hexWord(p);
        out << '\n';
    }
    out << "end\n";
    return out.str();
}

FuzzCase
parseCase(const std::string &text)
{
    FuzzCase c;
    std::istringstream lines(text);
    std::string line;
    if (!std::getline(lines, line) || line != magic)
        fatal("repro: bad header '%s'", line.c_str());
    compiler::planio::KernelLineReader kreader;
    bool saw_end = false;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream in(line);
        std::string tok;
        in >> tok;
        if (tok == "end") {
            saw_end = true;
            break;
        }
        if (kreader.consume(tok, in))
            continue;
        if (tok == "seed") {
            c.seed = readU64(in, "seed");
        } else if (tok == "dataseed") {
            c.dataSeed = readU64(in, "dataseed");
        } else if (tok == "object") {
            CaseObject o;
            o.elemCount = readU64(in, "object count");
            o.elemBytes = static_cast<std::uint32_t>(
                readU64(in, "object bytes"));
            o.isFloat = readI64(in, "object float") != 0;
            o.indexBound = readU64(in, "object indexbound");
            o.name = readName(in, "object name");
            c.objects.push_back(std::move(o));
        } else if (tok == "invoke") {
            Invocation inv;
            inv.kernel = static_cast<int>(readI64(in, "invoke kernel"));
            std::string kw;
            in >> kw;
            if (kw != "objs")
                fatal("repro: invoke missing objs");
            const std::uint64_t nobjs = readU64(in, "invoke obj count");
            if (nobjs > 1024)
                fatal("repro: absurd invoke obj count");
            for (std::uint64_t i = 0; i < nobjs; ++i) {
                inv.objects.push_back(
                    static_cast<int>(readI64(in, "invoke obj")));
            }
            in >> kw;
            if (kw != "params")
                fatal("repro: invoke missing params");
            const std::uint64_t nparams =
                readU64(in, "invoke param count");
            if (nparams > 1024)
                fatal("repro: absurd invoke param count");
            for (std::uint64_t i = 0; i < nparams; ++i)
                inv.paramBits.push_back(readHex(in, "invoke param"));
            c.invocations.push_back(std::move(inv));
        } else {
            fatal("repro: unknown line '%s'", line.c_str());
        }
    }
    if (kreader.inKernel())
        fatal("repro: unterminated kernel");
    if (!saw_end)
        fatal("repro: missing end marker");
    c.kernels = std::move(kreader.kernels);
    return c;
}

namespace
{

/** Largest magnitude storable in an integer object of @p bytes. */
std::uint64_t
intTypeMax(std::uint32_t bytes)
{
    return bytes >= 8 ? ~0ULL >> 1 : (1ULL << (bytes * 8 - 1)) - 1;
}

std::string
checkKernelStructure(const Kernel &k)
{
    std::string err;
    bool threw = false;
    {
        ScopedFailureCapture capture;
        try {
            k.verify();
        } catch (const SimFailure &f) {
            err = f.what();
            threw = true;
        }
    }
    return threw ? err : std::string{};
}

} // namespace

std::string
validateCase(const FuzzCase &c)
{
    using distda::strfmt;
    if (c.invocations.empty())
        return "case has no invocations";
    for (std::size_t i = 0; i < c.objects.size(); ++i) {
        const CaseObject &o = c.objects[i];
        if (o.elemCount == 0)
            return strfmt("object %zu has zero elements", i);
        if (o.elemBytes != 1 && o.elemBytes != 2 && o.elemBytes != 4 &&
            o.elemBytes != 8)
            return strfmt("object %zu has bad element size %u", i,
                          o.elemBytes);
        if (o.isFloat && o.elemBytes < 4)
            return strfmt("object %zu: no %u-byte floats", i,
                          o.elemBytes);
        if (o.indexBound > 0) {
            if (o.isFloat)
                return strfmt("object %zu: float index object", i);
            if (o.indexBound - 1 > intTypeMax(o.elemBytes))
                return strfmt("object %zu: indexBound %llu overflows "
                              "%u-byte elements",
                              i,
                              static_cast<unsigned long long>(
                                  o.indexBound),
                              o.elemBytes);
        }
    }
    for (std::size_t ki = 0; ki < c.kernels.size(); ++ki) {
        const Kernel &k = c.kernels[ki];
        const std::string err = checkKernelStructure(k);
        if (!err.empty())
            return strfmt("kernel %zu: %s", ki, err.c_str());
        for (std::size_t kj = 0; kj < ki; ++kj) {
            if (c.kernels[kj].name == k.name)
                return strfmt("kernels %zu and %zu share name '%s' "
                              "(the plan cache keys on it)",
                              kj, ki, k.name.c_str());
        }
        // UB discipline for hand-written/mutated cases: divisors and
        // shift amounts must be provably safe constants, and F2I (UB
        // for out-of-range doubles) is banned outright.
        for (const Node &n : k.nodes) {
            if (n.kind != NodeKind::Compute)
                continue;
            auto constOf = [&k](int id) -> const Node * {
                if (id < 0 || id >= static_cast<int>(k.nodes.size()))
                    return nullptr;
                const Node &in = k.node(id);
                return in.kind == NodeKind::ConstInt ||
                               in.kind == NodeKind::ConstFloat
                           ? &in
                           : nullptr;
            };
            if (n.op == OpCode::IDiv || n.op == OpCode::IRem) {
                const Node *d = constOf(n.inputB);
                if (!d || d->kind != NodeKind::ConstInt ||
                    d->imm.i <= 0)
                    return strfmt("kernel %zu node %d: %s divisor "
                                  "must be a positive ConstInt",
                                  ki, n.id, compiler::opName(n.op));
            }
            if (n.op == OpCode::IShl || n.op == OpCode::IShr) {
                const Node *s = constOf(n.inputB);
                if (!s || s->kind != NodeKind::ConstInt ||
                    s->imm.i < 0 || s->imm.i > 16)
                    return strfmt("kernel %zu node %d: shift amount "
                                  "must be a ConstInt in [0, 16]",
                                  ki, n.id);
            }
            if (n.op == OpCode::FDiv) {
                const Node *d = constOf(n.inputB);
                if (!d || d->kind != NodeKind::ConstFloat ||
                    d->imm.f == 0.0)
                    return strfmt("kernel %zu node %d: FDiv divisor "
                                  "must be a nonzero ConstFloat",
                                  ki, n.id);
            }
            if (n.op == OpCode::F2I)
                return strfmt("kernel %zu node %d: F2I is not "
                              "differential-safe (out-of-range "
                              "conversion is UB)",
                              ki, n.id);
        }
    }
    for (std::size_t ii = 0; ii < c.invocations.size(); ++ii) {
        const Invocation &inv = c.invocations[ii];
        if (inv.kernel < 0 ||
            inv.kernel >= static_cast<int>(c.kernels.size()))
            return strfmt("invocation %zu: bad kernel index %d", ii,
                          inv.kernel);
        const Kernel &k =
            c.kernels[static_cast<std::size_t>(inv.kernel)];
        if (inv.objects.size() != k.objects.size())
            return strfmt("invocation %zu: %zu bindings for %zu objects",
                          ii, inv.objects.size(), k.objects.size());
        if (inv.paramBits.size() != k.paramNames.size())
            return strfmt("invocation %zu: %zu params for %zu declared",
                          ii, inv.paramBits.size(),
                          k.paramNames.size());
        for (std::size_t oi = 0; oi < inv.objects.size(); ++oi) {
            const int co = inv.objects[oi];
            if (co < 0 || co >= static_cast<int>(c.objects.size()))
                return strfmt("invocation %zu: bad case object %d", ii,
                              co);
            for (std::size_t oj = 0; oj < oi; ++oj) {
                if (inv.objects[oj] == co)
                    return strfmt("invocation %zu: object %d bound "
                                  "twice (aliasing is outside the "
                                  "offload model)",
                                  ii, co);
            }
            const CaseObject &obj =
                c.objects[static_cast<std::size_t>(co)];
            const MemObjectDecl &decl = k.objects[oi];
            if (obj.elemCount != decl.elemCount ||
                obj.elemBytes != decl.elemBytes ||
                obj.isFloat != decl.isFloat)
                return strfmt("invocation %zu: binding %zu shape "
                              "mismatch",
                              ii, oi);
        }
        const std::int64_t trip = c.tripOf(inv);
        if (trip <= 0)
            return strfmt("invocation %zu: trip %lld", ii,
                          static_cast<long long>(trip));
        for (const Node &n : k.nodes) {
            if (n.kind != NodeKind::Access)
                continue;
            const CaseObject &obj = c.objects[static_cast<std::size_t>(
                inv.objects[static_cast<std::size_t>(n.objId)])];
            if (n.dir == AccessDir::Store && obj.indexBound > 0)
                return strfmt("invocation %zu: store to index object "
                              "'%s'",
                              ii, obj.name.c_str());
            if (n.pattern != PatternKind::Affine)
                continue;
            std::int64_t base = n.affine.constBase;
            for (std::size_t p = 0; p < n.affine.paramCoeffs.size();
                 ++p) {
                if (p >= inv.paramBits.size())
                    break;
                base += n.affine.paramCoeffs[p] *
                        wordFromBits(inv.paramBits[p]).i;
            }
            const std::int64_t last =
                base + n.affine.ivCoeff * (trip - 1);
            const std::int64_t lo = std::min(base, last);
            const std::int64_t hi = std::max(base, last);
            if (lo < 0 ||
                hi >= static_cast<std::int64_t>(obj.elemCount))
                return strfmt("invocation %zu: access %d spans "
                              "[%lld, %lld] outside object '%s' "
                              "(%llu elems)",
                              ii, n.id, static_cast<long long>(lo),
                              static_cast<long long>(hi),
                              obj.name.c_str(),
                              static_cast<unsigned long long>(
                                  obj.elemCount));
        }
    }
    return {};
}

void
saveCase(const FuzzCase &c, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write repro '%s'", path.c_str());
    out << serializeCase(c);
    if (!out.good())
        fatal("write to repro '%s' failed", path.c_str());
}

FuzzCase
loadCase(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read repro '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseCase(buf.str());
}

} // namespace distda::fuzz
