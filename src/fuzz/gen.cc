#include "src/fuzz/gen.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/sim/logging.hh"
#include "src/sim/rng.hh"

namespace distda::fuzz
{

using compiler::AffineExpr;
using compiler::Kernel;
using compiler::KernelBuilder;
using compiler::OpCode;
using compiler::ValueRef;
using compiler::Word;

namespace
{

// Magnitude discipline. Integer loads from data objects are assumed
// bounded by kIntLoadBound (stores are masked down to it when needed),
// multiplication operands stay below kMulCap so products fit kBoundCap,
// and kBoundCap itself leaves >20 bits of headroom below INT64_MAX for
// additive slop — no generated arithmetic can reach signed overflow.
constexpr std::uint64_t kIntLoadBound = 65535;
constexpr std::uint64_t kMulCap = 1ULL << 20;
constexpr std::uint64_t kBoundCap = 1ULL << 40;
// Floats: loads assumed below kFloatLoadBound (stores clamped to it
// via fmin/fmax), per-kernel chains stay far below overflow.
constexpr double kFloatLoadBound = 1024.0;
constexpr double kFloatCap = 1e30;

/** A pool value with its conservative magnitude bound. */
struct Val
{
    ValueRef ref;
    std::uint64_t ib = 0; ///< |value| <= ib (integers)
    double fb = 0.0;      ///< |value| <= fb (floats)
    bool nonneg = false;  ///< provably >= 0 (integers)
};

/** Case object plus generation-time metadata. */
struct GenObject
{
    CaseObject spec;
    int indexTarget = -1; ///< index objects: target case object
};

std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) +
                           (a >> 2));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return x ? x : 1;
}

/** Generates one kernel body under the magnitude discipline. */
class BodyGen
{
  public:
    BodyGen(sim::Rng &rng, KernelBuilder &b) : _rng(rng), _b(b) {}

    void
    pushInt(ValueRef r, std::uint64_t ib, bool nonneg)
    {
        _ints.push_back(Val{r, ib, 0.0, nonneg});
    }

    void pushFloat(ValueRef r, double fb)
    {
        _floats.push_back(Val{r, 0, fb, false});
    }

    bool haveFloats() const { return !_floats.empty(); }

    Val
    freshConstInt()
    {
        const std::int64_t v =
            static_cast<std::int64_t>(_rng.nextBelow(17)) - 8;
        return Val{_b.constInt(v),
                   static_cast<std::uint64_t>(v < 0 ? -v : v), 0.0,
                   v >= 0};
    }

    Val
    freshConstFloat()
    {
        const double v = _rng.nextDouble() * 8.0 - 4.0;
        return Val{_b.constFloat(v), 0, 4.0, false};
    }

    /** Pool value (or fresh constant) with |v| <= @p max_ib. */
    Val
    pickInt(std::uint64_t max_ib)
    {
        std::vector<std::size_t> ok;
        for (std::size_t i = 0; i < _ints.size(); ++i) {
            if (_ints[i].ib <= max_ib)
                ok.push_back(i);
        }
        if (ok.empty() || _rng.nextBelow(6) == 0)
            return freshConstInt();
        return _ints[ok[_rng.nextBelow(ok.size())]];
    }

    Val
    pickFloat(double max_fb)
    {
        std::vector<std::size_t> ok;
        for (std::size_t i = 0; i < _floats.size(); ++i) {
            if (_floats[i].fb <= max_fb)
                ok.push_back(i);
        }
        if (ok.empty() || _rng.nextBelow(6) == 0)
            return freshConstFloat();
        return _floats[ok[_rng.nextBelow(ok.size())]];
    }

    /** A store-safe integer: |v| <= kIntLoadBound, masking if needed. */
    Val
    storableInt()
    {
        Val v = pickInt(kBoundCap);
        if (v.ib > kIntLoadBound) {
            Val mask{_b.constInt(0xFFFF), 0xFFFF, 0.0, true};
            v = Val{_b.compute(OpCode::IAnd, v.ref, mask.ref), 0xFFFF,
                    0.0, true};
        }
        return v;
    }

    /** A store-safe float: |v| <= kFloatLoadBound, clamping if needed. */
    Val
    storableFloat()
    {
        Val v = pickFloat(kFloatCap);
        if (v.fb > kFloatLoadBound) {
            const ValueRef hi = _b.constFloat(kFloatLoadBound);
            const ValueRef lo = _b.constFloat(-kFloatLoadBound);
            ValueRef r = _b.fmin(v.ref, hi);
            r = _b.fmax(r, lo);
            v = Val{r, 0, kFloatLoadBound, false};
        }
        return v;
    }

    /** Integer provably in [0, count): rem by count, then abs. */
    Val
    clampedIndex(std::uint64_t count)
    {
        Val v = pickInt(kBoundCap);
        const ValueRef c =
            _b.constInt(static_cast<std::int64_t>(count));
        ValueRef r = _b.compute(OpCode::IRem, v.ref, c);
        r = _b.iabs(r);
        return Val{r, count - 1, 0.0, true};
    }

    /** A small nonnegative int usable as a comparison operand. */
    Val
    predicate()
    {
        const Val a = pickInt(kBoundCap);
        const Val b = pickInt(kBoundCap);
        static constexpr OpCode cmps[] = {OpCode::ICmpLt, OpCode::ICmpLe,
                                          OpCode::ICmpEq,
                                          OpCode::ICmpNe};
        const OpCode op = cmps[_rng.nextBelow(4)];
        return Val{_b.compute(op, a.ref, b.ref), 1, 0.0, true};
    }

    /** Run @p n random compute steps, growing the pools. */
    void
    computeSteps(int n)
    {
        for (int i = 0; i < n; ++i)
            step();
    }

  private:
    void
    step()
    {
        switch (_rng.nextBelow(18)) {
          case 0: { // iadd / isub
              const Val a = pickInt(kBoundCap / 2);
              const Val b = pickInt(kBoundCap - a.ib);
              const bool sub = _rng.nextBelow(2) == 0;
              const ValueRef r = _b.compute(
                  sub ? OpCode::ISub : OpCode::IAdd, a.ref, b.ref);
              pushInt(r, a.ib + b.ib, !sub && a.nonneg && b.nonneg);
              break;
          }
          case 1: { // imul
              const Val a = pickInt(kMulCap);
              const Val b = pickInt(kMulCap);
              pushInt(_b.imul(a.ref, b.ref), a.ib * b.ib,
                      a.nonneg && b.nonneg);
              break;
          }
          case 2: { // idiv / irem by a positive constant
              const Val a = pickInt(kBoundCap);
              const std::int64_t d =
                  1 + static_cast<std::int64_t>(_rng.nextBelow(9));
              const ValueRef dc = _b.constInt(d);
              if (_rng.nextBelow(2) == 0) {
                  pushInt(_b.compute(OpCode::IDiv, a.ref, dc), a.ib,
                          a.nonneg);
              } else {
                  pushInt(_b.compute(OpCode::IRem, a.ref, dc),
                          static_cast<std::uint64_t>(d - 1), a.nonneg);
              }
              break;
          }
          case 3: { // imin / imax
              const Val a = pickInt(kBoundCap);
              const Val b = pickInt(kBoundCap);
              const bool mx = _rng.nextBelow(2) == 0;
              pushInt(_b.compute(mx ? OpCode::IMax : OpCode::IMin,
                                 a.ref, b.ref),
                      std::max(a.ib, b.ib), a.nonneg && b.nonneg);
              break;
          }
          case 4: { // iabs
              const Val a = pickInt(kBoundCap);
              pushInt(_b.iabs(a.ref), a.ib, true);
              break;
          }
          case 5: { // iand with a mask constant
              const Val a = pickInt(kBoundCap);
              static constexpr std::int64_t masks[] = {0xF, 0xFF, 0xFFF,
                                                       0xFFFF};
              const std::int64_t m = masks[_rng.nextBelow(4)];
              pushInt(_b.compute(OpCode::IAnd, a.ref, _b.constInt(m)),
                      static_cast<std::uint64_t>(m), true);
              break;
          }
          case 6: { // ior / ixor
              const Val a = pickInt(kBoundCap / 4);
              const Val b = pickInt(kBoundCap / 4);
              const bool x = _rng.nextBelow(2) == 0;
              pushInt(_b.compute(x ? OpCode::IXor : OpCode::IOr, a.ref,
                                 b.ref),
                      2 * std::max(a.ib, b.ib) + 1,
                      a.nonneg && b.nonneg);
              break;
          }
          case 7: { // ishl / ishr by a small constant
              const Val a = pickInt(kBoundCap >> 3);
              const std::int64_t s =
                  1 + static_cast<std::int64_t>(_rng.nextBelow(3));
              const ValueRef sc = _b.constInt(s);
              if (_rng.nextBelow(2) == 0) {
                  pushInt(_b.compute(OpCode::IShl, a.ref, sc),
                          a.ib << s, a.nonneg);
              } else {
                  pushInt(_b.compute(OpCode::IShr, a.ref, sc), a.ib,
                          a.nonneg);
              }
              break;
          }
          case 8: { // icmp
              _ints.push_back(predicate());
              break;
          }
          case 9: { // integer select
              const Val c = predicate();
              const Val t = pickInt(kBoundCap / 2);
              const Val f = pickInt(kBoundCap / 2);
              pushInt(_b.select(c.ref, t.ref, f.ref),
                      std::max(t.ib, f.ib), t.nonneg && f.nonneg);
              break;
          }
          case 10: { // i2f
              const Val a = pickInt(kBoundCap);
              pushFloat(_b.compute(OpCode::I2F, a.ref),
                        static_cast<double>(a.ib));
              break;
          }
          case 11: { // fadd / fsub
              const Val a = pickFloat(kFloatCap / 2);
              const Val b = pickFloat(kFloatCap / 2);
              const bool sub = _rng.nextBelow(2) == 0;
              pushFloat(_b.compute(sub ? OpCode::FSub : OpCode::FAdd,
                                   a.ref, b.ref),
                        a.fb + b.fb);
              break;
          }
          case 12: { // fmul
              const Val a = pickFloat(1e12);
              const Val b = pickFloat(1e12);
              pushFloat(_b.fmul(a.ref, b.ref), a.fb * b.fb);
              break;
          }
          case 13: { // fdiv by a constant away from zero
              const Val a = pickFloat(kFloatCap / 4);
              const double d = (_rng.nextDouble() * 3.5 + 0.5) *
                               (_rng.nextBelow(2) ? 1.0 : -1.0);
              pushFloat(_b.fdiv(a.ref, _b.constFloat(d)), a.fb * 2.0);
              break;
          }
          case 14: { // fsqrt of |x|
              const Val a = pickFloat(kFloatCap);
              const ValueRef abs = _b.compute(OpCode::FAbs, a.ref);
              pushFloat(_b.fsqrt(abs),
                        a.fb > 1.0 ? std::sqrt(a.fb) : 1.0);
              break;
          }
          case 15: { // fmin / fmax / fneg / fabs
              const Val a = pickFloat(kFloatCap);
              switch (_rng.nextBelow(4)) {
                case 0: {
                    const Val b = pickFloat(kFloatCap);
                    pushFloat(_b.fmin(a.ref, b.ref),
                              std::max(a.fb, b.fb));
                    break;
                }
                case 1: {
                    const Val b = pickFloat(kFloatCap);
                    pushFloat(_b.fmax(a.ref, b.ref),
                              std::max(a.fb, b.fb));
                    break;
                }
                case 2:
                    pushFloat(_b.compute(OpCode::FNeg, a.ref), a.fb);
                    break;
                default:
                    pushFloat(_b.compute(OpCode::FAbs, a.ref), a.fb);
                    break;
              }
              break;
          }
          case 16: { // fcmp -> int predicate
              const Val a = pickFloat(kFloatCap);
              const Val b = pickFloat(kFloatCap);
              static constexpr OpCode cmps[] = {
                  OpCode::FCmpLt, OpCode::FCmpLe, OpCode::FCmpEq};
              pushInt(_b.compute(cmps[_rng.nextBelow(3)], a.ref, b.ref),
                      1, true);
              break;
          }
          default: { // float select
              const Val c = predicate();
              const Val t = pickFloat(kFloatCap / 2);
              const Val f = pickFloat(kFloatCap / 2);
              pushFloat(_b.select(c.ref, t.ref, f.ref),
                        std::max(t.fb, f.fb));
              break;
          }
        }
    }

    sim::Rng &_rng;
    KernelBuilder &_b;
    std::vector<Val> _ints;
    std::vector<Val> _floats;
};

/** Case-level generator state. */
class CaseGen
{
  public:
    CaseGen(std::uint64_t seed, const GenOptions &opts)
        : _rng(mix(seed, 0x6675'7a7a)), _opts(opts)
    {
        _out.seed = seed;
        _out.dataSeed = mix(seed, 0x6461'7461);
    }

    FuzzCase
    run()
    {
        makeObjects();
        const Shape shape = _opts.shape;
        int nkernels = 1;
        if (shape == Shape::MultiKernel) {
            nkernels = 2 + static_cast<int>(_rng.nextBelow(2));
        } else if (shape == Shape::Mixed) {
            nkernels = 1 + static_cast<int>(_rng.nextBelow(3));
        } else if (_rng.nextBelow(3) == 0) {
            nkernels = 2;
        }
        for (int k = 0; k < nkernels; ++k) {
            Shape ks = shape;
            if (shape == Shape::Mixed) {
                static constexpr Shape pool[] = {
                    Shape::Parallel, Shape::Pipeline,
                    Shape::NonPartitionable, Shape::CrossCluster};
                ks = pool[_rng.nextBelow(4)];
            } else if (shape == Shape::MultiKernel) {
                ks = _rng.nextBelow(2) ? Shape::Parallel
                                       : Shape::Pipeline;
            }
            makeKernel(k, ks, shape == Shape::MultiKernel && k > 0);
        }
        makeInvocations();
        return std::move(_out);
    }

  private:
    /** 2-5 data objects plus one index object. */
    void
    makeObjects()
    {
        const int ndata = 2 + static_cast<int>(_rng.nextBelow(4));
        for (int i = 0; i < ndata; ++i) {
            GenObject o;
            o.spec.name = strfmt("o%d", i);
            o.spec.elemCount = 24 + _rng.nextBelow(200);
            o.spec.isFloat = _rng.nextBelow(3) == 0;
            if (o.spec.isFloat) {
                o.spec.elemBytes = _rng.nextBelow(2) ? 8 : 4;
            } else {
                static constexpr std::uint32_t sizes[] = {1, 2, 4, 8};
                o.spec.elemBytes = sizes[_rng.nextBelow(4)];
            }
            _objs.push_back(std::move(o));
        }
        // The index object: half the time self-targeted (enabling
        // memory-recurrence chases), else aimed at a data object.
        GenObject idx;
        idx.spec.name = strfmt("idx%d", ndata);
        idx.spec.elemCount = 24 + _rng.nextBelow(160);
        idx.spec.elemBytes = _rng.nextBelow(2) ? 8 : 4;
        idx.spec.isFloat = false;
        if (_rng.nextBelow(2) == 0) {
            idx.indexTarget = static_cast<int>(_objs.size());
            idx.spec.indexBound = idx.spec.elemCount;
        } else {
            idx.indexTarget =
                pickIntDataObject(/*exclude=*/-1);
            idx.spec.indexBound =
                _objs[static_cast<std::size_t>(idx.indexTarget)]
                    .spec.elemCount;
        }
        _objs.push_back(std::move(idx));
        for (const GenObject &o : _objs)
            _out.objects.push_back(o.spec);
    }

    int
    pickIntDataObject(int exclude)
    {
        std::vector<int> ok;
        for (std::size_t i = 0; i < _objs.size(); ++i) {
            if (_objs[i].spec.indexBound == 0 &&
                static_cast<int>(i) != exclude)
                ok.push_back(static_cast<int>(i));
        }
        DISTDA_ASSERT(!ok.empty(), "no data objects");
        return ok[_rng.nextBelow(ok.size())];
    }

    /** In-bounds affine expression for @p count elements over @p trip
     *  iterations; ivCoeff 0 only when @p allow_flat. */
    AffineExpr
    affineFor(KernelBuilder &b, std::uint64_t count, std::int64_t trip,
              bool allow_flat)
    {
        std::int64_t base =
            static_cast<std::int64_t>(_rng.nextBelow(4));
        std::int64_t stride =
            1 + static_cast<std::int64_t>(_rng.nextBelow(3));
        if (allow_flat && _rng.nextBelow(8) == 0)
            stride = 0;
        if (base + stride * (trip - 1) >=
            static_cast<std::int64_t>(count)) {
            base = 0;
            stride = 1;
        }
        if (base + stride * (trip - 1) >=
            static_cast<std::int64_t>(count))
            stride = 0; // trip == count, base forced flat
        return b.affine(base, stride);
    }

    struct KernelRecord
    {
        std::vector<int> binding; ///< kernel obj -> case obj
        std::int64_t maxTrip = 1;
    };

    void
    makeKernel(int index, Shape shape, bool prefer_stored)
    {
        const int idx_obj = static_cast<int>(_objs.size()) - 1;
        KernelRecord rec;

        // Select the case objects this kernel touches, in binding
        // order. Recurrence chases need the index object; indirect
        // accesses need it plus its target.
        std::vector<int> used;
        auto add_used = [&used](int o) {
            if (std::find(used.begin(), used.end(), o) == used.end())
                used.push_back(o);
        };
        const bool self_idx = _objs[static_cast<std::size_t>(idx_obj)]
                                  .indexTarget == idx_obj;
        bool chase = shape == Shape::NonPartitionable && self_idx;
        if (shape == Shape::NonPartitionable && !self_idx)
            shape = Shape::Pipeline; // no chase substrate this case
        const bool indirect =
            !chase && (shape == Shape::Pipeline
                           ? _rng.nextBelow(2) == 0
                           : _rng.nextBelow(4) == 0);
        if (chase) {
            add_used(idx_obj);
        } else if (indirect) {
            add_used(idx_obj);
            add_used(_objs[static_cast<std::size_t>(idx_obj)]
                         .indexTarget);
        }
        if (prefer_stored && !_storedObjects.empty()) {
            add_used(_storedObjects[_rng.nextBelow(
                _storedObjects.size())]);
        }
        const std::size_t want =
            (shape == Shape::CrossCluster ? 2 : 1) +
            _rng.nextBelow(2);
        // Bounded draw: with few distinct data objects `used` may
        // never reach `want`, so cap attempts rather than spin.
        const std::size_t goal = want + (chase || indirect ? 1 : 0);
        for (int tries = 0; used.size() < goal && tries < 64; ++tries)
            add_used(pickIntDataObject(-1));

        // Trip: bounded by the smallest used object so plain affine
        // (base 0, stride 1) is always feasible.
        std::uint64_t min_count = ~0ULL;
        for (int o : used) {
            min_count = std::min(
                min_count,
                _objs[static_cast<std::size_t>(o)].spec.elemCount);
        }
        std::int64_t trip = 2 + static_cast<std::int64_t>(_rng.nextBelow(
                                    std::min<std::uint64_t>(min_count - 1,
                                                            160)));
        if (_rng.nextBelow(16) == 0)
            trip = 1;
        rec.maxTrip = trip;

        KernelBuilder b(strfmt("k%d_%s", index, shapeName(shape)));

        // Declare kernel objects; binding i -> case object used[i].
        std::vector<int> kobj(used.size());
        for (std::size_t i = 0; i < used.size(); ++i) {
            const CaseObject &o =
                _objs[static_cast<std::size_t>(used[i])].spec;
            kobj[i] = b.object(o.name, o.elemCount, o.elemBytes,
                               o.isFloat);
            rec.binding.push_back(used[i]);
        }
        auto kernelIdxOf = [&](int case_obj) {
            for (std::size_t i = 0; i < used.size(); ++i) {
                if (used[i] == case_obj)
                    return kobj[i];
            }
            panic("object %d not declared", case_obj);
        };

        // Parameters: optional trip param, affine-base param, and a
        // free scalar value param.
        std::vector<std::uint64_t> param_bits;
        std::vector<bool> param_fixed;
        int trip_param = -1;
        if (_rng.nextBelow(3) == 0) {
            trip_param = b.param("n");
            Word w;
            w.i = trip;
            param_bits.push_back(bitsOf(w));
            param_fixed.push_back(false);
            b.loopFromParam(trip_param);
        } else {
            b.loopStatic(trip);
        }
        int base_param = -1;
        std::int64_t base_param_value = 0;
        if (_rng.nextBelow(4) == 0) {
            base_param = b.param("b");
            base_param_value =
                static_cast<std::int64_t>(_rng.nextBelow(3));
            Word w;
            w.i = base_param_value;
            param_bits.push_back(bitsOf(w));
            param_fixed.push_back(true);
        }

        BodyGen body(_rng, b);
        ValueRef iv = b.iv();
        body.pushInt(iv, static_cast<std::uint64_t>(trip - 1), true);

        if (_rng.nextBelow(2) == 0) {
            const bool fparam = _rng.nextBelow(3) == 0;
            const int vp = b.param(fparam ? "x" : "m");
            Word w;
            if (fparam) {
                w.f = _rng.nextDouble() * 8.0 - 4.0;
                body.pushFloat(b.paramValue(vp), 4.0);
            } else {
                w.i = static_cast<std::int64_t>(_rng.nextBelow(17)) - 8;
                body.pushInt(b.paramValue(vp), 8, false);
            }
            param_bits.push_back(bitsOf(w));
            param_fixed.push_back(false);
        }

        // Loads: every used data object gets an affine load with high
        // probability; the index object feeds indirect addressing.
        std::vector<Val> index_offsets;
        for (std::size_t i = 0; i < used.size(); ++i) {
            const GenObject &o =
                _objs[static_cast<std::size_t>(used[i])];
            if (o.spec.indexBound > 0) {
                if (chase)
                    continue; // the chase loads it through the carry
                AffineExpr e = affineFor(b, o.spec.elemCount, trip,
                                         true);
                maybeAddBaseParam(e, base_param, base_param_value,
                                  o.spec.elemCount, trip);
                const ValueRef off = b.load(kobj[i], e);
                index_offsets.push_back(
                    Val{off, o.spec.indexBound - 1, 0.0, true});
                body.pushInt(off, o.spec.indexBound - 1, true);
                continue;
            }
            if (_rng.nextBelow(5) == 0)
                continue;
            AffineExpr e =
                affineFor(b, o.spec.elemCount, trip, true);
            maybeAddBaseParam(e, base_param, base_param_value,
                              o.spec.elemCount, trip);
            const ValueRef v = b.load(kobj[i], e);
            if (o.spec.isFloat)
                body.pushFloat(v, kFloatLoadBound);
            else
                body.pushInt(v, kIntLoadBound, false);
        }

        // Indirect load from the index target (Parallelizable unless
        // it feeds a carry).
        if (indirect && !index_offsets.empty() &&
            _rng.nextBelow(2) == 0) {
            const int tgt = _objs[static_cast<std::size_t>(idx_obj)]
                                .indexTarget;
            const GenObject &t = _objs[static_cast<std::size_t>(tgt)];
            Val off = index_offsets[_rng.nextBelow(
                index_offsets.size())];
            if (_rng.nextBelow(3) == 0)
                off = body.clampedIndex(t.spec.elemCount);
            const ValueRef v = b.loadIdx(kernelIdxOf(tgt), off.ref);
            if (t.spec.isFloat)
                body.pushFloat(v, kFloatLoadBound);
            else
                body.pushInt(v, kIntLoadBound, false);
        }

        body.computeSteps(
            3 + static_cast<int>(_rng.nextBelow(8)));

        // The memory-recurrence chase: a carry holding an index into
        // the self-targeted index object, advanced by what it loads.
        bool has_result = false;
        if (chase) {
            const GenObject &io =
                _objs[static_cast<std::size_t>(idx_obj)];
            Word init;
            init.i = static_cast<std::int64_t>(
                _rng.nextBelow(io.spec.elemCount));
            ValueRef c = b.carry(init, false, "ptr");
            const ValueRef next =
                b.loadIdx(kernelIdxOf(idx_obj), c);
            b.setCarry(c, next);
            b.markResult(c);
            has_result = true;
            body.pushInt(next, io.spec.indexBound - 1, true);
            body.computeSteps(1 + static_cast<int>(_rng.nextBelow(3)));
        }

        // Reduction carries (Pipelinable).
        if (shape == Shape::Pipeline || chase ||
            _rng.nextBelow(4) == 0) {
            const int ncarries =
                1 + static_cast<int>(_rng.nextBelow(2));
            for (int ci = 0; ci < ncarries; ++ci)
                addReduction(b, body, trip);
            has_result = true;
        }

        // Stores: at most one store accessor per object per kernel so
        // same-iteration write ordering between accessors never
        // matters; iteration order within one accessor is preserved
        // by every backend.
        std::vector<int> stored;
        int nstores = 0;
        for (std::size_t i = 0; i < used.size(); ++i) {
            const GenObject &o =
                _objs[static_cast<std::size_t>(used[i])];
            if (o.spec.indexBound > 0)
                continue; // index objects stay read-only
            if (nstores > 0 && _rng.nextBelow(2) == 0)
                continue;
            const bool indirect_store =
                indirect && !index_offsets.empty() &&
                used[i] == _objs[static_cast<std::size_t>(idx_obj)]
                               .indexTarget &&
                _rng.nextBelow(2) == 0;
            const bool predicated = _rng.nextBelow(4) == 0;
            Val pred;
            if (predicated)
                pred = body.predicate();
            if (indirect_store) {
                const Val off = index_offsets[_rng.nextBelow(
                    index_offsets.size())];
                const Val v = o.spec.isFloat ? body.storableFloat()
                                             : body.storableInt();
                if (predicated)
                    b.storeIdxIf(pred.ref, kobj[i], off.ref, v.ref);
                else
                    b.storeIdx(kobj[i], off.ref, v.ref);
            } else {
                AffineExpr e =
                    affineFor(b, o.spec.elemCount, trip, true);
                const Val v = o.spec.isFloat ? body.storableFloat()
                                             : body.storableInt();
                if (predicated)
                    b.storeIf(pred.ref, kobj[i], e, v.ref);
                else
                    b.store(kobj[i], e, v.ref);
            }
            stored.push_back(used[i]);
            ++nstores;
        }

        // Keep the kernel observable: if nothing is stored and no
        // carry is read back, add a reduction result.
        if (stored.empty() && !has_result)
            addReduction(b, body, trip);

        _kernels.push_back(std::move(rec));
        _kernelParamBits.push_back(std::move(param_bits));
        _kernelParamFixed.push_back(std::move(param_fixed));
        _kernelTripParam.push_back(trip_param);
        _out.kernels.push_back(b.build());
        for (int o : stored)
            _storedObjects.push_back(o);
    }

    void
    maybeAddBaseParam(AffineExpr &e, int base_param,
                      std::int64_t value, std::uint64_t count,
                      std::int64_t trip)
    {
        if (base_param < 0 || _rng.nextBelow(2))
            return;
        const std::int64_t hi = e.pattern.constBase + value +
                                e.pattern.ivCoeff * (trip - 1);
        if (hi >= static_cast<std::int64_t>(count) || value < 0)
            return;
        if (base_param >=
            static_cast<int>(e.pattern.paramCoeffs.size()))
            e.pattern.paramCoeffs.resize(
                static_cast<std::size_t>(base_param) + 1, 0);
        e.pattern.paramCoeffs[static_cast<std::size_t>(base_param)] = 1;
    }

    void
    addReduction(KernelBuilder &b, BodyGen &body, std::int64_t trip)
    {
        const bool is_float =
            body.haveFloats() && _rng.nextBelow(2) == 0;
        Word init;
        if (is_float) {
            init.f = _rng.nextDouble() * 4.0 - 2.0;
            ValueRef c = b.carry(init, true);
            const Val x = body.pickFloat(1e12);
            static constexpr OpCode ops[] = {OpCode::FAdd, OpCode::FMin,
                                             OpCode::FMax};
            const OpCode op = ops[_rng.nextBelow(3)];
            const ValueRef next = b.compute(op, c, x.ref);
            b.setCarry(c, next);
            b.markResult(c);
            const double bound =
                op == OpCode::FAdd
                    ? 2.0 + static_cast<double>(trip) * x.fb
                    : std::max(2.0, x.fb);
            body.pushFloat(c, bound);
        } else {
            init.i = static_cast<std::int64_t>(_rng.nextBelow(9)) - 4;
            ValueRef c = b.carry(init, false);
            const Val x = body.pickInt(kMulCap);
            static constexpr OpCode ops[] = {OpCode::IAdd, OpCode::IMin,
                                             OpCode::IMax};
            const OpCode op = ops[_rng.nextBelow(3)];
            const ValueRef next = b.compute(op, c, x.ref);
            b.setCarry(c, next);
            b.markResult(c);
            const std::uint64_t bound =
                op == OpCode::IAdd
                    ? 4 + static_cast<std::uint64_t>(trip) * x.ib
                    : std::max<std::uint64_t>(4, x.ib);
            body.pushInt(c, bound, false);
        }
    }

    void
    makeInvocations()
    {
        // One invocation per kernel in creation order (producer before
        // consumer), then a few warm re-invocations with varied free
        // params and occasional compatible rebindings.
        for (std::size_t k = 0; k < _out.kernels.size(); ++k)
            _out.invocations.push_back(invocationFor(k, true));
        const int extra = static_cast<int>(_rng.nextBelow(4));
        for (int i = 0; i < extra; ++i) {
            const std::size_t k =
                _rng.nextBelow(_out.kernels.size());
            _out.invocations.push_back(invocationFor(k, false));
        }
    }

    Invocation
    invocationFor(std::size_t k, bool first)
    {
        Invocation inv;
        inv.kernel = static_cast<int>(k);
        inv.objects = _kernels[k].binding;
        inv.paramBits = _kernelParamBits[k];
        if (!first) {
            // Vary the free parameters.
            for (std::size_t p = 0; p < inv.paramBits.size(); ++p) {
                if (_kernelParamFixed[k][p] || _rng.nextBelow(2))
                    continue;
                Word w;
                if (static_cast<int>(p) == _kernelTripParam[k]) {
                    w.i = 1 + static_cast<std::int64_t>(_rng.nextBelow(
                                  static_cast<std::uint64_t>(
                                      _kernels[k].maxTrip)));
                } else {
                    std::memcpy(&w, &inv.paramBits[p], sizeof(w));
                    if (_out.kernels[k].paramNames[p] == "x")
                        w.f = _rng.nextDouble() * 8.0 - 4.0;
                    else
                        w.i = static_cast<std::int64_t>(
                                  _rng.nextBelow(17)) -
                              8;
                }
                inv.paramBits[p] = bitsOf(w);
            }
            // Occasionally rebind a slot to a shape-compatible data
            // object (stressing retained-buffer reuse), keeping the
            // binding alias-free.
            for (std::size_t oi = 0; oi < inv.objects.size(); ++oi) {
                if (_rng.nextBelow(4))
                    continue;
                const CaseObject &cur = _out.objects
                    [static_cast<std::size_t>(inv.objects[oi])];
                if (cur.indexBound > 0)
                    continue;
                for (std::size_t cj = 0; cj < _out.objects.size();
                     ++cj) {
                    const CaseObject &cand = _out.objects[cj];
                    const bool taken =
                        std::find(inv.objects.begin(),
                                  inv.objects.end(),
                                  static_cast<int>(cj)) !=
                        inv.objects.end();
                    if (taken || cand.indexBound > 0 ||
                        cand.elemCount != cur.elemCount ||
                        cand.elemBytes != cur.elemBytes ||
                        cand.isFloat != cur.isFloat)
                        continue;
                    inv.objects[oi] = static_cast<int>(cj);
                    break;
                }
            }
        }
        return inv;
    }

    static std::uint64_t
    bitsOf(Word w)
    {
        std::uint64_t u;
        std::memcpy(&u, &w, sizeof(u));
        return u;
    }

    sim::Rng _rng;
    GenOptions _opts;
    FuzzCase _out;
    std::vector<GenObject> _objs;
    std::vector<KernelRecord> _kernels;
    std::vector<std::vector<std::uint64_t>> _kernelParamBits;
    std::vector<std::vector<bool>> _kernelParamFixed;
    std::vector<int> _kernelTripParam;
    std::vector<int> _storedObjects;
};

} // namespace

const char *
shapeName(Shape s)
{
    switch (s) {
      case Shape::Parallel: return "parallel";
      case Shape::Pipeline: return "pipeline";
      case Shape::NonPartitionable: return "nonpart";
      case Shape::MultiKernel: return "multikernel";
      case Shape::CrossCluster: return "crosscluster";
      case Shape::Mixed: return "mixed";
      default: panic("bad shape %d", static_cast<int>(s));
    }
}

Shape
shapeFromName(const std::string &name)
{
    for (int s = 0; s <= static_cast<int>(Shape::Mixed); ++s) {
        if (name == shapeName(static_cast<Shape>(s)))
            return static_cast<Shape>(s);
    }
    fatal("unknown shape '%s' (parallel, pipeline, nonpart, "
          "multikernel, crosscluster, mixed)",
          name.c_str());
}

FuzzCase
generateCase(std::uint64_t seed, const GenOptions &opts)
{
    return CaseGen(seed, opts).run();
}

void
initCaseObject(const FuzzCase &c, std::size_t idx,
               engine::ArrayRef &ref)
{
    const CaseObject &o = c.objects[idx];
    sim::Rng rng(mix(c.dataSeed, 0x696e'6974 + idx));
    for (std::uint64_t i = 0; i < o.elemCount; ++i) {
        if (o.indexBound > 0) {
            ref.setI(i, static_cast<std::int64_t>(
                            rng.nextBelow(o.indexBound)));
        } else if (o.isFloat) {
            ref.setF(i, rng.nextDouble() * 16.0 - 8.0);
        } else {
            ref.setI(i,
                     static_cast<std::int64_t>(rng.nextBelow(129)) -
                         64);
        }
    }
}

} // namespace distda::fuzz
