/**
 * @file
 * The unit of differential fuzzing: a self-contained "case" bundling
 * memory objects, kernels, and a host invocation sequence. A case is
 * everything needed to replay one execution deterministically — the
 * generator emits them, the differential executor runs them through
 * every backend, the shrinker minimizes them, and the `.repro` text
 * serialization makes each past counterexample a permanent regression
 * test under tests/corpus/.
 */

#ifndef DISTDA_FUZZ_CASE_HH
#define DISTDA_FUZZ_CASE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/compiler/dfg.hh"

namespace distda::fuzz
{

/** One case-level memory object shared by the case's kernels. */
struct CaseObject
{
    std::string name;
    std::uint64_t elemCount = 0;
    std::uint32_t elemBytes = 8;
    bool isFloat = false;
    /**
     * >0: index object — initialized with integers in [0, indexBound)
     * and never stored to, so indirect accesses addressed through it
     * stay inside the target object.
     */
    std::uint64_t indexBound = 0;
};

/** One kernel invocation of the case's host program. */
struct Invocation
{
    int kernel = 0; ///< index into FuzzCase::kernels
    /** Kernel object id -> case object index. */
    std::vector<int> objects;
    /**
     * Scalar parameter values in kernel param order, as raw Word bit
     * patterns (doubles serialize exactly; no decimal round-trip).
     */
    std::vector<std::uint64_t> paramBits;
};

/** A complete, self-contained differential test case. */
struct FuzzCase
{
    std::uint64_t seed = 0;     ///< generator seed (0: hand-written)
    std::uint64_t dataSeed = 0; ///< object-content initialization seed
    std::vector<CaseObject> objects;
    std::vector<compiler::Kernel> kernels;
    std::vector<Invocation> invocations;

    /** Loop trip count of @p inv (static extent or bound param). */
    std::int64_t tripOf(const Invocation &inv) const;
};

/** Render @p c in the `.repro` text format (stable, line-oriented). */
std::string serializeCase(const FuzzCase &c);

/**
 * Parse a `.repro` back into a case. fatal()s on malformed input —
 * run under ScopedFailureCapture to reject gracefully.
 */
FuzzCase parseCase(const std::string &text);

/**
 * Structural well-formedness: kernels verify, bindings are type- and
 * shape-compatible, affine accesses provably in bounds for every
 * invocation's trip and parameter values, index objects never stored.
 * Returns "" when valid, else a one-line diagnosis. The shrinker
 * filters candidate reductions through this so a mutation can never
 * turn a simulator bug into a plain out-of-bounds artifact.
 */
std::string validateCase(const FuzzCase &c);

/** Write @p c to @p path (fatal on I/O error). */
void saveCase(const FuzzCase &c, const std::string &path);

/** Load and parse @p path (fatal on I/O or parse error). */
FuzzCase loadCase(const std::string &path);

} // namespace distda::fuzz

#endif // DISTDA_FUZZ_CASE_HH
