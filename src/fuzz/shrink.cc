#include "src/fuzz/shrink.hh"

#include <algorithm>
#include <cstring>

#include "src/sim/logging.hh"

namespace distda::fuzz
{

using compiler::Kernel;
using compiler::Node;
using compiler::NodeKind;
using compiler::noNode;

namespace
{

/** All node ids @p n refers to (forward inputs + carry back-edge). */
void
eachReference(const Node &n, const std::function<void(int)> &fn)
{
    auto push = [&fn](int id) {
        if (id != noNode)
            fn(id);
    };
    push(n.inputA);
    push(n.inputB);
    push(n.inputC);
    push(n.addrInput);
    push(n.valueInput);
    push(n.predInput);
    push(n.carryUpdate);
}

/**
 * Remove node @p seed plus every node that (transitively) refers to
 * it, then compact ids. Returns false when the removal is structurally
 * impossible (seed is a MemObject, or nothing would remain).
 */
bool
removeNodeClosure(Kernel &k, int seed)
{
    if (k.node(seed).kind == NodeKind::MemObject)
        return false;
    std::vector<bool> dead(k.nodes.size(), false);
    dead[static_cast<std::size_t>(seed)] = true;
    bool grew = true;
    while (grew) {
        grew = false;
        for (const Node &n : k.nodes) {
            if (dead[static_cast<std::size_t>(n.id)])
                continue;
            bool refs_dead = false;
            eachReference(n, [&](int id) {
                if (dead[static_cast<std::size_t>(id)])
                    refs_dead = true;
            });
            if (refs_dead) {
                dead[static_cast<std::size_t>(n.id)] = true;
                grew = true;
            }
        }
    }
    std::vector<int> remap(k.nodes.size(), noNode);
    std::vector<Node> kept;
    for (const Node &n : k.nodes) {
        if (dead[static_cast<std::size_t>(n.id)])
            continue;
        remap[static_cast<std::size_t>(n.id)] =
            static_cast<int>(kept.size());
        kept.push_back(n);
    }
    if (kept.size() == k.nodes.size() || kept.empty())
        return false;
    auto fix = [&remap](int &id) {
        if (id != noNode)
            id = remap[static_cast<std::size_t>(id)];
    };
    for (Node &n : kept) {
        n.id = remap[static_cast<std::size_t>(n.id)];
        fix(n.inputA);
        fix(n.inputB);
        fix(n.inputC);
        fix(n.addrInput);
        fix(n.valueInput);
        fix(n.predInput);
        fix(n.carryUpdate);
    }
    std::vector<int> results;
    for (int r : k.resultCarries) {
        if (!dead[static_cast<std::size_t>(r)])
            results.push_back(remap[static_cast<std::size_t>(r)]);
    }
    k.nodes = std::move(kept);
    k.resultCarries = std::move(results);
    return true;
}

/** Remove kernels no invocation references (back-to-front so kernel
 *  indices stay valid while erasing). */
void
dropOrphanKernels(FuzzCase &c)
{
    for (int k = static_cast<int>(c.kernels.size()); k-- > 0;) {
        bool used = false;
        for (const Invocation &inv : c.invocations)
            used = used || inv.kernel == k;
        if (used)
            continue;
        c.kernels.erase(c.kernels.begin() + k);
        for (Invocation &inv : c.invocations) {
            if (inv.kernel > k)
                --inv.kernel;
        }
    }
}

void
dropKernel(FuzzCase &c, int k)
{
    c.kernels.erase(c.kernels.begin() + k);
    for (auto it = c.invocations.begin(); it != c.invocations.end();) {
        if (it->kernel == k) {
            it = c.invocations.erase(it);
        } else {
            if (it->kernel > k)
                --it->kernel;
            ++it;
        }
    }
}

/** Set the trip of kernel @p k to f(current) in every invocation. */
bool
mapTrip(FuzzCase &c, std::size_t k,
        const std::function<std::int64_t(std::int64_t)> &f)
{
    Kernel &kern = c.kernels[k];
    bool changed = false;
    if (kern.loop.extentParam < 0) {
        const std::int64_t now = kern.loop.staticExtent;
        const std::int64_t next = f(now);
        if (next != now) {
            kern.loop.staticExtent = next;
            changed = true;
        }
        return changed;
    }
    const std::size_t p =
        static_cast<std::size_t>(kern.loop.extentParam);
    for (Invocation &inv : c.invocations) {
        if (inv.kernel != static_cast<int>(k) ||
            p >= inv.paramBits.size())
            continue;
        compiler::Word w;
        std::memcpy(&w, &inv.paramBits[p], sizeof(w));
        const std::int64_t next = f(w.i);
        if (next != w.i) {
            w.i = next;
            std::memcpy(&inv.paramBits[p], &w, sizeof(w));
            changed = true;
        }
    }
    return changed;
}

struct Shrinker
{
    const ShrinkOracle &oracle;
    FuzzCase best;
    ShrinkStats stats;

    bool
    accept(FuzzCase cand)
    {
        ++stats.attempts;
        if (!validateCase(cand).empty())
            return false;
        if (!oracle(cand))
            return false;
        best = std::move(cand);
        ++stats.accepted;
        return true;
    }

    /** One full pass; true when any reduction was accepted. */
    bool
    round()
    {
        // Coarse first: whole invocations (pruning kernels the drop
        // orphans — they could never be removed later, since deleting
        // the surviving invocation's kernel instead would leave an
        // invocation-less, invalid case), then whole kernels.
        for (std::size_t i = best.invocations.size(); i-- > 0;) {
            FuzzCase cand = best;
            cand.invocations.erase(cand.invocations.begin() +
                                   static_cast<std::ptrdiff_t>(i));
            dropOrphanKernels(cand);
            if (accept(std::move(cand)))
                return true;
        }
        for (std::size_t k = best.kernels.size(); k-- > 0;) {
            FuzzCase cand = best;
            dropKernel(cand, static_cast<int>(k));
            if (accept(std::move(cand)))
                return true;
        }
        // Iteration counts: halve, then decrement.
        for (std::size_t k = 0; k < best.kernels.size(); ++k) {
            {
                FuzzCase cand = best;
                if (mapTrip(cand, k,
                            [](std::int64_t t) {
                                return std::max<std::int64_t>(1,
                                                              t / 2);
                            }) &&
                    accept(std::move(cand)))
                    return true;
            }
            FuzzCase cand = best;
            if (mapTrip(cand, k,
                        [](std::int64_t t) {
                            return std::max<std::int64_t>(1, t - 1);
                        }) &&
                accept(std::move(cand)))
                return true;
        }
        // DFG nodes, with their transitive users.
        for (std::size_t k = 0; k < best.kernels.size(); ++k) {
            const std::size_t nn = best.kernels[k].nodes.size();
            for (std::size_t id = nn; id-- > 0;) {
                FuzzCase cand = best;
                if (!removeNodeClosure(cand.kernels[k],
                                       static_cast<int>(id)))
                    continue;
                if (accept(std::move(cand)))
                    return true;
            }
        }
        // Affine simplification and constant zeroing.
        for (std::size_t k = 0; k < best.kernels.size(); ++k) {
            for (std::size_t id = 0; id < best.kernels[k].nodes.size();
                 ++id) {
                const Node &n = best.kernels[k].nodes[id];
                if (n.kind == NodeKind::Access &&
                    n.pattern == compiler::PatternKind::Affine) {
                    if (n.affine.constBase != 0) {
                        FuzzCase cand = best;
                        cand.kernels[k].nodes[id].affine.constBase = 0;
                        if (accept(std::move(cand)))
                            return true;
                    }
                    if (!n.affine.paramCoeffs.empty()) {
                        FuzzCase cand = best;
                        cand.kernels[k]
                            .nodes[id]
                            .affine.paramCoeffs.clear();
                        if (accept(std::move(cand)))
                            return true;
                    }
                    if (n.affine.ivCoeff > 1) {
                        FuzzCase cand = best;
                        cand.kernels[k].nodes[id].affine.ivCoeff = 1;
                        if (accept(std::move(cand)))
                            return true;
                    }
                }
                if (n.kind == NodeKind::ConstInt && n.imm.i != 0) {
                    FuzzCase cand = best;
                    cand.kernels[k].nodes[id].imm.i = 0;
                    if (accept(std::move(cand)))
                        return true;
                }
            }
        }
        return false;
    }
};

} // namespace

FuzzCase
shrinkCase(const FuzzCase &c, const ShrinkOracle &still_fails,
           int max_rounds, ShrinkStats *stats)
{
    Shrinker s{still_fails, c, {}};
    for (int round = 0; round < max_rounds; ++round) {
        bool any = false;
        // Drain consecutive accepts within the round budget: round()
        // restarts its scan after every accepted reduction.
        while (s.round())
            any = true;
        if (!any)
            break;
    }
    if (stats)
        *stats = s.stats;
    return std::move(s.best);
}

} // namespace distda::fuzz
