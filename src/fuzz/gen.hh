/**
 * @file
 * Seeded random kernel generator. Every case it emits is valid by
 * construction: affine accesses are bounds-proven for the chosen trip
 * counts, indirect indices flow only through read-only index objects
 * (or explicit rem/abs clamps), integer value magnitudes are tracked
 * conservatively through every operation so no signed arithmetic can
 * overflow, and float magnitudes are clamped before stores so values
 * never reach inf/NaN. That discipline is what lets the differential
 * executor treat *any* crash or mismatch as a finding rather than a
 * generator artifact — and keeps the whole corpus clean under
 * ASan+UBSan.
 */

#ifndef DISTDA_FUZZ_GEN_HH
#define DISTDA_FUZZ_GEN_HH

#include <cstdint>
#include <string>

#include "src/engine/backend.hh"
#include "src/fuzz/case.hh"

namespace distda::fuzz
{

/** Controlled DFG shapes (ISSUE: coverage classes, not guarantees). */
enum class Shape
{
    Parallel,         ///< affine streams, no carries
    Pipeline,         ///< reductions / indirect writes
    NonPartitionable, ///< memory recurrence (index chase via carry)
    MultiKernel,      ///< producer/consumer kernel chains
    CrossCluster,     ///< >=2 objects so partitions span clusters
    Mixed,            ///< random mix of the above
};

const char *shapeName(Shape s);

/** Parse a --shape= value; fatal() on unknown names. */
Shape shapeFromName(const std::string &name);

struct GenOptions
{
    Shape shape = Shape::Mixed;
};

/**
 * Generate one deterministic case from @p seed. The result always
 * passes validateCase(); the campaign asserts this.
 */
FuzzCase generateCase(std::uint64_t seed, const GenOptions &opts = {});

/**
 * Deterministically initialize case object @p idx's backing storage:
 * index objects get integers in [0, indexBound), integer data objects
 * small signed values, float objects small reals. Every differential
 * path calls this with the case's dataSeed so initial memory images
 * are byte-identical across backends.
 */
void initCaseObject(const FuzzCase &c, std::size_t idx,
                    engine::ArrayRef &ref);

} // namespace distda::fuzz

#endif // DISTDA_FUZZ_GEN_HH
