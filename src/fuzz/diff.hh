/**
 * @file
 * The cross-execution oracle: compile one case and run it through
 * every available execution path — host reference (OoO), monolithic
 * accelerator variants, distributed interpreter actors, distributed
 * predecoded actors, and the CGRA backend — then cross-check
 *   - final memory-object state, byte for byte,
 *   - result-carry values, bit for bit,
 *   - interpreter-vs-predecode metrics, field for field,
 *   - stat sanity invariants (positive time, finite non-negative
 *     counters),
 *   - static plan-analysis facts (src/verify/analysis.hh) against the
 *     dynamic outcome: a Proven fact contradicted by execution, or a
 *     Violated fact on a case that is valid by construction, fails the
 *     campaign — the fuzzer is the analyses' soundness oracle,
 * with channel-token conservation enforced inside the engine itself.
 * Any asymmetric crash, mismatch, or anomaly is a finding.
 */

#ifndef DISTDA_FUZZ_DIFF_HH
#define DISTDA_FUZZ_DIFF_HH

#include <string>
#include <vector>

#include "src/driver/metrics.hh"
#include "src/fuzz/case.hh"

namespace distda::fuzz
{

/** One execution path's outcome. */
struct PathResult
{
    std::string path;
    bool crashed = false;
    bool isPanic = false;  ///< invariant violation vs user error
    std::string failure;
    /** Final bytes of each case object, in case-object order. */
    std::vector<std::vector<std::uint8_t>> objectBytes;
    /** Result-carry bit patterns, concatenated across invocations. */
    std::vector<std::uint64_t> resultBits;
    driver::Metrics metrics;
};

/** One verified defect signal. */
struct Finding
{
    enum class Kind
    {
        InvalidCase, ///< the case failed validateCase (harness bug)
        Crash,       ///< a path panicked/fataled (or all did)
        Divergence,  ///< paths disagree on memory/results/metrics
        StatAnomaly, ///< impossible statistics on one path
        /** A dynamic observation contradicts a static analysis fact. */
        AnalysisContradiction,
    };
    Kind kind = Kind::Crash;
    std::string detail;
};

const char *findingKindName(Finding::Kind k);

struct DiffOptions
{
    /** Include the CGRA (Dist-DA-F) path. */
    bool cgra = true;
    /** Include the monolithic (Mono-CA / Mono-DA-IO) paths. */
    bool mono = true;
    /**
     * Cross-check the plan analyses against the dynamic outcome:
     * bounds verdicts, claimed access ranges, liveness, and write
     * footprints (unwritten objects must end byte-identical).
     */
    bool analyze = true;
    /**
     * Include the Dist-DA-IO/replan path: identical configuration to
     * Dist-DA-IO/predecode except every plan is round-tripped through
     * the text artifact format (serialize→parse→instantiate) before
     * execution. Its metrics must match predecode field for field —
     * the serializer's exactness oracle.
     */
    bool planRoundTrip = true;
};

/** Result of one differential run. */
struct DiffOutcome
{
    std::vector<Finding> findings;
    std::vector<PathResult> paths;

    bool ok() const { return findings.empty(); }

    /**
     * Stable identity of the failure mode: finding kind plus the
     * digit-stripped first line of its detail. The shrinker reduces a
     * case only while the signature is preserved, so minimization
     * cannot wander onto an unrelated bug.
     */
    std::string signature() const;

    /** Human-readable multi-line report. */
    std::string summary() const;
};

/** Run @p c through every enabled path and cross-check. */
DiffOutcome runDifferential(const FuzzCase &c,
                            const DiffOptions &opts = {});

} // namespace distda::fuzz

#endif // DISTDA_FUZZ_DIFF_HH
