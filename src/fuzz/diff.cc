#include "src/fuzz/diff.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "src/compiler/plan.hh"
#include "src/driver/context.hh"
#include "src/driver/system.hh"
#include "src/fuzz/gen.hh"
#include "src/sim/logging.hh"
#include "src/verify/analysis.hh"

namespace distda::fuzz
{

using driver::ArchModel;
using driver::ExecContext;
using driver::Metrics;
using driver::RunConfig;
using driver::System;
using driver::SystemParams;

namespace
{

/** Arena sized to the case: objects + slab rounding + stagger slack. */
std::uint64_t
arenaBytesFor(const FuzzCase &c)
{
    std::uint64_t total = 64 * 1024;
    for (const CaseObject &o : c.objects) {
        const std::uint64_t bytes = o.elemCount * o.elemBytes;
        total += ((bytes + 4095) / 4096) * 4096 + 2 * 4096;
    }
    return total;
}

PathResult
runPath(const FuzzCase &c, const char *name, const RunConfig &cfg)
{
    PathResult r;
    r.path = name;
    ScopedFailureCapture capture;
    try {
        SystemParams sp;
        sp.arenaBytes = arenaBytesFor(c);
        sp.allocAffinity = cfg.allocAffinity();
        System sys(sp);
        std::vector<engine::ArrayRef> arrays;
        arrays.reserve(c.objects.size());
        for (std::size_t i = 0; i < c.objects.size(); ++i) {
            const CaseObject &o = c.objects[i];
            arrays.push_back(sys.alloc(o.name, o.elemCount,
                                       o.elemBytes, o.isFloat));
            initCaseObject(c, i, arrays.back());
        }
        ExecContext ctx(sys, cfg);
        for (const Invocation &inv : c.invocations) {
            const compiler::Kernel &k =
                c.kernels[static_cast<std::size_t>(inv.kernel)];
            std::vector<engine::ArrayRef> bindings;
            bindings.reserve(inv.objects.size());
            for (int co : inv.objects)
                bindings.push_back(
                    arrays[static_cast<std::size_t>(co)]);
            std::vector<compiler::Word> params;
            params.reserve(inv.paramBits.size());
            for (std::uint64_t bits : inv.paramBits) {
                compiler::Word w;
                std::memcpy(&w, &bits, sizeof(w));
                params.push_back(w);
            }
            ctx.invoke(k, bindings, params);
            for (std::size_t ri = 0; ri < k.resultCarries.size();
                 ++ri) {
                r.resultBits.push_back(
                    static_cast<std::uint64_t>(ctx.resultI(ri)));
            }
        }
        r.metrics = ctx.finish();
        for (std::size_t i = 0; i < c.objects.size(); ++i) {
            const engine::ArrayRef &a = arrays[i];
            std::vector<std::uint8_t> bytes(a.sizeBytes());
            a.mem->copyOut(a.base, bytes.data(), bytes.size());
            r.objectBytes.push_back(std::move(bytes));
        }
    } catch (const SimFailure &f) {
        r.crashed = true;
        r.isPanic = f.isPanic();
        r.failure = f.what();
    }
    return r;
}

/** Fields that must be bit-identical between interp and predecode. */
struct MetricField
{
    const char *name;
    double Metrics::*field;
};

constexpr MetricField kMetricFields[] = {
    {"timeNs", &Metrics::timeNs},
    {"hostInsts", &Metrics::hostInsts},
    {"accelInsts", &Metrics::accelInsts},
    {"kernelMemOps", &Metrics::kernelMemOps},
    {"hostMemOps", &Metrics::hostMemOps},
    {"mmioOps", &Metrics::mmioOps},
    {"cacheAccesses", &Metrics::cacheAccesses},
    {"dataMovementBytes", &Metrics::dataMovementBytes},
    {"totalEnergyPj", &Metrics::totalEnergyPj},
    {"nocCtrlBytes", &Metrics::nocCtrlBytes},
    {"nocDataBytes", &Metrics::nocDataBytes},
    {"nocAccCtrlBytes", &Metrics::nocAccCtrlBytes},
    {"nocAccDataBytes", &Metrics::nocAccDataBytes},
    {"intraBytes", &Metrics::intraBytes},
    {"daBytes", &Metrics::daBytes},
    {"aaBytes", &Metrics::aaBytes},
};

void
checkSanity(const PathResult &r, std::vector<Finding> &findings)
{
    if (r.crashed)
        return;
    auto bad = [&](const std::string &what) {
        findings.push_back(
            Finding{Finding::Kind::StatAnomaly,
                    strfmt("%s: %s", r.path.c_str(), what.c_str())});
    };
    if (!(r.metrics.timeNs > 0.0))
        bad(strfmt("timeNs %g not positive", r.metrics.timeNs));
    for (const MetricField &mf : kMetricFields) {
        const double v = r.metrics.*(mf.field);
        if (!std::isfinite(v))
            bad(strfmt("%s not finite", mf.name));
        else if (v < 0.0)
            bad(strfmt("%s negative (%g)", mf.name, v));
    }
    for (const auto &[comp, pj] : r.metrics.energyByComponent) {
        if (!std::isfinite(pj) || pj < 0.0)
            bad(strfmt("energy[%s] = %g", comp.c_str(), pj));
    }
    // Offload-lifecycle breakdown: conservation (phases sum exactly to
    // the end-to-end latency) plus ordering of the summary statistics.
    for (const driver::OffloadPhaseBreakdown &row :
         r.metrics.offloadBreakdown) {
        double phase_sum = 0.0;
        for (double t : row.phaseTicks) {
            if (!std::isfinite(t) || t < 0.0)
                bad(strfmt("breakdown[%s] phase ticks %g",
                           row.kernel.c_str(), t));
            phase_sum += t;
        }
        if (phase_sum != row.e2eTicks) {
            bad(strfmt("breakdown[%s] violates conservation: phases "
                       "sum %.17g != e2e %.17g",
                       row.kernel.c_str(), phase_sum, row.e2eTicks));
        }
        if (row.invocations <= 0.0)
            bad(strfmt("breakdown[%s] has %g invocations",
                       row.kernel.c_str(), row.invocations));
        if (!(row.p50 <= row.p95 && row.p95 <= row.p99))
            bad(strfmt("breakdown[%s] quantiles out of order: "
                       "p50 %g p95 %g p99 %g",
                       row.kernel.c_str(), row.p50, row.p95, row.p99));
        if (row.minTicks > row.maxTicks)
            bad(strfmt("breakdown[%s] min %g > max %g",
                       row.kernel.c_str(), row.minTicks, row.maxTicks));
    }
}

/** Concrete view of one invocation, for re-checking Proven claims. */
struct InvView
{
    std::size_t kernel = 0;
    std::vector<std::int64_t> params; ///< parameter integer views
    std::vector<std::uint64_t> elems; ///< kernel-object-id order
    std::int64_t trip = 0;
};

/**
 * The byte image every path starts from: initCaseObject is
 * deterministic in (case, object), so one throwaway system produces
 * the reference initial state for the write-footprint oracle.
 */
std::vector<std::vector<std::uint8_t>>
initialObjectBytes(const FuzzCase &c)
{
    SystemParams sp;
    sp.arenaBytes = arenaBytesFor(c);
    System sys(sp);
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(c.objects.size());
    for (std::size_t i = 0; i < c.objects.size(); ++i) {
        const CaseObject &o = c.objects[i];
        engine::ArrayRef a =
            sys.alloc(o.name, o.elemCount, o.elemBytes, o.isFloat);
        initCaseObject(c, i, a);
        std::vector<std::uint8_t> bytes(a.sizeBytes());
        a.mem->copyOut(a.base, bytes.data(), bytes.size());
        out.push_back(std::move(bytes));
    }
    return out;
}

/**
 * The static-analysis soundness oracle: rebuild each kernel's
 * invocation profile from the case, run the plan analyses
 * (src/verify/analysis.hh), and hold every decided fact against what
 * actually happened.
 *   - A Violated verdict of any kind is a contradiction outright: the
 *     generator proves every access in bounds and every case runs to
 *     completion on at least the host path.
 *   - Proven affine bounds are re-derived numerically per invocation;
 *     an element range escaping the object or the claimed [lo, hi] is
 *     a contradiction.
 *   - Liveness Proven for every invoked kernel forbids a deadlock
 *     panic on the analyzed configuration (Dist-DA-IO), and Violated
 *     forbids a clean run.
 *   - Objects outside every kernel's write footprint must come out of
 *     every surviving path byte-identical to their initial image.
 */
void
crossCheckAnalysis(const FuzzCase &c,
                   const std::vector<PathResult> &paths,
                   std::vector<Finding> &findings)
{
    auto flag = [&](std::string what) {
        findings.push_back(Finding{Finding::Kind::AnalysisContradiction,
                                   std::move(what)});
    };

    // Per-invocation concrete views, joined into per-kernel profiles
    // exactly as the driver records them (validateCase already
    // rejected aliased bindings, so aliased is always false here).
    std::vector<InvView> views;
    views.reserve(c.invocations.size());
    std::vector<verify::InvocationProfile> profiles(c.kernels.size());
    for (const Invocation &inv : c.invocations) {
        InvView v;
        v.kernel = static_cast<std::size_t>(inv.kernel);
        v.params.reserve(inv.paramBits.size());
        for (std::uint64_t bits : inv.paramBits) {
            compiler::Word w;
            std::memcpy(&w, &bits, sizeof(w));
            v.params.push_back(w.i);
        }
        v.elems.reserve(inv.objects.size());
        for (int co : inv.objects)
            v.elems.push_back(
                c.objects[static_cast<std::size_t>(co)].elemCount);
        v.trip = c.tripOf(inv);
        profiles[v.kernel].record(c.kernels[v.kernel], v.params,
                                  v.elems, false);
        views.push_back(std::move(v));
    }

    // Analyze under the configuration the Dist-DA-IO paths ran.
    RunConfig dist;
    dist.model = ArchModel::DistDA_IO;
    compiler::CompileOptions co = dist.compileOptions();
    co.verifyPlans = compiler::VerifyMode::Off;

    bool liveness_proven = true; // across every invoked kernel
    bool liveness_violated = false;
    std::vector<std::uint8_t> written(c.objects.size(), 0);
    // Conservative footprint fallback: mark every object one kernel's
    // invocations bind as written (used when its analysis crashes).
    auto writeAll = [&](std::size_t ki) {
        for (const Invocation &inv : c.invocations) {
            if (static_cast<std::size_t>(inv.kernel) != ki)
                continue;
            for (int co_idx : inv.objects)
                written[static_cast<std::size_t>(co_idx)] = 1;
        }
    };

    for (std::size_t ki = 0; ki < c.kernels.size(); ++ki) {
        if (profiles[ki].invocations == 0)
            continue; // uninvoked kernels constrain nothing dynamic
        const compiler::Kernel &k = c.kernels[ki];
        verify::FactStore facts;
        try {
            ScopedFailureCapture capture;
            const compiler::OffloadPlan plan =
                compiler::compileKernel(k, co);
            verify::AnalysisOptions ao;
            ao.channelCapacity = co.channelCapacity;
            ao.profile = &profiles[ki];
            facts = verify::analyzePlan(plan, ao);
        } catch (const SimFailure &f) {
            flag(strfmt("kernel '%s': analysis crashed: %s",
                        k.name.c_str(), f.what()));
            writeAll(ki);
            liveness_proven = false;
            continue;
        }

        for (const verify::BoundsFact &f : facts.bounds) {
            if (f.verdict == verify::Verdict::Violated) {
                flag(strfmt("kernel '%s': node %d (%s %s) claimed "
                            "Violated on a case valid by construction",
                            k.name.c_str(), f.node,
                            f.affine ? "affine" : "indirect",
                            f.store ? "store" : "load"));
                continue;
            }
            if (f.verdict != verify::Verdict::Proven || !f.affine)
                continue;
            const compiler::Node &n = k.node(f.node);
            for (const InvView &v : views) {
                if (v.kernel != ki || v.trip < 1)
                    continue;
                const verify::Interval r = verify::affineRangeExact(
                    n.affine, v.params, v.trip);
                const std::uint64_t elems =
                    f.objId >= 0 && static_cast<std::size_t>(f.objId) <
                                        v.elems.size()
                        ? v.elems[static_cast<std::size_t>(f.objId)]
                        : 0;
                if (!r.within(elems)) {
                    flag(strfmt(
                        "kernel '%s': node %d Proven in bounds but an "
                        "invocation touches [%lld, %lld] of a "
                        "%llu-element object",
                        k.name.c_str(), f.node,
                        static_cast<long long>(r.lo),
                        static_cast<long long>(r.hi),
                        static_cast<unsigned long long>(elems)));
                    break;
                }
                if (f.rangeKnown && (r.lo < f.lo || r.hi > f.hi)) {
                    flag(strfmt(
                        "kernel '%s': node %d claims range [%lld, "
                        "%lld] but an invocation touches [%lld, %lld]",
                        k.name.c_str(), f.node,
                        static_cast<long long>(f.lo),
                        static_cast<long long>(f.hi),
                        static_cast<long long>(r.lo),
                        static_cast<long long>(r.hi)));
                    break;
                }
            }
        }

        for (int obj : facts.purity.writtenObjects) {
            for (const Invocation &inv : c.invocations) {
                if (static_cast<std::size_t>(inv.kernel) != ki)
                    continue;
                if (obj >= 0 &&
                    static_cast<std::size_t>(obj) < inv.objects.size())
                    written[static_cast<std::size_t>(
                        inv.objects[static_cast<std::size_t>(obj)])] = 1;
            }
        }

        if (facts.deadlockFree == verify::Verdict::Violated)
            liveness_violated = true;
        else if (facts.deadlockFree != verify::Verdict::Proven)
            liveness_proven = false;
    }

    // Liveness verdicts bind only the configuration they were computed
    // for, so compare against the Dist-DA-IO paths alone.
    for (const PathResult &r : paths) {
        if (r.path.rfind("Dist-DA-IO", 0) != 0)
            continue;
        const bool deadlocked =
            r.crashed &&
            r.failure.find("deadlock") != std::string::npos;
        if (deadlocked && liveness_proven)
            flag(strfmt("%s deadlocked but every kernel's liveness "
                        "is Proven",
                        r.path.c_str()));
        if (!r.crashed && liveness_violated)
            flag(strfmt("liveness claimed Violated but %s ran to "
                        "completion",
                        r.path.c_str()));
    }

    bool any_unwritten = false;
    for (std::size_t oi = 0; oi < c.objects.size(); ++oi)
        any_unwritten = any_unwritten || !written[oi];
    if (!any_unwritten)
        return;
    const std::vector<std::vector<std::uint8_t>> initial =
        initialObjectBytes(c);
    for (const PathResult &r : paths) {
        if (r.crashed)
            continue;
        for (std::size_t oi = 0; oi < c.objects.size(); ++oi) {
            if (written[oi])
                continue;
            if (r.objectBytes[oi] != initial[oi]) {
                flag(strfmt("object '%s' changed under %s but no "
                            "kernel's write footprint contains it",
                            c.objects[oi].name.c_str(),
                            r.path.c_str()));
            }
        }
    }
}

std::string
stripDigits(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    bool in_num = false;
    for (char ch : s) {
        if (ch == '\n')
            break;
        if (ch >= '0' && ch <= '9') {
            if (!in_num)
                out.push_back('#');
            in_num = true;
            continue;
        }
        in_num = false;
        out.push_back(ch);
    }
    return out;
}

} // namespace

const char *
findingKindName(Finding::Kind k)
{
    switch (k) {
      case Finding::Kind::InvalidCase: return "invalid-case";
      case Finding::Kind::Crash: return "crash";
      case Finding::Kind::Divergence: return "divergence";
      case Finding::Kind::StatAnomaly: return "stat-anomaly";
      case Finding::Kind::AnalysisContradiction:
        return "analysis-contradiction";
      default: return "?";
    }
}

std::string
DiffOutcome::signature() const
{
    if (findings.empty())
        return {};
    const Finding &f = findings.front();
    if (f.kind == Finding::Kind::Divergence)
        return findingKindName(f.kind);
    return std::string(findingKindName(f.kind)) + ":" +
           stripDigits(f.detail);
}

std::string
DiffOutcome::summary() const
{
    std::ostringstream out;
    if (findings.empty()) {
        out << "ok (" << paths.size() << " paths agree)";
        return out.str();
    }
    out << findings.size() << " finding(s):\n";
    for (const Finding &f : findings)
        out << "  [" << findingKindName(f.kind) << "] " << f.detail
            << '\n';
    return out.str();
}

DiffOutcome
runDifferential(const FuzzCase &c, const DiffOptions &opts)
{
    DiffOutcome out;
    const std::string invalid = validateCase(c);
    if (!invalid.empty()) {
        out.findings.push_back(
            Finding{Finding::Kind::InvalidCase, invalid});
        return out;
    }

    struct PathSpec
    {
        const char *name;
        RunConfig cfg;
    };
    std::vector<PathSpec> specs;
    auto mkcfg = [](ArchModel m, int predecode = -1) {
        RunConfig cfg;
        cfg.model = m;
        cfg.verifyPlans = compiler::VerifyMode::Error;
        cfg.predecodeOverride = predecode;
        return cfg;
    };
    specs.push_back({"OoO", mkcfg(ArchModel::OoO)});
    if (opts.mono) {
        specs.push_back({"Mono-CA", mkcfg(ArchModel::MonoCA)});
        specs.push_back({"Mono-DA-IO", mkcfg(ArchModel::MonoDA_IO)});
    }
    specs.push_back(
        {"Dist-DA-IO/interp", mkcfg(ArchModel::DistDA_IO, 0)});
    specs.push_back(
        {"Dist-DA-IO/predecode", mkcfg(ArchModel::DistDA_IO, 1)});
    if (opts.planRoundTrip) {
        RunConfig replan = mkcfg(ArchModel::DistDA_IO, 1);
        replan.planRoundTrip = true;
        specs.push_back({"Dist-DA-IO/replan", replan});
    }
    if (opts.cgra)
        specs.push_back({"Dist-DA-F", mkcfg(ArchModel::DistDA_F)});

    // DISTDA_FUZZ_TRACE=1 narrates per-path progress on stderr —
    // the way to localize a hang to one execution path.
    static const bool trace = std::getenv("DISTDA_FUZZ_TRACE");
    out.paths.reserve(specs.size());
    for (const PathSpec &spec : specs) {
        if (trace)
            std::fprintf(stderr, "    [diff] %s...\n", spec.name);
        out.paths.push_back(runPath(c, spec.name, spec.cfg));
    }
    if (trace)
        std::fprintf(stderr, "    [diff] compare\n");

    // Crash accounting: a valid case must run everywhere.
    const PathResult *reference = nullptr;
    for (const PathResult &r : out.paths) {
        if (r.crashed) {
            out.findings.push_back(Finding{
                Finding::Kind::Crash,
                strfmt("%s: %s", r.path.c_str(), r.failure.c_str())});
        } else if (!reference) {
            reference = &r;
        }
    }
    // Static-vs-dynamic soundness oracle (independent of the
    // cross-path comparison, so it runs even when paths crashed).
    if (opts.analyze) {
        if (trace)
            std::fprintf(stderr, "    [diff] analyze\n");
        crossCheckAnalysis(c, out.paths, out.findings);
    }

    if (!reference)
        return out; // everything crashed; nothing to compare

    // Functional cross-check against the first surviving path.
    for (const PathResult &r : out.paths) {
        if (r.crashed || &r == reference)
            continue;
        for (std::size_t oi = 0; oi < c.objects.size(); ++oi) {
            const auto &a = reference->objectBytes[oi];
            const auto &b = r.objectBytes[oi];
            if (a == b)
                continue;
            std::size_t byte = 0;
            while (byte < a.size() && a[byte] == b[byte])
                ++byte;
            const std::uint32_t eb = c.objects[oi].elemBytes;
            out.findings.push_back(Finding{
                Finding::Kind::Divergence,
                strfmt("object '%s' differs between %s and %s at "
                       "element %zu (byte %zu): %02x vs %02x",
                       c.objects[oi].name.c_str(),
                       reference->path.c_str(), r.path.c_str(),
                       byte / eb, byte, a[byte], b[byte])});
            break; // one finding per object pair is enough
        }
        if (r.resultBits != reference->resultBits) {
            std::size_t i = 0;
            while (i < r.resultBits.size() &&
                   i < reference->resultBits.size() &&
                   r.resultBits[i] == reference->resultBits[i])
                ++i;
            out.findings.push_back(Finding{
                Finding::Kind::Divergence,
                strfmt("result carry %zu differs between %s "
                       "(0x%016llx) and %s (0x%016llx)",
                       i, reference->path.c_str(),
                       static_cast<unsigned long long>(
                           i < reference->resultBits.size()
                               ? reference->resultBits[i]
                               : 0),
                       r.path.c_str(),
                       static_cast<unsigned long long>(
                           i < r.resultBits.size() ? r.resultBits[i]
                                                   : 0))});
        }
    }

    // Interpreter vs predecode must agree on every metric exactly —
    // the streams execute the same abstract program. Likewise the
    // replan path against predecode: a plan that survived the text
    // round trip must be indistinguishable in execution.
    const PathResult *interp = nullptr;
    const PathResult *pre = nullptr;
    const PathResult *replan = nullptr;
    for (const PathResult &r : out.paths) {
        if (r.path == "Dist-DA-IO/interp")
            interp = &r;
        if (r.path == "Dist-DA-IO/predecode")
            pre = &r;
        if (r.path == "Dist-DA-IO/replan")
            replan = &r;
    }
    auto cross_check_metrics = [&](const PathResult *a,
                                   const PathResult *b,
                                   const char *what) {
        if (!a || !b || a->crashed || b->crashed)
            return;
        for (const MetricField &mf : kMetricFields) {
            const double va = a->metrics.*(mf.field);
            const double vb = b->metrics.*(mf.field);
            if (va != vb) {
                out.findings.push_back(Finding{
                    Finding::Kind::Divergence,
                    strfmt("%s metric %s differs: %.17g vs %.17g",
                           what, mf.name, va, vb)});
            }
        }
    };
    // The lifecycle breakdown rides the same determinism contract:
    // equivalent Dist-DA-IO legs must attribute identical per-phase
    // ticks, not just identical totals.
    auto cross_check_breakdown = [&](const PathResult *a,
                                     const PathResult *b,
                                     const char *what) {
        if (!a || !b || a->crashed || b->crashed)
            return;
        const auto &ba = a->metrics.offloadBreakdown;
        const auto &bb = b->metrics.offloadBreakdown;
        if (ba.size() != bb.size()) {
            out.findings.push_back(Finding{
                Finding::Kind::Divergence,
                strfmt("%s breakdown row count differs: %zu vs %zu",
                       what, ba.size(), bb.size())});
            return;
        }
        for (std::size_t i = 0; i < ba.size(); ++i) {
            if (ba[i].kernel != bb[i].kernel) {
                out.findings.push_back(Finding{
                    Finding::Kind::Divergence,
                    strfmt("%s breakdown row %zu kernel differs: "
                           "'%s' vs '%s'",
                           what, i, ba[i].kernel.c_str(),
                           bb[i].kernel.c_str())});
                continue;
            }
            const bool equal =
                ba[i].invocations == bb[i].invocations &&
                ba[i].phaseTicks == bb[i].phaseTicks &&
                ba[i].e2eTicks == bb[i].e2eTicks;
            if (!equal) {
                out.findings.push_back(Finding{
                    Finding::Kind::Divergence,
                    strfmt("%s breakdown for kernel '%s' differs "
                           "(e2e %.17g vs %.17g)",
                           what, ba[i].kernel.c_str(), ba[i].e2eTicks,
                           bb[i].e2eTicks)});
            }
        }
    };
    cross_check_metrics(interp, pre, "interp/predecode");
    cross_check_metrics(pre, replan, "predecode/replan");
    cross_check_breakdown(interp, pre, "interp/predecode");
    cross_check_breakdown(pre, replan, "predecode/replan");

    for (const PathResult &r : out.paths)
        checkSanity(r, out.findings);

    // Model-level sanity: the host-only path must not report
    // accelerator work, and accelerated paths must offload something.
    for (const PathResult &r : out.paths) {
        if (r.crashed)
            continue;
        if (r.path == "OoO" && r.metrics.accelInsts != 0.0) {
            out.findings.push_back(
                Finding{Finding::Kind::StatAnomaly,
                        strfmt("OoO reports %g accelerator insts",
                               r.metrics.accelInsts)});
        }
        if (r.path != "OoO" && r.metrics.accelInsts <= 0.0) {
            out.findings.push_back(
                Finding{Finding::Kind::StatAnomaly,
                        strfmt("%s offloaded nothing", r.path.c_str())});
        }
    }

    return out;
}

} // namespace distda::fuzz
