#include "src/fuzz/campaign.hh"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "src/driver/pool.hh"
#include "src/sim/logging.hh"

namespace distda::fuzz
{

std::uint64_t
caseSeedFor(std::uint64_t seed, int run)
{
    // splitmix64 over (seed, run) so neighbouring runs share nothing.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull *
                                 (static_cast<std::uint64_t>(run) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace
{

CampaignFailure
handleFailure(const CampaignOptions &opts, int run,
              std::uint64_t case_seed, const FuzzCase &c,
              const DiffOutcome &outcome)
{
    CampaignFailure fail;
    fail.run = run;
    fail.caseSeed = case_seed;
    fail.signature = outcome.signature();

    FuzzCase minimized = c;
    if (opts.shrink) {
        const std::string want = fail.signature;
        ShrinkOracle oracle = [&](const FuzzCase &cand) {
            return runDifferential(cand, opts.diff).signature() == want;
        };
        minimized =
            shrinkCase(c, oracle, opts.shrinkRounds, nullptr);
    }
    fail.summary = runDifferential(minimized, opts.diff).summary();
    fail.minimized = std::move(minimized);

    if (!opts.outDir.empty()) {
        fail.savedPath =
            strfmt("%s/fuzz-seed%llu-run%d.repro", opts.outDir.c_str(),
                   static_cast<unsigned long long>(opts.seed), run);
        saveCase(fail.minimized, fail.savedPath);
    }
    return fail;
}

} // namespace

CampaignResult
runCampaign(const CampaignOptions &opts)
{
    CampaignResult result;
    result.runs = opts.runs;

    std::mutex mu;
    auto runOne = [&](int run) {
        const std::uint64_t case_seed = caseSeedFor(opts.seed, run);
        FuzzCase c = generateCase(case_seed, opts.gen);
        DiffOutcome outcome = runDifferential(c, opts.diff);
        if (outcome.ok()) {
            if (opts.verbose) {
                std::lock_guard<std::mutex> lk(mu);
                std::fprintf(stderr, "  run %d seed %llu: ok\n", run,
                             static_cast<unsigned long long>(
                                 case_seed));
            }
            return;
        }
        CampaignFailure fail =
            handleFailure(opts, run, case_seed, c, outcome);
        std::lock_guard<std::mutex> lk(mu);
        if (opts.verbose) {
            std::fprintf(stderr, "  run %d seed %llu: FAIL [%s]\n",
                         run,
                         static_cast<unsigned long long>(case_seed),
                         fail.signature.c_str());
        }
        result.details.push_back(std::move(fail));
    };

    if (opts.jobs > 1) {
        driver::ThreadPool pool(opts.jobs);
        for (int run = 0; run < opts.runs; ++run)
            pool.submit([&, run] { runOne(run); });
        pool.wait();
    } else {
        for (int run = 0; run < opts.runs; ++run)
            runOne(run);
    }

    std::sort(result.details.begin(), result.details.end(),
              [](const CampaignFailure &a, const CampaignFailure &b) {
                  return a.run < b.run;
              });
    result.failures = static_cast<int>(result.details.size());
    return result;
}

int
replayCorpus(const std::vector<std::string> &files,
             const DiffOptions &opts, bool verbose)
{
    int failed = 0;
    for (const std::string &file : files) {
        FuzzCase c = loadCase(file);
        DiffOutcome outcome = runDifferential(c, opts);
        if (outcome.ok()) {
            if (verbose)
                std::fprintf(stderr, "  %s: ok\n", file.c_str());
            continue;
        }
        ++failed;
        std::fprintf(stderr, "  %s: FAIL\n%s", file.c_str(),
                     outcome.summary().c_str());
    }
    return failed;
}

} // namespace distda::fuzz
