/**
 * @file
 * Timeline probe: a per-run recorder of typed spans, instants and
 * counter samples that exports Chrome trace-event JSON (loadable in
 * Perfetto / chrome://tracing).
 *
 * Model: a probe owns a set of *tracks*, each belonging to a cluster.
 * In the exported trace every cluster becomes one "process" and every
 * track one "thread", so per-unit activity lines up vertically under
 * its cluster. Instrumented components hold a raw `Probe *` (null when
 * observability is off) plus their track id; the hot-path cost of a
 * disabled probe is one pointer test.
 *
 * Events go into a fixed-capacity ring buffer: when a run emits more
 * events than the ring holds, the oldest are overwritten (and counted
 * in dropped()) so memory stays bounded on long runs while the most
 * recent — usually most interesting — window survives.
 *
 * Counter samples are coalesced: per counter, samples closer together
 * than Options::intervalTicks are skipped. This is the mechanism
 * behind `--stats-interval=<ticks>` time-series tracks.
 *
 * The probe also acts as a registry of named stats::Distributions so
 * instrumented components can record latency/size histograms that end
 * up in the machine-readable run report.
 */

#ifndef DISTDA_SIM_PROBE_HH
#define DISTDA_SIM_PROBE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/stats.hh"
#include "src/sim/ticks.hh"

namespace distda::sim
{

class JsonWriter;

/**
 * Per-run timeline recorder. Not thread-safe: each run (each sweep
 * job) owns its own probe, which matches the one-thread-per-job sweep
 * execution model.
 */
class Probe
{
  public:
    struct Options
    {
        /** Minimum spacing between samples of one counter track. */
        Tick intervalTicks = 1'000'000; // 1 us of simulated time
        /** Ring capacity in events; oldest overwritten beyond this. */
        std::size_t capacity = 1u << 20;
    };

    Probe() = default;
    explicit Probe(const Options &opts) : _opts(opts) {}

    Probe(const Probe &) = delete;
    Probe &operator=(const Probe &) = delete;

    /**
     * Register (or look up) the track for @p name under @p cluster.
     * Idempotent on (cluster, name); returns a dense track id.
     */
    int addTrack(int cluster, const std::string &name);

    /**
     * Register (or look up) a counter series on @p track. Counter ids
     * share the track id space so one track can carry several series.
     */
    int addCounter(int track, const std::string &name);

    /**
     * Record a complete span [start, end) on @p track. @p name MUST
     * point to static-storage text (a literal); the probe stores the
     * pointer, not a copy.
     */
    void span(int track, const char *name, Tick start, Tick end)
    {
        if (end > start)
            record(Event{name, start, end - start, track, Kind::Span});
    }

    /** Record a zero-duration instant on @p track (static @p name). */
    void instant(int track, const char *name, Tick at)
    {
        record(Event{name, at, 0, track, Kind::Instant});
    }

    /**
     * Record a counter sample; dropped when closer than
     * Options::intervalTicks to the previous kept sample of @p
     * counter_id. Pass @p force to bypass coalescing (e.g. for the
     * final sample of a run).
     */
    void counter(int counter_id, Tick at, double value,
                 bool force = false);

    /**
     * Register (or look up) a named distribution. References remain
     * stable for the probe's lifetime.
     */
    stats::Distribution &addDist(const std::string &name, double lo,
                                 double hi, std::size_t num_buckets);

    /** Re-register every distribution under @p g for reporting. */
    void exportDists(stats::Group &g) const;

    /** Events currently held (post-wrap this equals capacity). */
    std::size_t eventCount() const
    {
        return _ring.size();
    }

    /** Events lost to ring wrap-around. */
    std::uint64_t dropped() const { return _dropped; }

    std::size_t numTracks() const { return _tracks.size(); }

    /** Serialize as a Chrome trace-event document into @p w. */
    void writeChromeTrace(JsonWriter &w) const;

    /** Serialize and write to @p path; false (with warn) on error. */
    bool writeChromeTrace(const std::string &path) const;

  private:
    enum class Kind : std::uint8_t { Span, Instant, Counter };

    struct Event
    {
        const char *name; // static storage; counters index _counters
        Tick start;
        Tick dur; // span length, or bit-cast counter value
        std::int32_t track;
        Kind kind;
    };

    struct Track
    {
        std::string name;
        int cluster;
    };

    struct Counter
    {
        std::string name;
        int track;
        Tick lastSample = 0;
        bool sampled = false;
    };

    void record(const Event &ev);

    Options _opts;
    std::vector<Event> _ring;
    std::size_t _next = 0;
    std::uint64_t _dropped = 0;
    std::vector<Track> _tracks;
    std::map<std::pair<int, std::string>, int> _trackIds;
    std::vector<Counter> _counters;
    // std::map keeps references stable as distributions are added.
    std::map<std::string, stats::Distribution> _dists;
};

} // namespace distda::sim

#endif // DISTDA_SIM_PROBE_HH
