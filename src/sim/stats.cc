#include "src/sim/stats.hh"

#include "src/sim/logging.hh"

namespace distda::stats
{

Scalar &
Group::add(const std::string &stat_name)
{
    return _scalars[stat_name];
}

const Scalar &
Group::get(const std::string &stat_name) const
{
    auto it = _scalars.find(stat_name);
    if (it == _scalars.end())
        panic("stat '%s' not found in group '%s'", stat_name.c_str(),
              _name.c_str());
    return it->second;
}

double
Group::value(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        return get(path).value();
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (const Group *child : _children) {
        if (child->name() == head)
            return child->value(rest);
    }
    panic("stat group '%s' has no child '%s'", _name.c_str(), head.c_str());
}

std::vector<std::pair<std::string, double>>
Group::dump() const
{
    std::vector<std::pair<std::string, double>> out;
    for (const auto &[k, v] : _scalars)
        out.emplace_back(_name + "." + k, v.value());
    for (const Group *child : _children) {
        for (auto &[k, v] : child->dump())
            out.emplace_back(_name + "." + k, v);
    }
    return out;
}

void
Group::resetAll()
{
    for (auto &[k, v] : _scalars)
        v.reset();
    for (Group *child : _children)
        child->resetAll();
}

} // namespace distda::stats
