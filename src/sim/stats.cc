#include "src/sim/stats.hh"

#include <cmath>
#include <utility>

#include "src/sim/json.hh"
#include "src/sim/logging.hh"

namespace distda::stats
{

void
P2Quantile::add(double v)
{
    // Warm-up: keep the first five samples sorted; they seed the
    // markers exactly.
    if (_n < 5) {
        _heights[_n] = v;
        ++_n;
        for (std::uint64_t i = _n - 1; i > 0; --i) {
            if (_heights[i] < _heights[i - 1])
                std::swap(_heights[i], _heights[i - 1]);
            else
                break;
        }
        if (_n == 5) {
            for (int i = 0; i < 5; ++i)
                _positions[i] = i + 1;
            _desired[0] = 1.0;
            _desired[1] = 1.0 + 2.0 * _q;
            _desired[2] = 1.0 + 4.0 * _q;
            _desired[3] = 3.0 + 2.0 * _q;
            _desired[4] = 5.0;
        }
        return;
    }

    // Locate the cell and bump the extreme markers.
    int cell;
    if (v < _heights[0]) {
        _heights[0] = v;
        cell = 0;
    } else if (v >= _heights[4]) {
        _heights[4] = v;
        cell = 3;
    } else {
        cell = 0;
        while (cell < 3 && v >= _heights[cell + 1])
            ++cell;
    }
    for (int i = cell + 1; i < 5; ++i)
        _positions[i] += 1.0;
    ++_n;

    // Advance the desired positions by the marker increments
    // (0, q/2, q, (1+q)/2, 1).
    _desired[1] += _q / 2.0;
    _desired[2] += _q;
    _desired[3] += (1.0 + _q) / 2.0;
    _desired[4] += 1.0;

    // Adjust the three interior markers toward their desired
    // positions, parabolically when the neighbor gap allows.
    for (int i = 1; i <= 3; ++i) {
        const double d = _desired[i] - _positions[i];
        if ((d >= 1.0 && _positions[i + 1] - _positions[i] > 1.0) ||
            (d <= -1.0 && _positions[i - 1] - _positions[i] < -1.0)) {
            const double s = d >= 1.0 ? 1.0 : -1.0;
            // Piecewise-parabolic (P²) prediction.
            const double np1 = _positions[i + 1];
            const double nm1 = _positions[i - 1];
            const double n0 = _positions[i];
            double h =
                _heights[i] +
                s / (np1 - nm1) *
                    ((n0 - nm1 + s) * (_heights[i + 1] - _heights[i]) /
                         (np1 - n0) +
                     (np1 - n0 - s) * (_heights[i] - _heights[i - 1]) /
                         (n0 - nm1));
            // Fall back to linear when the parabola leaves the cell.
            if (h <= _heights[i - 1] || h >= _heights[i + 1]) {
                const int j = s > 0.0 ? i + 1 : i - 1;
                h = _heights[i] + s * (_heights[j] - _heights[i]) /
                                      (_positions[j] - n0);
            }
            _heights[i] = h;
            _positions[i] += s;
        }
    }
}

double
P2Quantile::value() const
{
    if (_n == 0)
        return 0.0;
    if (_n > 5)
        return _heights[2];
    // Exact small-sample quantile: nearest-rank on the sorted buffer
    // (at n == 5 the heights are still exactly the sorted samples).
    const auto rank = static_cast<std::uint64_t>(
        _q * static_cast<double>(_n - 1) + 0.5);
    return _heights[rank < _n ? rank : _n - 1];
}

void
P2Quantile::reset()
{
    _n = 0;
    for (int i = 0; i < 5; ++i)
        _heights[i] = _positions[i] = _desired[i] = 0.0;
}

Distribution::Distribution(double lo, double hi, std::size_t num_buckets)
    : _lo(lo), _hi(hi), _buckets(num_buckets == 0 ? 1 : num_buckets, 0.0)
{
    DISTDA_ASSERT(hi > lo, "distribution range [%g, %g) is empty", lo, hi);
}

void
Distribution::sample(double v, double weight)
{
    if (_count == 0.0) {
        _min = v;
        _max = v;
    } else {
        if (v < _min)
            _min = v;
        if (v > _max)
            _max = v;
    }
    _count += weight;
    _sum += v * weight;
    _sumSq += v * v * weight;
    _p50.add(v);
    _p95.add(v);
    _p99.add(v);
    if (v < _lo) {
        _underflow += weight;
    } else if (v >= _hi) {
        _overflow += weight;
    } else {
        const auto idx = static_cast<std::size_t>(
            (v - _lo) / (_hi - _lo) * static_cast<double>(_buckets.size()));
        _buckets[idx < _buckets.size() ? idx : _buckets.size() - 1] += weight;
    }
}

double
Distribution::stdev() const
{
    if (_count <= 0.0)
        return 0.0;
    const double m = _sum / _count;
    const double var = _sumSq / _count - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    for (double &b : _buckets)
        b = 0.0;
    _count = _sum = _sumSq = 0.0;
    _min = _max = 0.0;
    _underflow = _overflow = 0.0;
    _p50.reset();
    _p95.reset();
    _p99.reset();
}

void
Distribution::jsonDump(sim::JsonWriter &w) const
{
    w.beginObject();
    w.key("type").value("distribution");
    w.key("count").value(_count);
    w.key("sum").value(_sum);
    w.key("mean").value(mean());
    w.key("stdev").value(stdev());
    w.key("min").value(min());
    w.key("max").value(max());
    w.key("underflow").value(_underflow);
    w.key("overflow").value(_overflow);
    w.key("p50").value(p50());
    w.key("p95").value(p95());
    w.key("p99").value(p99());
    w.key("bucket_lo").value(_lo);
    w.key("bucket_hi").value(_hi);
    w.key("buckets").beginArray();
    for (const double b : _buckets)
        w.value(b);
    w.endArray();
    w.endObject();
}

void
Group::checkFresh(const std::string &stat_name) const
{
    // One name space across scalars, distributions and formulas: a
    // cross-kind collision would be just as ambiguous in a flattened
    // dump as a same-kind one.
    if (_scalars.count(stat_name) || _distributions.count(stat_name) ||
        _formulas.count(stat_name)) {
        panic("duplicate stat '%s' in group '%s'", stat_name.c_str(),
              _name.c_str());
    }
}

Scalar &
Group::add(const std::string &stat_name)
{
    checkFresh(stat_name);
    return _scalars[stat_name];
}

Distribution &
Group::addDistribution(const std::string &stat_name, double lo, double hi,
                       std::size_t num_buckets)
{
    checkFresh(stat_name);
    return _distributions.try_emplace(stat_name, lo, hi, num_buckets)
        .first->second;
}

void
Group::addFormula(const std::string &stat_name, std::function<double()> fn)
{
    checkFresh(stat_name);
    _formulas.try_emplace(stat_name, Formula(std::move(fn)));
}

void
Group::addChild(Group *child)
{
    for (const Group *existing : _children) {
        if (existing->name() == child->name())
            panic("duplicate child group '%s' in group '%s'",
                  child->name().c_str(), _name.c_str());
    }
    _children.push_back(child);
}

const Scalar &
Group::get(const std::string &stat_name) const
{
    auto it = _scalars.find(stat_name);
    if (it == _scalars.end())
        panic("stat '%s' not found in group '%s'", stat_name.c_str(),
              _name.c_str());
    return it->second;
}

const Distribution &
Group::getDistribution(const std::string &stat_name) const
{
    auto it = _distributions.find(stat_name);
    if (it == _distributions.end())
        panic("distribution '%s' not found in group '%s'",
              stat_name.c_str(), _name.c_str());
    return it->second;
}

double
Group::value(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        if (auto it = _formulas.find(path); it != _formulas.end())
            return it->second.value();
        return get(path).value();
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (const Group *child : _children) {
        if (child->name() == head)
            return child->value(rest);
    }
    panic("stat group '%s' has no child '%s'", _name.c_str(), head.c_str());
}

std::vector<std::pair<std::string, double>>
Group::dump() const
{
    std::vector<std::pair<std::string, double>> out;
    for (const auto &[k, v] : _scalars)
        out.emplace_back(_name + "." + k, v.value());
    for (const auto &[k, v] : _formulas)
        out.emplace_back(_name + "." + k, v.value());
    for (const auto &[k, d] : _distributions) {
        const std::string base = _name + "." + k;
        out.emplace_back(base + ".count", d.count());
        out.emplace_back(base + ".mean", d.mean());
        out.emplace_back(base + ".stdev", d.stdev());
        out.emplace_back(base + ".min", d.min());
        out.emplace_back(base + ".max", d.max());
    }
    for (const Group *child : _children) {
        for (auto &[k, v] : child->dump())
            out.emplace_back(_name + "." + k, v);
    }
    return out;
}

void
Group::resetAll()
{
    for (auto &[k, v] : _scalars)
        v.reset();
    for (auto &[k, d] : _distributions)
        d.reset();
    for (Group *child : _children)
        child->resetAll();
}

void
Group::jsonDump(sim::JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[k, v] : _scalars)
        w.key(k).value(v.value());
    for (const auto &[k, f] : _formulas)
        w.key(k).value(f.value());
    for (const auto &[k, d] : _distributions) {
        w.key(k);
        d.jsonDump(w);
    }
    for (const Group *child : _children) {
        w.key(child->name());
        child->jsonDump(w);
    }
    w.endObject();
}

std::string
Group::jsonString() const
{
    sim::JsonWriter w;
    jsonDump(w);
    return w.str();
}

} // namespace distda::stats
