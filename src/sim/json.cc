#include "src/sim/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/sim/logging.hh"

namespace distda::sim
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

void
JsonWriter::beforeValue()
{
    if (_stack.empty())
        return;
    if (_stack.back() == Frame::Object) {
        DISTDA_ASSERT(_keyPending, "JSON object value without a key");
        _keyPending = false;
        return;
    }
    if (!_first.back())
        _out += ',';
    _first.back() = false;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    DISTDA_ASSERT(!_stack.empty() && _stack.back() == Frame::Object,
                  "JSON key outside an object");
    DISTDA_ASSERT(!_keyPending, "JSON key '%s' follows a dangling key",
                  k.c_str());
    if (!_first.back())
        _out += ',';
    _first.back() = false;
    _out += '"';
    _out += jsonEscape(k);
    _out += "\":";
    _keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    _out += '{';
    _stack.push_back(Frame::Object);
    _first.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    DISTDA_ASSERT(!_stack.empty() && _stack.back() == Frame::Object &&
                      !_keyPending,
                  "mismatched JSON endObject");
    _out += '}';
    _stack.pop_back();
    _first.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    _out += '[';
    _stack.push_back(Frame::Array);
    _first.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    DISTDA_ASSERT(!_stack.empty() && _stack.back() == Frame::Array,
                  "mismatched JSON endArray");
    _out += ']';
    _stack.pop_back();
    _first.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    _out += '"';
    _out += jsonEscape(v);
    _out += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null keeps the document parseable.
        _out += "null";
        return *this;
    }
    char buf[40];
    // %.17g round-trips doubles; trim the common integral case.
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    _out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    _out += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    _out += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    _out += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    beforeValue();
    _out += "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(const std::string &json)
{
    beforeValue();
    _out += json;
    return *this;
}

const std::string &
JsonWriter::str() const
{
    DISTDA_ASSERT(_stack.empty(), "JSON document has %zu open scope(s)",
                  _stack.size());
    return _out;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = n == text.size() && std::fclose(f) == 0;
    if (!ok)
        warn("short write to '%s'", path.c_str());
    return ok;
}

bool
readTextFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        warn("cannot open '%s' for reading", path.c_str());
        return false;
    }
    out.clear();
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok)
        warn("read error on '%s'", path.c_str());
    return ok;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        panic("JSON object has no member '%s'", key.c_str());
    return *v;
}

namespace
{

/** Recursive-descent JSON parser over a bounded character range. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &err)
        : _s(text), _err(err)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (_pos != _s.size())
            return fail("trailing content after JSON document");
        return true;
    }

  private:
    bool
    fail(const char *what)
    {
        _err = strfmt("%s at offset %zu", what, _pos);
        return false;
    }

    void
    skipWs()
    {
        while (_pos < _s.size() &&
               (_s[_pos] == ' ' || _s[_pos] == '\t' ||
                _s[_pos] == '\n' || _s[_pos] == '\r'))
            ++_pos;
    }

    /**
     * Read the four hex digits of a \u escape. Expects _pos on the
     * 'u'; leaves it on the last digit (the shared ++_pos after the
     * escape switch steps past it).
     */
    bool
    readHex4(unsigned &cp)
    {
        if (_pos + 4 >= _s.size())
            return fail("truncated \\u escape");
        cp = 0;
        for (int k = 1; k <= 4; ++k) {
            const char h = _s[_pos + k];
            cp <<= 4;
            if (h >= '0' && h <= '9')
                cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        _pos += 4;
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (_s.compare(_pos, len, word) != 0)
            return fail("unrecognized literal");
        _pos += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (_pos >= _s.size() || _s[_pos] != '"')
            return fail("expected string");
        ++_pos;
        out.clear();
        while (_pos < _s.size() && _s[_pos] != '"') {
            char ch = _s[_pos];
            if (ch != '\\') {
                out.push_back(ch);
                ++_pos;
                continue;
            }
            if (++_pos >= _s.size())
                return fail("unterminated escape");
            ch = _s[_pos];
            switch (ch) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                  unsigned cp = 0;
                  if (!readHex4(cp))
                      return false;
                  if (cp >= 0xDC00 && cp <= 0xDFFF)
                      return fail("lone low surrogate in \\u escape");
                  if (cp >= 0xD800 && cp <= 0xDBFF) {
                      // A high surrogate is only valid as the first
                      // half of an immediately following \uDC00-\uDFFF
                      // escape; together they name one supplementary-
                      // plane code point (RFC 8259 §7).
                      if (_pos + 2 >= _s.size() ||
                          _s[_pos + 1] != '\\' || _s[_pos + 2] != 'u')
                          return fail(
                              "unpaired high surrogate in \\u escape");
                      _pos += 2;
                      unsigned lo = 0;
                      if (!readHex4(lo))
                          return false;
                      if (lo < 0xDC00 || lo > 0xDFFF)
                          return fail(
                              "unpaired high surrogate in \\u escape");
                      cp = 0x10000 + ((cp - 0xD800) << 10) +
                           (lo - 0xDC00);
                  }
                  appendUtf8(out, cp);
                  break;
              }
              default:
                return fail("unknown escape character");
            }
            ++_pos;
        }
        if (_pos >= _s.size())
            return fail("unterminated string");
        ++_pos; // closing quote
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > 128)
            return fail("JSON nesting too deep");
        skipWs();
        if (_pos >= _s.size())
            return fail("unexpected end of input");
        const char ch = _s[_pos];
        if (ch == '{') {
            out.kind = JsonValue::Kind::Object;
            ++_pos;
            skipWs();
            if (_pos < _s.size() && _s[_pos] == '}') {
                ++_pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (_pos >= _s.size() || _s[_pos] != ':')
                    return fail("expected ':' in object");
                ++_pos;
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.obj.emplace_back(std::move(key),
                                     std::move(member));
                skipWs();
                if (_pos >= _s.size())
                    return fail("unterminated object");
                if (_s[_pos] == ',') {
                    ++_pos;
                    continue;
                }
                if (_s[_pos] == '}') {
                    ++_pos;
                    return true;
                }
                return fail("expected ',' or '}' in object");
            }
        }
        if (ch == '[') {
            out.kind = JsonValue::Kind::Array;
            ++_pos;
            skipWs();
            if (_pos < _s.size() && _s[_pos] == ']') {
                ++_pos;
                return true;
            }
            while (true) {
                JsonValue elem;
                if (!parseValue(elem, depth + 1))
                    return false;
                out.arr.push_back(std::move(elem));
                skipWs();
                if (_pos >= _s.size())
                    return fail("unterminated array");
                if (_s[_pos] == ',') {
                    ++_pos;
                    continue;
                }
                if (_s[_pos] == ']') {
                    ++_pos;
                    return true;
                }
                return fail("expected ',' or ']' in array");
            }
        }
        if (ch == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        if (ch == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.b = true;
            return literal("true");
        }
        if (ch == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.b = false;
            return literal("false");
        }
        if (ch == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        }
        if (ch == '-' || (ch >= '0' && ch <= '9')) {
            out.kind = JsonValue::Kind::Number;
            char *end = nullptr;
            out.num = std::strtod(_s.c_str() + _pos, &end);
            const auto consumed = static_cast<std::size_t>(
                end - (_s.c_str() + _pos));
            if (consumed == 0)
                return fail("malformed number");
            _pos += consumed;
            return true;
        }
        return fail("unexpected character");
    }

    const std::string &_s;
    std::string &_err;
    std::size_t _pos = 0;
};

} // namespace

bool
tryParseJson(const std::string &text, JsonValue &out, std::string &err)
{
    out = JsonValue{};
    err.clear();
    JsonParser p(text, err);
    return p.parse(out);
}

JsonValue
parseJson(const std::string &text, const char *what)
{
    JsonValue v;
    std::string err;
    if (!tryParseJson(text, v, err))
        fatal("%s: malformed JSON: %s", what, err.c_str());
    return v;
}

void
dumpJsonValue(const JsonValue &v, JsonWriter &w)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        w.nullValue();
        break;
      case JsonValue::Kind::Bool:
        w.value(v.b);
        break;
      case JsonValue::Kind::Number:
        w.value(v.num);
        break;
      case JsonValue::Kind::String:
        w.value(v.str);
        break;
      case JsonValue::Kind::Array:
        w.beginArray();
        for (const JsonValue &elem : v.arr)
            dumpJsonValue(elem, w);
        w.endArray();
        break;
      case JsonValue::Kind::Object:
        w.beginObject();
        for (const auto &[key, member] : v.obj) {
            w.key(key);
            dumpJsonValue(member, w);
        }
        w.endObject();
        break;
    }
}

} // namespace distda::sim
