#include "src/sim/json.hh"

#include <cmath>
#include <cstdio>

#include "src/sim/logging.hh"

namespace distda::sim
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

void
JsonWriter::beforeValue()
{
    if (_stack.empty())
        return;
    if (_stack.back() == Frame::Object) {
        DISTDA_ASSERT(_keyPending, "JSON object value without a key");
        _keyPending = false;
        return;
    }
    if (!_first.back())
        _out += ',';
    _first.back() = false;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    DISTDA_ASSERT(!_stack.empty() && _stack.back() == Frame::Object,
                  "JSON key outside an object");
    DISTDA_ASSERT(!_keyPending, "JSON key '%s' follows a dangling key",
                  k.c_str());
    if (!_first.back())
        _out += ',';
    _first.back() = false;
    _out += '"';
    _out += jsonEscape(k);
    _out += "\":";
    _keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    _out += '{';
    _stack.push_back(Frame::Object);
    _first.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    DISTDA_ASSERT(!_stack.empty() && _stack.back() == Frame::Object &&
                      !_keyPending,
                  "mismatched JSON endObject");
    _out += '}';
    _stack.pop_back();
    _first.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    _out += '[';
    _stack.push_back(Frame::Array);
    _first.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    DISTDA_ASSERT(!_stack.empty() && _stack.back() == Frame::Array,
                  "mismatched JSON endArray");
    _out += ']';
    _stack.pop_back();
    _first.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    _out += '"';
    _out += jsonEscape(v);
    _out += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null keeps the document parseable.
        _out += "null";
        return *this;
    }
    char buf[40];
    // %.17g round-trips doubles; trim the common integral case.
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    _out += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    _out += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    _out += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    _out += v ? "true" : "false";
    return *this;
}

const std::string &
JsonWriter::str() const
{
    DISTDA_ASSERT(_stack.empty(), "JSON document has %zu open scope(s)",
                  _stack.size());
    return _out;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    const bool ok = n == text.size() && std::fclose(f) == 0;
    if (!ok)
        warn("short write to '%s'", path.c_str());
    return ok;
}

} // namespace distda::sim
