#include "src/sim/event_queue.hh"

#include "src/sim/logging.hh"

namespace distda::sim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < _curTick) {
        panic("event scheduled in the past (when=%llu cur=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_curTick));
    }
    _events.push(Event{when, _nextSeq++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (_events.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast as the
    // element is popped immediately afterwards.
    Event ev = std::move(const_cast<Event &>(_events.top()));
    _events.pop();
    _curTick = ev.when;
    ev.cb();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!_events.empty() && _events.top().when <= limit)
        step();
    if (_curTick < limit)
        _curTick = limit;
}

void
EventQueue::reset()
{
    while (!_events.empty())
        _events.pop();
    _curTick = 0;
    _nextSeq = 0;
}

} // namespace distda::sim
