#include "src/sim/event_queue.hh"

#include <algorithm>

#include "src/sim/logging.hh"

namespace distda::sim
{

namespace
{
/** Pre-sized so the first bursts of scheduling never reallocate. */
constexpr std::size_t initialCapacity = 64;
} // namespace

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < _curTick) {
        panic("event scheduled in the past (when=%llu cur=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_curTick));
    }
    if (_events.capacity() == 0)
        _events.reserve(initialCapacity);
    _events.push_back(Event{when, _nextSeq++, std::move(cb)});
    std::push_heap(_events.begin(), _events.end(), Later{});
}

bool
EventQueue::step()
{
    if (_events.empty())
        return false;
    std::pop_heap(_events.begin(), _events.end(), Later{});
    Event ev = std::move(_events.back());
    _events.pop_back();
    _curTick = ev.when;
    ev.cb();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!_events.empty() && _events.front().when <= limit)
        step();
    if (_curTick < limit)
        _curTick = limit;
}

void
EventQueue::reset()
{
    _events.clear();
    _curTick = 0;
    _nextSeq = 0;
}

} // namespace distda::sim
