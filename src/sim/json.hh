/**
 * @file
 * A minimal streaming JSON writer. The observability layer emits two
 * JSON artifacts — Chrome trace-event timelines and machine-readable
 * run reports — and both only need objects, arrays, numbers, strings
 * and booleans, so a tiny push-style writer beats pulling in a
 * dependency. The writer tracks the container stack and inserts commas
 * and indentation; keys and values are emitted in call order.
 */

#ifndef DISTDA_SIM_JSON_HH
#define DISTDA_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace distda::sim
{

/** Escape @p s for use inside a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Push-style JSON document builder. Containers are opened and closed
 * explicitly; inside an object every value must be preceded by key().
 * The result is valid JSON iff every begin has a matching end and the
 * key/value discipline is respected (checked with panics).
 */
class JsonWriter
{
  public:
    JsonWriter() { _out.reserve(4096); }

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Name the next value of the enclosing object. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(bool v);
    JsonWriter &nullValue();

    /**
     * Splice @p json verbatim as the next value. The caller guarantees
     * it is one complete, valid JSON value (e.g. a document produced
     * by another JsonWriter); the writer only handles the surrounding
     * comma/key discipline. The serve layer uses this to embed an
     * already-built run report inside a response envelope without
     * re-parsing it.
     */
    JsonWriter &rawValue(const std::string &json);

    /** The document so far; call once everything is closed. */
    const std::string &str() const;

  private:
    enum class Frame : std::uint8_t { Object, Array };

    void beforeValue();

    std::string _out;
    std::vector<Frame> _stack;
    std::vector<bool> _first;
    bool _keyPending = false;
};

/** Write @p text to @p path; returns false (with warn) on I/O error. */
bool writeTextFile(const std::string &path, const std::string &text);

/** Read @p path into @p out; returns false (with warn) when absent. */
bool readTextFile(const std::string &path, std::string &out);

/**
 * A parsed JSON value — the read-side counterpart of JsonWriter,
 * added for the report-comparison tooling (tools/distda_stats) and
 * report schema tests. Object members preserve document order so
 * diffs of two reports line up with the files.
 */
struct JsonValue
{
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup on an object; null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** find() that panics when the member is missing. */
    const JsonValue &at(const std::string &key) const;
};

/**
 * Parse a complete JSON document. On success returns true and fills
 * @p out; on malformed input returns false with a position-annotated
 * message in @p err. Accepts full RFC 8259, including `\uXXXX` escapes
 * for any code point: BMP escapes decode to UTF-8 directly and
 * surrogate pairs combine into their supplementary-plane code point.
 * Lone or malformed surrogate halves are rejected with the offending
 * offset — request JSON authored by external serve clients must not
 * smuggle invalid UTF-8 through the escape syntax.
 */
bool tryParseJson(const std::string &text, JsonValue &out,
                  std::string &err);

/** tryParseJson() that is fatal on malformed input, naming @p what. */
JsonValue parseJson(const std::string &text, const char *what);

/** Re-serialize a parsed value through @p w (document order kept). */
void dumpJsonValue(const JsonValue &v, JsonWriter &w);

} // namespace distda::sim

#endif // DISTDA_SIM_JSON_HH
