/**
 * @file
 * DPRINTF-style debug tracing in the gem5 mold: named flags enabled at
 * runtime (programmatically or via the DISTDA_TRACE environment
 * variable, a comma-separated flag list), with each record carrying
 * the current simulated tick and the emitting unit's name.
 *
 * Usage:
 *   DISTDA_TRACE=Stream,Channel ./build/tools/distda_run ...
 *   DPRINTF(Stream, "fetch chunk %lld at 0x%llx", c, addr);
 */

#ifndef DISTDA_SIM_TRACE_HH
#define DISTDA_SIM_TRACE_HH

#include <string>

#include "src/sim/ticks.hh"

namespace distda::trace
{

/** Trace flags; one bit per subsystem. */
enum class Flag : unsigned
{
    Stream,   ///< access-unit fill/drain FSM activity
    Channel,  ///< produce/consume and backpressure
    Actor,    ///< partition actor iteration progress
    Runtime,  ///< offload configuration and launches
    Noc,      ///< packet injections
    Cache,    ///< hits/misses/writebacks
    NumFlags
};

/** Resolve a flag's name. */
const char *flagName(Flag f);

/** Enable/disable one flag. */
void setEnabled(Flag f, bool enabled);

/** True when @p f is enabled. */
bool enabled(Flag f);

/**
 * Enable flags from a comma-separated list ("Stream,Actor"). The
 * keyword "all" enables every flag; unknown names warn and are
 * otherwise ignored.
 */
void enableFromList(const std::string &list);

/**
 * Parse DISTDA_TRACE from the environment. Runs at most once per
 * process (thread-safe; done lazily on first enabled() query).
 */
void initFromEnvironment();

/** Emit one trace record (printf-style). */
void print(Flag f, sim::Tick when, const char *unit, const char *fmt,
           ...) __attribute__((format(printf, 4, 5)));

} // namespace distda::trace

/**
 * Emit a trace record when @p flag is enabled. @p when and @p unit
 * identify the simulated time and component.
 */
#define DISTDA_DPRINTF(flag, when, unit, ...)                             \
    do {                                                                  \
        if (::distda::trace::enabled(::distda::trace::Flag::flag)) {      \
            ::distda::trace::print(::distda::trace::Flag::flag, (when),   \
                                   (unit), __VA_ARGS__);                  \
        }                                                                 \
    } while (0)

#endif // DISTDA_SIM_TRACE_HH
