/**
 * @file
 * Core simulation time types: a Tick is one picosecond, as in gem5.
 */

#ifndef DISTDA_SIM_TICKS_HH
#define DISTDA_SIM_TICKS_HH

#include <cstdint>

namespace distda::sim
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Ticks per second (1 tick == 1 ps). */
constexpr Tick ticksPerSecond = 1'000'000'000'000ULL;

/** The largest representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

/**
 * A clock domain converts between cycles and ticks for one frequency.
 * Components running at different frequencies (2GHz host/IO cores, 1GHz
 * CGRA fabrics) each hold a ClockDomain.
 */
class ClockDomain
{
  public:
    /** Construct a domain from a frequency in hertz. */
    explicit constexpr ClockDomain(std::uint64_t freq_hz)
        : _freqHz(freq_hz), _period(ticksPerSecond / freq_hz)
    {
    }

    /** Frequency of this domain in hertz. */
    constexpr std::uint64_t freqHz() const { return _freqHz; }

    /** Duration of one cycle in ticks. */
    constexpr Tick period() const { return _period; }

    /** Convert a cycle count to a tick duration. */
    constexpr Tick cyclesToTicks(Cycles c) const { return c * _period; }

    /** Convert a tick duration to cycles, rounding up. */
    constexpr Cycles
    ticksToCycles(Tick t) const
    {
        return (t + _period - 1) / _period;
    }

    /** The next tick at or after @p when that lies on a clock edge. */
    constexpr Tick
    clockEdge(Tick when) const
    {
        return ((when + _period - 1) / _period) * _period;
    }

  private:
    std::uint64_t _freqHz;
    Tick _period;
};

/** Convenience: make a domain from a GHz value. */
constexpr ClockDomain
gigahertz(double ghz)
{
    return ClockDomain(static_cast<std::uint64_t>(ghz * 1e9));
}

} // namespace distda::sim

#endif // DISTDA_SIM_TICKS_HH
