#include "src/sim/logging.hh"

#include <atomic>
#include <cstdlib>
#include <vector>

namespace distda
{

namespace
{
// Toggled by drivers while worker threads may be mid-run, so atomic;
// it only gates status output.
std::atomic<bool> informEnabledFlag{true};
std::atomic<bool> warnEnabledFlag{true};

// Per-thread nesting depth of active ScopedFailureCapture guards.
thread_local int captureDepth = 0;
} // namespace

ScopedFailureCapture::ScopedFailureCapture()
{
    ++captureDepth;
}

ScopedFailureCapture::~ScopedFailureCapture()
{
    --captureDepth;
}

bool
ScopedFailureCapture::active()
{
    return captureDepth > 0;
}

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    if (ScopedFailureCapture::active())
        throw SimFailure("panic: " + s, true);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    if (ScopedFailureCapture::active())
        throw SimFailure("fatal: " + s, false);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (!warnEnabledFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!informEnabledFlag.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", s.c_str());
}

void
setInformEnabled(bool enabled)
{
    informEnabledFlag.store(enabled, std::memory_order_relaxed);
}

bool
informEnabled()
{
    return informEnabledFlag.load(std::memory_order_relaxed);
}

void
setWarnEnabled(bool enabled)
{
    warnEnabledFlag.store(enabled, std::memory_order_relaxed);
}

bool
warnEnabled()
{
    return warnEnabledFlag.load(std::memory_order_relaxed);
}

} // namespace distda
