#include "src/sim/trace.hh"

#include <array>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/sim/logging.hh"

namespace distda::trace
{

namespace
{

// Flags are read from every simulation thread (DPRINTF hot path) and
// may be toggled while a parallel sweep is in flight, so each one is
// an atomic; relaxed ordering suffices because a flag only gates
// diagnostic output.
std::array<std::atomic<bool>, static_cast<std::size_t>(Flag::NumFlags)>
    flags{};
std::once_flag envOnce;

} // namespace

const char *
flagName(Flag f)
{
    switch (f) {
      case Flag::Stream: return "Stream";
      case Flag::Channel: return "Channel";
      case Flag::Actor: return "Actor";
      case Flag::Runtime: return "Runtime";
      case Flag::Noc: return "Noc";
      case Flag::Cache: return "Cache";
      default: return "?";
    }
}

void
setEnabled(Flag f, bool enabled_flag)
{
    flags[static_cast<std::size_t>(f)].store(enabled_flag,
                                             std::memory_order_relaxed);
}

bool
enabled(Flag f)
{
    initFromEnvironment();
    return flags[static_cast<std::size_t>(f)].load(
        std::memory_order_relaxed);
}

void
enableFromList(const std::string &list)
{
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string name = list.substr(pos, comma - pos);
        bool found = false;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(Flag::NumFlags); ++i) {
            if (name == "all" || name == flagName(static_cast<Flag>(i))) {
                flags[i].store(true, std::memory_order_relaxed);
                found = true;
            }
        }
        if (!found && !name.empty())
            warn("unknown trace flag '%s'", name.c_str());
        pos = comma + 1;
    }
}

void
initFromEnvironment()
{
    std::call_once(envOnce, [] {
        if (const char *env = std::getenv("DISTDA_TRACE"))
            enableFromList(env);
    });
}

void
print(Flag f, sim::Tick when, const char *unit, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    const std::string body = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "%12llu: %s: [%s] %s\n",
                 static_cast<unsigned long long>(when), unit,
                 flagName(f), body.c_str());
}

} // namespace distda::trace
