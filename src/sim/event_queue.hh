/**
 * @file
 * A discrete-event queue in the gem5 style: callbacks scheduled at
 * absolute ticks, executed in (tick, insertion-order) order.
 */

#ifndef DISTDA_SIM_EVENT_QUEUE_HH
#define DISTDA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/ticks.hh"

namespace distda::sim
{

/**
 * Priority-queue based event queue. Events at equal ticks fire in
 * insertion order (FIFO), which keeps actor scheduling deterministic.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Number of events still pending. */
    std::size_t pending() const { return _events.size(); }

    /** True when no events remain. */
    bool empty() const { return _events.empty(); }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delta ticks from now. */
    void scheduleIn(Tick delta, Callback cb)
    {
        schedule(_curTick + delta, std::move(cb));
    }

    /**
     * Run a single event, advancing time to it.
     * @return false when the queue was empty.
     */
    bool step();

    /** Run until the queue drains. */
    void run();

    /** Run events up to and including tick @p limit. */
    void runUntil(Tick limit);

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
    /**
     * Min-heap on (when, seq) via std::push_heap/std::pop_heap rather
     * than std::priority_queue: top() on the adaptor is const, which
     * forces a const_cast to move the callback out, and the adaptor
     * hides the vector so capacity can't be reserved.
     */
    std::vector<Event> _events;
};

} // namespace distda::sim

#endif // DISTDA_SIM_EVENT_QUEUE_HH
