#include "src/sim/probe.hh"

#include <bit>
#include <set>

#include "src/sim/json.hh"
#include "src/sim/logging.hh"

namespace distda::sim
{

namespace
{

// Trace-event timestamps are microseconds; ticks are picoseconds.
double
usec(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

} // namespace

int
Probe::addTrack(int cluster, const std::string &name)
{
    auto key = std::make_pair(cluster, name);
    if (auto it = _trackIds.find(key); it != _trackIds.end())
        return it->second;
    const int id = static_cast<int>(_tracks.size());
    _tracks.push_back(Track{name, cluster});
    _trackIds.emplace(std::move(key), id);
    return id;
}

int
Probe::addCounter(int track, const std::string &name)
{
    DISTDA_ASSERT(track >= 0 &&
                      track < static_cast<int>(_tracks.size()),
                  "counter '%s' on unknown track %d", name.c_str(),
                  track);
    for (std::size_t i = 0; i < _counters.size(); ++i) {
        if (_counters[i].track == track && _counters[i].name == name)
            return static_cast<int>(i);
    }
    _counters.push_back(Counter{name, track});
    return static_cast<int>(_counters.size()) - 1;
}

void
Probe::record(const Event &ev)
{
    if (_opts.capacity == 0)
        return;
    if (_ring.size() < _opts.capacity) {
        _ring.push_back(ev);
        return;
    }
    _ring[_next] = ev;
    _next = (_next + 1) % _opts.capacity;
    ++_dropped;
}

void
Probe::counter(int counter_id, Tick at, double value, bool force)
{
    DISTDA_ASSERT(counter_id >= 0 &&
                      counter_id < static_cast<int>(_counters.size()),
                  "sample of unknown counter %d", counter_id);
    Counter &c = _counters[counter_id];
    if (!force && c.sampled && at < c.lastSample + _opts.intervalTicks)
        return;
    c.sampled = true;
    c.lastSample = at;
    record(Event{nullptr, at, std::bit_cast<Tick>(value), counter_id,
                 Kind::Counter});
}

stats::Distribution &
Probe::addDist(const std::string &name, double lo, double hi,
               std::size_t num_buckets)
{
    auto it = _dists.find(name);
    if (it == _dists.end()) {
        it = _dists
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(name),
                          std::forward_as_tuple(lo, hi, num_buckets))
                 .first;
    }
    return it->second;
}

void
Probe::exportDists(stats::Group &g) const
{
    for (const auto &[name, dist] : _dists) {
        stats::Distribution &d = g.addDistribution(
            name, dist.bucketLo(), dist.bucketHi(), dist.numBuckets());
        d = dist;
    }
}

void
Probe::writeChromeTrace(JsonWriter &w) const
{
    w.beginObject();
    w.key("displayTimeUnit").value("ns");
    w.key("traceEvents").beginArray();

    // Metadata: name each cluster's "process" and each track's
    // "thread". tid is the registration-order track id, so trace
    // viewers show tracks in the order components registered them.
    std::set<int> clusters;
    for (const Track &t : _tracks)
        clusters.insert(t.cluster);
    for (const int c : clusters) {
        w.beginObject();
        w.key("ph").value("M");
        w.key("name").value("process_name");
        w.key("pid").value(c);
        w.key("tid").value(0);
        w.key("args").beginObject();
        w.key("name").value("cluster" + std::to_string(c));
        w.endObject();
        w.endObject();
    }
    for (std::size_t i = 0; i < _tracks.size(); ++i) {
        w.beginObject();
        w.key("ph").value("M");
        w.key("name").value("thread_name");
        w.key("pid").value(_tracks[i].cluster);
        w.key("tid").value(static_cast<std::int64_t>(i));
        w.key("args").beginObject();
        w.key("name").value(_tracks[i].name);
        w.endObject();
        w.endObject();
    }

    // Events, oldest first (the ring wraps at _next once full).
    const std::size_t n = _ring.size();
    const bool wrapped = n == _opts.capacity && _dropped > 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Event &ev = _ring[wrapped ? (_next + i) % n : i];
        w.beginObject();
        switch (ev.kind) {
          case Kind::Span: {
            const Track &t = _tracks[ev.track];
            w.key("ph").value("X");
            w.key("name").value(ev.name);
            w.key("cat").value(t.name);
            w.key("pid").value(t.cluster);
            w.key("tid").value(static_cast<std::int64_t>(ev.track));
            w.key("ts").value(usec(ev.start));
            w.key("dur").value(usec(ev.dur));
            break;
          }
          case Kind::Instant: {
            const Track &t = _tracks[ev.track];
            w.key("ph").value("i");
            w.key("name").value(ev.name);
            w.key("cat").value(t.name);
            w.key("pid").value(t.cluster);
            w.key("tid").value(static_cast<std::int64_t>(ev.track));
            w.key("ts").value(usec(ev.start));
            w.key("s").value("t");
            break;
          }
          case Kind::Counter: {
            const Counter &c = _counters[ev.track];
            const Track &t = _tracks[c.track];
            w.key("ph").value("C");
            w.key("name").value(c.name);
            w.key("pid").value(t.cluster);
            w.key("tid").value(static_cast<std::int64_t>(c.track));
            w.key("ts").value(usec(ev.start));
            w.key("args").beginObject();
            w.key("value").value(std::bit_cast<double>(ev.dur));
            w.endObject();
            break;
          }
        }
        w.endObject();
    }

    w.endArray();
    if (_dropped > 0)
        w.key("droppedEvents").value(_dropped);
    w.endObject();
}

bool
Probe::writeChromeTrace(const std::string &path) const
{
    JsonWriter w;
    writeChromeTrace(w);
    return writeTextFile(path, w.str());
}

} // namespace distda::sim
