/**
 * @file
 * Status-message and error-reporting helpers in the gem5 style.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user errors (bad configuration) and exits with
 * an error code; warn()/inform() report conditions without stopping the
 * simulation.
 */

#ifndef DISTDA_SIM_LOGGING_HH
#define DISTDA_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <string>

namespace distda
{

/** Printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);

/** Printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Abort with a message: something that should never happen happened. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit with a message: the simulation cannot continue (user error). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (quiet mode for benches). */
void setInformEnabled(bool enabled);

/** Current inform() gating state. */
bool informEnabled();

/**
 * Assert-like invariant check that survives NDEBUG builds.
 * Calls panic() with the condition text when cond is false.
 */
#define DISTDA_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::distda::panic("assertion '%s' failed at %s:%d: %s", #cond,  \
                            __FILE__, __LINE__,                           \
                            ::distda::strfmt(__VA_ARGS__).c_str());       \
        }                                                                 \
    } while (0)

} // namespace distda

#endif // DISTDA_SIM_LOGGING_HH
