/**
 * @file
 * Status-message and error-reporting helpers in the gem5 style.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user errors (bad configuration) and exits with
 * an error code; warn()/inform() report conditions without stopping the
 * simulation.
 */

#ifndef DISTDA_SIM_LOGGING_HH
#define DISTDA_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace distda
{

/**
 * Thrown instead of terminating when a ScopedFailureCapture is active
 * on the calling thread and panic()/fatal() fires. Carries the
 * formatted message; isPanic distinguishes invariant violations from
 * user errors.
 */
class SimFailure : public std::runtime_error
{
  public:
    SimFailure(const std::string &msg, bool is_panic)
        : std::runtime_error(msg), _isPanic(is_panic)
    {}

    bool isPanic() const { return _isPanic; }

  private:
    bool _isPanic;
};

/**
 * RAII guard converting panic()/fatal() on the *current thread* into a
 * SimFailure exception for the guard's lifetime. Used by the sweep
 * executor so one failing job reports as failed instead of taking the
 * whole process (and every queued sibling job) down with it. Nests;
 * death-path behavior elsewhere (tests' EXPECT_DEATH) is unaffected.
 */
class ScopedFailureCapture
{
  public:
    ScopedFailureCapture();
    ~ScopedFailureCapture();

    ScopedFailureCapture(const ScopedFailureCapture &) = delete;
    ScopedFailureCapture &operator=(const ScopedFailureCapture &) =
        delete;

    /** True when a capture guard is active on this thread. */
    static bool active();
};

/** Printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);

/** Printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort with a message: something that should never happen happened.
 * Throws SimFailure instead when a ScopedFailureCapture is active on
 * the calling thread.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit with a message: the simulation cannot continue (user error).
 * Throws SimFailure instead when a ScopedFailureCapture is active on
 * the calling thread.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (quiet mode for benches). */
void setInformEnabled(bool enabled);

/** Current inform() gating state. */
bool informEnabled();

/**
 * Enable/disable warn() output. The fuzzer runs thousands of random
 * kernels whose verifier smells (dead registers etc.) are expected;
 * it silences warnings process-wide rather than drowning stderr.
 */
void setWarnEnabled(bool enabled);

/** Current warn() gating state. */
bool warnEnabled();

/**
 * Assert-like invariant check that survives NDEBUG builds.
 * Calls panic() with the condition text when cond is false.
 */
#define DISTDA_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::distda::panic("assertion '%s' failed at %s:%d: %s", #cond,  \
                            __FILE__, __LINE__,                           \
                            ::distda::strfmt(__VA_ARGS__).c_str());       \
        }                                                                 \
    } while (0)

} // namespace distda

#endif // DISTDA_SIM_LOGGING_HH
