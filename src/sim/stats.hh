/**
 * @file
 * A lightweight named-statistics framework. Components own a
 * stats::Group and register scalar counters with it; drivers collect
 * values by name for the table/figure reports.
 */

#ifndef DISTDA_SIM_STATS_HH
#define DISTDA_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace distda::stats
{

/** A double-valued scalar statistic (counter or accumulator). */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator++() { _value += 1.0; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }
    void reset() { _value = 0.0; }

  private:
    double _value = 0.0;
};

/**
 * A named collection of scalar statistics. Groups nest: a parent group
 * sees child statistics with dotted names.
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return _name; }

    /** Register a scalar under @p stat_name; returns a reference. */
    Scalar &add(const std::string &stat_name);

    /** Attach @p child so its stats appear as "<child>.<stat>". */
    void addChild(Group *child) { _children.push_back(child); }

    /** Look up a scalar by local name; panics when missing. */
    const Scalar &get(const std::string &stat_name) const;

    /** Value lookup that walks children with dotted paths. */
    double value(const std::string &path) const;

    /** Flatten this group and children into (name, value) pairs. */
    std::vector<std::pair<std::string, double>> dump() const;

    /** Reset every scalar in this group and its children. */
    void resetAll();

  private:
    std::string _name;
    std::map<std::string, Scalar> _scalars;
    std::vector<Group *> _children;
};

} // namespace distda::stats

#endif // DISTDA_SIM_STATS_HH
