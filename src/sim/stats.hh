/**
 * @file
 * A lightweight named-statistics framework. Components own a
 * stats::Group and register scalar counters, fixed-bucket
 * distributions and derived formulas with it; drivers collect values
 * by name for the table/figure reports and dump whole Group trees as
 * JSON for the machine-readable run reports.
 */

#ifndef DISTDA_SIM_STATS_HH
#define DISTDA_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace distda::sim
{
class JsonWriter;
} // namespace distda::sim

namespace distda::stats
{

/** A double-valued scalar statistic (counter or accumulator). */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator++() { _value += 1.0; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }
    void reset() { _value = 0.0; }

  private:
    double _value = 0.0;
};

/**
 * Streaming quantile estimator (the P² algorithm of Jain & Chlamtac,
 * CACM 1985): five markers track the running quantile of an unbounded
 * stream in O(1) memory, adjusted by parabolic interpolation as
 * samples arrive. Exact for the first five samples (sorted buffer);
 * an estimate thereafter. Deterministic given the sample order, so
 * reported quantiles are reproducible run to run.
 */
class P2Quantile
{
  public:
    explicit P2Quantile(double q = 0.5) : _q(q) {}

    void add(double v);

    /** Current estimate (exact while fewer than 6 samples; 0 empty). */
    double value() const;

    double quantile() const { return _q; }
    std::uint64_t samples() const { return _n; }

    void reset();

  private:
    double _q;
    std::uint64_t _n = 0;
    double _heights[5] = {};   ///< marker heights q_i
    double _positions[5] = {}; ///< marker positions n_i
    double _desired[5] = {};   ///< desired positions n'_i
};

/**
 * A fixed-bucket histogram over [lo, hi) with running count, sum,
 * min, max and sum-of-squares, so mean and standard deviation come
 * for free. Samples outside the range land in underflow/overflow
 * counters rather than being dropped, so count() is always the true
 * sample count. Every distribution additionally carries streaming
 * p50/p95/p99 estimates (P²), which see each sample once regardless
 * of its weight.
 */
class Distribution
{
  public:
    Distribution() : Distribution(0.0, 1.0, 1) {}
    Distribution(double lo, double hi, std::size_t num_buckets);

    /** Record @p v with optional sample weight. */
    void sample(double v, double weight = 1.0);

    double count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count > 0.0 ? _sum / _count : 0.0; }
    double stdev() const;
    /** Smallest/largest sampled value (0 when empty). */
    double min() const { return _count > 0.0 ? _min : 0.0; }
    double max() const { return _count > 0.0 ? _max : 0.0; }
    double underflow() const { return _underflow; }
    double overflow() const { return _overflow; }

    /**
     * Streaming quantile estimates; weights are ignored (each call to
     * sample() counts once toward the order statistics). The three
     * independent estimators are clamped against each other so
     * p50() <= p95() <= p99() holds unconditionally — a hard
     * invariant reports and oracles may rely on.
     */
    double p50() const { return _p50.value(); }
    double p95() const { return std::max(p50(), _p95.value()); }
    double p99() const { return std::max(p95(), _p99.value()); }

    double bucketLo() const { return _lo; }
    double bucketHi() const { return _hi; }
    std::size_t numBuckets() const { return _buckets.size(); }
    double bucketCount(std::size_t i) const { return _buckets[i]; }
    double bucketWidth() const
    {
        return (_hi - _lo) / static_cast<double>(_buckets.size());
    }

    void reset();

    /** Emit this distribution as a JSON object value. */
    void jsonDump(sim::JsonWriter &w) const;

  private:
    double _lo;
    double _hi;
    std::vector<double> _buckets;
    double _count = 0.0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    double _underflow = 0.0;
    double _overflow = 0.0;
    P2Quantile _p50{0.50};
    P2Quantile _p95{0.95};
    P2Quantile _p99{0.99};
};

/**
 * A derived statistic evaluated on demand — the stats analogue of
 * gem5's Formula. The callable reads other stats (or component state)
 * when the group is dumped, so derived values never go stale.
 */
class Formula
{
  public:
    Formula() = default;
    explicit Formula(std::function<double()> fn) : _fn(std::move(fn)) {}

    double value() const { return _fn ? _fn() : 0.0; }

  private:
    std::function<double()> _fn;
};

/**
 * A named collection of statistics. Groups nest: a parent group sees
 * child statistics with dotted names. Registering the same stat or
 * child name twice panics, so flattened dumps and JSON reports can
 * never silently contain ambiguous keys.
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return _name; }

    /** Register a scalar under @p stat_name; returns a reference. */
    Scalar &add(const std::string &stat_name);

    /** Register a fixed-bucket distribution; returns a reference. */
    Distribution &addDistribution(const std::string &stat_name,
                                  double lo = 0.0, double hi = 1.0,
                                  std::size_t num_buckets = 1);

    /** Register a derived statistic evaluated at dump time. */
    void addFormula(const std::string &stat_name,
                    std::function<double()> fn);

    /** Attach @p child so its stats appear as "<child>.<stat>". */
    void addChild(Group *child);

    /** Look up a scalar by local name; panics when missing. */
    const Scalar &get(const std::string &stat_name) const;

    /** Look up a distribution by local name; panics when missing. */
    const Distribution &getDistribution(
        const std::string &stat_name) const;

    /**
     * Value lookup that walks children with dotted paths. Resolves
     * scalars and formulas; panics when the path names neither.
     */
    double value(const std::string &path) const;

    /**
     * Flatten this group and children into (name, value) pairs.
     * Formulas are evaluated; distributions contribute their summary
     * moments as "<name>.count" / ".mean" / ".stdev" / ".min" /
     * ".max" entries.
     */
    std::vector<std::pair<std::string, double>> dump() const;

    /** Reset every statistic in this group and its children. */
    void resetAll();

    /**
     * Emit this group (scalars, formulas, distributions, children) as
     * one JSON object value into @p w.
     */
    void jsonDump(sim::JsonWriter &w) const;

    /** The whole tree as a standalone JSON document. */
    std::string jsonString() const;

  private:
    /** Panic unless @p stat_name is unused by every stat kind. */
    void checkFresh(const std::string &stat_name) const;

    std::string _name;
    std::map<std::string, Scalar> _scalars;
    std::map<std::string, Distribution> _distributions;
    std::map<std::string, Formula> _formulas;
    std::vector<Group *> _children;
};

} // namespace distda::stats

#endif // DISTDA_SIM_STATS_HH
