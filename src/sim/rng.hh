/**
 * @file
 * Deterministic xorshift64* random number generator so that workloads
 * and datasets are reproducible across runs and platforms.
 */

#ifndef DISTDA_SIM_RNG_HH
#define DISTDA_SIM_RNG_HH

#include <cstdint>

namespace distda::sim
{

/** Small, fast, deterministic RNG (xorshift64*). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : _state(seed ? seed : 1)
    {
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = _state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        _state = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound) { return next() % bound; }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t _state;
};

} // namespace distda::sim

#endif // DISTDA_SIM_RNG_HH
