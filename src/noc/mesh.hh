/**
 * @file
 * 2D mesh network-on-chip connecting the eight L3 clusters (Table III:
 * "8 clusters (4 banks per cluster) on mesh NoC").
 *
 * The mesh uses XY dimension-order routing, a light per-router
 * contention model, and credit-based backpressure is realized at the
 * architectural level by the access-unit buffers (producers only send
 * when consumer buffer credits exist; see Channel in the engine).
 *
 * Traffic is accounted in the four categories of Figure 10:
 * host-initiated control (ctrl) and data (data), and inter-accelerator
 * control (acc_ctrl) and data (acc_data).
 */

#ifndef DISTDA_NOC_MESH_HH
#define DISTDA_NOC_MESH_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "src/energy/energy_model.hh"
#include "src/sim/logging.hh"
#include "src/sim/stats.hh"
#include "src/sim/ticks.hh"

namespace distda::sim
{
class Probe;
} // namespace distda::sim

namespace distda::noc
{

/** Figure 10 traffic categories. */
enum class TrafficClass : std::uint8_t
{
    Ctrl,     ///< host-initiated request/response control
    Data,     ///< host-initiated data movement
    AccCtrl,  ///< inter-accelerator control (tokens, credits, bounds)
    AccData,  ///< inter-accelerator operand dataflow
    NumClasses
};

const char *trafficClassName(TrafficClass c);

/** Mesh configuration. */
struct MeshParams
{
    int cols = 4;             ///< mesh X dimension
    int rows = 2;             ///< mesh Y dimension
    int hostNode = 0;         ///< cluster the host attaches to
    sim::Cycles hopCycles = 2;   ///< router + link traversal per hop
    std::uint32_t linkBytes = 16; ///< bytes moved per NoC cycle per link
    std::uint64_t clockHz = 2'000'000'000ULL; ///< NoC clock
    std::uint32_t flitBytes = 8;  ///< flit width for energy accounting
};

/** Result of injecting one transfer. */
struct TransferResult
{
    sim::Tick latency = 0;  ///< injection-to-delivery latency
    int hops = 0;           ///< hop count (0 for local delivery)
};

/**
 * The mesh NoC. Transfers are modeled as cut-through packets: latency =
 * hops * hopCycles + serialization, plus queueing when routers along the
 * path are busy. Bytes and energy are charged per traffic class.
 */
class Mesh
{
  public:
    Mesh(const MeshParams &params, energy::Accountant *acct);

    const MeshParams &params() const { return _params; }
    int numNodes() const { return _params.cols * _params.rows; }
    int hostNode() const { return _params.hostNode; }

    /** XY-routing hop count between two nodes. */
    int
    hops(int src, int dst) const
    {
        DISTDA_ASSERT(src >= 0 && src < numNodes(), "src node %d", src);
        DISTDA_ASSERT(dst >= 0 && dst < numNodes(), "dst node %d", dst);
        const int dx = nodeX(src) - nodeX(dst);
        const int dy = nodeY(src) - nodeY(dst);
        return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
    }

    /**
     * Inject a transfer of @p bytes from @p src to @p dst at @p now.
     * Charges bytes/energy and returns delivery latency. Inline: every
     * cross-cluster element and cache line rides through here.
     */
    TransferResult
    transfer(int src, int dst, std::uint32_t bytes, TrafficClass cls,
             sim::Tick now)
    {
        const int nhops = hops(src, dst);
        const auto idx = static_cast<std::size_t>(cls);
        _bytes[idx] += bytes;
        _packets[idx] += 1.0;

        if (nhops == 0)
            return TransferResult{0, 0};

        // Serialization: the packet occupies each traversed link for
        // ceil(bytes / linkBytes) NoC cycles.
        const sim::Cycles ser_cycles =
            (bytes + _params.linkBytes - 1) / _params.linkBytes;
        const sim::Tick ser = _clock.cyclesToTicks(
            std::max<sim::Cycles>(ser_cycles, 1));

        // Light contention model: injection waits for the source and
        // destination routers; traversal then occupies them.
        sim::Tick &src_busy =
            _routerBusyUntil[static_cast<std::size_t>(src)];
        sim::Tick &dst_busy =
            _routerBusyUntil[static_cast<std::size_t>(dst)];
        const sim::Tick start =
            std::max(now, std::max(src_busy, dst_busy));
        const sim::Tick head_latency = _clock.cyclesToTicks(
            static_cast<sim::Cycles>(nhops) * _params.hopCycles);
        const sim::Tick done = start + head_latency + ser;

        // Cut-through: a router is occupied only while the packet's
        // flits stream through it; the head latency is pipeline delay.
        src_busy = start + ser;
        dst_busy = start + ser;

        const double flits =
            static_cast<double>((bytes + _params.flitBytes - 1) /
                                _params.flitBytes);
        _totalHopFlits += flits * nhops;
        if (_acct)
            _acct->addEvents(energy::Component::Noc, flits * nhops);

        if (_probe)
            recordTransfer(src, nhops, bytes, cls, start, start + ser);

        return TransferResult{done - now, nhops};
    }

    /**
     * Multicast @p bytes from @p src to every node in @p dsts; the NoC
     * forwards along a shared path where possible so energy is charged
     * per unique link, not per destination.
     */
    TransferResult multicast(int src, const std::vector<int> &dsts,
                             std::uint32_t bytes, TrafficClass cls,
                             sim::Tick now);

    /** Total bytes injected in one traffic class. */
    double bytesInClass(TrafficClass cls) const;

    /** Total bytes injected across all classes. */
    double totalBytes() const;

    /** Total flit-hops traversed (bytes x distance proxy). */
    double hopFlits() const { return _totalHopFlits; }

    /** Export traffic counters into @p group. */
    void exportStats(stats::Group &group) const;

    /** Zero all counters and busy state. */
    void reset();

    /**
     * Attach a timeline probe: every cross-node packet becomes a span
     * on its source node's "noc" track (spans can't overlap — the
     * contention model serializes a router's injections), with packet
     * size and hop-count histograms on the side. Null detaches.
     */
    void setProbe(sim::Probe *probe);

  private:
    int nodeX(int node) const { return node % _params.cols; }
    int nodeY(int node) const { return node / _params.cols; }

    /** Out-of-line probe bookkeeping for the inline transfer(). */
    void recordTransfer(int src, int nhops, std::uint32_t bytes,
                        TrafficClass cls, sim::Tick start,
                        sim::Tick end);

    MeshParams _params;
    energy::Accountant *_acct;
    sim::ClockDomain _clock;
    std::vector<sim::Tick> _routerBusyUntil;
    std::array<double,
               static_cast<std::size_t>(TrafficClass::NumClasses)>
        _bytes{};
    std::array<double,
               static_cast<std::size_t>(TrafficClass::NumClasses)>
        _packets{};
    double _totalHopFlits = 0.0;

    sim::Probe *_probe = nullptr;
    std::vector<int> _nodeTracks;
    stats::Distribution *_pktBytes = nullptr;
    stats::Distribution *_pktHops = nullptr;
};

} // namespace distda::noc

#endif // DISTDA_NOC_MESH_HH
