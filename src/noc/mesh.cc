#include "src/noc/mesh.hh"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "src/sim/logging.hh"
#include "src/sim/probe.hh"

namespace distda::noc
{

const char *
trafficClassName(TrafficClass c)
{
    switch (c) {
      case TrafficClass::Ctrl: return "ctrl";
      case TrafficClass::Data: return "data";
      case TrafficClass::AccCtrl: return "acc_ctrl";
      case TrafficClass::AccData: return "acc_data";
      default: panic("bad traffic class %d", static_cast<int>(c));
    }
}

Mesh::Mesh(const MeshParams &params, energy::Accountant *acct)
    : _params(params), _acct(acct), _clock(params.clockHz),
      _routerBusyUntil(static_cast<std::size_t>(numNodes()), 0)
{
    if (params.cols < 1 || params.rows < 1)
        fatal("mesh dimensions must be positive");
    if (params.hostNode < 0 || params.hostNode >= numNodes())
        fatal("host node %d outside mesh", params.hostNode);
}

void
Mesh::setProbe(sim::Probe *probe)
{
    _probe = probe;
    _nodeTracks.clear();
    _pktBytes = nullptr;
    _pktHops = nullptr;
    if (!probe)
        return;
    _nodeTracks.reserve(static_cast<std::size_t>(numNodes()));
    for (int n = 0; n < numNodes(); ++n)
        _nodeTracks.push_back(probe->addTrack(n, "noc"));
    _pktBytes = &probe->addDist("noc.packet_bytes", 0.0, 128.0, 16);
    _pktHops = &probe->addDist("noc.packet_hops", 0.0, 8.0, 8);
}

void
Mesh::recordTransfer(int src, int nhops, std::uint32_t bytes,
                     TrafficClass cls, sim::Tick start, sim::Tick end)
{
    // trafficClassName returns string literals, satisfying the probe's
    // static-storage span-name contract.
    _probe->span(_nodeTracks[static_cast<std::size_t>(src)],
                 trafficClassName(cls), start, end);
    _pktBytes->sample(static_cast<double>(bytes));
    _pktHops->sample(static_cast<double>(nhops));
}

TransferResult
Mesh::multicast(int src, const std::vector<int> &dsts, std::uint32_t bytes,
                TrafficClass cls, sim::Tick now)
{
    if (dsts.empty())
        return TransferResult{0, 0};
    if (_probe) {
        _probe->instant(_nodeTracks[static_cast<std::size_t>(src)],
                        "multicast", now);
    }

    // Build the set of unique links along the XY paths; energy and
    // bytes are charged once per unique link (tree forwarding).
    std::set<std::pair<int, int>> links;
    int max_hops = 0;
    for (int dst : dsts) {
        max_hops = std::max(max_hops, hops(src, dst));
        int x = nodeX(src), y = nodeY(src);
        const int tx = nodeX(dst), ty = nodeY(dst);
        int cur = src;
        while (x != tx || y != ty) {
            if (x != tx)
                x += (tx > x) ? 1 : -1;
            else
                y += (ty > y) ? 1 : -1;
            int nxt = y * _params.cols + x;
            links.insert({cur, nxt});
            cur = nxt;
        }
    }

    const auto idx = static_cast<std::size_t>(cls);
    _bytes[idx] += static_cast<double>(bytes) * links.size() /
                   std::max<std::size_t>(hops(src, dsts.front()), 1);
    _packets[idx] += 1.0;

    const double flits = static_cast<double>(
        (bytes + _params.flitBytes - 1) / _params.flitBytes);
    _totalHopFlits += flits * static_cast<double>(links.size());
    if (_acct) {
        _acct->addEvents(energy::Component::Noc,
                         flits * static_cast<double>(links.size()));
    }

    const sim::Cycles ser_cycles =
        (bytes + _params.linkBytes - 1) / _params.linkBytes;
    const sim::Tick latency = _clock.cyclesToTicks(
        static_cast<sim::Cycles>(max_hops) * _params.hopCycles +
        std::max<sim::Cycles>(ser_cycles, 1));
    return TransferResult{latency, max_hops};
}

double
Mesh::bytesInClass(TrafficClass cls) const
{
    return _bytes[static_cast<std::size_t>(cls)];
}

double
Mesh::totalBytes() const
{
    double total = 0.0;
    for (double b : _bytes)
        total += b;
    return total;
}

void
Mesh::exportStats(stats::Group &group) const
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TrafficClass::NumClasses); ++i) {
        auto cls = static_cast<TrafficClass>(i);
        group.add(std::string("noc_bytes.") + trafficClassName(cls)) =
            _bytes[i];
        group.add(std::string("noc_packets.") + trafficClassName(cls)) =
            _packets[i];
    }
    group.add("noc_bytes.total") = totalBytes();
    group.add("noc_hop_flits") = _totalHopFlits;
}

void
Mesh::reset()
{
    _bytes.fill(0.0);
    _packets.fill(0.0);
    _totalHopFlits = 0.0;
    std::fill(_routerBusyUntil.begin(), _routerBusyUntil.end(), 0);
}

} // namespace distda::noc
