/**
 * @file
 * The nw control-intensive case study (Fig 12a): Needleman-Wunsch with
 * irregular data access patterns under user annotation.
 *  - Dist-DA-B:  the loop-blocked automated offload (one invocation
 *                per DP row, host-orchestrated);
 *  - Dist-DA-BN: the whole blocked loop nest offloaded; a control
 *                partition produces row bases that the compute
 *                partition consumes, pipelining rows through one
 *                continuous read-modify-write window over F;
 *  - Dist-DA-BNS: adds the user fill/drain schedule (Fig 5b): blocks
 *                are staged ahead (double buffering), so the compute
 *                partition never waits on the fill FSM.
 */

#include <algorithm>

#include "src/casestudy/case_common.hh"
#include "src/casestudy/case_spmv.hh"
#include "src/driver/context.hh"
#include "src/driver/runner.hh"
#include "src/driver/system.hh"
#include "src/offload/interface.hh"
#include "src/sim/rng.hh"
#include "src/workloads/common.hh"

namespace distda::casestudy
{

using driver::ExecContext;
using engine::ActorStatus;
using engine::ArrayRef;
using engine::Channel;

namespace
{

constexpr std::int64_t penalty = 10;

/** Deterministic nw dataset + reference (same generator as the suite). */
struct NwData
{
    std::int64_t n = 0;
    std::vector<std::int64_t> refm;
    std::vector<std::int64_t> initF;
    std::vector<std::int64_t> refF;
};

NwData
makeNwData(double scale)
{
    NwData d;
    d.n = workloads::scaled(512, scale, 16);
    const auto m = static_cast<std::size_t>(d.n + 1);
    sim::Rng rng(29);
    d.refm.resize(static_cast<std::size_t>(d.n * d.n));
    for (auto &v : d.refm)
        v = static_cast<std::int64_t>(rng.nextBelow(21)) - 10;
    d.initF.assign(m * m, 0);
    for (std::int64_t i = 0; i <= d.n; ++i) {
        d.initF[static_cast<std::size_t>(i) * m] = -penalty * i;
        d.initF[static_cast<std::size_t>(i)] = -penalty * i;
    }
    d.refF = d.initF;
    for (std::int64_t i = 1; i <= d.n; ++i) {
        for (std::int64_t j = 1; j <= d.n; ++j) {
            const auto fm = static_cast<std::int64_t>(m);
            const std::int64_t diag =
                d.refF[static_cast<std::size_t>((i - 1) * fm + j - 1)] +
                d.refm[static_cast<std::size_t>((i - 1) * d.n + j - 1)];
            const std::int64_t up =
                d.refF[static_cast<std::size_t>((i - 1) * fm + j)] -
                penalty;
            const std::int64_t left =
                d.refF[static_cast<std::size_t>(i * fm + j - 1)] -
                penalty;
            d.refF[static_cast<std::size_t>(i * fm + j)] =
                std::max(std::max(diag, up), left);
        }
    }
    return d;
}

/** Control partition: produces per-row base offsets (Fig 5a). */
class RowController : public CaseActor
{
  public:
    RowController(std::int64_t n, Channel *rows, noc::Mesh *mesh)
        : _n(n), _rows(rows), _mesh(mesh)
    {
    }

    ActorStatus
    run(std::int64_t budget) override
    {
        std::int64_t done = 0;
        while (_i <= _n) {
            if (done >= budget)
                return ActorStatus::Running;
            if (!tryProduce(*_rows,
                            ExecContext::wi(_i * (_n + 1)), *_mesh,
                            now))
                return ActorStatus::Blocked;
            now += 500;
            insts += 2.0; // bound compute + produce
            ++_i;
            ++done;
        }
        _rows->close();
        return ActorStatus::Finished;
    }

  private:
    std::int64_t _n;
    Channel *_rows;
    noc::Mesh *_mesh;
    std::int64_t _i = 1;
};

/**
 * Compute partition: one continuous RMW window over F (the diag/up
 * taps sit N+1 and N+2 elements behind the store lead, all within the
 * buffer) plus a sequential stream over the reference matrix.
 */
class NwComputeActor : public CaseActor
{
  public:
    NwComputeActor(const NwData &d, ArrayRef f, ArrayRef refm,
                   accel::StreamUnit *f_stream,
                   accel::StreamUnit *ref_stream, Channel *rows)
        : _d(d), _f(f), _refm(refm), _fs(f_stream), _rs(ref_stream),
          _rows(rows)
    {
    }

    ActorStatus
    run(std::int64_t budget) override
    {
        const auto m = _d.n + 1;
        std::int64_t done = 0;
        while (_row <= _d.n) {
            if (done >= budget)
                return ActorStatus::Running;
            if (_phase == 0) {
                compiler::Word w;
                if (!tryConsume(*_rows, w)) {
                    return _rows->drained() ? finish()
                                            : ActorStatus::Blocked;
                }
                now += 500;
                _rowBase = w.i;
                _j = 1;
                _phase = 1;
            }
            while (_j <= _d.n) {
                // Lead tap k counts stores in DP order.
                const std::int64_t k = _k;
                now = _fs->readAt(k, now,
                                  static_cast<std::int64_t>(m) + 1);
                now = _fs->readAt(k, now, static_cast<std::int64_t>(m));
                now = _fs->readAt(k, now, 1);
                now = _rs->readAt(k, now, 0);
                insts += 4.0;

                const std::int64_t i = _row;
                const std::int64_t j = _j;
                const std::int64_t diag =
                    _f.getI(static_cast<std::uint64_t>(
                        (i - 1) * m + j - 1)) +
                    _refm.getI(static_cast<std::uint64_t>(
                        (i - 1) * _d.n + j - 1));
                const std::int64_t up = _f.getI(static_cast<std::uint64_t>(
                                           (i - 1) * m + j)) -
                                       penalty;
                const std::int64_t left =
                    _f.getI(static_cast<std::uint64_t>(i * m + j - 1)) -
                    penalty;
                const std::int64_t best =
                    std::max(std::max(diag, up), left);
                _f.setI(static_cast<std::uint64_t>(i * m + j), best);
                now = _fs->writeAt(k, now, 0);
                now += 5 * 500; // adds/subs/maxes
                insts += 6.0;
                ++_k;
                ++_j;
            }
            _phase = 0;
            ++_row;
            ++done;
        }
        return finish();
    }

    sim::Tick finishTick = 0;

  private:
    ActorStatus
    finish()
    {
        if (!_flushed) {
            finishTick = _fs->flush(now);
            now = finishTick;
            _flushed = true;
        }
        return ActorStatus::Finished;
    }

    const NwData &_d;
    ArrayRef _f, _refm;
    accel::StreamUnit *_fs;
    accel::StreamUnit *_rs;
    Channel *_rows;
    std::int64_t _row = 1;
    std::int64_t _j = 1;
    std::int64_t _k = 0;
    std::int64_t _rowBase = 0;
    int _phase = 0;
    bool _flushed = false;
};

CaseResult
runNwBlockedNest(const NwData &d, bool staged, const char *label)
{
    const auto m = static_cast<std::uint64_t>(d.n + 1);
    driver::SystemParams sp;
    sp.arenaBytes = m * m * 4 +
                    static_cast<std::uint64_t>(d.n) * d.n * 4 +
                    (16 << 20);
    driver::System sys(sp);
    ArrayRef f = sys.alloc("F", m * m, 4, false);
    ArrayRef refm = sys.alloc("ref",
                              static_cast<std::uint64_t>(d.n) * d.n, 4,
                              false);
    for (std::size_t i = 0; i < d.initF.size(); ++i)
        f.setI(i, d.initF[i]);
    for (std::size_t i = 0; i < d.refm.size(); ++i)
        refm.setI(i, d.refm[i]);

    auto &hier = sys.hier();
    accel::AccessStats stats;
    const int c_f = hier.l3().clusterOf(f.base);
    const int c_host = hier.mesh().hostNode();

    auto port = [&hier](int cluster) {
        return accel::MemPort(
            [](void *ctx, mem::Addr ad, std::uint32_t s, bool w,
               sim::Tick tk) {
                return static_cast<mem::Cache *>(ctx)
                    ->access(ad, s, w, tk)
                    .latency;
            },
            &hier.acp(cluster));
    };

    // The F stream's lead tap walks stores in DP order; the store at
    // (i, j) sits at row-major address (i*m + j), which the DP-order
    // counter tracks closely enough for a per-element stream (one
    // element advance per iteration, one extra line per row).
    accel::StreamParams fp;
    fp.base = f.addrOf(static_cast<std::uint64_t>(d.n + 2));
    fp.strideBytes = 4;
    fp.elemBytes = 4;
    fp.hasLoads = true;
    fp.hasStores = true;
    fp.unitCluster = c_f;
    fp.consumerCluster = c_f;
    fp.capacityBytes = staged ? 8192 : 4096; // BNS double-buffers
    fp.totalElems = static_cast<std::uint64_t>(d.n) * d.n + m;
    accel::StreamUnit f_stream(fp, port(c_f), &hier.mesh(), &stats);

    accel::StreamParams rp;
    rp.base = refm.base;
    rp.strideBytes = 4;
    rp.elemBytes = 4;
    rp.unitCluster = c_f;
    rp.consumerCluster = c_f;
    rp.capacityBytes = staged ? 8192 : 4096;
    rp.totalElems = refm.count;
    accel::StreamUnit ref_stream(rp, port(c_f), &hier.mesh(), &stats);

    Channel rows(64, 8, true, c_host, c_f);

    offload::CoprocessorInterface iface(&hier, &sys.acct());
    sim::Tick t0 = 0;
    t0 = iface.cpConfigStream(c_f, 0, fp.base, 4,
                              static_cast<std::uint32_t>(m * m * 4),
                              fp.capacityBytes, t0);
    t0 = iface.cpConfigStream(c_f, 1, rp.base, 4,
                              static_cast<std::uint32_t>(
                                  refm.sizeBytes()),
                              rp.capacityBytes, t0);
    if (staged) {
        // Fig 5b: explicit block prefill before the pipeline starts.
        t0 = iface.cpConfigRandom(c_f, 2, f.base,
                                  f.base + f.sizeBytes(), t0);
        sim::Tick fsm = t0;
        for (std::uint64_t off = 0; off < 8192; off += mem::lineBytes) {
            hier.accelAccess(f.base + off, mem::lineBytes, false, c_f,
                             fsm);
            fsm += 500;
        }
    }
    t0 = iface.cpRun(c_host, t0);
    t0 = iface.cpRun(c_f, t0);

    RowController ctrl(d.n, &rows, &hier.mesh());
    NwComputeActor compute(d, f, refm, &f_stream, &ref_stream, &rows);
    ctrl.now = t0;
    compute.now = t0;

    sim::Tick end = runActors({&ctrl, &compute});
    end = iface.cpConsumeDone(c_f, end, end);

    CaseResult res;
    res.config = label;
    res.timeNs = static_cast<double>(end) / 1000.0;
    std::vector<std::int64_t> got(d.refF.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        got[i] = f.getI(i);
    res.validated = got == d.refF;
    return res;
}

} // namespace

std::vector<CaseResult>
runNwCaseStudy(double scale)
{
    const NwData d = makeNwData(scale);
    std::vector<CaseResult> out;

    // OoO and the automated per-row offload reuse the suite workload
    // (identical generator and sizes).
    driver::RunOptions opts;
    opts.scale = scale;
    {
        driver::RunConfig cfg;
        cfg.model = driver::ArchModel::OoO;
        auto m = driver::runWorkload("nw", cfg, opts);
        out.push_back({"OoO", m.timeNs, m.validated});
    }
    {
        driver::RunConfig cfg;
        cfg.model = driver::ArchModel::DistDA_IO;
        auto m = driver::runWorkload("nw", cfg, opts);
        out.push_back({"Dist-DA-B", m.timeNs, m.validated});
    }
    out.push_back(runNwBlockedNest(d, false, "Dist-DA-BN"));
    out.push_back(runNwBlockedNest(d, true, "Dist-DA-BNS"));
    return out;
}

} // namespace distda::casestudy
