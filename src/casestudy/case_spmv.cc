#include "src/casestudy/case_spmv.hh"

#include <algorithm>
#include <cmath>

#include "src/casestudy/case_common.hh"
#include "src/driver/context.hh"
#include "src/driver/runner.hh"
#include "src/driver/system.hh"
#include "src/offload/interface.hh"
#include "src/sim/rng.hh"
#include "src/workloads/common.hh"

namespace distda::casestudy
{

using compiler::KernelBuilder;
using compiler::Word;
using driver::ExecContext;
using driver::RunConfig;
using engine::ActorStatus;
using engine::ArrayRef;
using engine::Channel;

namespace
{

/** Deterministic tiled CSR dataset (16 column tiles, §VI-D). */
struct TiledCsr
{
    std::int64_t tileDim = 0;  ///< rows (= columns per tile)
    std::int64_t tiles = 0;
    std::vector<std::int64_t> rowptr; ///< tiles*(tileDim+1)
    std::vector<std::int64_t> cols;   ///< global column index
    std::vector<double> vals;
    std::vector<double> x;            ///< tiles * tileDim
    std::vector<double> refY;

    std::int64_t nnz() const
    {
        return static_cast<std::int64_t>(vals.size());
    }
};

TiledCsr
makeTiledCsr(double scale)
{
    TiledCsr csr;
    csr.tileDim = workloads::scaled(512, scale, 64);
    csr.tiles = 16;
    const double sparsity = 5e-3;
    sim::Rng rng(53);

    for (std::int64_t t = 0; t < csr.tiles; ++t) {
        csr.rowptr.push_back(csr.nnz());
        for (std::int64_t r = 0; r < csr.tileDim; ++r) {
            // Normally distributed row occupancy (sigma ~2 like the
            // paper's generator).
            double g = 0.0;
            for (int u = 0; u < 6; ++u)
                g += rng.nextDouble();
            const auto nnz_row = static_cast<std::int64_t>(std::max(
                1.0, static_cast<double>(csr.tileDim) * sparsity +
                         (g - 3.0) * 2.0));
            for (std::int64_t e = 0; e < nnz_row; ++e) {
                csr.cols.push_back(
                    t * csr.tileDim +
                    static_cast<std::int64_t>(rng.nextBelow(
                        static_cast<std::uint64_t>(csr.tileDim))));
                csr.vals.push_back(rng.nextDouble());
            }
            csr.rowptr.push_back(csr.nnz());
        }
    }
    // rowptr layout: tile t occupies [t*(D+1), (t+1)*(D+1)).
    // (the loop above pushed D+1 entries per tile)

    csr.x.resize(static_cast<std::size_t>(csr.tiles * csr.tileDim));
    for (double &v : csr.x)
        v = rng.nextDouble();

    csr.refY.assign(static_cast<std::size_t>(csr.tileDim), 0.0);
    for (std::int64_t t = 0; t < csr.tiles; ++t) {
        for (std::int64_t r = 0; r < csr.tileDim; ++r) {
            const auto base = static_cast<std::size_t>(
                t * (csr.tileDim + 1) + r);
            double sum = 0.0;
            for (std::int64_t e = csr.rowptr[base];
                 e < csr.rowptr[base + 1]; ++e) {
                sum = sum +
                      csr.vals[static_cast<std::size_t>(e)] *
                          csr.x[static_cast<std::size_t>(
                              csr.cols[static_cast<std::size_t>(e)])];
            }
            csr.refY[static_cast<std::size_t>(r)] += sum;
        }
    }
    return csr;
}

/** Upload the dataset into a fresh system. */
struct SpmvArrays
{
    ArrayRef rowptr, cols, vals, x, y;
};

SpmvArrays
upload(driver::System &sys, const TiledCsr &csr)
{
    SpmvArrays a;
    a.rowptr = sys.alloc("rowptr", csr.rowptr.size(), 8, false);
    a.cols = sys.alloc("cols", csr.cols.size(), 8, false);
    a.vals = sys.alloc("vals", csr.vals.size(), 8, true);
    a.x = sys.alloc("x", csr.x.size(), 8, true);
    a.y = sys.alloc("y", csr.refY.size(), 8, true);
    for (std::size_t i = 0; i < csr.rowptr.size(); ++i)
        a.rowptr.setI(i, csr.rowptr[i]);
    for (std::size_t i = 0; i < csr.cols.size(); ++i)
        a.cols.setI(i, csr.cols[i]);
    for (std::size_t i = 0; i < csr.vals.size(); ++i)
        a.vals.setF(i, csr.vals[i]);
    for (std::size_t i = 0; i < csr.x.size(); ++i)
        a.x.setF(i, csr.x[i]);
    for (std::size_t i = 0; i < csr.refY.size(); ++i)
        a.y.setF(i, 0.0);
    return a;
}

/** Shared row kernel for the OoO and Dist-DA-B configurations. */
compiler::Kernel
makeRowKernel(const TiledCsr &csr)
{
    KernelBuilder kb("spmv_case_row");
    const int o_v = kb.object("vals", csr.vals.size(), 8, true);
    const int o_c = kb.object("cols", csr.cols.size(), 8, false);
    const int o_x = kb.object("x", csr.x.size(), 8, true);
    const int p_start = kb.param("rowStart");
    const int p_trip = kb.param("trip");
    kb.loopFromParam(p_trip);
    auto sum = kb.carry(Word{.f = 0.0}, true, "sum");
    auto v = kb.load(o_v, kb.affineP(0, 1, {{p_start, 1}}));
    auto c = kb.load(o_c, kb.affineP(0, 1, {{p_start, 1}}));
    auto xv = kb.loadIdx(o_x, c);
    kb.setCarry(sum, kb.fadd(sum, kb.fmul(v, xv)));
    kb.markResult(sum);
    return kb.build();
}

/** Host-orchestrated per-(tile,row) execution: OoO and Dist-DA-B. */
CaseResult
runHostOrchestrated(const TiledCsr &csr, driver::ArchModel model,
                    const char *label)
{
    driver::SystemParams sp;
    sp.arenaBytes = static_cast<std::uint64_t>(csr.nnz()) * 16 +
                    csr.x.size() * 8 + (16 << 20);
    driver::System sys(sp);
    SpmvArrays a = upload(sys, csr);
    compiler::Kernel kernel = makeRowKernel(csr);

    RunConfig cfg;
    cfg.model = model;
    ExecContext ctx(sys, cfg);

    for (std::int64_t t = 0; t < csr.tiles; ++t) {
        for (std::int64_t r = 0; r < csr.tileDim; ++r) {
            const auto base = static_cast<std::uint64_t>(
                t * (csr.tileDim + 1) + r);
            const std::int64_t start = ctx.hostLoadI(a.rowptr, base);
            const std::int64_t end = ctx.hostLoadI(a.rowptr, base + 1);
            ctx.hostOps(3);
            double sum = 0.0;
            if (end > start) {
                ctx.invoke(kernel, {a.vals, a.cols, a.x},
                           {ExecContext::wi(start),
                            ExecContext::wi(end - start)});
                sum = ctx.resultF(0);
            }
            const double prev =
                ctx.hostLoadF(a.y, static_cast<std::uint64_t>(r));
            ctx.hostStoreF(a.y, static_cast<std::uint64_t>(r),
                           prev + sum);
            ctx.hostOps(2);
        }
    }

    CaseResult res;
    res.config = label;
    res.timeNs = ctx.nowNs();
    res.validated =
        workloads::arrayMatchesF(a.y, csr.refY, 0.0);
    return res;
}

/** Partition-1 of Fig 5a: reads loop bounds and produces them. */
class BoundsActor : public CaseActor
{
  public:
    BoundsActor(const TiledCsr &csr, accel::StreamUnit *rowptr_stream,
                Channel *bounds, const ArrayRef &rowptr,
                noc::Mesh *mesh)
        : _csr(csr), _stream(rowptr_stream), _bounds(bounds),
          _rowptr(rowptr), _mesh(mesh)
    {
    }

    ActorStatus
    run(std::int64_t budget) override
    {
        const std::int64_t total = _csr.tiles * (_csr.tileDim + 1);
        std::int64_t done = 0;
        while (_idx < _csr.tiles * _csr.tileDim) {
            if (done >= budget)
                return ActorStatus::Running;
            const std::int64_t t = _idx / _csr.tileDim;
            const std::int64_t r = _idx % _csr.tileDim;
            const auto base =
                static_cast<std::uint64_t>(t * (_csr.tileDim + 1) + r);
            if (_phase == 0) {
                // Two combined taps over the rowptr stream.
                (void)total;
                now = _stream->readAt(static_cast<std::int64_t>(base) +
                                          1,
                                      now, 0);
                now = _stream->readAt(static_cast<std::int64_t>(base) +
                                          1,
                                      now, 1);
                insts += 2.0;
                _start = _rowptr.getI(base);
                _end = _rowptr.getI(base + 1);
                _phase = 1;
            }
            if (_phase == 1) {
                if (!tryProduce(*_bounds, ExecContext::wi(_start),
                                *_mesh, now))
                    return ActorStatus::Blocked;
                now += 500;
                _phase = 2;
            }
            if (_phase == 2) {
                if (!tryProduce(*_bounds, ExecContext::wi(_end), *_mesh,
                                now))
                    return ActorStatus::Blocked;
                now += 500;
                _phase = 0;
                ++_idx;
                ++done;
            }
        }
        _bounds->close();
        return ActorStatus::Finished;
    }

  private:
    const TiledCsr &_csr;
    accel::StreamUnit *_stream;
    Channel *_bounds;
    ArrayRef _rowptr;
    noc::Mesh *_mesh;
    std::int64_t _idx = 0;
    int _phase = 0;
    std::int64_t _start = 0, _end = 0;
};

/** Partition-2: the pipelined inner loop (with optional x staging). */
class RowComputeActor : public CaseActor
{
  public:
    RowComputeActor(const TiledCsr &csr, const SpmvArrays &arrays,
                    accel::StreamUnit *vals_stream,
                    accel::StreamUnit *cols_stream,
                    accel::RandomUnit *x_random, Channel *bounds,
                    mem::Hierarchy *hier, int cluster, bool stage_x)
        : _csr(csr), _a(arrays), _vals(vals_stream), _cols(cols_stream),
          _x(x_random), _bounds(bounds), _hier(hier),
          _cluster(cluster), _stageX(stage_x),
          _ysum(static_cast<std::size_t>(csr.tileDim), 0.0)
    {
    }

    ActorStatus
    run(std::int64_t budget) override
    {
        std::int64_t done = 0;
        while (_idx < _csr.tiles * _csr.tileDim) {
            if (done >= budget)
                return ActorStatus::Running;
            const std::int64_t t = _idx / _csr.tileDim;
            const std::int64_t r = _idx % _csr.tileDim;
            if (_stageX && r == 0 && _phase == 0) {
                // cp_fill_ra: stage this tile's x block into the local
                // buffer (bulk line transfers, pipelined by the FSM).
                const mem::Addr base = _a.x.addrOf(
                    static_cast<std::uint64_t>(t * _csr.tileDim));
                const std::uint64_t bytes =
                    static_cast<std::uint64_t>(_csr.tileDim) * 8;
                sim::Tick fsm = now;
                sim::Tick last = now;
                for (std::uint64_t off = 0; off < bytes;
                     off += mem::lineBytes) {
                    const sim::Tick lat =
                        _hier->accelAccess(base + off, mem::lineBytes,
                                           false, _cluster, fsm)
                            .latency;
                    last = std::max(last, fsm + lat);
                    fsm += 500; // one fill-FSM issue slot per cycle
                }
                now = std::max(now, last);
                insts += 1.0; // the cp_fill_ra intrinsic itself
            }
            if (_phase == 0) {
                Word w;
                if (!tryConsume(*_bounds, w))
                    return blockedOrDone();
                now += 250;
                _start = w.i;
                _phase = 1;
            }
            if (_phase == 1) {
                Word w;
                if (!tryConsume(*_bounds, w))
                    return blockedOrDone();
                now += 250;
                _end = w.i;
                _e = _start;
                _sum = 0.0;
                _phase = 2;
            }
            if (_phase == 2) {
                while (_e < _end) {
                    now = _vals->readAt(_e, now, 0) + 250;
                    now = _cols->readAt(_e, now, 0) + 250;
                    const auto c = static_cast<std::uint64_t>(
                        _a.cols.getI(static_cast<std::uint64_t>(_e)));
                    const double xv = _a.x.getF(c);
                    if (_stageX) {
                        now += 500; // local buffer hit
                        insts += 1.0;
                    } else {
                        now = _x->access(_a.x.addrOf(c), 8, false, now,
                                         48 * 500);
                        insts += 1.0;
                    }
                    _sum = _sum +
                           _a.vals.getF(static_cast<std::uint64_t>(_e)) *
                               xv;
                    now += 2 * 500; // fmul + fadd
                    insts += 4.0;
                    ++_e;
                }
                // Row done: accumulate into the local y block.
                _ysum[static_cast<std::size_t>(r)] += _sum;
                now += 2 * 500;
                insts += 2.0;
                _phase = 0;
                ++_idx;
                ++done;
            }
        }
        if (!_drained) {
            // cp_drain_ra: write the y block back in bulk.
            const std::uint64_t bytes =
                static_cast<std::uint64_t>(_csr.tileDim) * 8;
            sim::Tick fsm = now;
            sim::Tick last = now;
            for (std::uint64_t off = 0; off < bytes;
                 off += mem::lineBytes) {
                const sim::Tick lat =
                    _hier->accelAccess(_a.y.base + off, mem::lineBytes,
                                       true, _cluster, fsm)
                        .latency;
                last = std::max(last, fsm + lat);
                fsm += 500;
            }
            now = std::max(now, last);
            for (std::int64_t r = 0; r < _csr.tileDim; ++r)
                _a.y.setF(static_cast<std::uint64_t>(r),
                          _ysum[static_cast<std::size_t>(r)]);
            _drained = true;
        }
        return ActorStatus::Finished;
    }

  private:
    ActorStatus
    blockedOrDone() const
    {
        return _bounds->drained() ? ActorStatus::Finished
                                  : ActorStatus::Blocked;
    }

    const TiledCsr &_csr;
    SpmvArrays _a;
    accel::StreamUnit *_vals;
    accel::StreamUnit *_cols;
    accel::RandomUnit *_x;
    Channel *_bounds;
    mem::Hierarchy *_hier;
    int _cluster;
    bool _stageX;
    std::vector<double> _ysum;
    std::int64_t _idx = 0;
    int _phase = 0;
    std::int64_t _start = 0, _end = 0, _e = 0;
    double _sum = 0.0;
    bool _drained = false;
};

/** Dist-DA-BN / Dist-DA-BNS: one offload, decoupled loop-nest control. */
CaseResult
runBlockedNest(const TiledCsr &csr, bool stage_x, const char *label)
{
    driver::SystemParams sp;
    sp.arenaBytes = static_cast<std::uint64_t>(csr.nnz()) * 16 +
                    csr.x.size() * 8 + (16 << 20);
    driver::System sys(sp);
    SpmvArrays a = upload(sys, csr);

    auto &hier = sys.hier();
    accel::AccessStats stats;

    const int c_rowptr = hier.l3().clusterOf(a.rowptr.base);
    const int c_vals = hier.l3().clusterOf(a.vals.base);

    auto port = [&hier](int cluster) {
        return accel::MemPort(
            [](void *ctx, mem::Addr ad, std::uint32_t s, bool w,
               sim::Tick tk) {
                return static_cast<mem::Cache *>(ctx)
                    ->access(ad, s, w, tk)
                    .latency;
            },
            &hier.acp(cluster));
    };

    accel::StreamParams rp;
    rp.base = a.rowptr.base;
    rp.strideBytes = 8;
    rp.elemBytes = 8;
    rp.unitCluster = c_rowptr;
    rp.consumerCluster = c_rowptr;
    rp.totalElems = csr.rowptr.size();
    accel::StreamUnit rowptr_stream(rp, port(c_rowptr), &hier.mesh(),
                                    &stats);

    accel::StreamParams vp = rp;
    vp.base = a.vals.base;
    vp.unitCluster = c_vals;
    vp.consumerCluster = c_vals;
    vp.totalElems = csr.vals.size();
    accel::StreamUnit vals_stream(vp, port(c_vals), &hier.mesh(),
                                  &stats);

    accel::StreamParams cp = vp;
    cp.base = a.cols.base;
    accel::StreamUnit cols_stream(cp, port(c_vals), &hier.mesh(),
                                  &stats);

    accel::RandomUnit x_random(c_vals, port(c_vals), &stats, 500);

    Channel bounds(64, 8, true, c_rowptr, c_vals);

    // Host configures the offload once (Fig 5a pseudocode).
    offload::CoprocessorInterface iface(&hier, &sys.acct());
    sim::Tick t0 = 0;
    t0 = iface.cpConfigRandom(c_rowptr, 0, a.rowptr.base,
                              a.rowptr.base + a.rowptr.sizeBytes(), t0);
    t0 = iface.cpConfigRandom(c_vals, 1, a.vals.base,
                              a.vals.base + a.vals.sizeBytes(), t0);
    t0 = iface.cpConfigStream(c_vals, 2, a.cols.base, 8,
                              static_cast<std::uint32_t>(
                                  a.cols.sizeBytes()),
                              4096, t0);
    t0 = iface.cpRun(c_rowptr, t0);
    t0 = iface.cpRun(c_vals, t0);

    BoundsActor bounds_actor(csr, &rowptr_stream, &bounds, a.rowptr,
                             &hier.mesh());
    RowComputeActor compute(csr, a, &vals_stream, &cols_stream,
                            &x_random, &bounds, &hier, c_vals, stage_x);
    bounds_actor.now = t0;
    compute.now = t0;

    const sim::Tick end = runActors({&bounds_actor, &compute});
    const sim::Tick done =
        iface.cpConsumeDone(c_vals, end, end);

    CaseResult res;
    res.config = label;
    res.timeNs = static_cast<double>(done) / 1000.0;
    res.validated = workloads::arrayMatchesF(a.y, csr.refY, 0.0);
    return res;
}

} // namespace

std::vector<CaseResult>
runSpmvCaseStudy(double scale)
{
    const TiledCsr csr = makeTiledCsr(scale);
    std::vector<CaseResult> out;
    out.push_back(
        runHostOrchestrated(csr, driver::ArchModel::OoO, "OoO"));
    out.push_back(runHostOrchestrated(csr, driver::ArchModel::DistDA_IO,
                                      "Dist-DA-B"));
    out.push_back(runBlockedNest(csr, false, "Dist-DA-BN"));
    out.push_back(runBlockedNest(csr, true, "Dist-DA-BNS"));
    return out;
}

} // namespace distda::casestudy
