/**
 * @file
 * The multithreading case study (Fig 12b): pathfinder and BFS scaled
 * over 1/2/4/8 threads. Threads shard the parallel inner iterations;
 * per §VI-D the current framework schedules parallel iterations of a
 * loop individually to threads, so the stream-based access
 * specialization step is skipped under multithreading — which is why
 * pathfinder (spatial-locality dominated) scales sub-linearly while
 * BFS's outer-loop parallelism pipelines consistently.
 *
 * Threads are modeled by sharding the measured single-thread kernel
 * time: t(T) = serial + parallel x penalty / T + barriers(T), with the
 * specialization-loss penalty applied to accelerator configurations of
 * pathfinder when T > 1.
 */

#ifndef DISTDA_CASESTUDY_MULTITHREAD_HH
#define DISTDA_CASESTUDY_MULTITHREAD_HH

#include <string>
#include <vector>

namespace distda::casestudy
{

/** One (workload, config, thread-count) outcome. */
struct MtResult
{
    std::string workload;
    std::string config;
    int threads = 1;
    double timeNs = 0.0;
    double speedupVsOoO1 = 0.0;
};

/** Run the Fig 12b sweep (pathfinder and bfs; 1/2/4/8 threads). */
std::vector<MtResult> runMultithreadCaseStudy(double scale);

} // namespace distda::casestudy

#endif // DISTDA_CASESTUDY_MULTITHREAD_HH
