#include "src/casestudy/case_common.hh"

#include <algorithm>

namespace distda::casestudy
{

sim::Tick
runActors(const std::vector<CaseActor *> &actors)
{
    constexpr std::int64_t budget = 1024;
    bool all_done = false;
    while (!all_done) {
        all_done = true;
        double progress = 0.0;
        for (CaseActor *actor : actors) {
            const double before = actor->insts;
            const engine::ActorStatus st = actor->run(budget);
            progress += actor->insts - before;
            if (st != engine::ActorStatus::Finished)
                all_done = false;
        }
        if (!all_done && progress == 0.0)
            panic("case-study actor deadlock");
    }
    sim::Tick end = 0;
    for (CaseActor *actor : actors)
        end = std::max(end, actor->now);
    return end;
}

} // namespace distda::casestudy
