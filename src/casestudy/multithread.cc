#include "src/casestudy/multithread.hh"

#include <cmath>
#include <map>

#include "src/driver/runner.hh"

namespace distda::casestudy
{

namespace
{

struct WorkloadModel
{
    const char *name;
    double parallelFraction;  ///< dynamic share shardable over threads
    double specLossPenalty;   ///< accel-only cost of skipping stream
                              ///< specialization under MT (§VI-D)
    double barriersPerRun;    ///< synchronization points
};

} // namespace

std::vector<MtResult>
runMultithreadCaseStudy(double scale)
{
    const WorkloadModel models[] = {
        // pathfinder synchronizes per DP row and loses the
        // stream-specialization step when iterations are scheduled
        // individually to threads.
        {"pf", 0.96, 1.45, 191.0},
        // bfs's outer-loop parallelism pipelines inner iterations;
        // barriers once per level.
        {"bfs", 0.92, 1.05, 14.0},
    };
    const driver::ArchModel configs[] = {
        driver::ArchModel::OoO,
        driver::ArchModel::DistDA_IO,
        driver::ArchModel::DistDA_F,
    };
    const int threads[] = {1, 2, 4, 8};
    const double barrier_ns = 60.0; // cross-core sync via LLC

    std::vector<MtResult> out;
    driver::RunOptions opts;
    opts.scale = scale;

    for (const WorkloadModel &wm : models) {
        std::map<driver::ArchModel, double> base;
        double ooo1 = 0.0;
        for (driver::ArchModel cfg : configs) {
            driver::RunConfig rc;
            rc.model = cfg;
            base[cfg] = driver::runWorkload(wm.name, rc, opts).timeNs;
            if (cfg == driver::ArchModel::OoO)
                ooo1 = base[cfg];
        }
        for (driver::ArchModel cfg : configs) {
            const bool accel = cfg != driver::ArchModel::OoO;
            for (int t : threads) {
                const double serial =
                    base[cfg] * (1.0 - wm.parallelFraction);
                double parallel = base[cfg] * wm.parallelFraction;
                if (accel && t > 1)
                    parallel *= wm.specLossPenalty;
                const double barriers =
                    wm.barriersPerRun * std::max(scale, 0.05);
                const double sync =
                    t > 1 ? barriers * barrier_ns *
                                std::log2(static_cast<double>(t))
                          : 0.0;
                const double time =
                    serial + parallel / static_cast<double>(t) + sync;
                MtResult r;
                r.workload = wm.name;
                r.config = driver::archModelName(cfg);
                r.threads = t;
                r.timeNs = time;
                r.speedupVsOoO1 = ooo1 / time;
                out.push_back(r);
            }
        }
    }
    return out;
}

} // namespace distda::casestudy
