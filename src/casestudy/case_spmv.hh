/**
 * @file
 * The §VI-D spmv case study (Fig 12a): sparse matrix-vector multiply
 * over column tiles in CSR form, evaluated as
 *  - OoO          — host baseline;
 *  - Dist-DA-B    — compiler-automated offload of the (short) innermost
 *                   loop, one invocation per tile row (the paper's
 *                   0.44x: offload overhead is not amortized);
 *  - Dist-DA-BN   — user-identified blocked loop nest: a bounds
 *                   partition produces inner-loop bounds (cp_produce)
 *                   and the compute partition pipelines rows
 *                   (Fig 5a), removing per-row host orchestration;
 *  - Dist-DA-BNS  — user schedule on top: x-vector tile blocks are
 *                   staged with cp_fill_ra so indirect gathers become
 *                   local buffer hits, and results drain in bulk
 *                   (cp_drain_ra).
 */

#ifndef DISTDA_CASESTUDY_CASE_SPMV_HH
#define DISTDA_CASESTUDY_CASE_SPMV_HH

#include <string>
#include <vector>

namespace distda::casestudy
{

/** One configuration's outcome. */
struct CaseResult
{
    std::string config;
    double timeNs = 0.0;
    bool validated = false;
};

/**
 * Run all four spmv configurations on one deterministic tiled dataset.
 * @p scale sizes the problem (1.0 = tiles of 512x512, 16 tiles;
 * --paper raises the tile dimension toward the paper's 4096).
 */
std::vector<CaseResult> runSpmvCaseStudy(double scale);

/** The nw (§VI-D) control-intensive case study: B / BN / BNS. */
std::vector<CaseResult> runNwCaseStudy(double scale);

} // namespace distda::casestudy

#endif // DISTDA_CASESTUDY_CASE_SPMV_HH
