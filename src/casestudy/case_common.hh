/**
 * @file
 * Infrastructure for the §VI-D case studies: hand-scheduled actors
 * that use the Table II interface directly — the "user annotated"
 * rows of Table V. Unlike compiler-generated partitions, these actors
 * have their own control (nested loops, data-dependent trip counts)
 * and explicit fill/drain schedules, which is exactly what the
 * Dist-DA-BN and Dist-DA-BNS configurations add.
 */

#ifndef DISTDA_CASESTUDY_CASE_COMMON_HH
#define DISTDA_CASESTUDY_CASE_COMMON_HH

#include <memory>
#include <vector>

#include "src/engine/actor.hh"
#include "src/engine/channel.hh"
#include "src/sim/logging.hh"

namespace distda::casestudy
{

/** A hand-written decoupled actor (peer of PartitionActor). */
class CaseActor
{
  public:
    virtual ~CaseActor() = default;

    /**
     * Advance up to @p budget work items.
     * Blocked means a channel stalled this actor; the scheduler
     * re-runs it after its peers progress.
     */
    virtual engine::ActorStatus run(std::int64_t budget) = 0;

    sim::Tick now = 0;
    double insts = 0.0;

  protected:
    /** Try to consume from @p ch into @p out; false when blocked. */
    bool
    tryConsume(engine::Channel &ch, compiler::Word &out)
    {
        if (ch.empty())
            return false;
        out = ch.front().value;
        now = std::max(now, ch.front().readyAt);
        ch.pop();
        insts += 1.0;
        return true;
    }

    /** Try to produce into @p ch; false when backpressured. */
    bool
    tryProduce(engine::Channel &ch, compiler::Word v, noc::Mesh &mesh,
               sim::Tick transfer_cost_now)
    {
        if (ch.full())
            return false;
        sim::Tick arrive = now;
        if (ch.srcCluster() != ch.dstCluster()) {
            auto xfer = mesh.transfer(ch.srcCluster(), ch.dstCluster(),
                                      ch.elemBytes(),
                                      ch.isControl()
                                          ? noc::TrafficClass::AccCtrl
                                          : noc::TrafficClass::AccData,
                                      transfer_cost_now);
            arrive = now + xfer.latency;
        }
        ch.push(v, arrive);
        insts += 1.0;
        return true;
    }
};

/** Round-robin the actors until all finish; panics on deadlock. */
sim::Tick runActors(const std::vector<CaseActor *> &actors);

} // namespace distda::casestudy

#endif // DISTDA_CASESTUDY_CASE_COMMON_HH
