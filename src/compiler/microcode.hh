/**
 * @file
 * The 64-bit microcode executed by in-order accelerator cores and
 * interpreted (with a static mapping) by the CGRA fabric. One
 * instruction occupies 8 bytes, which is where Table VI's insts(B) =
 * 8 * #insts comes from.
 */

#ifndef DISTDA_COMPILER_MICROCODE_HH
#define DISTDA_COMPILER_MICROCODE_HH

#include <cstdint>
#include <vector>

#include "src/compiler/dfg.hh"

namespace distda::compiler
{

/** Microcode operations. Arithmetic reuses OpCode. */
enum class MicroKind : std::uint8_t
{
    Alu,          ///< OpCode arithmetic on registers
    LoadStream,   ///< read current element of stream accessor `slot`
    StoreStream,  ///< write current element of stream accessor `slot`
    LoadIdx,      ///< cp_read-style: object element at reg `a`
    StoreIdx,     ///< cp_write-style: object element at reg `a` = reg `b`
    Consume,      ///< cp_consume from in-channel `slot`
    Produce,      ///< cp_produce to out-channel `slot`
    CarryWrite,   ///< latch reg `a` into carry register `slot`
};

/** Register index sentinel: "no register". */
constexpr std::uint16_t noReg = 0xffff;

/** One 8-byte microcode instruction. */
struct MicroInst
{
    MicroKind kind = MicroKind::Alu;
    OpCode op = OpCode::Mov;   ///< valid when kind == Alu
    std::uint16_t dst = noReg;
    std::uint16_t a = noReg;
    std::uint16_t b = noReg;
    std::uint16_t c = noReg;   ///< third ALU input / store predicate
    std::int32_t slot = -1;    ///< accessor / channel / carry slot
};

/** Encoded size of one microcode instruction in bytes. */
constexpr std::uint32_t microInstBytes = 8;

/** Carry register metadata. */
struct CarrySlot
{
    std::uint16_t reg = noReg;   ///< architectural carry register
    Word init{0};
    bool isFloat = false;
    int node = -1;               ///< originating DFG carry node
};

/** A partition's program plus its register-file preload metadata. */
struct MicroProgram
{
    std::vector<MicroInst> insts;
    int numRegs = 0;
    std::uint16_t ivReg = noReg;  ///< orchestrator-maintained index

    /** (param index, register) pairs preloaded via cp_set_rf. */
    std::vector<std::pair<int, std::uint16_t>> paramRegs;
    /** (register, value, is_float) literal preloads. */
    struct ConstReg
    {
        std::uint16_t reg;
        Word value;
        bool isFloat;
    };
    std::vector<ConstReg> constRegs;
    std::vector<CarrySlot> carries;

    std::uint32_t byteSize() const
    {
        return static_cast<std::uint32_t>(insts.size()) * microInstBytes;
    }
};

} // namespace distda::compiler

#endif // DISTDA_COMPILER_MICROCODE_HH
