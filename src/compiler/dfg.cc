#include "src/compiler/dfg.hh"

#include <algorithm>
#include <map>

#include "src/sim/logging.hh"

namespace distda::compiler
{

FuClass
fuClassOf(OpCode op)
{
    switch (op) {
      case OpCode::IDiv:
      case OpCode::IRem:
      case OpCode::FDiv:
      case OpCode::FSqrt:
        return FuClass::Complex;
      case OpCode::FAdd:
      case OpCode::FSub:
      case OpCode::FMul:
      case OpCode::FAbs:
      case OpCode::FMin:
      case OpCode::FMax:
      case OpCode::FNeg:
      case OpCode::FCmpLt:
      case OpCode::FCmpLe:
      case OpCode::FCmpEq:
      case OpCode::I2F:
      case OpCode::F2I:
        return FuClass::Float;
      default:
        return FuClass::Int;
    }
}

bool
producesFloat(OpCode op)
{
    switch (op) {
      case OpCode::FAdd:
      case OpCode::FSub:
      case OpCode::FMul:
      case OpCode::FDiv:
      case OpCode::FSqrt:
      case OpCode::FAbs:
      case OpCode::FMin:
      case OpCode::FMax:
      case OpCode::FNeg:
      case OpCode::I2F:
        return true;
      default:
        return false;
    }
}

const char *
opName(OpCode op)
{
    switch (op) {
      case OpCode::IAdd: return "iadd";
      case OpCode::ISub: return "isub";
      case OpCode::IMul: return "imul";
      case OpCode::IDiv: return "idiv";
      case OpCode::IRem: return "irem";
      case OpCode::IMin: return "imin";
      case OpCode::IMax: return "imax";
      case OpCode::IAbs: return "iabs";
      case OpCode::IAnd: return "iand";
      case OpCode::IOr: return "ior";
      case OpCode::IXor: return "ixor";
      case OpCode::IShl: return "ishl";
      case OpCode::IShr: return "ishr";
      case OpCode::ICmpLt: return "icmplt";
      case OpCode::ICmpLe: return "icmple";
      case OpCode::ICmpEq: return "icmpeq";
      case OpCode::ICmpNe: return "icmpne";
      case OpCode::FAdd: return "fadd";
      case OpCode::FSub: return "fsub";
      case OpCode::FMul: return "fmul";
      case OpCode::FDiv: return "fdiv";
      case OpCode::FSqrt: return "fsqrt";
      case OpCode::FAbs: return "fabs";
      case OpCode::FMin: return "fmin";
      case OpCode::FMax: return "fmax";
      case OpCode::FNeg: return "fneg";
      case OpCode::FCmpLt: return "fcmplt";
      case OpCode::FCmpLe: return "fcmple";
      case OpCode::FCmpEq: return "fcmpeq";
      case OpCode::Select: return "select";
      case OpCode::I2F: return "i2f";
      case OpCode::F2I: return "f2i";
      case OpCode::Mov: return "mov";
      default: return "?";
    }
}

bool
AffinePattern::sameStrideAs(const AffinePattern &other) const
{
    if (ivCoeff != other.ivCoeff)
        return false;
    const std::size_t n =
        std::max(paramCoeffs.size(), other.paramCoeffs.size());
    for (std::size_t k = 0; k < n; ++k) {
        if (paramCoeff(k) != other.paramCoeff(k))
            return false;
    }
    return true;
}

std::vector<int>
Node::valueInputs() const
{
    std::vector<int> ins;
    auto push = [&ins](int n) {
        if (n != noNode)
            ins.push_back(n);
    };
    switch (kind) {
      case NodeKind::Access:
        push(addrInput);
        push(valueInput);
        push(predInput);
        break;
      case NodeKind::Compute:
        push(inputA);
        push(inputB);
        push(inputC);
        break;
      case NodeKind::Carry:
        // The carry update is a back-edge, not a same-iteration input.
        break;
      default:
        break;
    }
    return ins;
}

std::vector<int>
Kernel::topoOrder() const
{
    // Kahn's algorithm over same-iteration (forward) edges only;
    // carry back-edges are excluded so the graph is a DAG.
    std::vector<int> indeg(nodes.size(), 0);
    for (const Node &n : nodes) {
        for (int in : n.valueInputs()) {
            (void)in;
            ++indeg[static_cast<std::size_t>(n.id)];
        }
    }
    std::vector<int> ready;
    for (const Node &n : nodes) {
        if (indeg[static_cast<std::size_t>(n.id)] == 0)
            ready.push_back(n.id);
    }
    auto users = userLists();
    std::vector<int> order;
    order.reserve(nodes.size());
    std::size_t head = 0;
    while (head < ready.size()) {
        const int id = ready[head++];
        order.push_back(id);
        for (int u : users[static_cast<std::size_t>(id)]) {
            if (--indeg[static_cast<std::size_t>(u)] == 0)
                ready.push_back(u);
        }
    }
    if (order.size() != nodes.size())
        panic("kernel '%s': DFG has a same-iteration cycle", name.c_str());
    return order;
}

std::vector<std::vector<int>>
Kernel::userLists() const
{
    std::vector<std::vector<int>> users(nodes.size());
    for (const Node &n : nodes) {
        for (int in : n.valueInputs())
            users[static_cast<std::size_t>(in)].push_back(n.id);
    }
    return users;
}

std::vector<int>
Kernel::accessesOf(int obj_id) const
{
    std::vector<int> out;
    for (const Node &n : nodes) {
        if (n.kind == NodeKind::Access && n.objId == obj_id)
            out.push_back(n.id);
    }
    return out;
}

int
Kernel::instCount() const
{
    int count = 0;
    for (const Node &n : nodes) {
        if (n.kind == NodeKind::Compute || n.kind == NodeKind::Access)
            ++count;
    }
    return count;
}

void
Kernel::verify() const
{
    std::map<int, int> obj_ids;
    for (const MemObjectDecl &o : objects) {
        if (o.elemCount == 0)
            panic("kernel '%s': object '%s' has zero elements",
                  name.c_str(), o.name.c_str());
        if (obj_ids.count(o.id))
            panic("kernel '%s': duplicate object id %d", name.c_str(),
                  o.id);
        obj_ids[o.id] = 1;
    }
    for (const Node &n : nodes) {
        if (n.id < 0 || n.id >= static_cast<int>(nodes.size()))
            panic("kernel '%s': bad node id %d", name.c_str(), n.id);
        for (int in : n.valueInputs()) {
            if (in < 0 || in >= static_cast<int>(nodes.size()))
                panic("kernel '%s': node %d has bad input %d",
                      name.c_str(), n.id, in);
        }
        if (n.kind == NodeKind::Access && !obj_ids.count(n.objId))
            panic("kernel '%s': access %d targets unknown object %d",
                  name.c_str(), n.id, n.objId);
        if (n.kind == NodeKind::Carry && n.carryUpdate == noNode)
            panic("kernel '%s': carry '%s' never updated (missing "
                  "setCarry)", name.c_str(), n.name.c_str());
    }
    if (loop.extentParam < 0 && loop.staticExtent <= 0)
        panic("kernel '%s': loop extent not set", name.c_str());
    // Topological order must exist (panics internally otherwise).
    (void)topoOrder();
}

KernelBuilder::KernelBuilder(std::string kernel_name)
{
    _kernel.name = std::move(kernel_name);
}

int
KernelBuilder::addNode(Node n)
{
    n.id = static_cast<int>(_kernel.nodes.size());
    _kernel.nodes.push_back(std::move(n));
    return _kernel.nodes.back().id;
}

void
KernelBuilder::loopStatic(std::int64_t extent, std::string name)
{
    _kernel.loop.staticExtent = extent;
    _kernel.loop.extentParam = -1;
    _kernel.loop.name = std::move(name);
}

void
KernelBuilder::loopFromParam(int param_idx, std::string name)
{
    _kernel.loop.extentParam = param_idx;
    _kernel.loop.name = std::move(name);
}

int
KernelBuilder::object(std::string name, std::uint64_t elem_count,
                      std::uint32_t elem_bytes, bool is_float)
{
    MemObjectDecl decl;
    decl.id = static_cast<int>(_kernel.objects.size());
    decl.name = std::move(name);
    decl.elemCount = elem_count;
    decl.elemBytes = elem_bytes;
    decl.isFloat = is_float;
    _kernel.objects.push_back(decl);

    Node n;
    n.kind = NodeKind::MemObject;
    n.objId = decl.id;
    n.name = _kernel.objects.back().name;
    addNode(std::move(n));
    return decl.id;
}

int
KernelBuilder::param(std::string name)
{
    _kernel.paramNames.push_back(std::move(name));
    return static_cast<int>(_kernel.paramNames.size()) - 1;
}

ValueRef
KernelBuilder::iv()
{
    Node n;
    n.kind = NodeKind::IndVar;
    n.name = _kernel.loop.name;
    return ValueRef{addNode(std::move(n)), false};
}

ValueRef
KernelBuilder::paramValue(int param_idx)
{
    DISTDA_ASSERT(param_idx >= 0 &&
                      param_idx <
                          static_cast<int>(_kernel.paramNames.size()),
                  "param %d", param_idx);
    Node n;
    n.kind = NodeKind::Param;
    n.paramIdx = param_idx;
    n.name = _kernel.paramNames[static_cast<std::size_t>(param_idx)];
    return ValueRef{addNode(std::move(n)), false};
}

ValueRef
KernelBuilder::constInt(std::int64_t v)
{
    Node n;
    n.kind = NodeKind::ConstInt;
    n.imm.i = v;
    return ValueRef{addNode(std::move(n)), false};
}

ValueRef
KernelBuilder::constFloat(double v)
{
    Node n;
    n.kind = NodeKind::ConstFloat;
    n.imm.f = v;
    return ValueRef{addNode(std::move(n)), true};
}

AffineExpr
KernelBuilder::affine(std::int64_t const_base, std::int64_t iv_coeff)
{
    AffineExpr e;
    e.pattern.constBase = const_base;
    e.pattern.ivCoeff = iv_coeff;
    return e;
}

AffineExpr
KernelBuilder::affineP(
    std::int64_t const_base, std::int64_t iv_coeff,
    std::initializer_list<std::pair<int, std::int64_t>> param_terms)
{
    AffineExpr e = affine(const_base, iv_coeff);
    for (const auto &[param_idx, coeff] : param_terms) {
        if (param_idx >=
            static_cast<int>(e.pattern.paramCoeffs.size())) {
            e.pattern.paramCoeffs.resize(
                static_cast<std::size_t>(param_idx) + 1, 0);
        }
        e.pattern.paramCoeffs[static_cast<std::size_t>(param_idx)] = coeff;
    }
    return e;
}

ValueRef
KernelBuilder::load(int obj_id, const AffineExpr &idx)
{
    const bool is_float =
        _kernel.objects[static_cast<std::size_t>(obj_id)].isFloat;
    Node n;
    n.kind = NodeKind::Access;
    n.dir = AccessDir::Load;
    n.pattern = PatternKind::Affine;
    n.affine = idx.pattern;
    n.objId = obj_id;
    n.elemIsFloat = is_float;
    n.bits = _kernel.objects[static_cast<std::size_t>(obj_id)].elemBytes * 8;
    return ValueRef{addNode(std::move(n)), is_float};
}

ValueRef
KernelBuilder::loadIdx(int obj_id, ValueRef offset)
{
    const bool is_float =
        _kernel.objects[static_cast<std::size_t>(obj_id)].isFloat;
    Node n;
    n.kind = NodeKind::Access;
    n.dir = AccessDir::Load;
    n.pattern = PatternKind::Indirect;
    n.addrInput = offset.node;
    n.objId = obj_id;
    n.elemIsFloat = is_float;
    n.bits = _kernel.objects[static_cast<std::size_t>(obj_id)].elemBytes * 8;
    return ValueRef{addNode(std::move(n)), is_float};
}

void
KernelBuilder::store(int obj_id, const AffineExpr &idx, ValueRef value)
{
    Node n;
    n.kind = NodeKind::Access;
    n.dir = AccessDir::Store;
    n.pattern = PatternKind::Affine;
    n.affine = idx.pattern;
    n.objId = obj_id;
    n.valueInput = value.node;
    n.elemIsFloat =
        _kernel.objects[static_cast<std::size_t>(obj_id)].isFloat;
    n.bits = _kernel.objects[static_cast<std::size_t>(obj_id)].elemBytes * 8;
    addNode(std::move(n));
}

void
KernelBuilder::storeIdx(int obj_id, ValueRef offset, ValueRef value)
{
    Node n;
    n.kind = NodeKind::Access;
    n.dir = AccessDir::Store;
    n.pattern = PatternKind::Indirect;
    n.addrInput = offset.node;
    n.objId = obj_id;
    n.valueInput = value.node;
    n.elemIsFloat =
        _kernel.objects[static_cast<std::size_t>(obj_id)].isFloat;
    n.bits = _kernel.objects[static_cast<std::size_t>(obj_id)].elemBytes * 8;
    addNode(std::move(n));
}

void
KernelBuilder::storeIdxIf(ValueRef pred, int obj_id, ValueRef offset,
                          ValueRef value)
{
    Node n;
    n.kind = NodeKind::Access;
    n.dir = AccessDir::Store;
    n.pattern = PatternKind::Indirect;
    n.addrInput = offset.node;
    n.objId = obj_id;
    n.valueInput = value.node;
    n.predInput = pred.node;
    n.elemIsFloat =
        _kernel.objects[static_cast<std::size_t>(obj_id)].isFloat;
    n.bits = _kernel.objects[static_cast<std::size_t>(obj_id)].elemBytes * 8;
    addNode(std::move(n));
}

void
KernelBuilder::storeIf(ValueRef pred, int obj_id, const AffineExpr &idx,
                       ValueRef value)
{
    Node n;
    n.kind = NodeKind::Access;
    n.dir = AccessDir::Store;
    n.pattern = PatternKind::Affine;
    n.affine = idx.pattern;
    n.objId = obj_id;
    n.valueInput = value.node;
    n.predInput = pred.node;
    n.elemIsFloat =
        _kernel.objects[static_cast<std::size_t>(obj_id)].isFloat;
    n.bits = _kernel.objects[static_cast<std::size_t>(obj_id)].elemBytes * 8;
    addNode(std::move(n));
}

ValueRef
KernelBuilder::compute(OpCode op, ValueRef a, ValueRef b, ValueRef c)
{
    Node n;
    n.kind = NodeKind::Compute;
    n.op = op;
    n.inputA = a.node;
    n.inputB = b.node;
    n.inputC = c.node;
    bool is_float = producesFloat(op);
    if (op == OpCode::Select || op == OpCode::Mov ||
        op == OpCode::FMin || op == OpCode::FMax) {
        is_float = (op == OpCode::Select) ? b.isFloat : a.isFloat;
        if (op == OpCode::FMin || op == OpCode::FMax)
            is_float = true;
    }
    return ValueRef{addNode(std::move(n)), is_float};
}

ValueRef
KernelBuilder::carry(Word init, bool is_float, std::string name)
{
    Node n;
    n.kind = NodeKind::Carry;
    n.carryInit = init;
    n.carryIsFloat = is_float;
    n.name = std::move(name);
    return ValueRef{addNode(std::move(n)), is_float};
}

void
KernelBuilder::setCarry(ValueRef carry_ref, ValueRef next)
{
    Node &n = _kernel.node(carry_ref.node);
    DISTDA_ASSERT(n.kind == NodeKind::Carry, "setCarry on non-carry %d",
                  carry_ref.node);
    n.carryUpdate = next.node;
}

void
KernelBuilder::markResult(ValueRef carry_ref)
{
    const Node &n = _kernel.node(carry_ref.node);
    DISTDA_ASSERT(n.kind == NodeKind::Carry,
                  "markResult on non-carry %d", carry_ref.node);
    _kernel.resultCarries.push_back(carry_ref.node);
}

Kernel
KernelBuilder::build()
{
    DISTDA_ASSERT(!_built, "kernel '%s' built twice",
                  _kernel.name.c_str());
    _built = true;
    _kernel.verify();
    return std::move(_kernel);
}

} // namespace distda::compiler
