/**
 * @file
 * Multilevel min-cut graph partitioner in the Metis family (§V-A-3):
 * heavy-edge-matching coarsening, greedy seeded initial partitioning,
 * and Kernighan–Lin/FM refinement, specialized with the paper's
 * constraint that each partition holds at most one memory object.
 *
 * The paper iterates the partition count and keeps the solution with
 * the lowest inter-partition communication cost and the fewest data
 * structures per partition; sweepPartition() implements that loop.
 */

#ifndef DISTDA_COMPILER_PARTITIONER_HH
#define DISTDA_COMPILER_PARTITIONER_HH

#include <cstdint>
#include <map>
#include <vector>

namespace distda::compiler
{

/** Input graph: weighted vertices, weighted undirected edges. */
struct PartitionGraph
{
    struct Vertex
    {
        double weight = 1.0;
        int objId = -1; ///< >=0 marks an object supernode (pinned)
    };

    std::vector<Vertex> vertices;
    std::map<std::pair<int, int>, double> edges;

    int addVertex(double weight = 1.0, int obj_id = -1);

    /** Accumulate weight onto the undirected edge {a, b}. */
    void addEdge(int a, int b, double weight);

    int numObjects() const;
};

/** One partitioning solution. */
struct PartitionSolution
{
    std::vector<int> assignment; ///< vertex -> partition
    int k = 0;
    double cutCost = 0.0;
    int maxObjectsPerPartition = 0;
};

/** Cut cost of @p assignment on @p graph. */
double cutCost(const PartitionGraph &graph,
               const std::vector<int> &assignment);

/** Partition into exactly @p k parts (multilevel KL/FM). */
PartitionSolution partitionGraph(const PartitionGraph &graph, int k);

/**
 * The paper's iteration: try k = 1 .. #objects, prefer solutions with
 * fewer objects per partition, then lower communication cost.
 */
PartitionSolution sweepPartition(const PartitionGraph &graph);

} // namespace distda::compiler

#endif // DISTDA_COMPILER_PARTITIONER_HH
