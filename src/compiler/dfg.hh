/**
 * @file
 * The offload abstraction of §IV-A: offloadable code regions are
 * dataflow graphs (DFGs) of three primitive node kinds — application
 * memory objects, access instructions, and compute operations — over
 * one innermost loop (the scope the paper's automated compiler
 * extracts; outer loops stay on the host and re-invoke the kernel).
 *
 * Workloads construct kernels through KernelBuilder, which plays the
 * role of the paper's LLVM front-end: because access patterns are
 * declared as affine functions of the induction variable and of host-set
 * scalar parameters, the scalar-evolution classification of §V-A is
 * immediate, and alias relationships are explicit via object IDs.
 */

#ifndef DISTDA_COMPILER_DFG_HH
#define DISTDA_COMPILER_DFG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace distda::compiler
{

/** A runtime value: either a 64-bit integer or a double. */
union Word
{
    std::int64_t i;
    double f;
};

/** Primitive DFG node kinds (Fig 1e / Fig 3-2). */
enum class NodeKind : std::uint8_t
{
    MemObject,  ///< an application data structure
    Access,     ///< a load/store on one object
    Compute,    ///< an arithmetic/logic operation
    IndVar,     ///< the loop induction variable
    Param,      ///< host-set scalar (reaches the accelerator via cp_set_rf)
    ConstInt,   ///< integer literal
    ConstFloat, ///< floating-point literal
    Carry,      ///< loop-carried register (reduction/recurrence)
};

/** Load or store. */
enum class AccessDir : std::uint8_t { Load, Store };

/** Scalar-evolution classification of an access's address stream. */
enum class PatternKind : std::uint8_t
{
    Affine,   ///< base + sum(coeff_k * param_k) + iv_coeff * i
    Indirect, ///< offset produced by another node (e.g., B[A[i]])
};

/** Compute operations; the set the in-order microcode and CGRA share. */
enum class OpCode : std::uint8_t
{
    // integer
    IAdd, ISub, IMul, IDiv, IRem, IMin, IMax, IAbs,
    IAnd, IOr, IXor, IShl, IShr,
    ICmpLt, ICmpLe, ICmpEq, ICmpNe,
    // floating point
    FAdd, FSub, FMul, FDiv, FSqrt, FAbs, FMin, FMax, FNeg,
    FCmpLt, FCmpLe, FCmpEq,
    // misc
    Select, I2F, F2I, Mov,
};

/** Functional-unit class an op needs (for CGRA placement and area). */
enum class FuClass : std::uint8_t { Int, Float, Complex, Mem, Ctrl };

/** FU class required by @p op. */
FuClass fuClassOf(OpCode op);

/** True for FAdd..FCmpEq style float-producing ops. */
bool producesFloat(OpCode op);

/** Printable op name. */
const char *opName(OpCode op);

/**
 * Affine address pattern: element offset =
 *   constBase + sum_k paramCoeffs[k] * param_k + ivCoeff * i.
 */
struct AffinePattern
{
    std::int64_t constBase = 0;
    std::vector<std::int64_t> paramCoeffs; ///< indexed by param id
    std::int64_t ivCoeff = 0;

    /** Coefficient for param @p k (0 when beyond the stored vector). */
    std::int64_t
    paramCoeff(std::size_t k) const
    {
        return k < paramCoeffs.size() ? paramCoeffs[k] : 0;
    }

    /** True when two patterns differ only in constBase. */
    bool sameStrideAs(const AffinePattern &other) const;
};

/** Sentinel for "no node". */
constexpr int noNode = -1;

/** One DFG node. */
struct Node
{
    int id = noNode;
    NodeKind kind = NodeKind::Compute;
    std::string name;
    std::uint32_t bits = 64; ///< communication width of the value

    // MemObject fields
    int objId = -1;

    // Access fields
    AccessDir dir = AccessDir::Load;
    PatternKind pattern = PatternKind::Affine;
    AffinePattern affine;
    int addrInput = noNode;  ///< node producing the element offset (indirect)
    int valueInput = noNode; ///< stored value (stores)
    int predInput = noNode;  ///< store predicate (predicated stores)
    bool elemIsFloat = false;

    // Compute fields
    OpCode op = OpCode::Mov;
    int inputA = noNode;
    int inputB = noNode;
    int inputC = noNode; ///< third input (Select)

    // Param fields
    int paramIdx = -1;

    // Const fields
    Word imm{0};

    // Carry fields
    Word carryInit{0};
    int carryUpdate = noNode; ///< value written back at iteration end
    bool carryIsFloat = false;

    /** All value inputs of this node, in a fixed order. */
    std::vector<int> valueInputs() const;
};

/** Declaration of one application memory object. */
struct MemObjectDecl
{
    int id = -1;
    std::string name;
    std::uint64_t elemCount = 0;
    std::uint32_t elemBytes = 8;
    bool isFloat = false;
};

/** Trip count source of the kernel's single (innermost) loop. */
struct LoopInfo
{
    std::int64_t staticExtent = 0; ///< used when paramIdx < 0
    int extentParam = -1;          ///< param index providing the extent
    std::string name = "i";
};

/**
 * A kernel: one innermost loop's DFG plus its objects and parameters.
 * This is the unit the compiler classifies, partitions and lowers.
 */
struct Kernel
{
    std::string name;
    LoopInfo loop;
    std::vector<MemObjectDecl> objects;
    std::vector<std::string> paramNames;
    std::vector<Node> nodes;
    /** Carry nodes whose final values the host reads via cp_load_rf. */
    std::vector<int> resultCarries;

    const Node &node(int id) const { return nodes[static_cast<std::size_t>(id)]; }
    Node &node(int id) { return nodes[static_cast<std::size_t>(id)]; }

    /** Node ids in topological order (inputs before users). */
    std::vector<int> topoOrder() const;

    /** All access nodes touching @p obj_id. */
    std::vector<int> accessesOf(int obj_id) const;

    /** Number of compute + access nodes ("instructions" for Table VI). */
    int instCount() const;

    /** Users of each node (reverse edges). */
    std::vector<std::vector<int>> userLists() const;

    /** Consistency checks; panics on malformed graphs. */
    void verify() const;
};

/** A value handle returned by KernelBuilder operations. */
struct ValueRef
{
    int node = noNode;
    bool isFloat = false;
};

/** Affine index expression handle used by load/store. */
struct AffineExpr
{
    AffinePattern pattern;
};

/**
 * Fluent builder for kernels. Mirrors what the paper's LLVM passes
 * recover from IR: objects, affine/indirect accesses, compute chains,
 * loop-carried values and predicated stores.
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string kernel_name);

    /** Declare the loop with a static trip count. */
    void loopStatic(std::int64_t extent, std::string name = "i");

    /** Declare the loop with its trip count in a parameter. */
    void loopFromParam(int param_idx, std::string name = "i");

    /** Declare a memory object; returns its object id. */
    int object(std::string name, std::uint64_t elem_count,
               std::uint32_t elem_bytes, bool is_float);

    /** Declare a host-set scalar parameter; returns its param index. */
    int param(std::string name);

    /** The induction variable as a value. */
    ValueRef iv();

    /** A parameter as a value. */
    ValueRef paramValue(int param_idx);

    ValueRef constInt(std::int64_t v);
    ValueRef constFloat(double v);

    /** Affine expression: constBase + ivCoeff*i (+ param terms). */
    AffineExpr affine(std::int64_t const_base, std::int64_t iv_coeff);
    AffineExpr affineP(std::int64_t const_base, std::int64_t iv_coeff,
                       std::initializer_list<std::pair<int, std::int64_t>>
                           param_terms);

    /** Affine load from @p obj_id. */
    ValueRef load(int obj_id, const AffineExpr &idx);

    /** Indirect load: obj[offset] with a computed offset. */
    ValueRef loadIdx(int obj_id, ValueRef offset);

    /** Affine store. */
    void store(int obj_id, const AffineExpr &idx, ValueRef value);

    /** Indirect store. */
    void storeIdx(int obj_id, ValueRef offset, ValueRef value);

    /** Predicated indirect store: executes when @p pred is nonzero. */
    void storeIdxIf(ValueRef pred, int obj_id, ValueRef offset,
                    ValueRef value);

    /** Predicated affine store. */
    void storeIf(ValueRef pred, int obj_id, const AffineExpr &idx,
                 ValueRef value);

    /** Generic binary/unary compute node. */
    ValueRef compute(OpCode op, ValueRef a,
                     ValueRef b = ValueRef{},
                     ValueRef c = ValueRef{});

    // Convenience arithmetic wrappers.
    ValueRef iadd(ValueRef a, ValueRef b) { return compute(OpCode::IAdd, a, b); }
    ValueRef isub(ValueRef a, ValueRef b) { return compute(OpCode::ISub, a, b); }
    ValueRef imul(ValueRef a, ValueRef b) { return compute(OpCode::IMul, a, b); }
    ValueRef imin(ValueRef a, ValueRef b) { return compute(OpCode::IMin, a, b); }
    ValueRef imax(ValueRef a, ValueRef b) { return compute(OpCode::IMax, a, b); }
    ValueRef iabs(ValueRef a) { return compute(OpCode::IAbs, a); }
    ValueRef fadd(ValueRef a, ValueRef b) { return compute(OpCode::FAdd, a, b); }
    ValueRef fsub(ValueRef a, ValueRef b) { return compute(OpCode::FSub, a, b); }
    ValueRef fmul(ValueRef a, ValueRef b) { return compute(OpCode::FMul, a, b); }
    ValueRef fdiv(ValueRef a, ValueRef b) { return compute(OpCode::FDiv, a, b); }
    ValueRef fsqrt(ValueRef a) { return compute(OpCode::FSqrt, a); }
    ValueRef fmin(ValueRef a, ValueRef b) { return compute(OpCode::FMin, a, b); }
    ValueRef fmax(ValueRef a, ValueRef b) { return compute(OpCode::FMax, a, b); }
    ValueRef select(ValueRef cond, ValueRef t, ValueRef f)
    {
        return compute(OpCode::Select, cond, t, f);
    }

    /** Declare a loop-carried value with an initial constant. */
    ValueRef carry(Word init, bool is_float, std::string name = "acc");

    /** Set the next-iteration value of a carried register. */
    void setCarry(ValueRef carry_ref, ValueRef next);

    /** Mark a carry as a result the host reads back (cp_load_rf). */
    void markResult(ValueRef carry_ref);

    /** Finish and validate the kernel. */
    Kernel build();

  private:
    int addNode(Node n);

    Kernel _kernel;
    bool _built = false;
};

} // namespace distda::compiler

#endif // DISTDA_COMPILER_DFG_HH
