#include "src/compiler/classify.hh"

#include <algorithm>
#include <vector>

namespace distda::compiler
{

bool
dependsOn(const Kernel &kernel, int node, int candidate)
{
    if (node == noNode)
        return false;
    std::vector<int> work{node};
    std::vector<bool> seen(kernel.nodes.size(), false);
    while (!work.empty()) {
        const int cur = work.back();
        work.pop_back();
        if (cur == candidate)
            return true;
        if (seen[static_cast<std::size_t>(cur)])
            continue;
        seen[static_cast<std::size_t>(cur)] = true;
        for (int in : kernel.node(cur).valueInputs())
            work.push_back(in);
    }
    return false;
}

bool
carriedDistance(const AffinePattern &store_pat,
                const AffinePattern &load_pat, std::int64_t &d)
{
    if (!store_pat.sameStrideAs(load_pat)) {
        // Different strides: conservatively dependent at distance 1.
        d = 1;
        return true;
    }
    const std::int64_t diff = load_pat.constBase - store_pat.constBase;
    if (store_pat.ivCoeff == 0) {
        // Loop-invariant location touched every iteration.
        d = (diff == 0) ? 1 : -1;
        return diff == 0;
    }
    if (diff % store_pat.ivCoeff != 0)
        return false;
    // store@i hits the element load reads at i + d where
    // base_s + c*i == base_l + c*(i + d)  =>  d = -diff / c.
    d = -diff / store_pat.ivCoeff;
    return d > 0;
}

DependenceInfo
classifyKernel(const Kernel &kernel)
{
    DependenceInfo info;

    std::vector<int> loads, stores, carries;
    for (const Node &n : kernel.nodes) {
        if (n.kind == NodeKind::Carry) {
            carries.push_back(n.id);
            info.hasCarry = true;
        } else if (n.kind == NodeKind::Access) {
            if (n.dir == AccessDir::Load)
                loads.push_back(n.id);
            else
                stores.push_back(n.id);
        }
    }

    for (int s : stores) {
        const Node &sn = kernel.node(s);
        if (sn.pattern == PatternKind::Indirect)
            info.hasIndirectWrite = true;
    }

    // Affine store -> affine load carried dependences on one object.
    for (int s : stores) {
        const Node &sn = kernel.node(s);
        for (int l : loads) {
            const Node &ln = kernel.node(l);
            if (ln.objId != sn.objId)
                continue;
            if (sn.pattern == PatternKind::Indirect ||
                ln.pattern == PatternKind::Indirect) {
                // Unresolvable at compile time: conservative carried
                // dependence (kept legal by object-level clustering).
                info.hasCarriedMemDep = true;
                continue;
            }
            std::int64_t d = 0;
            if (carriedDistance(sn.affine, ln.affine, d))
                info.hasCarriedMemDep = true;
        }
    }

    // Memory recurrence: an indirect load whose address chain passes
    // through a carry that is in turn updated from that load (pointer
    // chasing) — §V-A-2's case 2.
    for (int l : loads) {
        const Node &ln = kernel.node(l);
        if (ln.pattern != PatternKind::Indirect)
            continue;
        for (int c : carries) {
            const Node &cn = kernel.node(c);
            if (dependsOn(kernel, ln.addrInput, c) &&
                cn.carryUpdate != noNode &&
                dependsOn(kernel, cn.carryUpdate, l)) {
                info.hasMemoryRecurrence = true;
            }
        }
    }

    // Dependent-load chain depth within one iteration (feeds the OoO
    // and software-prefetch models).
    std::vector<int> depth(kernel.nodes.size(), 0);
    for (int id : kernel.topoOrder()) {
        const Node &n = kernel.node(id);
        int in_depth = 0;
        for (int in : n.valueInputs())
            in_depth = std::max(in_depth,
                                depth[static_cast<std::size_t>(in)]);
        depth[static_cast<std::size_t>(id)] =
            in_depth + ((n.kind == NodeKind::Access &&
                         n.dir == AccessDir::Load)
                            ? 1
                            : 0);
        info.loadChainDepth = std::max(
            info.loadChainDepth, depth[static_cast<std::size_t>(id)]);
    }

    // Loop-carried compute recurrence latency: ops on a carry cycle
    // execute serially across iterations.
    for (int c : carries) {
        const Node &cn = kernel.node(c);
        if (cn.carryUpdate == noNode)
            continue;
        int cycles = 0;
        for (const Node &x : kernel.nodes) {
            if (x.kind != NodeKind::Compute)
                continue;
            if (dependsOn(kernel, x.id, c) &&
                dependsOn(kernel, cn.carryUpdate, x.id)) {
                switch (fuClassOf(x.op)) {
                  case FuClass::Complex: cycles += 8; break;
                  case FuClass::Float: cycles += 3; break;
                  default: cycles += 1; break;
                }
            }
        }
        info.carryChainCycles = std::max(info.carryChainCycles, cycles);
    }

    if (info.hasMemoryRecurrence)
        info.cls = DfgClass::NonPartitionable;
    else if (info.hasCarry || info.hasIndirectWrite ||
             info.hasCarriedMemDep)
        info.cls = DfgClass::Pipelinable;
    else
        info.cls = DfgClass::Parallelizable;
    return info;
}

} // namespace distda::compiler
