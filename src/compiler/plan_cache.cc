#include "src/compiler/plan_cache.hh"

#include <chrono>

#include "src/compiler/plan_io.hh"

namespace distda::compiler
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

} // namespace

PlanCache &
PlanCache::process()
{
    static PlanCache cache;
    return cache;
}

PlanCache::Lookup
PlanCache::getOrCompile(const Kernel &kernel, const CompileOptions &opts)
{
    const std::string fp = planFingerprint(kernel, opts);
    Lookup result;
    {
        std::lock_guard<std::mutex> lk(_mu);
        if (_enabled) {
            auto it = _entries.find(fp);
            if (it != _entries.end()) {
                ++_stats.hits;
                _stats.savedMs += it->second.compileMs;
                result.plan = it->second.plan;
                result.hit = true;
                result.savedMs = it->second.compileMs;
                return result;
            }
        }
    }

    // Compile outside the lock: misses on distinct kernels from
    // concurrent sweep workers must not serialize on the cache.
    const auto t0 = Clock::now();
    auto plan = std::make_shared<const OffloadPlan>(
        compileKernel(kernel, opts));
    result.compileMs = msSince(t0);

    std::lock_guard<std::mutex> lk(_mu);
    ++_stats.misses;
    _stats.compileMs += result.compileMs;
    if (!_enabled) {
        result.plan = std::move(plan);
        return result;
    }
    auto it = _entries.find(fp);
    if (it != _entries.end()) {
        // A concurrent miss inserted first; use its (identical) plan
        // so every holder shares one instance.
        result.plan = it->second.plan;
        return result;
    }
    _entries.emplace(fp, Entry{plan, result.compileMs});
    _order.push_back(fp);
    evictLocked();
    result.plan = std::move(plan);
    return result;
}

void
PlanCache::insert(std::shared_ptr<const OffloadPlan> plan)
{
    if (!plan || plan->fingerprint.empty())
        return;
    const std::string fp = plan->fingerprint;
    std::lock_guard<std::mutex> lk(_mu);
    if (!_enabled || _entries.count(fp))
        return;
    _order.push_back(fp);
    _entries.emplace(fp, Entry{std::move(plan), 0.0});
    evictLocked();
}

std::shared_ptr<const OffloadPlan>
PlanCache::find(const std::string &fingerprint) const
{
    std::lock_guard<std::mutex> lk(_mu);
    auto it = _entries.find(fingerprint);
    return it == _entries.end() ? nullptr : it->second.plan;
}

PlanCache::Stats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lk(_mu);
    Stats s = _stats;
    s.entries = _entries.size();
    s.capacity = _capacity;
    return s;
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lk(_mu);
    _entries.clear();
    _order.clear();
    _stats = Stats{};
}

void
PlanCache::setEnabled(bool enabled)
{
    std::lock_guard<std::mutex> lk(_mu);
    if (_enabled && !enabled) {
        // Disable releases the plans (see the header): a disabled
        // long-lived server must not keep a hidden warm set alive.
        _entries.clear();
        _order.clear();
    }
    _enabled = enabled;
}

bool
PlanCache::enabled() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _enabled;
}

void
PlanCache::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lk(_mu);
    _capacity = capacity > 0 ? capacity : 1;
    evictLocked();
}

std::size_t
PlanCache::capacity() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _capacity;
}

void
PlanCache::evictLocked()
{
    while (_entries.size() > _capacity && !_order.empty()) {
        _entries.erase(_order.front());
        _order.pop_front();
        ++_stats.evictions;
    }
}

} // namespace distda::compiler
