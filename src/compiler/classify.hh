/**
 * @file
 * DFG classification (§V-A-2): conservative dependence analysis that
 * buckets each kernel into parallelizable, pipelinable or
 * non-partitionable, mirroring what the paper derives from LLVM's
 * scalar-evolution and memory-dependence analyses.
 */

#ifndef DISTDA_COMPILER_CLASSIFY_HH
#define DISTDA_COMPILER_CLASSIFY_HH

#include "src/compiler/dfg.hh"
#include "src/compiler/plan.hh"

namespace distda::compiler
{

/** Analyze @p kernel and classify it. */
DependenceInfo classifyKernel(const Kernel &kernel);

/**
 * True when the set of nodes transitively feeding @p node (same
 * iteration) includes @p candidate.
 */
bool dependsOn(const Kernel &kernel, int node, int candidate);

/**
 * Loop-carried distance between an affine store and an affine load on
 * the same object: the store at iteration i writes what the load reads
 * at iteration i+d. Returns false when the patterns are unrelated or
 * the distance is not a (nonnegative) integer multiple of the stride.
 */
bool carriedDistance(const AffinePattern &store_pat,
                     const AffinePattern &load_pat, std::int64_t &d);

} // namespace distda::compiler

#endif // DISTDA_COMPILER_CLASSIFY_HH
