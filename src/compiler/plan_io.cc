#include "src/compiler/plan_io.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/sim/logging.hh"

namespace distda::compiler
{

namespace planio
{

const char *
kindName(NodeKind k)
{
    switch (k) {
      case NodeKind::MemObject: return "memobject";
      case NodeKind::Access: return "access";
      case NodeKind::Compute: return "compute";
      case NodeKind::IndVar: return "indvar";
      case NodeKind::Param: return "param";
      case NodeKind::ConstInt: return "constint";
      case NodeKind::ConstFloat: return "constfloat";
      case NodeKind::Carry: return "carry";
      default: panic("bad node kind %d", static_cast<int>(k));
    }
}

NodeKind
kindFromName(const std::string &s)
{
    for (int k = 0; k <= static_cast<int>(NodeKind::Carry); ++k) {
        if (s == kindName(static_cast<NodeKind>(k)))
            return static_cast<NodeKind>(k);
    }
    fatal("plan text: unknown node kind '%s'", s.c_str());
}

OpCode
opFromName(const std::string &s)
{
    for (int o = 0; o <= static_cast<int>(OpCode::Mov); ++o) {
        if (s == opName(static_cast<OpCode>(o)))
            return static_cast<OpCode>(o);
    }
    fatal("plan text: unknown opcode '%s'", s.c_str());
}

std::string
sanitizeName(const std::string &name)
{
    if (name.empty())
        return "-";
    std::string out = name;
    for (char &c : out) {
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            c = '_';
    }
    return out;
}

std::string
readName(std::istringstream &in, const char *what)
{
    std::string s;
    if (!(in >> s))
        fatal("plan text: missing %s", what);
    return s == "-" ? std::string{} : s;
}

std::int64_t
readI64(std::istringstream &in, const char *what)
{
    std::int64_t v;
    if (!(in >> v))
        fatal("plan text: bad integer field %s", what);
    return v;
}

std::uint64_t
readU64(std::istringstream &in, const char *what)
{
    std::uint64_t v;
    if (!(in >> v))
        fatal("plan text: bad unsigned field %s", what);
    return v;
}

std::uint64_t
readHex(std::istringstream &in, const char *what)
{
    std::string s;
    if (!(in >> s))
        fatal("plan text: missing hex field %s", what);
    std::uint64_t v = 0;
    if (std::sscanf(s.c_str(), "0x%" SCNx64, &v) != 1)
        fatal("plan text: bad hex field %s: '%s'", what, s.c_str());
    return v;
}

std::uint64_t
wordBits(Word w)
{
    std::uint64_t u;
    std::memcpy(&u, &w, sizeof(u));
    return u;
}

Word
wordFromBits(std::uint64_t u)
{
    Word w;
    std::memcpy(&w, &u, sizeof(w));
    return w;
}

std::string
hexWord(std::uint64_t bits)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, bits);
    return buf;
}

void
writeNode(std::ostream &out, const Node &n)
{
    out << "node " << n.id << ' ' << kindName(n.kind) << ' ' << n.bits
        << ' ' << n.objId << ' '
        << (n.dir == AccessDir::Store ? 'S' : 'L') << ' '
        << (n.pattern == PatternKind::Indirect ? 'I' : 'A') << ' '
        << n.affine.constBase << ' ' << n.affine.ivCoeff << ' '
        << n.affine.paramCoeffs.size();
    for (std::int64_t c : n.affine.paramCoeffs)
        out << ' ' << c;
    out << ' ' << n.addrInput << ' ' << n.valueInput << ' '
        << n.predInput << ' ' << (n.elemIsFloat ? 1 : 0) << ' '
        << opName(n.op) << ' ' << n.inputA << ' ' << n.inputB
        << ' ' << n.inputC << ' ' << n.paramIdx << ' '
        << hexWord(wordBits(n.imm)) << ' '
        << hexWord(wordBits(n.carryInit)) << ' ' << n.carryUpdate << ' '
        << (n.carryIsFloat ? 1 : 0) << ' ' << sanitizeName(n.name)
        << '\n';
}

Node
readNode(std::istringstream &in)
{
    Node n;
    n.id = static_cast<int>(readI64(in, "node id"));
    std::string kind;
    in >> kind;
    n.kind = kindFromName(kind);
    n.bits = static_cast<std::uint32_t>(readU64(in, "bits"));
    n.objId = static_cast<int>(readI64(in, "objId"));
    std::string dir, pat;
    in >> dir >> pat;
    if (dir != "L" && dir != "S")
        fatal("plan text: bad access dir '%s'", dir.c_str());
    if (pat != "A" && pat != "I")
        fatal("plan text: bad access pattern '%s'", pat.c_str());
    n.dir = dir == "S" ? AccessDir::Store : AccessDir::Load;
    n.pattern = pat == "I" ? PatternKind::Indirect : PatternKind::Affine;
    n.affine.constBase = readI64(in, "constBase");
    n.affine.ivCoeff = readI64(in, "ivCoeff");
    const std::uint64_t npc = readU64(in, "paramCoeff count");
    if (npc > 64)
        fatal("plan text: absurd paramCoeff count %llu",
              static_cast<unsigned long long>(npc));
    n.affine.paramCoeffs.resize(npc);
    for (std::uint64_t k = 0; k < npc; ++k)
        n.affine.paramCoeffs[k] = readI64(in, "paramCoeff");
    n.addrInput = static_cast<int>(readI64(in, "addrInput"));
    n.valueInput = static_cast<int>(readI64(in, "valueInput"));
    n.predInput = static_cast<int>(readI64(in, "predInput"));
    n.elemIsFloat = readI64(in, "elemIsFloat") != 0;
    std::string op;
    in >> op;
    n.op = opFromName(op);
    n.inputA = static_cast<int>(readI64(in, "inputA"));
    n.inputB = static_cast<int>(readI64(in, "inputB"));
    n.inputC = static_cast<int>(readI64(in, "inputC"));
    n.paramIdx = static_cast<int>(readI64(in, "paramIdx"));
    n.imm = wordFromBits(readHex(in, "imm"));
    n.carryInit = wordFromBits(readHex(in, "carryInit"));
    n.carryUpdate = static_cast<int>(readI64(in, "carryUpdate"));
    n.carryIsFloat = readI64(in, "carryIsFloat") != 0;
    n.name = readName(in, "node name");
    return n;
}

void
writeKernelLines(std::ostream &out, const Kernel &k)
{
    out << "kernel " << sanitizeName(k.name) << '\n';
    out << "loop " << k.loop.staticExtent << ' ' << k.loop.extentParam
        << ' ' << sanitizeName(k.loop.name) << '\n';
    for (const MemObjectDecl &o : k.objects) {
        out << "kobject " << o.id << ' ' << o.elemCount << ' '
            << o.elemBytes << ' ' << (o.isFloat ? 1 : 0) << ' '
            << sanitizeName(o.name) << '\n';
    }
    for (const std::string &p : k.paramNames)
        out << "kparam " << sanitizeName(p) << '\n';
    for (const Node &n : k.nodes)
        writeNode(out, n);
    for (int r : k.resultCarries)
        out << "result " << r << '\n';
    out << "endkernel\n";
}

bool
KernelLineReader::consume(const std::string &tok, std::istringstream &in)
{
    if (tok == "kernel") {
        if (_active)
            fatal("plan text: nested kernel");
        _pending = Kernel{};
        _pending.name = readName(in, "kernel name");
        _active = true;
        return true;
    }
    if (tok == "loop") {
        if (!_active)
            fatal("plan text: loop outside kernel");
        _pending.loop.staticExtent = readI64(in, "staticExtent");
        _pending.loop.extentParam =
            static_cast<int>(readI64(in, "extentParam"));
        _pending.loop.name = readName(in, "loop name");
        return true;
    }
    if (tok == "kobject") {
        if (!_active)
            fatal("plan text: kobject outside kernel");
        MemObjectDecl o;
        o.id = static_cast<int>(readI64(in, "kobject id"));
        o.elemCount = readU64(in, "kobject count");
        o.elemBytes =
            static_cast<std::uint32_t>(readU64(in, "kobject bytes"));
        o.isFloat = readI64(in, "kobject float") != 0;
        o.name = readName(in, "kobject name");
        _pending.objects.push_back(std::move(o));
        return true;
    }
    if (tok == "kparam") {
        if (!_active)
            fatal("plan text: kparam outside kernel");
        _pending.paramNames.push_back(readName(in, "kparam name"));
        return true;
    }
    if (tok == "node") {
        if (!_active)
            fatal("plan text: node outside kernel");
        _pending.nodes.push_back(readNode(in));
        return true;
    }
    if (tok == "result") {
        if (!_active)
            fatal("plan text: result outside kernel");
        _pending.resultCarries.push_back(
            static_cast<int>(readI64(in, "result node")));
        return true;
    }
    if (tok == "endkernel") {
        if (!_active)
            fatal("plan text: endkernel without kernel");
        kernels.push_back(std::move(_pending));
        _pending = Kernel{};
        _active = false;
        return true;
    }
    return false;
}

} // namespace planio

namespace
{

using planio::hexWord;
using planio::readHex;
using planio::readI64;
using planio::readName;
using planio::readU64;
using planio::sanitizeName;
using planio::wordBits;
using planio::wordFromBits;

const char *
placementName(PlacementLevel l)
{
    return l == PlacementLevel::NearHost ? "nearhost" : "llc";
}

PlacementLevel
placementFromName(const std::string &s)
{
    if (s == "llc")
        return PlacementLevel::Llc;
    if (s == "nearhost")
        return PlacementLevel::NearHost;
    fatal("plan text: unknown placement level '%s'", s.c_str());
}

const char *
microKindName(MicroKind k)
{
    switch (k) {
      case MicroKind::Alu: return "alu";
      case MicroKind::LoadStream: return "loadstream";
      case MicroKind::StoreStream: return "storestream";
      case MicroKind::LoadIdx: return "loadidx";
      case MicroKind::StoreIdx: return "storeidx";
      case MicroKind::Consume: return "consume";
      case MicroKind::Produce: return "produce";
      case MicroKind::CarryWrite: return "carrywrite";
      default: panic("bad micro kind %d", static_cast<int>(k));
    }
}

MicroKind
microKindFromName(const std::string &s)
{
    for (int k = 0; k <= static_cast<int>(MicroKind::CarryWrite); ++k) {
        if (s == microKindName(static_cast<MicroKind>(k)))
            return static_cast<MicroKind>(k);
    }
    fatal("plan text: unknown micro kind '%s'", s.c_str());
}

DfgClass
dfgClassFromName(const std::string &s)
{
    for (int c = 0; c <= static_cast<int>(DfgClass::NonPartitionable);
         ++c) {
        if (s == dfgClassName(static_cast<DfgClass>(c)))
            return static_cast<DfgClass>(c);
    }
    fatal("plan text: unknown DFG class '%s'", s.c_str());
}

VerifyMode
verifyModeFromName(const std::string &s)
{
    const VerifyMode all[] = {VerifyMode::Off, VerifyMode::Warn,
                              VerifyMode::Error};
    for (VerifyMode m : all) {
        if (s == verifyModeName(m))
            return m;
    }
    fatal("plan text: unknown verify mode '%s'", s.c_str());
}

/** %.17g: shortest text that always round-trips binary64 exactly. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

double
readDouble(std::istringstream &in, const char *what)
{
    double v;
    if (!(in >> v))
        fatal("plan text: bad double field %s", what);
    return v;
}

void
writeOptionsLine(std::ostream &out, const CompileOptions &opts)
{
    out << "options " << (opts.partition ? 1 : 0) << ' '
        << (opts.swPrefetch ? 1 : 0) << ' '
        << (opts.enableCombining ? 1 : 0) << ' ' << opts.bufferBytes
        << ' ' << opts.channelCapacity << ' '
        << verifyModeName(opts.verifyPlans) << '\n';
}

void
writeAccessorLine(std::ostream &out, const AccessorDef &a)
{
    out << "accessor " << a.node << ' ' << a.objId << ' '
        << (a.dir == AccessDir::Store ? 'S' : 'L') << ' '
        << (a.pattern == PatternKind::Indirect ? 'I' : 'A') << ' '
        << a.affine.constBase << ' ' << a.affine.ivCoeff << ' '
        << a.affine.paramCoeffs.size();
    for (std::int64_t c : a.affine.paramCoeffs)
        out << ' ' << c;
    out << ' ' << a.elemBytes << ' ' << (a.elemIsFloat ? 1 : 0) << ' '
        << a.accessId << ' ' << a.bufferSlot << ' ' << a.combinedWithSlot
        << ' ' << a.combineDistance << '\n';
}

AccessorDef
readAccessorLine(std::istringstream &in)
{
    AccessorDef a;
    a.node = static_cast<int>(readI64(in, "accessor node"));
    a.objId = static_cast<int>(readI64(in, "accessor objId"));
    std::string dir, pat;
    in >> dir >> pat;
    if (dir != "L" && dir != "S")
        fatal("plan text: bad accessor dir '%s'", dir.c_str());
    if (pat != "A" && pat != "I")
        fatal("plan text: bad accessor pattern '%s'", pat.c_str());
    a.dir = dir == "S" ? AccessDir::Store : AccessDir::Load;
    a.pattern = pat == "I" ? PatternKind::Indirect : PatternKind::Affine;
    a.affine.constBase = readI64(in, "accessor constBase");
    a.affine.ivCoeff = readI64(in, "accessor ivCoeff");
    const std::uint64_t npc = readU64(in, "accessor paramCoeff count");
    if (npc > 64)
        fatal("plan text: absurd accessor paramCoeff count %llu",
              static_cast<unsigned long long>(npc));
    a.affine.paramCoeffs.resize(npc);
    for (std::uint64_t k = 0; k < npc; ++k)
        a.affine.paramCoeffs[k] = readI64(in, "accessor paramCoeff");
    a.elemBytes =
        static_cast<std::uint32_t>(readU64(in, "accessor elemBytes"));
    a.elemIsFloat = readI64(in, "accessor elemIsFloat") != 0;
    a.accessId = static_cast<int>(readI64(in, "accessor accessId"));
    a.bufferSlot = static_cast<int>(readI64(in, "accessor bufferSlot"));
    a.combinedWithSlot =
        static_cast<int>(readI64(in, "accessor combinedWithSlot"));
    a.combineDistance = readI64(in, "accessor combineDistance");
    return a;
}

void
writePartitionLines(std::ostream &out, const Partition &p)
{
    out << "partition " << p.id << ' ' << p.objId << ' '
        << placementName(p.level) << ' ' << p.streamBuffers << ' '
        << (p.swPrefetch ? 1 : 0) << ' ' << p.nodes.size();
    for (int n : p.nodes)
        out << ' ' << n;
    out << '\n';
    out << "inch " << p.inChannels.size();
    for (int c : p.inChannels)
        out << ' ' << c;
    out << '\n';
    out << "outch " << p.outChannels.size();
    for (int c : p.outChannels)
        out << ' ' << c;
    out << '\n';
    for (const AccessorDef &a : p.accessors)
        writeAccessorLine(out, a);
    const MicroProgram &prog = p.program;
    out << "program " << prog.numRegs << ' ' << prog.ivReg << '\n';
    for (const MicroInst &inst : prog.insts) {
        out << "inst " << microKindName(inst.kind) << ' '
            << opName(inst.op) << ' ' << inst.dst << ' ' << inst.a << ' '
            << inst.b << ' ' << inst.c << ' ' << inst.slot << '\n';
    }
    for (const auto &[param, reg] : prog.paramRegs)
        out << "preg " << param << ' ' << reg << '\n';
    for (const MicroProgram::ConstReg &cr : prog.constRegs) {
        out << "creg " << cr.reg << ' ' << hexWord(wordBits(cr.value))
            << ' ' << (cr.isFloat ? 1 : 0) << '\n';
    }
    for (const CarrySlot &cs : prog.carries) {
        out << "carry " << cs.reg << ' ' << hexWord(wordBits(cs.init))
            << ' ' << (cs.isFloat ? 1 : 0) << ' ' << cs.node << '\n';
    }
    out << "endpartition\n";
}

std::uint16_t
readReg(std::istringstream &in, const char *what)
{
    const std::uint64_t v = readU64(in, what);
    if (v > 0xffff)
        fatal("plan text: register field %s out of range", what);
    return static_cast<std::uint16_t>(v);
}

} // namespace

std::string
planFingerprint(const Kernel &kernel, const CompileOptions &opts)
{
    std::ostringstream canon;
    planio::writeKernelLines(canon, kernel);
    writeOptionsLine(canon, opts);
    const std::string text = canon.str();
    // FNV-1a 64: stable across platforms, no dependence on pointer
    // values or container layout — only on the canonical text.
    std::uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

std::string
serializePlan(const OffloadPlan &plan)
{
    std::ostringstream out;
    out << planMagic << '\n';
    out << "fingerprint "
        << (plan.fingerprint.empty()
                ? planFingerprint(plan.kernel, plan.options)
                : plan.fingerprint)
        << '\n';
    writeOptionsLine(out, plan.options);
    out << "dep " << dfgClassName(plan.dep.cls) << ' '
        << (plan.dep.hasCarry ? 1 : 0) << ' '
        << (plan.dep.hasIndirectWrite ? 1 : 0) << ' '
        << (plan.dep.hasCarriedMemDep ? 1 : 0) << ' '
        << (plan.dep.hasMemoryRecurrence ? 1 : 0) << ' '
        << plan.dep.loadChainDepth << ' ' << plan.dep.carryChainCycles
        << '\n';
    planio::writeKernelLines(out, plan.kernel);
    for (const ChannelDef &c : plan.channels) {
        out << "channel " << c.id << ' ' << c.srcPartition << ' '
            << c.dstPartition << ' ' << c.srcNode << ' ' << c.bits << ' '
            << (c.control ? 1 : 0) << '\n';
    }
    for (const Partition &p : plan.partitions)
        writePartitionLines(out, p);
    out << "mech";
    for (bool b : plan.mechanisms)
        out << ' ' << (b ? 1 : 0);
    out << '\n';
    const OffloadCharacteristics &ch = plan.characteristics;
    out << "chars " << ch.numPartitions << ' ' << ch.maxInsts << ' '
        << ch.dfgLevels << ' ' << ch.dfgWidth << ' ' << ch.maxInstBytes
        << ' ' << fmtDouble(ch.avgBuffers) << ' '
        << fmtDouble(ch.commBytesPerIter) << '\n';
    out << "end\n";
    return out.str();
}

OffloadPlan
parsePlan(const std::string &text)
{
    OffloadPlan plan;
    std::istringstream lines(text);
    std::string line;
    if (!std::getline(lines, line) || line != planMagic)
        fatal("plan artifact: bad header '%s'", line.c_str());
    planio::KernelLineReader kreader;
    Partition *part = nullptr;
    Partition pending;
    bool saw_end = false;
    bool saw_chars = false;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream in(line);
        std::string tok;
        in >> tok;
        if (tok == "end") {
            saw_end = true;
            // The document ends here; anything after it is noise a
            // caller should know about, not silently drop.
            while (std::getline(lines, line)) {
                if (!line.empty() && line[0] != '#')
                    fatal("plan artifact: trailing content after "
                          "'end': '%s'",
                          line.c_str());
            }
            break;
        }
        if (kreader.consume(tok, in))
            continue;
        if (tok == "fingerprint") {
            plan.fingerprint = readName(in, "fingerprint");
        } else if (tok == "options") {
            plan.options.partition = readI64(in, "partition") != 0;
            plan.options.swPrefetch = readI64(in, "swPrefetch") != 0;
            plan.options.enableCombining =
                readI64(in, "enableCombining") != 0;
            plan.options.bufferBytes = static_cast<std::uint32_t>(
                readU64(in, "bufferBytes"));
            plan.options.channelCapacity =
                static_cast<int>(readI64(in, "channelCapacity"));
            plan.options.verifyPlans =
                verifyModeFromName(readName(in, "verifyPlans"));
        } else if (tok == "dep") {
            plan.dep.cls = dfgClassFromName(readName(in, "dep class"));
            plan.dep.hasCarry = readI64(in, "hasCarry") != 0;
            plan.dep.hasIndirectWrite =
                readI64(in, "hasIndirectWrite") != 0;
            plan.dep.hasCarriedMemDep =
                readI64(in, "hasCarriedMemDep") != 0;
            plan.dep.hasMemoryRecurrence =
                readI64(in, "hasMemoryRecurrence") != 0;
            plan.dep.loadChainDepth =
                static_cast<int>(readI64(in, "loadChainDepth"));
            plan.dep.carryChainCycles =
                static_cast<int>(readI64(in, "carryChainCycles"));
        } else if (tok == "channel") {
            ChannelDef c;
            c.id = static_cast<int>(readI64(in, "channel id"));
            c.srcPartition =
                static_cast<int>(readI64(in, "channel srcPartition"));
            c.dstPartition =
                static_cast<int>(readI64(in, "channel dstPartition"));
            c.srcNode = static_cast<int>(readI64(in, "channel srcNode"));
            c.bits =
                static_cast<std::uint32_t>(readU64(in, "channel bits"));
            c.control = readI64(in, "channel control") != 0;
            plan.channels.push_back(c);
        } else if (tok == "partition") {
            if (part)
                fatal("plan artifact: nested partition");
            pending = Partition{};
            pending.id = static_cast<int>(readI64(in, "partition id"));
            pending.objId =
                static_cast<int>(readI64(in, "partition objId"));
            pending.level =
                placementFromName(readName(in, "partition level"));
            pending.streamBuffers =
                static_cast<int>(readI64(in, "streamBuffers"));
            pending.swPrefetch =
                readI64(in, "partition swPrefetch") != 0;
            const std::uint64_t nn = readU64(in, "partition node count");
            if (nn > 100000)
                fatal("plan artifact: absurd partition node count");
            for (std::uint64_t i = 0; i < nn; ++i) {
                pending.nodes.push_back(
                    static_cast<int>(readI64(in, "partition node")));
            }
            part = &pending;
        } else if (tok == "inch" || tok == "outch") {
            if (!part)
                fatal("plan artifact: %s outside partition",
                      tok.c_str());
            std::vector<int> &dst =
                tok == "inch" ? part->inChannels : part->outChannels;
            const std::uint64_t nc = readU64(in, "channel-list count");
            if (nc > 100000)
                fatal("plan artifact: absurd channel-list count");
            for (std::uint64_t i = 0; i < nc; ++i) {
                dst.push_back(
                    static_cast<int>(readI64(in, "channel-list id")));
            }
        } else if (tok == "accessor") {
            if (!part)
                fatal("plan artifact: accessor outside partition");
            part->accessors.push_back(readAccessorLine(in));
        } else if (tok == "program") {
            if (!part)
                fatal("plan artifact: program outside partition");
            part->program.numRegs =
                static_cast<int>(readI64(in, "program numRegs"));
            part->program.ivReg = readReg(in, "program ivReg");
        } else if (tok == "inst") {
            if (!part)
                fatal("plan artifact: inst outside partition");
            MicroInst inst;
            inst.kind = microKindFromName(readName(in, "inst kind"));
            inst.op = planio::opFromName(readName(in, "inst op"));
            inst.dst = readReg(in, "inst dst");
            inst.a = readReg(in, "inst a");
            inst.b = readReg(in, "inst b");
            inst.c = readReg(in, "inst c");
            inst.slot = static_cast<std::int32_t>(
                readI64(in, "inst slot"));
            part->program.insts.push_back(inst);
        } else if (tok == "preg") {
            if (!part)
                fatal("plan artifact: preg outside partition");
            const int param =
                static_cast<int>(readI64(in, "preg param"));
            part->program.paramRegs.emplace_back(
                param, readReg(in, "preg reg"));
        } else if (tok == "creg") {
            if (!part)
                fatal("plan artifact: creg outside partition");
            MicroProgram::ConstReg cr;
            cr.reg = readReg(in, "creg reg");
            cr.value = wordFromBits(readHex(in, "creg value"));
            cr.isFloat = readI64(in, "creg isFloat") != 0;
            part->program.constRegs.push_back(cr);
        } else if (tok == "carry") {
            if (!part)
                fatal("plan artifact: carry outside partition");
            CarrySlot cs;
            cs.reg = readReg(in, "carry reg");
            cs.init = wordFromBits(readHex(in, "carry init"));
            cs.isFloat = readI64(in, "carry isFloat") != 0;
            cs.node = static_cast<int>(readI64(in, "carry node"));
            part->program.carries.push_back(cs);
        } else if (tok == "endpartition") {
            if (!part)
                fatal("plan artifact: endpartition without partition");
            plan.partitions.push_back(std::move(pending));
            part = nullptr;
        } else if (tok == "mech") {
            for (bool &b : plan.mechanisms)
                b = readI64(in, "mech bit") != 0;
        } else if (tok == "chars") {
            OffloadCharacteristics &ch = plan.characteristics;
            ch.numPartitions =
                static_cast<int>(readI64(in, "numPartitions"));
            ch.maxInsts = static_cast<int>(readI64(in, "maxInsts"));
            ch.dfgLevels = static_cast<int>(readI64(in, "dfgLevels"));
            ch.dfgWidth = static_cast<int>(readI64(in, "dfgWidth"));
            ch.maxInstBytes =
                static_cast<int>(readI64(in, "maxInstBytes"));
            ch.avgBuffers = readDouble(in, "avgBuffers");
            ch.commBytesPerIter = readDouble(in, "commBytesPerIter");
            saw_chars = true;
        } else {
            fatal("plan artifact: unknown line '%s'", line.c_str());
        }
    }
    if (part || kreader.inKernel())
        fatal("plan artifact: unterminated section");
    if (!saw_end)
        fatal("plan artifact: missing end marker");
    if (kreader.kernels.size() != 1)
        fatal("plan artifact: expected exactly one kernel, got %zu",
              kreader.kernels.size());
    if (!saw_chars)
        fatal("plan artifact: missing chars line");
    if (plan.fingerprint.empty())
        fatal("plan artifact: missing fingerprint");
    plan.kernel = std::move(kreader.kernels.front());
    return plan;
}

namespace
{

std::string
checkKernel(const Kernel &k)
{
    std::string err;
    {
        ScopedFailureCapture capture;
        try {
            k.verify();
        } catch (const SimFailure &f) {
            err = f.what();
        }
    }
    return err;
}

} // namespace

std::string
validatePlanArtifact(const OffloadPlan &plan)
{
    const std::string kerr = checkKernel(plan.kernel);
    if (!kerr.empty())
        return strfmt("kernel malformed: %s", kerr.c_str());
    const std::string fp =
        planFingerprint(plan.kernel, plan.options);
    if (plan.fingerprint != fp) {
        return strfmt("fingerprint mismatch: recorded %s, content %s",
                      plan.fingerprint.c_str(), fp.c_str());
    }
    const int num_nodes = static_cast<int>(plan.kernel.nodes.size());
    const int num_parts = static_cast<int>(plan.partitions.size());
    const int num_chans = static_cast<int>(plan.channels.size());
    std::vector<int> node_home(static_cast<std::size_t>(num_nodes), -1);
    for (int pi = 0; pi < num_parts; ++pi) {
        const Partition &p =
            plan.partitions[static_cast<std::size_t>(pi)];
        if (p.id != pi)
            return strfmt("partition %d has id %d (want dense ids)", pi,
                          p.id);
        for (int n : p.nodes) {
            if (n < 0 || n >= num_nodes)
                return strfmt("partition %d maps unknown node %d", pi,
                              n);
            if (node_home[static_cast<std::size_t>(n)] >= 0)
                return strfmt("node %d mapped to partitions %d and %d",
                              n, node_home[static_cast<std::size_t>(n)],
                              pi);
            node_home[static_cast<std::size_t>(n)] = pi;
        }
        for (int c : p.inChannels) {
            if (c < 0 || c >= num_chans)
                return strfmt("partition %d consumes unknown channel "
                              "%d", pi, c);
        }
        for (int c : p.outChannels) {
            if (c < 0 || c >= num_chans)
                return strfmt("partition %d produces unknown channel "
                              "%d", pi, c);
        }
        for (const AccessorDef &a : p.accessors) {
            if (a.node < 0 || a.node >= num_nodes)
                return strfmt("partition %d accessor on unknown node "
                              "%d", pi, a.node);
            bool obj_known = false;
            for (const MemObjectDecl &o : plan.kernel.objects)
                obj_known = obj_known || o.id == a.objId;
            if (!obj_known)
                return strfmt("partition %d accessor on unknown object "
                              "%d", pi, a.objId);
        }
        const MicroProgram &prog = p.program;
        const auto reg_ok = [&prog](std::uint16_t r) {
            return r == noReg || static_cast<int>(r) < prog.numRegs;
        };
        if (prog.ivReg != noReg && !reg_ok(prog.ivReg))
            return strfmt("partition %d ivReg out of range", pi);
        for (std::size_t ii = 0; ii < prog.insts.size(); ++ii) {
            const MicroInst &inst = prog.insts[ii];
            if (!reg_ok(inst.dst) || !reg_ok(inst.a) ||
                !reg_ok(inst.b) || !reg_ok(inst.c)) {
                return strfmt("partition %d inst %zu references a "
                              "register >= numRegs (%d)", pi, ii,
                              prog.numRegs);
            }
            std::size_t limit = 0;
            bool needs_slot = true;
            switch (inst.kind) {
              case MicroKind::LoadStream:
              case MicroKind::StoreStream:
              case MicroKind::LoadIdx:
              case MicroKind::StoreIdx:
                limit = p.accessors.size();
                break;
              case MicroKind::Consume:
                limit = p.inChannels.size();
                break;
              case MicroKind::Produce:
                limit = p.outChannels.size();
                break;
              case MicroKind::CarryWrite:
                limit = prog.carries.size();
                break;
              default:
                needs_slot = false;
                break;
            }
            if (needs_slot &&
                (inst.slot < 0 ||
                 static_cast<std::size_t>(inst.slot) >= limit)) {
                return strfmt("partition %d inst %zu slot %d out of "
                              "range (limit %zu)", pi, ii, inst.slot,
                              limit);
            }
        }
        for (const auto &[param, reg] : prog.paramRegs) {
            if (param < 0 ||
                static_cast<std::size_t>(param) >=
                    plan.kernel.paramNames.size())
                return strfmt("partition %d preloads unknown param %d",
                              pi, param);
            if (!reg_ok(reg) || reg == noReg)
                return strfmt("partition %d param preload register out "
                              "of range", pi);
        }
        for (const MicroProgram::ConstReg &cr : prog.constRegs) {
            if (!reg_ok(cr.reg) || cr.reg == noReg)
                return strfmt("partition %d const preload register out "
                              "of range", pi);
        }
        for (const CarrySlot &cs : prog.carries) {
            if (!reg_ok(cs.reg) || cs.reg == noReg)
                return strfmt("partition %d carry register out of "
                              "range", pi);
            if (cs.node < 0 || cs.node >= num_nodes)
                return strfmt("partition %d carry on unknown node %d",
                              pi, cs.node);
        }
    }
    for (const ChannelDef &c : plan.channels) {
        if (c.srcPartition < 0 || c.srcPartition >= num_parts)
            return strfmt("channel %d has unknown source partition %d",
                          c.id, c.srcPartition);
        if (c.dstPartition < -1 || c.dstPartition >= num_parts)
            return strfmt("channel %d has unknown dest partition %d",
                          c.id, c.dstPartition);
        if (c.srcNode != noNode &&
            (c.srcNode < 0 || c.srcNode >= num_nodes))
            return strfmt("channel %d sourced by unknown node %d", c.id,
                          c.srcNode);
        if (c.bits == 0)
            return strfmt("channel %d has zero width", c.id);
    }
    const OffloadCharacteristics &ch = plan.characteristics;
    if (ch.numPartitions != num_parts)
        return strfmt("characteristics claim %d partitions, plan has "
                      "%d", ch.numPartitions, num_parts);
    if (ch.maxInstBytes !=
        ch.maxInsts * static_cast<int>(microInstBytes))
        return strfmt("characteristics insts(B) %d != 8 * %d",
                      ch.maxInstBytes, ch.maxInsts);
    int max_insts = 0;
    for (const Partition &p : plan.partitions) {
        max_insts = std::max(
            max_insts, static_cast<int>(p.program.insts.size()));
    }
    if (ch.maxInsts != max_insts)
        return strfmt("characteristics claim max %d insts, programs "
                      "have %d", ch.maxInsts, max_insts);
    return {};
}

std::string
planArtifactFile(const std::string &kernel_name,
                 const std::string &fingerprint)
{
    std::string stem = sanitizeName(kernel_name);
    for (char &c : stem) {
        if (c == '/' || c == '\\')
            c = '-';
    }
    return stem + "-" + fingerprint + ".plan";
}

void
savePlan(const OffloadPlan &plan, const std::string &path)
{
    // Temp-file + rename: concurrent sweep jobs dumping the same
    // fingerprint must never expose a torn artifact.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out)
            fatal("cannot write plan artifact '%s'", tmp.c_str());
        out << serializePlan(plan);
        if (!out.good())
            fatal("write to plan artifact '%s' failed", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename plan artifact into '%s'", path.c_str());
}

OffloadPlan
loadPlan(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read plan artifact '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return parsePlan(buf.str());
}

} // namespace distda::compiler
