/**
 * @file
 * The compiler's output: an OffloadPlan holding the distributed
 * accelerator definitions (Fig 3-4) — partitions with their accessors,
 * channels, placement hints, microcode and interface-mechanism
 * coverage — ready for the runtime to allocate and run.
 */

#ifndef DISTDA_COMPILER_PLAN_HH
#define DISTDA_COMPILER_PLAN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/compiler/dfg.hh"
#include "src/compiler/microcode.hh"

namespace distda::compiler
{

/** §V-A-2's conservative DFG classification. */
enum class DfgClass : std::uint8_t
{
    Parallelizable,    ///< case 1: no loop-carried dependences
    Pipelinable,       ///< case 3: carried deps / irregular writes
    NonPartitionable,  ///< case 2: memory recurrence (serialize)
};

const char *dfgClassName(DfgClass c);

/** Dependence analysis result. */
struct DependenceInfo
{
    DfgClass cls = DfgClass::Parallelizable;
    bool hasCarry = false;
    bool hasIndirectWrite = false;
    bool hasCarriedMemDep = false;
    bool hasMemoryRecurrence = false;
    /** Chain depth of dependent loads inside one iteration. */
    int loadChainDepth = 1;
    /**
     * Latency (host cycles) of the longest loop-carried compute
     * recurrence: FP ops ~3 cycles, complex ops ~8, integer 1. An
     * out-of-order window cannot overlap iterations through this
     * chain, so it floors per-iteration time.
     */
    int carryChainCycles = 0;
};

/** Vertical placement preference for a partition (§V-A-4). */
enum class PlacementLevel : std::uint8_t
{
    Llc,       ///< long strided accesses: place at the L3 cluster
    NearHost,  ///< short irregular accesses: place near the host
};

/** One specialized accessor mapped onto an access unit. */
struct AccessorDef
{
    int node = noNode;            ///< originating DFG access node
    int objId = -1;
    AccessDir dir = AccessDir::Load;
    PatternKind pattern = PatternKind::Affine;
    AffinePattern affine;
    std::uint32_t elemBytes = 8;
    bool elemIsFloat = false;

    int accessId = -1;   ///< interface-level access-id
    int bufferSlot = -1; ///< stream buffer slot (-1: random access path)
    /**
     * Reuse combining (Fig 2d): when >= 0, this accessor is a follower
     * tap on the leader's buffer (constant access distance within the
     * buffer window) and generates no memory traffic of its own.
     */
    int combinedWithSlot = -1;
    std::int64_t combineDistance = 0; ///< elements behind the leader
};

/** A dataflow channel between two partitions (or to the host). */
struct ChannelDef
{
    int id = -1;
    int srcPartition = -1;
    int dstPartition = -1;  ///< -1 means the host consumes (done/result)
    int srcNode = noNode;   ///< producing DFG node
    std::uint32_t bits = 64;
    bool control = false;   ///< predicate/bound traffic (acc_ctrl class)
};

/** One distributed accelerator definition. */
struct Partition
{
    int id = -1;
    int objId = -1; ///< the (at most one) memory object; -1 compute-only
    std::vector<int> nodes;          ///< DFG nodes mapped here
    std::vector<AccessorDef> accessors;
    std::vector<int> inChannels;     ///< ChannelDef ids consumed
    std::vector<int> outChannels;    ///< ChannelDef ids produced
    PlacementLevel level = PlacementLevel::Llc;
    MicroProgram program;
    int streamBuffers = 0;           ///< Table VI #buf
    bool swPrefetch = false;         ///< +SW optimization flag
};

/** Table V mechanism-coverage bits. */
enum class Mechanism : std::uint8_t
{
    CpProduce, CpConsume, CpWrite, CpRead, CpStep,
    CpFillBuf, CpDrainBuf, CpFillRa, CpDrainRa,
    CpConfig, CpConfigStream, CpConfigRandom,
    CpSetRf, CpLoadRf, CpRun,
    NumMechanisms
};

const char *mechanismName(Mechanism m);

using MechanismSet =
    std::array<bool, static_cast<std::size_t>(Mechanism::NumMechanisms)>;

/** Per-kernel offload characteristics feeding Table VI. */
struct OffloadCharacteristics
{
    int numPartitions = 0;
    int maxInsts = 0;            ///< max static insts in one partition
    int dfgLevels = 0;           ///< topological depth
    int dfgWidth = 0;            ///< max nodes per level
    int maxInstBytes = 0;        ///< 8 * maxInsts
    double avgBuffers = 0.0;     ///< Table VI #buf
    double commBytesPerIter = 0.0; ///< partition cut cost
};

/** What to do with static-verification findings after codegen. */
enum class VerifyMode : std::uint8_t
{
    Off,   ///< skip verification entirely
    Warn,  ///< report all findings via warn(), never stop
    Error, ///< report findings; panic when any error is found
};

const char *verifyModeName(VerifyMode m);

/** Options steering compilation. */
struct CompileOptions
{
    bool partition = true;        ///< false: monolithic (Mono-*)
    bool swPrefetch = false;      ///< +SW: issue software prefetches
    bool enableCombining = true;  ///< Fig 2d multi-access combining
    std::uint32_t bufferBytes = 4096; ///< access-unit buffer capacity
    int channelCapacity = 64;     ///< decoupling depth in elements
    /** Post-codegen static verification (src/verify) disposition. */
    VerifyMode verifyPlans = VerifyMode::Error;
};

/** The complete compiled offload. */
struct OffloadPlan
{
    Kernel kernel;
    DependenceInfo dep;
    std::vector<Partition> partitions;
    std::vector<ChannelDef> channels;
    MechanismSet mechanisms{};
    OffloadCharacteristics characteristics;

    /** The options this plan was compiled under (round-trips with the
     * artifact, so analyses can verify a deserialized plan against the
     * engine parameters it was actually built for). */
    CompileOptions options;
    /**
     * Stable content fingerprint over (canonicalized kernel, options):
     * 16 lowercase hex digits, computed by compiler::planFingerprint.
     * Identical inputs always produce identical fingerprints, so it is
     * the PlanCache key and the artifact-file stem.
     */
    std::string fingerprint;

    const Partition &partitionOf(int node) const;
    /** Partition index containing DFG node @p node (-1 if none). */
    int partitionIndexOf(int node) const;
};

/** Full pipeline: classify, partition, place, specialize, codegen. */
OffloadPlan compileKernel(const Kernel &kernel,
                          const CompileOptions &opts = CompileOptions{});

} // namespace distda::compiler

#endif // DISTDA_COMPILER_PLAN_HH
