/**
 * @file
 * Serializable Plan artifacts: a versioned, line-oriented text
 * round-trip of OffloadPlan in the style of the fuzz `.repro` format,
 * plus the stable content fingerprint that keys the process-wide
 * PlanCache and names artifact files.
 *
 * The format is exact: serializePlan(parsePlan(serializePlan(p)))
 * is byte-identical to serializePlan(p). Doubles are printed with
 * %.17g (lossless for IEEE-754 binary64) and Word values as 16-digit
 * hex bit patterns, so a deserialized plan — never touched by a live
 * engine — instantiates and runs identically to a freshly compiled
 * one. The differential fuzzer's replan leg enforces this per case.
 *
 * The kernel-line sub-format (kernel/loop/kobject/kparam/node/result/
 * endkernel) is shared verbatim with the fuzz reproducer writer in
 * src/fuzz/case.cc through the planio helpers below, so committed
 * `.repro` corpus files stay byte-identical.
 */

#ifndef DISTDA_COMPILER_PLAN_IO_HH
#define DISTDA_COMPILER_PLAN_IO_HH

#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

#include "src/compiler/plan.hh"

namespace distda::compiler
{

/** First line of every plan artifact; bump on format changes. */
constexpr const char *planMagic = "distda-plan v1";

/**
 * Stable content fingerprint of (canonicalized kernel, options):
 * 16 lowercase hex digits (FNV-1a 64 over the canonical kernel text
 * and every CompileOptions field). Two compiles agree on the
 * fingerprint iff they would produce the same plan, which makes it
 * safe as a cache key and as the artifact-file stem.
 */
std::string planFingerprint(const Kernel &kernel,
                            const CompileOptions &opts);

/** Serialize @p plan to the versioned text artifact. */
std::string serializePlan(const OffloadPlan &plan);

/** Parse an artifact; fatal() on malformed or truncated input. */
OffloadPlan parsePlan(const std::string &text);

/**
 * Structural validation of a (possibly deserialized) plan: kernel
 * well-formedness, partition/channel/accessor/microcode cross
 * references, characteristics consistency, and that the recorded
 * fingerprint matches the recomputed one. Returns an empty string
 * when the plan is sound, else a one-line description of the first
 * defect found.
 */
std::string validatePlanArtifact(const OffloadPlan &plan);

/**
 * Artifact file name for a kernel under a --plan-dir:
 * "<sanitized-kernel-name>-<fingerprint>.plan". The fingerprint in
 * the name makes stale artifacts (kernel or options changed) simply
 * miss instead of loading wrong plans.
 */
std::string planArtifactFile(const std::string &kernel_name,
                             const std::string &fingerprint);

/** Write @p plan to @p path atomically (temp file + rename). */
void savePlan(const OffloadPlan &plan, const std::string &path);

/** Load and parse an artifact file; fatal() on I/O or parse errors. */
OffloadPlan loadPlan(const std::string &path);

/**
 * The kernel-line sub-format shared between plan artifacts and fuzz
 * `.repro` files: low-level token readers/writers plus a line-dispatch
 * reader that both parsers feed.
 */
namespace planio
{

const char *kindName(NodeKind k);
NodeKind kindFromName(const std::string &s);
OpCode opFromName(const std::string &s);

/** Names are labels only; keep them one whitespace-free token. */
std::string sanitizeName(const std::string &name);

std::string readName(std::istringstream &in, const char *what);
std::int64_t readI64(std::istringstream &in, const char *what);
std::uint64_t readU64(std::istringstream &in, const char *what);
std::uint64_t readHex(std::istringstream &in, const char *what);

std::uint64_t wordBits(Word w);
Word wordFromBits(std::uint64_t u);

/** "0x%016x" rendering of a Word bit pattern. */
std::string hexWord(std::uint64_t bits);

void writeNode(std::ostream &out, const Node &n);
Node readNode(std::istringstream &in);

/** Emit the full kernel section (kernel .. endkernel lines). */
void writeKernelLines(std::ostream &out, const Kernel &k);

/**
 * Incremental reader for kernel sections inside a larger line-based
 * document. Feed it each line's leading token: it consumes the tokens
 * of the kernel sub-format and appends to @ref kernels at every
 * endkernel; any other token is left to the caller.
 */
class KernelLineReader
{
  public:
    /** True iff @p tok belonged to the kernel sub-format (consumed). */
    bool consume(const std::string &tok, std::istringstream &in);

    /** True while between "kernel" and its "endkernel". */
    bool inKernel() const { return _active; }

    std::vector<Kernel> kernels;

  private:
    Kernel _pending;
    bool _active = false;
};

} // namespace planio

} // namespace distda::compiler

#endif // DISTDA_COMPILER_PLAN_IO_HH
