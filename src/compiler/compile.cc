/**
 * @file
 * The compilation pipeline of Fig 6: DFG classification, constraint
 * grouping (object clustering and carry cycles), Metis-style
 * partitioning, access-node placement, access specialization with
 * multi-access combining, and microcode generation.
 */

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <set>

#include "src/mem/addr.hh"

#include "src/compiler/classify.hh"
#include "src/compiler/partitioner.hh"
#include "src/compiler/plan.hh"
#include "src/compiler/plan_io.hh"
#include "src/sim/logging.hh"
#include "src/verify/verify.hh"

namespace distda::compiler
{

const char *
dfgClassName(DfgClass c)
{
    switch (c) {
      case DfgClass::Parallelizable: return "parallelizable";
      case DfgClass::Pipelinable: return "pipelinable";
      case DfgClass::NonPartitionable: return "non-partitionable";
      default: return "?";
    }
}

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::CpProduce: return "cp_produce";
      case Mechanism::CpConsume: return "cp_consume";
      case Mechanism::CpWrite: return "cp_write";
      case Mechanism::CpRead: return "cp_read";
      case Mechanism::CpStep: return "cp_step";
      case Mechanism::CpFillBuf: return "cp_fill_buf";
      case Mechanism::CpDrainBuf: return "cp_drain_buf";
      case Mechanism::CpFillRa: return "cp_fill_ra";
      case Mechanism::CpDrainRa: return "cp_drain_ra";
      case Mechanism::CpConfig: return "cp_config";
      case Mechanism::CpConfigStream: return "cp_config_stream";
      case Mechanism::CpConfigRandom: return "cp_config_random";
      case Mechanism::CpSetRf: return "cp_set_rf";
      case Mechanism::CpLoadRf: return "cp_load_rf";
      case Mechanism::CpRun: return "cp_run";
      default: return "?";
    }
}

const char *
verifyModeName(VerifyMode m)
{
    switch (m) {
      case VerifyMode::Off: return "off";
      case VerifyMode::Warn: return "warn";
      case VerifyMode::Error: return "error";
      default: return "?";
    }
}

const Partition &
OffloadPlan::partitionOf(int node) const
{
    const int idx = partitionIndexOf(node);
    DISTDA_ASSERT(idx >= 0, "node %d not in any partition", node);
    return partitions[static_cast<std::size_t>(idx)];
}

int
OffloadPlan::partitionIndexOf(int node) const
{
    for (const Partition &p : partitions) {
        if (std::find(p.nodes.begin(), p.nodes.end(), node) !=
            p.nodes.end())
            return p.id;
    }
    return -1;
}

namespace
{

/** Union-find over kernel nodes. */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n) : _parent(n)
    {
        std::iota(_parent.begin(), _parent.end(), 0);
    }

    int
    find(int x)
    {
        while (_parent[static_cast<std::size_t>(x)] != x) {
            _parent[static_cast<std::size_t>(x)] =
                _parent[static_cast<std::size_t>(
                    _parent[static_cast<std::size_t>(x)])];
            x = _parent[static_cast<std::size_t>(x)];
        }
        return x;
    }

    void
    merge(int a, int b)
    {
        _parent[static_cast<std::size_t>(find(a))] = find(b);
    }

  private:
    std::vector<int> _parent;
};

/** True when a value of this node kind replicates for free. */
bool
replicable(NodeKind kind)
{
    return kind == NodeKind::ConstInt || kind == NodeKind::ConstFloat ||
           kind == NodeKind::Param || kind == NodeKind::IndVar ||
           kind == NodeKind::MemObject;
}

/**
 * Grouping constraints (§IV-A, §III): all accessors of one object
 * cluster with that object (the per-object serializing point), and
 * every carry cycle stays within one partition so no cross-partition
 * back-edge arises.
 */
UnionFind
buildGroups(const Kernel &kernel)
{
    UnionFind uf(kernel.nodes.size());

    for (const MemObjectDecl &obj : kernel.objects) {
        int obj_node = noNode;
        for (const Node &n : kernel.nodes) {
            if (n.kind == NodeKind::MemObject && n.objId == obj.id)
                obj_node = n.id;
        }
        for (int a : kernel.accessesOf(obj.id))
            uf.merge(obj_node, a);
    }

    for (const Node &n : kernel.nodes) {
        if (n.kind != NodeKind::Carry || n.carryUpdate == noNode)
            continue;
        // Nodes on a path carry -> ... -> update form the recurrence
        // cycle: X depends on the carry and the update depends on X.
        for (const Node &x : kernel.nodes) {
            if (x.id == n.id)
                continue;
            if (dependsOn(kernel, x.id, n.id) &&
                dependsOn(kernel, n.carryUpdate, x.id))
                uf.merge(n.id, x.id);
        }
        uf.merge(n.id, n.carryUpdate);
    }
    return uf;
}

/** Bytes communicated per iteration for one value edge. */
double
edgeBytes(const Node &producer)
{
    return static_cast<double>(producer.bits) / 8.0;
}

} // namespace

OffloadPlan
compileKernel(const Kernel &kernel, const CompileOptions &opts)
{
    kernel.verify();

    OffloadPlan plan;
    plan.kernel = kernel;
    plan.options = opts;
    plan.fingerprint = planFingerprint(kernel, opts);
    plan.dep = classifyKernel(kernel);

    const std::size_t n = kernel.nodes.size();
    UnionFind uf = buildGroups(kernel);

    // --- Build the partitioning graph over constraint groups. ---
    std::map<int, int> root_to_vertex;
    PartitionGraph graph;
    std::vector<int> node_vertex(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
        const int root = uf.find(static_cast<int>(i));
        auto it = root_to_vertex.find(root);
        if (it == root_to_vertex.end()) {
            const int v = graph.addVertex(0.0, -1);
            it = root_to_vertex.emplace(root, v).first;
        }
        node_vertex[i] = it->second;
        auto &vtx =
            graph.vertices[static_cast<std::size_t>(it->second)];
        vtx.weight += 1.0;
        const Node &node = kernel.nodes[i];
        if (node.kind == NodeKind::MemObject && vtx.objId < 0)
            vtx.objId = node.objId;
    }
    for (const Node &node : kernel.nodes) {
        for (int in : node.valueInputs()) {
            if (replicable(kernel.node(in).kind))
                continue;
            const int va = node_vertex[static_cast<std::size_t>(in)];
            const int vb = node_vertex[static_cast<std::size_t>(node.id)];
            if (va != vb)
                graph.addEdge(va, vb, edgeBytes(kernel.node(in)));
        }
    }

    // --- Partition (Mono configurations and case-2 DFGs skip it). ---
    std::vector<int> vertex_part(graph.vertices.size(), 0);
    if (opts.partition && plan.dep.cls != DfgClass::NonPartitionable &&
        graph.numObjects() > 1) {
        PartitionSolution sol = sweepPartition(graph);
        vertex_part = sol.assignment;
    }

    // Renumber to dense partition ids in first-use order.
    std::map<int, int> dense;
    std::vector<int> node_part(n, -1);
    for (int id : kernel.topoOrder()) {
        const int raw =
            vertex_part[static_cast<std::size_t>(
                node_vertex[static_cast<std::size_t>(id)])];
        auto it = dense.find(raw);
        if (it == dense.end())
            it = dense.emplace(raw, static_cast<int>(dense.size())).first;
        node_part[static_cast<std::size_t>(id)] = it->second;
    }
    const int num_parts = static_cast<int>(dense.size());

    plan.partitions.resize(static_cast<std::size_t>(num_parts));
    for (int p = 0; p < num_parts; ++p)
        plan.partitions[static_cast<std::size_t>(p)].id = p;
    for (int id : kernel.topoOrder()) {
        plan.partitions[static_cast<std::size_t>(
                            node_part[static_cast<std::size_t>(id)])]
            .nodes.push_back(id);
    }

    // Partition object id: the object with the most accesses mapped
    // here (used for home-cluster placement).
    for (Partition &part : plan.partitions) {
        std::map<int, int> access_count;
        for (int id : part.nodes) {
            const Node &node = kernel.node(id);
            if (node.kind == NodeKind::Access)
                ++access_count[node.objId];
        }
        int best = -1, best_count = 0;
        for (const auto &[obj, count] : access_count) {
            if (count > best_count) {
                best_count = count;
                best = obj;
            }
        }
        part.objId = best;
    }

    // --- Channels for cross-partition value edges. ---
    std::map<std::pair<int, int>, int> channel_ids; // (srcNode, dstPart)
    auto users = kernel.userLists();
    auto channel_for = [&](int src_node, int dst_part) -> int {
        auto key = std::make_pair(src_node, dst_part);
        auto it = channel_ids.find(key);
        if (it != channel_ids.end())
            return it->second;
        ChannelDef ch;
        ch.id = static_cast<int>(plan.channels.size());
        ch.srcPartition = node_part[static_cast<std::size_t>(src_node)];
        ch.dstPartition = dst_part;
        ch.srcNode = src_node;
        ch.bits = kernel.node(src_node).bits;
        ch.control = true; // refined below: data once any non-pred use
        plan.channels.push_back(ch);
        channel_ids[key] = ch.id;
        plan.partitions[static_cast<std::size_t>(ch.srcPartition)]
            .outChannels.push_back(ch.id);
        plan.partitions[static_cast<std::size_t>(dst_part)]
            .inChannels.push_back(ch.id);
        return ch.id;
    };

    for (const Node &node : kernel.nodes) {
        const int dst_part =
            node_part[static_cast<std::size_t>(node.id)];
        auto classify_use = [&](int in, bool pred_use) {
            if (in == noNode || replicable(kernel.node(in).kind))
                return;
            const int src_part =
                node_part[static_cast<std::size_t>(in)];
            if (src_part == dst_part)
                return;
            const int ch = channel_for(in, dst_part);
            if (!pred_use)
                plan.channels[static_cast<std::size_t>(ch)].control =
                    false;
        };
        if (node.kind == NodeKind::Access) {
            classify_use(node.addrInput, false);
            classify_use(node.valueInput, false);
            classify_use(node.predInput, true);
        } else if (node.kind == NodeKind::Compute) {
            classify_use(node.inputA, false);
            classify_use(node.inputB, false);
            classify_use(node.inputC, false);
        } else if (node.kind == NodeKind::Carry &&
                   node.carryUpdate != noNode) {
            classify_use(node.carryUpdate, false);
        }
    }

    // --- Placement (§V-A-4): vertical level per partition. ---
    for (Partition &part : plan.partitions) {
        bool has_large_stream = false;
        bool has_irregular = false;
        std::uint64_t irregular_footprint = 0;
        for (int id : part.nodes) {
            const Node &node = kernel.node(id);
            if (node.kind != NodeKind::Access)
                continue;
            const MemObjectDecl &obj =
                kernel.objects[static_cast<std::size_t>(node.objId)];
            if (node.pattern == PatternKind::Affine &&
                node.affine.ivCoeff != 0) {
                has_large_stream = true;
            } else if (node.pattern == PatternKind::Indirect) {
                has_irregular = true;
                irregular_footprint = std::max(
                    irregular_footprint,
                    obj.elemCount * obj.elemBytes);
            }
        }
        // Long strided accesses anchor at the LLC; short irregular
        // sequences stay near the host where offload control is cheap.
        if (!has_large_stream && has_irregular &&
            irregular_footprint <= 64 * 1024) {
            part.level = PlacementLevel::NearHost;
        } else {
            part.level = PlacementLevel::Llc;
        }
        part.swPrefetch = opts.swPrefetch;
    }

    // --- Access specialization with multi-access combining. ---
    int next_access_id = 0;
    for (Partition &part : plan.partitions) {
        // Collect accessors in topological (program) order.
        for (int id : part.nodes) {
            const Node &node = kernel.node(id);
            if (node.kind != NodeKind::Access)
                continue;
            const MemObjectDecl &obj =
                kernel.objects[static_cast<std::size_t>(node.objId)];
            AccessorDef ad;
            ad.node = id;
            ad.objId = node.objId;
            ad.dir = node.dir;
            ad.pattern = node.pattern;
            ad.affine = node.affine;
            ad.elemBytes = obj.elemBytes;
            ad.elemIsFloat = obj.isFloat;
            ad.accessId = next_access_id++;
            part.accessors.push_back(ad);
        }

        // Multi-access combining (Fig 2d): affine accesses on one
        // object with equal strides and a constant access distance
        // within the buffer window share one buffer — loads and stores
        // alike, so a read-modify-write of a window lives in one
        // buffer. The leader (the tap that reaches each element first)
        // drives the fill FSM; followers are taps behind it.
        int next_slot = 0;
        std::vector<bool> handled(part.accessors.size(), false);
        for (std::size_t i = 0; i < part.accessors.size(); ++i) {
            AccessorDef &a = part.accessors[i];
            if (handled[i])
                continue;
            if (a.pattern != PatternKind::Affine) {
                handled[i] = true;
                continue; // random-access path; no stream buffer
            }
            // Collect the stride-equal group on this object.
            std::vector<std::size_t> group{i};
            for (std::size_t j = i + 1; j < part.accessors.size(); ++j) {
                const AccessorDef &b = part.accessors[j];
                if (handled[j] || b.pattern != PatternKind::Affine)
                    continue;
                if (b.objId != a.objId)
                    continue;
                if (!b.affine.sameStrideAs(a.affine))
                    continue;
                group.push_back(j);
            }
            // Leader: for a positive stride, the largest constBase tap
            // touches each element first.
            const bool forward = a.affine.ivCoeff >= 0;
            std::size_t leader = group[0];
            for (std::size_t g : group) {
                const auto &cand = part.accessors[g].affine.constBase;
                const auto &cur =
                    part.accessors[leader].affine.constBase;
                if ((forward && cand > cur) || (!forward && cand < cur))
                    leader = g;
            }
            const int slot = next_slot++;
            part.accessors[leader].bufferSlot = slot;
            handled[leader] = true;
            for (std::size_t g : group) {
                if (g == leader)
                    continue;
                AccessorDef &f = part.accessors[g];
                const std::int64_t dist = std::llabs(
                    part.accessors[leader].affine.constBase -
                    f.affine.constBase);
                if (opts.enableCombining &&
                    static_cast<std::uint64_t>(dist) * f.elemBytes +
                            mem::lineBytes <=
                        opts.bufferBytes) {
                    f.bufferSlot = slot;
                    f.combinedWithSlot = slot;
                    f.combineDistance = dist;
                } else {
                    f.bufferSlot = next_slot++;
                }
                handled[g] = true;
            }
        }
        part.streamBuffers = next_slot;
    }

    // --- Codegen: one microprogram per partition. ---
    for (Partition &part : plan.partitions) {
        MicroProgram prog;
        std::map<int, std::uint16_t> reg_of;
        std::map<int, std::uint16_t> channel_reg;
        std::uint16_t next_reg = 0;
        auto alloc = [&next_reg]() { return next_reg++; };

        std::map<int, int> accessor_index; // node -> accessor position
        for (std::size_t i = 0; i < part.accessors.size(); ++i)
            accessor_index[part.accessors[i].node] =
                static_cast<int>(i);

        auto in_channel_slot = [&part](int ch_id) {
            for (std::size_t i = 0; i < part.inChannels.size(); ++i)
                if (part.inChannels[i] == ch_id)
                    return static_cast<int>(i);
            panic("channel %d not an input of partition %d", ch_id,
                  part.id);
        };
        auto out_channel_slot = [&part](int ch_id) {
            for (std::size_t i = 0; i < part.outChannels.size(); ++i)
                if (part.outChannels[i] == ch_id)
                    return static_cast<int>(i);
            panic("channel %d not an output of partition %d", ch_id,
                  part.id);
        };

        // Resolve (or materialize) the register holding node's value.
        std::function<std::uint16_t(int)> reg_for =
            [&](int node_id) -> std::uint16_t {
            auto it = reg_of.find(node_id);
            if (it != reg_of.end())
                return it->second;
            const Node &node = kernel.node(node_id);
            const int src_part =
                node_part[static_cast<std::size_t>(node_id)];
            std::uint16_t reg;
            if (node.kind == NodeKind::IndVar) {
                if (prog.ivReg == noReg)
                    prog.ivReg = alloc();
                reg = prog.ivReg;
            } else if (node.kind == NodeKind::Param) {
                reg = alloc();
                prog.paramRegs.push_back({node.paramIdx, reg});
            } else if (node.kind == NodeKind::ConstInt) {
                reg = alloc();
                prog.constRegs.push_back({reg, node.imm, false});
            } else if (node.kind == NodeKind::ConstFloat) {
                reg = alloc();
                prog.constRegs.push_back({reg, node.imm, true});
            } else if (node.kind == NodeKind::Carry &&
                       src_part == part.id) {
                reg = alloc();
                prog.carries.push_back(CarrySlot{
                    reg, node.carryInit, node.carryIsFloat, node_id});
            } else if (src_part != part.id) {
                // Remote producer: consume from the channel.
                auto key = std::make_pair(node_id, part.id);
                auto cit = channel_ids.find(key);
                DISTDA_ASSERT(cit != channel_ids.end(),
                              "missing channel for node %d -> part %d",
                              node_id, part.id);
                reg = alloc();
                MicroInst mi;
                mi.kind = MicroKind::Consume;
                mi.dst = reg;
                mi.slot = in_channel_slot(cit->second);
                prog.insts.push_back(mi);
            } else {
                panic("node %d value demanded before definition in "
                      "partition %d", node_id, part.id);
            }
            reg_of[node_id] = reg;
            return reg;
        };

        std::set<int> local(part.nodes.begin(), part.nodes.end());
        for (int id : kernel.topoOrder()) {
            if (!local.count(id))
                continue;
            const Node &node = kernel.node(id);
            switch (node.kind) {
              case NodeKind::Compute: {
                  MicroInst mi;
                  mi.kind = MicroKind::Alu;
                  mi.op = node.op;
                  mi.a = reg_for(node.inputA);
                  if (node.inputB != noNode)
                      mi.b = reg_for(node.inputB);
                  if (node.inputC != noNode)
                      mi.c = reg_for(node.inputC);
                  mi.dst = alloc();
                  reg_of[id] = mi.dst;
                  prog.insts.push_back(mi);
                  break;
              }
              case NodeKind::Access: {
                  MicroInst mi;
                  mi.slot = accessor_index.at(id);
                  if (node.dir == AccessDir::Load) {
                      if (node.pattern == PatternKind::Affine) {
                          mi.kind = MicroKind::LoadStream;
                      } else {
                          mi.kind = MicroKind::LoadIdx;
                          mi.a = reg_for(node.addrInput);
                      }
                      mi.dst = alloc();
                      reg_of[id] = mi.dst;
                  } else {
                      if (node.pattern == PatternKind::Affine) {
                          mi.kind = MicroKind::StoreStream;
                          mi.a = reg_for(node.valueInput);
                      } else {
                          mi.kind = MicroKind::StoreIdx;
                          mi.a = reg_for(node.addrInput);
                          mi.b = reg_for(node.valueInput);
                      }
                      if (node.predInput != noNode)
                          mi.c = reg_for(node.predInput);
                  }
                  prog.insts.push_back(mi);
                  break;
              }
              default:
                break;
            }
            // Produce for consumers in other partitions.
            for (int u : users[static_cast<std::size_t>(id)]) {
                (void)u;
            }
            auto key_begin = channel_ids.lower_bound({id, -1});
            for (auto it2 = key_begin;
                 it2 != channel_ids.end() && it2->first.first == id;
                 ++it2) {
                const ChannelDef &ch =
                    plan.channels[static_cast<std::size_t>(it2->second)];
                if (ch.srcPartition != part.id)
                    continue;
                MicroInst mi;
                mi.kind = MicroKind::Produce;
                mi.a = reg_for(id);
                mi.slot = out_channel_slot(ch.id);
                prog.insts.push_back(mi);
            }
        }

        // Carry write-backs happen last so same-iteration readers of
        // the carry register observe the pre-update value.
        for (std::size_t c = 0; c < prog.carries.size(); ++c) {
            const Node &cn = kernel.node(prog.carries[c].node);
            MicroInst mi;
            mi.kind = MicroKind::CarryWrite;
            mi.a = reg_for(cn.carryUpdate);
            mi.slot = static_cast<int>(c);
            prog.insts.push_back(mi);
        }

        prog.numRegs = next_reg;
        part.program = std::move(prog);
    }

    // --- Mechanism coverage (Table V). ---
    auto set_mech = [&plan](Mechanism m) {
        plan.mechanisms[static_cast<std::size_t>(m)] = true;
    };
    set_mech(Mechanism::CpConfig);
    set_mech(Mechanism::CpSetRf);
    set_mech(Mechanism::CpRun);
    set_mech(Mechanism::CpProduce);
    set_mech(Mechanism::CpConsume);
    if (!kernel.resultCarries.empty())
        set_mech(Mechanism::CpLoadRf);
    for (const Partition &part : plan.partitions) {
        bool streams = false, indirect = false, combined = false;
        bool store_streams = false;
        for (const AccessorDef &ad : part.accessors) {
            if (ad.pattern == PatternKind::Affine) {
                streams = true;
                if (ad.dir == AccessDir::Store)
                    store_streams = true;
                if (ad.combinedWithSlot >= 0)
                    combined = true;
            } else {
                indirect = true;
                if (ad.dir == AccessDir::Load)
                    set_mech(Mechanism::CpRead);
                else
                    set_mech(Mechanism::CpWrite);
            }
        }
        if (streams) {
            set_mech(Mechanism::CpConfigStream);
            set_mech(Mechanism::CpFillBuf);
        }
        if (store_streams)
            set_mech(Mechanism::CpDrainBuf);
        if (indirect)
            set_mech(Mechanism::CpConfigRandom);
        if (combined || indirect || !part.inChannels.empty())
            set_mech(Mechanism::CpStep);
    }

    // --- Characteristics (Table VI). ---
    OffloadCharacteristics &ch = plan.characteristics;
    ch.numPartitions = num_parts;
    double total_bufs = 0.0;
    for (const Partition &part : plan.partitions) {
        ch.maxInsts = std::max(
            ch.maxInsts, static_cast<int>(part.program.insts.size()));
        total_bufs += part.streamBuffers;
    }
    ch.maxInstBytes = ch.maxInsts * static_cast<int>(microInstBytes);
    ch.avgBuffers = total_bufs / std::max(num_parts, 1);
    for (const ChannelDef &c : plan.channels)
        ch.commBytesPerIter += static_cast<double>(c.bits) / 8.0;

    // DFG dimensions: topological depth x max width over compute and
    // access nodes.
    {
        std::vector<int> level(n, 0);
        int max_level = 0;
        for (int id : kernel.topoOrder()) {
            const Node &node = kernel.node(id);
            int lvl = 0;
            for (int in : node.valueInputs())
                lvl = std::max(lvl,
                               level[static_cast<std::size_t>(in)] + 1);
            level[static_cast<std::size_t>(id)] = lvl;
            if (node.kind == NodeKind::Compute ||
                node.kind == NodeKind::Access)
                max_level = std::max(max_level, lvl);
        }
        std::map<int, int> width;
        for (const Node &node : kernel.nodes) {
            if (node.kind == NodeKind::Compute ||
                node.kind == NodeKind::Access)
                ++width[level[static_cast<std::size_t>(node.id)]];
        }
        ch.dfgLevels = max_level + 1;
        for (const auto &[lvl, w] : width)
            ch.dfgWidth = std::max(ch.dfgWidth, w);
    }

    if (opts.verifyPlans != VerifyMode::Off) {
        const verify::Report report =
            verify::verifyPlan(plan, verify::optionsFor(opts));
        verify::enforce(report, opts.verifyPlans,
                        "kernel '" + kernel.name + "'");
    }

    return plan;
}

} // namespace distda::compiler
