/**
 * @file
 * Process-wide cache of compiled OffloadPlans, keyed on the stable
 * content fingerprint of (canonicalized kernel, CompileOptions).
 *
 * Compilation is deterministic, so two lookups with the same
 * fingerprint may freely share one immutable plan: ExecContext, the
 * sweep engine's worker threads, and the fuzz campaign all hit the
 * same instance. Plans are handed out as shared_ptr<const OffloadPlan>
 * — a holder keeps its plan alive even if the cache evicts it, and
 * nothing downstream may mutate a shared plan.
 *
 * The cache tracks hit/miss counts and compile wall-time so the
 * setup-cost share of offload overhead (Colagrande & Benini's offload
 * latency breakdown) is measurable: every hit's savedMs is the wall
 * time the original compile of that entry cost.
 */

#ifndef DISTDA_COMPILER_PLAN_CACHE_HH
#define DISTDA_COMPILER_PLAN_CACHE_HH

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/compiler/plan.hh"

namespace distda::compiler
{

/** Thread-safe, process-wide plan memoizer. */
class PlanCache
{
  public:
    /** Outcome of one getOrCompile: the plan plus accounting. */
    struct Lookup
    {
        std::shared_ptr<const OffloadPlan> plan;
        bool hit = false;
        /** Wall-clock this call spent compiling (0 on a hit). */
        double compileMs = 0.0;
        /** Wall-clock a hit avoided (the entry's original compileMs). */
        double savedMs = 0.0;
    };

    /** Cumulative counters since construction (or clear()). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0; ///< entries dropped at capacity
        double compileMs = 0.0; ///< total wall time spent compiling
        double savedMs = 0.0;   ///< total wall time hits avoided
        std::size_t entries = 0;
        std::size_t capacity = 0; ///< current maximum entry count

        double
        hitRate() const
        {
            const double total =
                static_cast<double>(hits) + static_cast<double>(misses);
            return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
        }
    };

    /** The process-wide instance every subsystem shares. */
    static PlanCache &process();

    /**
     * Return the cached plan for (kernel, opts), compiling and
     * inserting on a miss. Compilation runs outside the cache lock, so
     * concurrent misses on different kernels compile in parallel; two
     * concurrent misses on the same fingerprint both compile and the
     * first insert wins (determinism makes the copies identical).
     * Disabled caches compile fresh every call and count misses.
     */
    Lookup getOrCompile(const Kernel &kernel, const CompileOptions &opts);

    /**
     * Insert an externally obtained plan (e.g. loaded from a --plan-dir
     * artifact) under its recorded fingerprint. First insert wins.
     */
    void insert(std::shared_ptr<const OffloadPlan> plan);

    /** Cached plan by fingerprint; null when absent. */
    std::shared_ptr<const OffloadPlan> find(
        const std::string &fingerprint) const;

    Stats stats() const;

    /** Drop all entries and reset counters (tests). */
    void clear();

    /**
     * Toggle caching (--plan-cache=off); enabled by default.
     *
     * Disabling FLUSHES every entry. The cache can live for the whole
     * process (distda_serve runs for days), so "off" must mean "not
     * holding plan memory", not "silently retaining a shadow copy":
     * a server operator disabling the cache expects its footprint to
     * drop to zero, and a later re-enable starts cold — the first
     * lookup per fingerprint recompiles and re-inserts. Cumulative
     * hit/miss/eviction counters survive the flush (only clear()
     * resets them). Re-enabling an enabled cache, or disabling a
     * disabled one, is a no-op.
     */
    void setEnabled(bool enabled);
    bool enabled() const;

    /**
     * FIFO capacity bound (default 4096): long fuzz campaigns and
     * multi-tenant serve traffic compile an unbounded stream of
     * distinct kernels, and the cache must not grow with them.
     * Holders keep evicted plans alive via their shared_ptr. Values
     * < 1 clamp to 1; shrinking below the current entry count evicts
     * oldest-first immediately (counted in Stats::evictions).
     */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const;

  private:
    struct Entry
    {
        std::shared_ptr<const OffloadPlan> plan;
        double compileMs = 0.0;
    };

    static constexpr std::size_t kDefaultCapacity = 4096;

    void evictLocked();

    mutable std::mutex _mu;
    std::unordered_map<std::string, Entry> _entries;
    std::deque<std::string> _order; ///< insertion order for eviction
    Stats _stats;
    std::size_t _capacity = kDefaultCapacity;
    bool _enabled = true;
};

} // namespace distda::compiler

#endif // DISTDA_COMPILER_PLAN_CACHE_HH
