/**
 * @file
 * Process-wide cache of compiled OffloadPlans, keyed on the stable
 * content fingerprint of (canonicalized kernel, CompileOptions).
 *
 * Compilation is deterministic, so two lookups with the same
 * fingerprint may freely share one immutable plan: ExecContext, the
 * sweep engine's worker threads, and the fuzz campaign all hit the
 * same instance. Plans are handed out as shared_ptr<const OffloadPlan>
 * — a holder keeps its plan alive even if the cache evicts it, and
 * nothing downstream may mutate a shared plan.
 *
 * The cache tracks hit/miss counts and compile wall-time so the
 * setup-cost share of offload overhead (Colagrande & Benini's offload
 * latency breakdown) is measurable: every hit's savedMs is the wall
 * time the original compile of that entry cost.
 */

#ifndef DISTDA_COMPILER_PLAN_CACHE_HH
#define DISTDA_COMPILER_PLAN_CACHE_HH

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/compiler/plan.hh"

namespace distda::compiler
{

/** Thread-safe, process-wide plan memoizer. */
class PlanCache
{
  public:
    /** Outcome of one getOrCompile: the plan plus accounting. */
    struct Lookup
    {
        std::shared_ptr<const OffloadPlan> plan;
        bool hit = false;
        /** Wall-clock this call spent compiling (0 on a hit). */
        double compileMs = 0.0;
        /** Wall-clock a hit avoided (the entry's original compileMs). */
        double savedMs = 0.0;
    };

    /** Cumulative counters since construction (or clear()). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        double compileMs = 0.0; ///< total wall time spent compiling
        double savedMs = 0.0;   ///< total wall time hits avoided
        std::size_t entries = 0;
    };

    /** The process-wide instance every subsystem shares. */
    static PlanCache &process();

    /**
     * Return the cached plan for (kernel, opts), compiling and
     * inserting on a miss. Compilation runs outside the cache lock, so
     * concurrent misses on different kernels compile in parallel; two
     * concurrent misses on the same fingerprint both compile and the
     * first insert wins (determinism makes the copies identical).
     * Disabled caches compile fresh every call and count misses.
     */
    Lookup getOrCompile(const Kernel &kernel, const CompileOptions &opts);

    /**
     * Insert an externally obtained plan (e.g. loaded from a --plan-dir
     * artifact) under its recorded fingerprint. First insert wins.
     */
    void insert(std::shared_ptr<const OffloadPlan> plan);

    /** Cached plan by fingerprint; null when absent. */
    std::shared_ptr<const OffloadPlan> find(
        const std::string &fingerprint) const;

    Stats stats() const;

    /** Drop all entries and reset counters (tests). */
    void clear();

    /** Toggle caching (--plan-cache=off); enabled by default. */
    void setEnabled(bool enabled);
    bool enabled() const;

  private:
    struct Entry
    {
        std::shared_ptr<const OffloadPlan> plan;
        double compileMs = 0.0;
    };

    /**
     * FIFO capacity bound: long fuzz campaigns compile an unbounded
     * stream of distinct kernels, and the cache must not grow with
     * them. Holders keep evicted plans alive via their shared_ptr.
     */
    static constexpr std::size_t maxEntries = 4096;

    void evictLocked();

    mutable std::mutex _mu;
    std::unordered_map<std::string, Entry> _entries;
    std::deque<std::string> _order; ///< insertion order for eviction
    Stats _stats;
    bool _enabled = true;
};

} // namespace distda::compiler

#endif // DISTDA_COMPILER_PLAN_CACHE_HH
