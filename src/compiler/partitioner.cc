#include "src/compiler/partitioner.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "src/sim/logging.hh"

namespace distda::compiler
{

int
PartitionGraph::addVertex(double weight, int obj_id)
{
    vertices.push_back(Vertex{weight, obj_id});
    return static_cast<int>(vertices.size()) - 1;
}

void
PartitionGraph::addEdge(int a, int b, double weight)
{
    if (a == b)
        return;
    if (a > b)
        std::swap(a, b);
    edges[{a, b}] += weight;
}

int
PartitionGraph::numObjects() const
{
    int n = 0;
    for (const Vertex &v : vertices)
        if (v.objId >= 0)
            ++n;
    return n;
}

double
cutCost(const PartitionGraph &graph, const std::vector<int> &assignment)
{
    double cut = 0.0;
    for (const auto &[e, w] : graph.edges) {
        if (assignment[static_cast<std::size_t>(e.first)] !=
            assignment[static_cast<std::size_t>(e.second)])
            cut += w;
    }
    return cut;
}

namespace
{

/** Adjacency lists derived from the edge map. */
std::vector<std::vector<std::pair<int, double>>>
adjacency(const PartitionGraph &graph)
{
    std::vector<std::vector<std::pair<int, double>>> adj(
        graph.vertices.size());
    for (const auto &[e, w] : graph.edges) {
        adj[static_cast<std::size_t>(e.first)].push_back({e.second, w});
        adj[static_cast<std::size_t>(e.second)].push_back({e.first, w});
    }
    return adj;
}

/** One level of heavy-edge-matching coarsening. */
struct CoarseLevel
{
    PartitionGraph graph;
    std::vector<int> fineToCoarse;
};

CoarseLevel
coarsen(const PartitionGraph &graph)
{
    const std::size_t n = graph.vertices.size();
    auto adj = adjacency(graph);
    std::vector<int> match(n, -1);

    // Visit vertices in order of decreasing heaviest incident edge so
    // heavy edges collapse first; never match two object supernodes.
    std::vector<int> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = static_cast<int>(i);
    std::vector<double> heaviest(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (const auto &[j, w] : adj[i])
            heaviest[i] = std::max(heaviest[i], w);
    std::sort(order.begin(), order.end(), [&heaviest](int a, int b) {
        return heaviest[static_cast<std::size_t>(a)] >
               heaviest[static_cast<std::size_t>(b)];
    });

    for (int v : order) {
        if (match[static_cast<std::size_t>(v)] != -1)
            continue;
        int best = -1;
        double best_w = -1.0;
        for (const auto &[u, w] : adj[static_cast<std::size_t>(v)]) {
            if (match[static_cast<std::size_t>(u)] != -1)
                continue;
            const bool both_objects =
                graph.vertices[static_cast<std::size_t>(v)].objId >= 0 &&
                graph.vertices[static_cast<std::size_t>(u)].objId >= 0;
            if (both_objects)
                continue;
            if (w > best_w) {
                best_w = w;
                best = u;
            }
        }
        if (best != -1) {
            match[static_cast<std::size_t>(v)] = best;
            match[static_cast<std::size_t>(best)] = v;
        } else {
            match[static_cast<std::size_t>(v)] = v;
        }
    }

    CoarseLevel level;
    level.fineToCoarse.assign(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
        if (level.fineToCoarse[i] != -1)
            continue;
        const auto j = static_cast<std::size_t>(match[i]);
        const PartitionGraph::Vertex &vi = graph.vertices[i];
        const PartitionGraph::Vertex &vj = graph.vertices[j];
        const int obj = std::max(vi.objId, vj.objId);
        const double w = (i == j) ? vi.weight : vi.weight + vj.weight;
        const int cv = level.graph.addVertex(w, obj);
        level.fineToCoarse[i] = cv;
        level.fineToCoarse[j] = cv;
    }
    for (const auto &[e, w] : graph.edges) {
        level.graph.addEdge(
            level.fineToCoarse[static_cast<std::size_t>(e.first)],
            level.fineToCoarse[static_cast<std::size_t>(e.second)], w);
    }
    return level;
}

/** Greedy initial assignment with object vertices pinned round-robin. */
std::vector<int>
initialAssign(const PartitionGraph &graph, int k)
{
    const std::size_t n = graph.vertices.size();
    auto adj = adjacency(graph);
    std::vector<int> assign(n, -1);

    int next_part = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (graph.vertices[i].objId >= 0) {
            assign[i] = next_part % k;
            ++next_part;
        }
    }
    // Seed empty partitions with the heaviest unassigned vertices.
    for (int p = next_part; p < k; ++p) {
        int best = -1;
        double best_w = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (assign[i] == -1 && graph.vertices[i].weight > best_w) {
                best_w = graph.vertices[i].weight;
                best = static_cast<int>(i);
            }
        }
        if (best == -1)
            break;
        assign[static_cast<std::size_t>(best)] = p;
    }

    // Assign remaining vertices in order of decreasing connectivity to
    // the partition they talk to most.
    std::vector<int> order;
    for (std::size_t i = 0; i < n; ++i)
        if (assign[i] == -1)
            order.push_back(static_cast<int>(i));
    std::vector<double> conn(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (const auto &[j, w] : adj[i])
            conn[i] += w;
    std::sort(order.begin(), order.end(), [&conn](int a, int b) {
        return conn[static_cast<std::size_t>(a)] >
               conn[static_cast<std::size_t>(b)];
    });

    bool progress = true;
    while (progress) {
        progress = false;
        for (int v : order) {
            if (assign[static_cast<std::size_t>(v)] != -1)
                continue;
            std::vector<double> gain(static_cast<std::size_t>(k), 0.0);
            bool any = false;
            for (const auto &[u, w] : adj[static_cast<std::size_t>(v)]) {
                const int pu = assign[static_cast<std::size_t>(u)];
                if (pu >= 0) {
                    gain[static_cast<std::size_t>(pu)] += w;
                    any = true;
                }
            }
            if (!any)
                continue;
            const int best = static_cast<int>(
                std::max_element(gain.begin(), gain.end()) - gain.begin());
            assign[static_cast<std::size_t>(v)] = best;
            progress = true;
        }
    }
    // Isolated vertices go to partition 0.
    for (std::size_t i = 0; i < n; ++i)
        if (assign[i] == -1)
            assign[i] = 0;
    return assign;
}

/** KL/FM refinement: hill-climb single-vertex moves. Object vertices
 *  stay pinned so each partition keeps at most ceil(#obj/k) objects. */
void
refine(const PartitionGraph &graph, int k, std::vector<int> &assign)
{
    const std::size_t n = graph.vertices.size();
    auto adj = adjacency(graph);

    bool improved = true;
    int rounds = 0;
    while (improved && rounds++ < 16) {
        improved = false;
        for (std::size_t v = 0; v < n; ++v) {
            if (graph.vertices[v].objId >= 0)
                continue; // pinned
            std::vector<double> conn(static_cast<std::size_t>(k), 0.0);
            for (const auto &[u, w] : adj[v])
                conn[static_cast<std::size_t>(
                    assign[static_cast<std::size_t>(u)])] += w;
            const int cur = assign[v];
            int best = cur;
            double best_gain = 0.0;
            for (int p = 0; p < k; ++p) {
                if (p == cur)
                    continue;
                const double gain =
                    conn[static_cast<std::size_t>(p)] -
                    conn[static_cast<std::size_t>(cur)];
                if (gain > best_gain) {
                    best_gain = gain;
                    best = p;
                }
            }
            if (best != cur) {
                assign[v] = best;
                improved = true;
            }
        }
    }
}

int
maxObjectsPerPartition(const PartitionGraph &graph, int k,
                       const std::vector<int> &assign)
{
    std::vector<int> objs(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < graph.vertices.size(); ++i)
        if (graph.vertices[i].objId >= 0)
            ++objs[static_cast<std::size_t>(assign[i])];
    return *std::max_element(objs.begin(), objs.end());
}

} // namespace

PartitionSolution
partitionGraph(const PartitionGraph &graph, int k)
{
    DISTDA_ASSERT(k >= 1, "k=%d", k);
    const std::size_t n = graph.vertices.size();

    PartitionSolution sol;
    sol.k = k;
    if (k == 1 || n <= 1) {
        sol.assignment.assign(n, 0);
        sol.cutCost = 0.0;
        sol.maxObjectsPerPartition = graph.numObjects();
        return sol;
    }

    // Multilevel: coarsen while the graph is large, partition the
    // coarsest level, then project back and refine at each level.
    // A deque keeps element references stable while we grow it: `cur`
    // points at the previous level's graph across push_back calls.
    std::deque<CoarseLevel> levels;
    const PartitionGraph *cur = &graph;
    const std::size_t coarse_target =
        std::max<std::size_t>(static_cast<std::size_t>(4 * k), 32);
    while (cur->vertices.size() > coarse_target) {
        levels.push_back(coarsen(*cur));
        if (levels.back().graph.vertices.size() == cur->vertices.size()) {
            levels.pop_back(); // no progress (e.g., no edges)
            break;
        }
        cur = &levels.back().graph;
    }

    std::vector<int> assign = initialAssign(*cur, k);
    refine(*cur, k, assign);

    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
        const PartitionGraph &finer =
            (std::next(it) == levels.rend()) ? graph
                                             : std::next(it)->graph;
        std::vector<int> fine_assign(finer.vertices.size());
        for (std::size_t i = 0; i < finer.vertices.size(); ++i)
            fine_assign[i] = assign[static_cast<std::size_t>(
                it->fineToCoarse[i])];
        refine(finer, k, fine_assign);
        assign = std::move(fine_assign);
    }

    sol.assignment = std::move(assign);
    sol.cutCost = cutCost(graph, sol.assignment);
    sol.maxObjectsPerPartition =
        maxObjectsPerPartition(graph, k, sol.assignment);
    return sol;
}

PartitionSolution
sweepPartition(const PartitionGraph &graph)
{
    const int num_objects = std::max(graph.numObjects(), 1);
    PartitionSolution best;
    bool have_best = false;
    for (int k = 1; k <= num_objects; ++k) {
        PartitionSolution sol = partitionGraph(graph, k);
        // Paper §V-A-3: prefer the fewest data structures per
        // partition, then the lowest inter-partition communication.
        const bool better =
            !have_best ||
            sol.maxObjectsPerPartition < best.maxObjectsPerPartition ||
            (sol.maxObjectsPerPartition == best.maxObjectsPerPartition &&
             sol.cutCost < best.cutCost);
        if (better) {
            best = std::move(sol);
            have_best = true;
        }
    }
    return best;
}

} // namespace distda::compiler
