/**
 * @file
 * Shared helpers for workload implementations: reference-comparison
 * utilities and deterministic input generation.
 */

#ifndef DISTDA_WORKLOADS_COMMON_HH
#define DISTDA_WORKLOADS_COMMON_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/engine/backend.hh"
#include "src/sim/logging.hh"
#include "src/sim/rng.hh"

namespace distda::workloads
{

/** Relative-tolerance comparison for floating-point outputs. */
inline bool
nearlyEqual(double a, double b, double rel_tol = 1e-9)
{
    const double diff = std::fabs(a - b);
    if (diff <= rel_tol)
        return true;
    return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

/** Compare a simulated float array against a reference vector. */
inline bool
arrayMatchesF(const engine::ArrayRef &arr,
              const std::vector<double> &ref, double rel_tol = 1e-9)
{
    if (arr.count != ref.size())
        return false;
    for (std::uint64_t i = 0; i < arr.count; ++i) {
        if (!nearlyEqual(arr.getF(i), ref[i], rel_tol)) {
            warn("float mismatch at %llu: %g vs %g",
                 static_cast<unsigned long long>(i), arr.getF(i),
                 ref[i]);
            return false;
        }
    }
    return true;
}

/** Compare a simulated integer array against a reference vector. */
inline bool
arrayMatchesI(const engine::ArrayRef &arr,
              const std::vector<std::int64_t> &ref)
{
    if (arr.count != ref.size())
        return false;
    for (std::uint64_t i = 0; i < arr.count; ++i) {
        if (arr.getI(i) != ref[i]) {
            warn("int mismatch at %llu: %lld vs %lld",
                 static_cast<unsigned long long>(i),
                 static_cast<long long>(arr.getI(i)),
                 static_cast<long long>(ref[i]));
            return false;
        }
    }
    return true;
}

/** Scale a dimension, keeping a sane minimum. */
inline std::int64_t
scaled(std::int64_t base, double scale, std::int64_t min_value = 4)
{
    const auto v = static_cast<std::int64_t>(base * scale);
    return v < min_value ? min_value : v;
}

} // namespace distda::workloads

#endif // DISTDA_WORKLOADS_COMMON_HH
