/**
 * @file
 * Sparse matrix-vector multiplication (the §VI-D case-study benchmark):
 * CSR tiles with randomly generated sparsity. The automated offload
 * (Dist-DA-B in Fig 12a) invokes one short inner-loop kernel per row,
 * which is exactly the configuration the paper shows failing to
 * amortize offload overhead (0.44x); the user-annotated loop-nest
 * variants live in the case-study harness.
 */

#include <vector>

#include "src/workloads/common.hh"
#include "src/workloads/workload.hh"

namespace distda::workloads
{

using compiler::Kernel;
using compiler::KernelBuilder;
using compiler::Word;
using driver::ExecContext;
using driver::System;
using engine::ArrayRef;

namespace
{

class Spmv : public Workload
{
  public:
    explicit Spmv(double scale)
        : _rows(scaled(2048, scale, 64)), _sparsity(5e-3)
    {
    }

    std::string name() const override { return "spmv"; }

    std::uint64_t arenaBytes() const override
    {
        const auto nnz_est = static_cast<std::uint64_t>(
            static_cast<double>(_rows) * _rows * _sparsity * 1.5 + 64);
        return nnz_est * 16 + static_cast<std::uint64_t>(_rows) * 24 +
               (8 << 20);
    }

    void
    setup(System &sys) override
    {
        // Random CSR with ~sparsity * rows nonzeros per row (normally
        // distributed row lengths approximating the paper's sigma).
        sim::Rng rng(47);
        std::vector<std::int64_t> rowptr(
            static_cast<std::size_t>(_rows) + 1, 0);
        std::vector<std::int64_t> cols;
        std::vector<double> vals;
        const double mean_nnz =
            static_cast<double>(_rows) * _sparsity;
        for (std::int64_t r = 0; r < _rows; ++r) {
            // Sum of uniforms approximates a normal distribution.
            double g = 0.0;
            for (int t = 0; t < 6; ++t)
                g += rng.nextDouble();
            const auto nnz = static_cast<std::int64_t>(
                std::max(1.0, mean_nnz + (g - 3.0) * 2.0));
            for (std::int64_t e = 0; e < nnz; ++e) {
                cols.push_back(static_cast<std::int64_t>(
                    rng.nextBelow(static_cast<std::uint64_t>(_rows))));
                vals.push_back(rng.nextDouble());
            }
            rowptr[static_cast<std::size_t>(r) + 1] =
                static_cast<std::int64_t>(cols.size());
        }
        _nnz = static_cast<std::int64_t>(cols.size());

        _vals = sys.alloc("vals", static_cast<std::uint64_t>(_nnz), 8,
                          true);
        _cols = sys.alloc("cols", static_cast<std::uint64_t>(_nnz), 8,
                          false);
        _rowptr = sys.alloc("rowptr",
                            static_cast<std::uint64_t>(_rows) + 1, 8,
                            false);
        _x = sys.alloc("x", static_cast<std::uint64_t>(_rows), 8, true);
        _y = sys.alloc("y", static_cast<std::uint64_t>(_rows), 8, true);

        for (std::int64_t e = 0; e < _nnz; ++e) {
            _vals.setF(static_cast<std::uint64_t>(e),
                       vals[static_cast<std::size_t>(e)]);
            _cols.setI(static_cast<std::uint64_t>(e),
                       cols[static_cast<std::size_t>(e)]);
        }
        for (std::int64_t r = 0; r <= _rows; ++r)
            _rowptr.setI(static_cast<std::uint64_t>(r),
                         rowptr[static_cast<std::size_t>(r)]);
        for (std::int64_t r = 0; r < _rows; ++r)
            _x.setF(static_cast<std::uint64_t>(r), rng.nextDouble());

        // Reference.
        _ref.assign(static_cast<std::size_t>(_rows), 0.0);
        for (std::int64_t r = 0; r < _rows; ++r) {
            double s = 0.0;
            for (std::int64_t e = rowptr[static_cast<std::size_t>(r)];
                 e < rowptr[static_cast<std::size_t>(r) + 1]; ++e) {
                s = s + vals[static_cast<std::size_t>(e)] *
                            _x.getF(static_cast<std::uint64_t>(
                                cols[static_cast<std::size_t>(e)]));
            }
            _ref[static_cast<std::size_t>(r)] = s;
        }

        KernelBuilder kb("spmv_row");
        const int o_v =
            kb.object("vals", static_cast<std::uint64_t>(_nnz), 8, true);
        const int o_c = kb.object("cols",
                                  static_cast<std::uint64_t>(_nnz), 8,
                                  false);
        const int o_x =
            kb.object("x", static_cast<std::uint64_t>(_rows), 8, true);
        const int p_start = kb.param("rowStart");
        const int p_trip = kb.param("trip");
        kb.loopFromParam(p_trip);
        auto sum = kb.carry(Word{.f = 0.0}, true, "sum");
        auto v = kb.load(o_v, kb.affineP(0, 1, {{p_start, 1}}));
        auto c = kb.load(o_c, kb.affineP(0, 1, {{p_start, 1}}));
        auto xv = kb.loadIdx(o_x, c);
        kb.setCarry(sum, kb.fadd(sum, kb.fmul(v, xv)));
        kb.markResult(sum);
        _kernel = kb.build();
    }

    void
    run(ExecContext &ctx) override
    {
        for (std::int64_t r = 0; r < _rows; ++r) {
            const std::int64_t start =
                ctx.hostLoadI(_rowptr, static_cast<std::uint64_t>(r));
            const std::int64_t end = ctx.hostLoadI(
                _rowptr, static_cast<std::uint64_t>(r) + 1);
            ctx.hostOps(3);
            if (end > start) {
                ctx.invoke(_kernel, {_vals, _cols, _x},
                           {ExecContext::wi(start),
                            ExecContext::wi(end - start)});
                ctx.hostStoreF(_y, static_cast<std::uint64_t>(r),
                               ctx.resultF(0));
            } else {
                ctx.hostStoreF(_y, static_cast<std::uint64_t>(r), 0.0);
            }
        }
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return arrayMatchesF(_y, _ref, 0.0);
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kernel};
    }

    // Accessors used by the case-study harness.
    ArrayRef vals() const { return _vals; }
    ArrayRef colsArr() const { return _cols; }
    ArrayRef rowptr() const { return _rowptr; }
    ArrayRef x() const { return _x; }
    ArrayRef y() const { return _y; }
    std::int64_t rows() const { return _rows; }

  private:
    std::int64_t _rows;
    double _sparsity;
    std::int64_t _nnz = 0;
    ArrayRef _vals, _cols, _rowptr, _x, _y;
    Kernel _kernel;
    std::vector<double> _ref;
};

} // namespace

std::unique_ptr<Workload>
makeSpmv(double scale)
{
    return std::make_unique<Spmv>(scale);
}

} // namespace distda::workloads
