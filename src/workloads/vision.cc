/**
 * @file
 * SD-VBS vision workloads (disparity, tracking) and the Cortexsuite
 * PCA data-mining workload of Table IV.
 *
 * Disparity runs a per-candidate pipeline (absolute differences, row
 * box sum, column box sum, running minimum) over flattened images;
 * tracking computes image gradients, a windowed structure tensor and a
 * Harris-style corner response; PCA performs column-major mean and
 * covariance reductions (the column-stride access pattern §VI-C calls
 * out).
 */

#include <algorithm>
#include <vector>

#include "src/workloads/common.hh"
#include "src/workloads/workload.hh"

namespace distda::workloads
{

using compiler::Kernel;
using compiler::KernelBuilder;
using compiler::OpCode;
using compiler::Word;
using driver::ExecContext;
using driver::System;
using engine::ArrayRef;

namespace
{

/** Stereo disparity via per-candidate SAD pipeline. */
class Disparity : public Workload
{
  public:
    explicit Disparity(double scale)
        : _h(scaled(144, scale, 16)), _w(scaled(176, scale, 16)),
          _maxd(scaled(12, scale, 4))
    {
    }

    std::string name() const override { return "dis"; }

    std::uint64_t arenaBytes() const override
    {
        return 7ULL * _h * _w * 4 + (8 << 20);
    }

    void
    setup(System &sys) override
    {
        const auto n = static_cast<std::uint64_t>(_h * _w);
        _left = sys.alloc("left", n, 4, false);
        _right = sys.alloc("right", n, 4, false);
        _diff = sys.alloc("diff", n, 4, false);
        _rowsum = sys.alloc("rowsum", n, 4, false);
        _sad = sys.alloc("sad", n, 4, false);
        _best = sys.alloc("best", n, 4, false);
        _bestd = sys.alloc("bestd", n, 4, false);

        sim::Rng rng(31);
        for (std::uint64_t i = 0; i < n; ++i) {
            _left.setI(i, static_cast<std::int64_t>(rng.nextBelow(256)));
            _right.setI(i,
                        static_cast<std::int64_t>(rng.nextBelow(256)));
        }
        for (std::uint64_t i = 0; i < n; ++i) {
            _diff.setI(i, 0);
            _rowsum.setI(i, 0);
            _sad.setI(i, 0);
            _best.setI(i, 1 << 28);
            _bestd.setI(i, -1);
        }

        // Reference mirroring the kernel passes exactly.
        const auto ni = static_cast<std::int64_t>(n);
        std::vector<std::int64_t> diff(n, 0), rowsum(n, 0), sad(n, 0);
        _refBest.assign(n, 1 << 28);
        _refBestd.assign(n, -1);
        for (std::int64_t d = 0; d < _maxd; ++d) {
            for (std::int64_t j = 0; j < ni - d; ++j) {
                diff[static_cast<std::size_t>(d + j)] = std::llabs(
                    _left.getI(static_cast<std::uint64_t>(d + j)) -
                    _right.getI(static_cast<std::uint64_t>(j)));
            }
            for (std::int64_t p = 1; p < ni - 1; ++p) {
                rowsum[static_cast<std::size_t>(p)] =
                    diff[static_cast<std::size_t>(p - 1)] +
                    diff[static_cast<std::size_t>(p)] +
                    diff[static_cast<std::size_t>(p + 1)];
            }
            for (std::int64_t p = _w; p < ni - _w; ++p) {
                sad[static_cast<std::size_t>(p)] =
                    rowsum[static_cast<std::size_t>(p - _w)] +
                    rowsum[static_cast<std::size_t>(p)] +
                    rowsum[static_cast<std::size_t>(p + _w)];
            }
            for (std::int64_t p = _w; p < ni - _w; ++p) {
                const auto pi = static_cast<std::size_t>(p);
                if (sad[pi] < _refBest[pi]) {
                    _refBest[pi] = sad[pi];
                    _refBestd[pi] = d;
                }
            }
        }

        {
            KernelBuilder kb("dis_absdiff");
            const int o_l = kb.object("left", n, 4, false);
            const int o_r = kb.object("right", n, 4, false);
            const int o_d = kb.object("diff", n, 4, false);
            const int p_d = kb.param("d");
            const int p_trip = kb.param("trip");
            kb.loopFromParam(p_trip);
            auto l = kb.load(o_l, kb.affineP(0, 1, {{p_d, 1}}));
            auto r = kb.load(o_r, kb.affine(0, 1));
            kb.store(o_d, kb.affineP(0, 1, {{p_d, 1}}),
                     kb.iabs(kb.isub(l, r)));
            _kAbsdiff = kb.build();
        }
        {
            KernelBuilder kb("dis_rowsum");
            const int o_d = kb.object("diff", n, 4, false);
            const int o_rs = kb.object("rowsum", n, 4, false);
            kb.loopStatic(_h * _w - 2);
            auto a = kb.load(o_d, kb.affine(0, 1));
            auto b = kb.load(o_d, kb.affine(1, 1));
            auto c = kb.load(o_d, kb.affine(2, 1));
            kb.store(o_rs, kb.affine(1, 1),
                     kb.iadd(kb.iadd(a, b), c));
            _kRowsum = kb.build();
        }
        {
            KernelBuilder kb("dis_colsum");
            const int o_rs = kb.object("rowsum", n, 4, false);
            const int o_s = kb.object("sad", n, 4, false);
            kb.loopStatic(_h * _w - 2 * _w);
            auto a = kb.load(o_rs, kb.affine(0, 1));
            auto b = kb.load(o_rs, kb.affine(_w, 1));
            auto c = kb.load(o_rs, kb.affine(2 * _w, 1));
            kb.store(o_s, kb.affine(_w, 1),
                     kb.iadd(kb.iadd(a, b), c));
            _kColsum = kb.build();
        }
        {
            KernelBuilder kb("dis_min");
            const int o_s = kb.object("sad", n, 4, false);
            const int o_b = kb.object("best", n, 4, false);
            const int o_bd = kb.object("bestd", n, 4, false);
            const int p_d = kb.param("d");
            kb.loopStatic(_h * _w - 2 * _w);
            auto s = kb.load(o_s, kb.affine(_w, 1));
            auto b = kb.load(o_b, kb.affine(_w, 1));
            auto lt = kb.compute(OpCode::ICmpLt, s, b);
            kb.store(o_b, kb.affine(_w, 1), kb.select(lt, s, b));
            auto bd = kb.load(o_bd, kb.affine(_w, 1));
            kb.store(o_bd, kb.affine(_w, 1),
                     kb.select(lt, kb.paramValue(p_d), bd));
            _kMin = kb.build();
        }
    }

    void
    run(ExecContext &ctx) override
    {
        const std::int64_t n = _h * _w;
        for (std::int64_t d = 0; d < _maxd; ++d) {
            ctx.invoke(_kAbsdiff, {_left, _right, _diff},
                       {ExecContext::wi(d), ExecContext::wi(n - d)});
            ctx.invoke(_kRowsum, {_diff, _rowsum}, {});
            ctx.invoke(_kColsum, {_rowsum, _sad}, {});
            ctx.invoke(_kMin, {_sad, _best, _bestd},
                       {ExecContext::wi(d)});
            ctx.hostOps(5);
        }
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return arrayMatchesI(_best, _refBest) &&
               arrayMatchesI(_bestd, _refBestd);
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kAbsdiff, &_kRowsum, &_kColsum, &_kMin};
    }

  private:
    std::int64_t _h, _w, _maxd;
    ArrayRef _left, _right, _diff, _rowsum, _sad, _best, _bestd;
    Kernel _kAbsdiff, _kRowsum, _kColsum, _kMin;
    std::vector<std::int64_t> _refBest, _refBestd;
};

/** Feature tracking: gradients, structure tensor, corner response. */
class Tracking : public Workload
{
  public:
    explicit Tracking(double scale)
        : _h(scaled(144, scale, 16)), _w(scaled(176, scale, 16))
    {
    }

    std::string name() const override { return "tra"; }

    std::uint64_t arenaBytes() const override
    {
        return 5ULL * _h * _w * 4 + (8 << 20);
    }

    void
    setup(System &sys) override
    {
        const auto n = static_cast<std::uint64_t>(_h * _w);
        _img = sys.alloc("img", n, 4, true);
        _gx = sys.alloc("gx", n, 4, true);
        _gy = sys.alloc("gy", n, 4, true);
        _resp = sys.alloc("resp", n, 4, true);
        _mask = sys.alloc("mask", n, 4, false);

        sim::Rng rng(37);
        for (std::uint64_t i = 0; i < n; ++i)
            _img.setF(i, rng.nextDouble());
        for (std::uint64_t i = 0; i < n; ++i) {
            _gx.setF(i, 0.0);
            _gy.setF(i, 0.0);
            _resp.setF(i, 0.0);
            _mask.setI(i, 0);
        }

        // Reference (float32 arithmetic via the backend on the way in
        // and out; intermediate math replayed in double then narrowed
        // exactly like the 4-byte stores do).
        const auto ni = static_cast<std::int64_t>(n);
        std::vector<float> img(n), gx(n, 0.0f), gy(n, 0.0f),
            resp(n, 0.0f);
        for (std::uint64_t i = 0; i < n; ++i)
            img[i] = static_cast<float>(_img.getF(i));
        for (std::int64_t p = _w + 1; p < ni - _w - 1; ++p) {
            const auto pi = static_cast<std::size_t>(p);
            gx[pi] = static_cast<float>(
                (static_cast<double>(img[pi + 1]) -
                 static_cast<double>(img[pi - 1])) *
                0.5);
            gy[pi] = static_cast<float>(
                (static_cast<double>(
                     img[pi + static_cast<std::size_t>(_w)]) -
                 static_cast<double>(
                     img[pi - static_cast<std::size_t>(_w)])) *
                0.5);
        }
        auto sq = [](double v) { return v * v; };
        for (std::int64_t p = 1; p < ni - 1; ++p) {
            const auto pi = static_cast<std::size_t>(p);
            double xx = sq(gx[pi - 1]);
            xx = xx + sq(gx[pi]);
            xx = xx + sq(gx[pi + 1]);
            double yy = sq(gy[pi - 1]);
            yy = yy + sq(gy[pi]);
            yy = yy + sq(gy[pi + 1]);
            double xy = static_cast<double>(gx[pi - 1]) * gy[pi - 1];
            xy = xy + static_cast<double>(gx[pi]) * gy[pi];
            xy = xy + static_cast<double>(gx[pi + 1]) * gy[pi + 1];
            const double det = xx * yy - xy * xy;
            const double tr = xx + yy;
            resp[pi] = static_cast<float>(det - 0.04 * tr * tr);
        }
        _refMask.assign(n, 0);
        for (std::int64_t p = 1; p < ni - 1; ++p) {
            const auto pi = static_cast<std::size_t>(p);
            const bool over = resp[pi] > 1e-4f;
            const bool peak =
                resp[pi] >= resp[pi - 1] && resp[pi] >= resp[pi + 1];
            _refMask[pi] = (over && peak) ? 1 : 0;
        }
        _refResp.assign(n, 0.0);
        for (std::uint64_t i = 0; i < n; ++i)
            _refResp[i] = resp[i];

        {
            KernelBuilder kb("tra_grad");
            const int o_i = kb.object("img", n, 4, true);
            const int o_gx = kb.object("gx", n, 4, true);
            const int o_gy = kb.object("gy", n, 4, true);
            kb.loopStatic(_h * _w - 2 * _w - 2);
            const std::int64_t off = _w + 1;
            auto xr = kb.load(o_i, kb.affine(off + 1, 1));
            auto xl = kb.load(o_i, kb.affine(off - 1, 1));
            auto yd = kb.load(o_i, kb.affine(off + _w, 1));
            auto yu = kb.load(o_i, kb.affine(off - _w, 1));
            kb.store(o_gx, kb.affine(off, 1),
                     kb.fmul(kb.fsub(xr, xl), kb.constFloat(0.5)));
            kb.store(o_gy, kb.affine(off, 1),
                     kb.fmul(kb.fsub(yd, yu), kb.constFloat(0.5)));
            _kGrad = kb.build();
        }
        {
            KernelBuilder kb("tra_resp");
            const int o_gx = kb.object("gx", n, 4, true);
            const int o_gy = kb.object("gy", n, 4, true);
            const int o_r = kb.object("resp", n, 4, true);
            kb.loopStatic(_h * _w - 2);
            auto x0 = kb.load(o_gx, kb.affine(0, 1));
            auto x1 = kb.load(o_gx, kb.affine(1, 1));
            auto x2 = kb.load(o_gx, kb.affine(2, 1));
            auto y0 = kb.load(o_gy, kb.affine(0, 1));
            auto y1 = kb.load(o_gy, kb.affine(1, 1));
            auto y2 = kb.load(o_gy, kb.affine(2, 1));
            auto xx = kb.fadd(kb.fadd(kb.fmul(x0, x0), kb.fmul(x1, x1)),
                              kb.fmul(x2, x2));
            auto yy = kb.fadd(kb.fadd(kb.fmul(y0, y0), kb.fmul(y1, y1)),
                              kb.fmul(y2, y2));
            auto xy = kb.fadd(kb.fadd(kb.fmul(x0, y0), kb.fmul(x1, y1)),
                              kb.fmul(x2, y2));
            auto det = kb.fsub(kb.fmul(xx, yy), kb.fmul(xy, xy));
            auto tr = kb.fadd(xx, yy);
            auto tr2 = kb.fmul(tr, tr);
            kb.store(o_r, kb.affine(1, 1),
                     kb.fsub(det, kb.fmul(kb.constFloat(0.04), tr2)));
            _kResp = kb.build();
        }
        {
            KernelBuilder kb("tra_thresh");
            const int o_r = kb.object("resp", n, 4, true);
            const int o_m = kb.object("mask", n, 4, false);
            kb.loopStatic(_h * _w - 2);
            auto r0 = kb.load(o_r, kb.affine(0, 1));
            auto r1 = kb.load(o_r, kb.affine(1, 1));
            auto r2 = kb.load(o_r, kb.affine(2, 1));
            auto over =
                kb.compute(OpCode::FCmpLt, kb.constFloat(1e-4), r1);
            auto ge0 = kb.compute(OpCode::FCmpLe, r0, r1);
            auto ge2 = kb.compute(OpCode::FCmpLe, r2, r1);
            auto both = kb.compute(OpCode::IAnd, ge0, ge2);
            kb.store(o_m, kb.affine(1, 1),
                     kb.compute(OpCode::IAnd, over, both));
            _kThresh = kb.build();
        }
    }

    void
    run(ExecContext &ctx) override
    {
        ctx.invoke(_kGrad, {_img, _gx, _gy}, {});
        ctx.invoke(_kResp, {_gx, _gy, _resp}, {});
        ctx.invoke(_kThresh, {_resp, _mask}, {});
        ctx.hostOps(6);
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        if (!arrayMatchesI(_mask, _refMask))
            return false;
        for (std::uint64_t i = 0; i < _resp.count; ++i) {
            if (static_cast<float>(_resp.getF(i)) !=
                static_cast<float>(_refResp[i]))
                return false;
        }
        return true;
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kGrad, &_kResp, &_kThresh};
    }

  private:
    std::int64_t _h, _w;
    ArrayRef _img, _gx, _gy, _resp, _mask;
    Kernel _kGrad, _kResp, _kThresh;
    std::vector<std::int64_t> _refMask;
    std::vector<double> _refResp;
};

/** PCA: column-major mean and covariance reductions. */
class Pca : public Workload
{
  public:
    explicit Pca(double scale)
        : _rows(scaled(1024, scale, 32)), _cols(scaled(32, scale, 6))
    {
    }

    std::string name() const override { return "pca"; }

    std::uint64_t arenaBytes() const override
    {
        return static_cast<std::uint64_t>(_rows) * _cols * 8 +
               static_cast<std::uint64_t>(_cols) * _cols * 8 +
               static_cast<std::uint64_t>(_cols) * 8 + (8 << 20);
    }

    void
    setup(System &sys) override
    {
        const auto rc = static_cast<std::uint64_t>(_rows) *
                        static_cast<std::uint64_t>(_cols);
        _data = sys.alloc("data", rc, 8, true);
        _mean = sys.alloc("mean", static_cast<std::uint64_t>(_cols), 8,
                          true);
        _cov = sys.alloc("cov",
                         static_cast<std::uint64_t>(_cols) * _cols, 8,
                         true);
        sim::Rng rng(41);
        for (std::uint64_t i = 0; i < rc; ++i)
            _data.setF(i, rng.nextDouble() * 10.0);

        // Reference.
        _refMean.assign(static_cast<std::size_t>(_cols), 0.0);
        for (std::int64_t j = 0; j < _cols; ++j) {
            double s = 0.0;
            for (std::int64_t i = 0; i < _rows; ++i)
                s = s + _data.getF(static_cast<std::uint64_t>(
                        i * _cols + j));
            _refMean[static_cast<std::size_t>(j)] =
                s / static_cast<double>(_rows);
        }
        _refCov.assign(static_cast<std::size_t>(_cols * _cols), 0.0);
        for (std::int64_t j = 0; j < _cols; ++j) {
            for (std::int64_t k = j; k < _cols; ++k) {
                double s = 0.0;
                for (std::int64_t i = 0; i < _rows; ++i) {
                    const double a =
                        _data.getF(static_cast<std::uint64_t>(
                            i * _cols + j)) -
                        _refMean[static_cast<std::size_t>(j)];
                    const double b =
                        _data.getF(static_cast<std::uint64_t>(
                            i * _cols + k)) -
                        _refMean[static_cast<std::size_t>(k)];
                    s = s + a * b;
                }
                const double c = s / static_cast<double>(_rows - 1);
                _refCov[static_cast<std::size_t>(j * _cols + k)] = c;
                _refCov[static_cast<std::size_t>(k * _cols + j)] = c;
            }
        }

        {
            KernelBuilder kb("pca_mean");
            const int o_d = kb.object("data", rc, 8, true);
            const int p_col = kb.param("col");
            kb.loopStatic(_rows);
            auto sum = kb.carry(Word{.f = 0.0}, true, "sum");
            auto v = kb.load(o_d, kb.affineP(0, _cols, {{p_col, 1}}));
            kb.setCarry(sum, kb.fadd(sum, v));
            kb.markResult(sum);
            _kMean = kb.build();
        }
        {
            KernelBuilder kb("pca_cov");
            const int o_d = kb.object("data", rc, 8, true);
            const int p_c1 = kb.param("col1");
            const int p_c2 = kb.param("col2");
            const int p_m1 = kb.param("mean1");
            const int p_m2 = kb.param("mean2");
            kb.loopStatic(_rows);
            auto sum = kb.carry(Word{.f = 0.0}, true, "sum");
            auto a = kb.fsub(kb.load(o_d, kb.affineP(0, _cols,
                                                     {{p_c1, 1}})),
                             kb.paramValue(p_m1));
            auto b = kb.fsub(kb.load(o_d, kb.affineP(0, _cols,
                                                     {{p_c2, 1}})),
                             kb.paramValue(p_m2));
            kb.setCarry(sum, kb.fadd(sum, kb.fmul(a, b)));
            kb.markResult(sum);
            _kCov = kb.build();
        }
    }

    void
    run(ExecContext &ctx) override
    {
        for (std::int64_t j = 0; j < _cols; ++j) {
            ctx.invoke(_kMean, {_data}, {ExecContext::wi(j)});
            ctx.hostStoreF(_mean, static_cast<std::uint64_t>(j),
                           ctx.resultF(0) /
                               static_cast<double>(_rows));
            ctx.hostOps(4);
        }
        for (std::int64_t j = 0; j < _cols; ++j) {
            const double mj =
                ctx.hostLoadF(_mean, static_cast<std::uint64_t>(j));
            for (std::int64_t k = j; k < _cols; ++k) {
                const double mk =
                    ctx.hostLoadF(_mean, static_cast<std::uint64_t>(k));
                ctx.invoke(_kCov, {_data},
                           {ExecContext::wi(j), ExecContext::wi(k),
                            ExecContext::wf(mj), ExecContext::wf(mk)});
                const double c =
                    ctx.resultF(0) / static_cast<double>(_rows - 1);
                ctx.hostStoreF(_cov,
                               static_cast<std::uint64_t>(j * _cols + k),
                               c);
                ctx.hostStoreF(_cov,
                               static_cast<std::uint64_t>(k * _cols + j),
                               c);
                ctx.hostOps(6);
            }
        }
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return arrayMatchesF(_mean, _refMean, 0.0) &&
               arrayMatchesF(_cov, _refCov, 0.0);
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kMean, &_kCov};
    }

  private:
    std::int64_t _rows, _cols;
    ArrayRef _data, _mean, _cov;
    Kernel _kMean, _kCov;
    std::vector<double> _refMean, _refCov;
};

} // namespace

std::unique_ptr<Workload>
makeDisparity(double scale)
{
    return std::make_unique<Disparity>(scale);
}

std::unique_ptr<Workload>
makeTracking(double scale)
{
    return std::make_unique<Tracking>(scale);
}

std::unique_ptr<Workload>
makePca(double scale)
{
    return std::make_unique<Pca>(scale);
}

} // namespace distda::workloads
