/**
 * @file
 * Polybench workloads of Table IV: fdtd-2d (multi-array stencil),
 * cholesky (column strides, multi-stream reduction), adi (serialized
 * row/column recurrences) and seidel-2d (in-place 9-point stencil with
 * loop-carried in-row dependence).
 *
 * Each workload's native reference replays the exact operation order of
 * its kernels so floating-point outputs match bit-for-bit.
 */

#include <cmath>
#include <vector>

#include "src/workloads/common.hh"
#include "src/workloads/workload.hh"

namespace distda::workloads
{

using compiler::Kernel;
using compiler::KernelBuilder;
using compiler::OpCode;
using compiler::Word;
using driver::ExecContext;
using driver::System;
using engine::ArrayRef;

namespace
{

/** Deterministic pseudo-random matrix fill. */
void
fillMatrix(ArrayRef &arr, std::uint64_t seed, double lo = 0.0,
           double hi = 1.0)
{
    sim::Rng rng(seed);
    for (std::uint64_t i = 0; i < arr.count; ++i)
        arr.setF(i, lo + (hi - lo) * rng.nextDouble());
}

/** Seidel-2D: T in-place sweeps of a 9-point average over an NxN grid. */
class Seidel2d : public Workload
{
  public:
    explicit Seidel2d(double scale)
        : _n(scaled(360, scale, 16)), _t(2)
    {
    }

    std::string name() const override { return "sei"; }

    std::uint64_t arenaBytes() const override
    {
        return static_cast<std::uint64_t>(_n) * _n * 8 + (8 << 20);
    }

    void
    setup(System &sys) override
    {
        const auto n = static_cast<std::uint64_t>(_n);
        _a = sys.alloc("A", n * n, 8, true);
        fillMatrix(_a, 3);

        // Reference replaying the kernel's add order.
        _ref.resize(n * n);
        for (std::uint64_t i = 0; i < n * n; ++i)
            _ref[i] = _a.getF(i);
        auto at = [this](std::int64_t r, std::int64_t c) -> double & {
            return _ref[static_cast<std::size_t>(r * _n + c)];
        };
        for (int t = 0; t < _t; ++t) {
            for (std::int64_t i = 1; i < _n - 1; ++i) {
                for (std::int64_t j = 1; j < _n - 1; ++j) {
                    double s = at(i - 1, j - 1);
                    s = s + at(i - 1, j);
                    s = s + at(i - 1, j + 1);
                    s = s + at(i, j - 1);
                    s = s + at(i, j);
                    s = s + at(i, j + 1);
                    s = s + at(i + 1, j - 1);
                    s = s + at(i + 1, j);
                    s = s + at(i + 1, j + 1);
                    at(i, j) = s / 9.0;
                }
            }
        }

        KernelBuilder kb("sei_row");
        const auto nn = static_cast<std::uint64_t>(_n) *
                        static_cast<std::uint64_t>(_n);
        const int o_a = kb.object("A", nn, 8, true);
        const int p_rb = kb.param("rowBase"); // i * N
        kb.loopStatic(_n - 2);
        auto tap = [&](std::int64_t dr, std::int64_t dc) {
            return kb.load(o_a, kb.affineP(dr * _n + 1 + dc, 1,
                                           {{p_rb, 1}}));
        };
        auto s = tap(-1, -1);
        s = kb.fadd(s, tap(-1, 0));
        s = kb.fadd(s, tap(-1, 1));
        s = kb.fadd(s, tap(0, -1));
        s = kb.fadd(s, tap(0, 0));
        s = kb.fadd(s, tap(0, 1));
        s = kb.fadd(s, tap(1, -1));
        s = kb.fadd(s, tap(1, 0));
        s = kb.fadd(s, tap(1, 1));
        auto v = kb.fdiv(s, kb.constFloat(9.0));
        kb.store(o_a, kb.affineP(1, 1, {{p_rb, 1}}), v);
        _kernel = kb.build();
    }

    void
    run(ExecContext &ctx) override
    {
        for (int t = 0; t < _t; ++t) {
            for (std::int64_t i = 1; i < _n - 1; ++i) {
                ctx.invoke(_kernel, {_a}, {ExecContext::wi(i * _n)});
                ctx.hostOps(3);
            }
        }
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return arrayMatchesF(_a, _ref, 0.0);
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kernel};
    }

  private:
    std::int64_t _n;
    int _t;
    ArrayRef _a;
    Kernel _kernel;
    std::vector<double> _ref;
};

/** FDTD-2D: electromagnetic stencil over ex/ey/hz with a source term. */
class Fdtd2d : public Workload
{
  public:
    explicit Fdtd2d(double scale)
        : _n(scaled(192, scale, 16)), _t(scaled(6, scale, 2))
    {
    }

    std::string name() const override { return "fdt"; }

    std::uint64_t arenaBytes() const override
    {
        return 3ULL * _n * _n * 8 + (8 << 20);
    }

    void
    setup(System &sys) override
    {
        const auto nn = static_cast<std::uint64_t>(_n) *
                        static_cast<std::uint64_t>(_n);
        _ex = sys.alloc("ex", nn, 8, true);
        _ey = sys.alloc("ey", nn, 8, true);
        _hz = sys.alloc("hz", nn, 8, true);
        fillMatrix(_ex, 5);
        fillMatrix(_ey, 6);
        fillMatrix(_hz, 7);

        // Reference.
        _rex.resize(nn);
        _rey.resize(nn);
        _rhz.resize(nn);
        for (std::uint64_t i = 0; i < nn; ++i) {
            _rex[i] = _ex.getF(i);
            _rey[i] = _ey.getF(i);
            _rhz[i] = _hz.getF(i);
        }
        const auto n = _n;
        for (int t = 0; t < _t; ++t) {
            const double fict = static_cast<double>(t);
            for (std::int64_t j = 0; j < n; ++j)
                _rey[static_cast<std::size_t>(j)] = fict;
            for (std::int64_t i = 1; i < n; ++i) {
                for (std::int64_t j = 0; j < n; ++j) {
                    const auto p = static_cast<std::size_t>(i * n + j);
                    _rey[p] = _rey[p] -
                              0.5 * (_rhz[p] -
                                     _rhz[p - static_cast<std::size_t>(
                                                  n)]);
                }
            }
            for (std::int64_t i = 0; i < n; ++i) {
                for (std::int64_t j = 1; j < n; ++j) {
                    const auto p = static_cast<std::size_t>(i * n + j);
                    _rex[p] = _rex[p] - 0.5 * (_rhz[p] - _rhz[p - 1]);
                }
            }
            for (std::int64_t i = 0; i < n - 1; ++i) {
                for (std::int64_t j = 0; j < n - 1; ++j) {
                    const auto p = static_cast<std::size_t>(i * n + j);
                    _rhz[p] =
                        _rhz[p] -
                        0.7 * ((_rex[p + 1] - _rex[p]) +
                               (_rey[p + static_cast<std::size_t>(n)] -
                                _rey[p]));
                }
            }
        }

        {
            KernelBuilder kb("fdt_ey0");
            const int o_ey = kb.object("ey", nn, 8, true);
            const int p_f = kb.param("fict");
            kb.loopStatic(_n);
            kb.store(o_ey, kb.affine(0, 1), kb.paramValue(p_f));
            _kEy0 = kb.build();
        }
        {
            KernelBuilder kb("fdt_ey");
            const int o_ey = kb.object("ey", nn, 8, true);
            const int o_hz = kb.object("hz", nn, 8, true);
            const int p_rb = kb.param("rowBase");
            kb.loopStatic(_n);
            auto hz0 = kb.load(o_hz, kb.affineP(0, 1, {{p_rb, 1}}));
            auto hz1 = kb.load(o_hz, kb.affineP(-_n, 1, {{p_rb, 1}}));
            auto diff = kb.fsub(hz0, hz1);
            auto half = kb.fmul(kb.constFloat(0.5), diff);
            auto ey = kb.load(o_ey, kb.affineP(0, 1, {{p_rb, 1}}));
            kb.store(o_ey, kb.affineP(0, 1, {{p_rb, 1}}),
                     kb.fsub(ey, half));
            _kEy = kb.build();
        }
        {
            KernelBuilder kb("fdt_ex");
            const int o_ex = kb.object("ex", nn, 8, true);
            const int o_hz = kb.object("hz", nn, 8, true);
            const int p_rb = kb.param("rowBase");
            kb.loopStatic(_n - 1);
            auto hz0 = kb.load(o_hz, kb.affineP(1, 1, {{p_rb, 1}}));
            auto hz1 = kb.load(o_hz, kb.affineP(0, 1, {{p_rb, 1}}));
            auto half = kb.fmul(kb.constFloat(0.5), kb.fsub(hz0, hz1));
            auto ex = kb.load(o_ex, kb.affineP(1, 1, {{p_rb, 1}}));
            kb.store(o_ex, kb.affineP(1, 1, {{p_rb, 1}}),
                     kb.fsub(ex, half));
            _kEx = kb.build();
        }
        {
            KernelBuilder kb("fdt_hz");
            const int o_ex = kb.object("ex", nn, 8, true);
            const int o_ey = kb.object("ey", nn, 8, true);
            const int o_hz = kb.object("hz", nn, 8, true);
            const int p_rb = kb.param("rowBase");
            kb.loopStatic(_n - 1);
            auto ex1 = kb.load(o_ex, kb.affineP(1, 1, {{p_rb, 1}}));
            auto ex0 = kb.load(o_ex, kb.affineP(0, 1, {{p_rb, 1}}));
            auto ey1 = kb.load(o_ey, kb.affineP(_n, 1, {{p_rb, 1}}));
            auto ey0 = kb.load(o_ey, kb.affineP(0, 1, {{p_rb, 1}}));
            auto sum = kb.fadd(kb.fsub(ex1, ex0), kb.fsub(ey1, ey0));
            auto term = kb.fmul(kb.constFloat(0.7), sum);
            auto hz = kb.load(o_hz, kb.affineP(0, 1, {{p_rb, 1}}));
            kb.store(o_hz, kb.affineP(0, 1, {{p_rb, 1}}),
                     kb.fsub(hz, term));
            _kHz = kb.build();
        }
    }

    void
    run(ExecContext &ctx) override
    {
        for (int t = 0; t < _t; ++t) {
            ctx.invoke(_kEy0, {_ey},
                       {ExecContext::wf(static_cast<double>(t))});
            for (std::int64_t i = 1; i < _n; ++i) {
                ctx.invoke(_kEy, {_ey, _hz},
                           {ExecContext::wi(i * _n)});
                ctx.hostOps(3);
            }
            for (std::int64_t i = 0; i < _n; ++i) {
                ctx.invoke(_kEx, {_ex, _hz},
                           {ExecContext::wi(i * _n)});
                ctx.hostOps(3);
            }
            for (std::int64_t i = 0; i < _n - 1; ++i) {
                ctx.invoke(_kHz, {_ex, _ey, _hz},
                           {ExecContext::wi(i * _n)});
                ctx.hostOps(3);
            }
        }
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return arrayMatchesF(_ex, _rex, 0.0) &&
               arrayMatchesF(_ey, _rey, 0.0) &&
               arrayMatchesF(_hz, _rhz, 0.0);
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kEy0, &_kEy, &_kEx, &_kHz};
    }

  private:
    std::int64_t _n;
    int _t;
    ArrayRef _ex, _ey, _hz;
    Kernel _kEy0, _kEy, _kEx, _kHz;
    std::vector<double> _rex, _rey, _rhz;
};

/** Cholesky: in-place factorization with column-strided updates. */
class Cholesky : public Workload
{
  public:
    explicit Cholesky(double scale) : _n(scaled(192, scale, 12)) {}

    std::string name() const override { return "cho"; }

    std::uint64_t arenaBytes() const override
    {
        return static_cast<std::uint64_t>(_n) * _n * 8 + (8 << 20);
    }

    void
    setup(System &sys) override
    {
        const auto nn = static_cast<std::uint64_t>(_n) *
                        static_cast<std::uint64_t>(_n);
        _a = sys.alloc("A", nn, 8, true);
        // Symmetric positive-definite input.
        sim::Rng rng(13);
        std::vector<double> m(nn);
        for (std::int64_t i = 0; i < _n; ++i) {
            for (std::int64_t j = 0; j <= i; ++j) {
                const double v = rng.nextDouble() * 0.1;
                m[static_cast<std::size_t>(i * _n + j)] = v;
                m[static_cast<std::size_t>(j * _n + i)] = v;
            }
            m[static_cast<std::size_t>(i * _n + i)] +=
                static_cast<double>(_n);
        }
        for (std::uint64_t i = 0; i < nn; ++i)
            _a.setF(i, m[i]);

        // Reference: row-oriented Cholesky whose innermost loop is the
        // multi-stream dot-product reduction the paper highlights.
        _ref = m;
        auto at = [this](std::int64_t r, std::int64_t c) -> double & {
            return _ref[static_cast<std::size_t>(r * _n + c)];
        };
        for (std::int64_t i = 0; i < _n; ++i) {
            for (std::int64_t j = 0; j <= i; ++j) {
                double sum = 0.0;
                for (std::int64_t k = 0; k < j; ++k)
                    sum = sum + at(i, k) * at(j, k);
                if (i == j)
                    at(i, j) = std::sqrt(at(i, j) - sum);
                else
                    at(i, j) = (at(i, j) - sum) / at(j, j);
            }
        }

        {
            KernelBuilder kb("cho_dot");
            const int o_a = kb.object("A", nn, 8, true);
            const int p_ri = kb.param("rowI"); // i * N
            const int p_rj = kb.param("rowJ"); // j * N
            const int p_trip = kb.param("trip");
            kb.loopFromParam(p_trip);
            auto sum = kb.carry(Word{.f = 0.0}, true, "sum");
            auto aik = kb.load(o_a, kb.affineP(0, 1, {{p_ri, 1}}));
            auto ajk = kb.load(o_a, kb.affineP(0, 1, {{p_rj, 1}}));
            kb.setCarry(sum, kb.fadd(sum, kb.fmul(aik, ajk)));
            kb.markResult(sum);
            _kDot = kb.build();
        }
    }

    void
    run(ExecContext &ctx) override
    {
        for (std::int64_t i = 0; i < _n; ++i) {
            for (std::int64_t j = 0; j <= i; ++j) {
                double sum = 0.0;
                if (j > 0) {
                    ctx.invoke(_kDot, {_a},
                               {ExecContext::wi(i * _n),
                                ExecContext::wi(j * _n),
                                ExecContext::wi(j)});
                    sum = ctx.resultF(0);
                }
                const auto ij = static_cast<std::uint64_t>(i * _n + j);
                const double aij = ctx.hostLoadF(_a, ij);
                if (i == j) {
                    ctx.hostStoreF(_a, ij, std::sqrt(aij - sum));
                } else {
                    const double djj = ctx.hostLoadF(
                        _a, static_cast<std::uint64_t>(j * _n + j));
                    ctx.hostStoreF(_a, ij, (aij - sum) / djj);
                }
                ctx.hostOps(6);
            }
        }
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return arrayMatchesF(_a, _ref, 0.0);
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kDot};
    }

  private:
    std::int64_t _n;
    ArrayRef _a;
    Kernel _kDot;
    std::vector<double> _ref;
};

/** ADI-style alternating row/column sweeps with recurrences. */
class Adi : public Workload
{
  public:
    explicit Adi(double scale)
        : _n(scaled(224, scale, 16)), _t(2)
    {
    }

    std::string name() const override { return "adi"; }

    std::uint64_t arenaBytes() const override
    {
        return 2ULL * _n * _n * 8 + (8 << 20);
    }

    void
    setup(System &sys) override
    {
        const auto nn = static_cast<std::uint64_t>(_n) *
                        static_cast<std::uint64_t>(_n);
        _u = sys.alloc("u", nn, 8, true);
        _p = sys.alloc("p", nn, 8, true);
        fillMatrix(_u, 17);
        fillMatrix(_p, 18);

        _ru.resize(nn);
        _rp.resize(nn);
        for (std::uint64_t i = 0; i < nn; ++i) {
            _ru[i] = _u.getF(i);
            _rp[i] = _p.getF(i);
        }
        for (int t = 0; t < _t; ++t) {
            // Row forward sweeps.
            for (std::int64_t i = 0; i < _n; ++i) {
                double prev = 0.0;
                for (std::int64_t j = 0; j < _n; ++j) {
                    const auto idx =
                        static_cast<std::size_t>(i * _n + j);
                    const double v =
                        (_ru[idx] + 0.5 * prev) * 0.25;
                    _rp[idx] = v;
                    prev = v;
                }
            }
            // Column backward sweeps.
            for (std::int64_t i = 0; i < _n; ++i) {
                double prev = 0.0;
                for (std::int64_t j = 0; j < _n; ++j) {
                    const auto idx = static_cast<std::size_t>(
                        (_n - 1 - j) * _n + i);
                    const double v =
                        (_rp[idx] + 0.4 * prev) * 0.3;
                    _ru[idx] = v;
                    prev = v;
                }
            }
        }

        {
            KernelBuilder kb("adi_row");
            const auto cells = nn;
            const int o_u = kb.object("u", cells, 8, true);
            const int o_p = kb.object("p", cells, 8, true);
            const int p_rb = kb.param("rowBase");
            kb.loopStatic(_n);
            auto prev = kb.carry(Word{.f = 0.0}, true, "prev");
            auto uv = kb.load(o_u, kb.affineP(0, 1, {{p_rb, 1}}));
            auto term = kb.fmul(kb.constFloat(0.5), prev);
            auto v = kb.fmul(kb.fadd(uv, term), kb.constFloat(0.25));
            kb.store(o_p, kb.affineP(0, 1, {{p_rb, 1}}), v);
            kb.setCarry(prev, v);
            _kRow = kb.build();
        }
        {
            KernelBuilder kb("adi_col");
            const auto cells = nn;
            const int o_u = kb.object("u", cells, 8, true);
            const int o_p = kb.object("p", cells, 8, true);
            const int p_cb = kb.param("colBase"); // (N-1)*N + i
            kb.loopStatic(_n);
            auto prev = kb.carry(Word{.f = 0.0}, true, "prev");
            auto pv = kb.load(o_p, kb.affineP(0, -_n, {{p_cb, 1}}));
            auto term = kb.fmul(kb.constFloat(0.4), prev);
            auto v = kb.fmul(kb.fadd(pv, term), kb.constFloat(0.3));
            kb.store(o_u, kb.affineP(0, -_n, {{p_cb, 1}}), v);
            kb.setCarry(prev, v);
            _kCol = kb.build();
        }
    }

    void
    run(ExecContext &ctx) override
    {
        for (int t = 0; t < _t; ++t) {
            for (std::int64_t i = 0; i < _n; ++i) {
                ctx.invoke(_kRow, {_u, _p}, {ExecContext::wi(i * _n)});
                ctx.hostOps(3);
            }
            for (std::int64_t i = 0; i < _n; ++i) {
                ctx.invoke(_kCol, {_u, _p},
                           {ExecContext::wi((_n - 1) * _n + i)});
                ctx.hostOps(3);
            }
        }
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return arrayMatchesF(_u, _ru, 0.0) &&
               arrayMatchesF(_p, _rp, 0.0);
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kRow, &_kCol};
    }

  private:
    std::int64_t _n;
    int _t;
    ArrayRef _u, _p;
    Kernel _kRow, _kCol;
    std::vector<double> _ru, _rp;
};

} // namespace

std::unique_ptr<Workload>
makeSeidel2d(double scale)
{
    return std::make_unique<Seidel2d>(scale);
}

std::unique_ptr<Workload>
makeFdtd2d(double scale)
{
    return std::make_unique<Fdtd2d>(scale);
}

std::unique_ptr<Workload>
makeCholesky(double scale)
{
    return std::make_unique<Cholesky>(scale);
}

std::unique_ptr<Workload>
makeAdi(double scale)
{
    return std::make_unique<Adi>(scale);
}

} // namespace distda::workloads
