/**
 * @file
 * Rodinia dynamic-programming workloads: pathfinder (grid DP over rows
 * with ping-pong cost buffers) and nw (Needleman-Wunsch with in-row
 * carried dependence), per Table IV.
 */

#include <algorithm>
#include <vector>

#include "src/workloads/common.hh"
#include "src/workloads/workload.hh"

namespace distda::workloads
{

using compiler::Kernel;
using compiler::KernelBuilder;
using compiler::OpCode;
using driver::ExecContext;
using driver::System;
using engine::ArrayRef;

namespace
{

/** Pathfinder: row-by-row min-path DP on an RxW cost grid. */
class Pathfinder : public Workload
{
  public:
    explicit Pathfinder(double scale)
        : _w(scaled(2048, scale, 32)), _rows(scaled(192, scale, 8))
    {
    }

    std::string name() const override { return "pf"; }

    std::uint64_t arenaBytes() const override
    {
        return static_cast<std::uint64_t>(_rows) * _w * 4 + _w * 8 +
               (8 << 20);
    }

    void
    setup(System &sys) override
    {
        const auto w = static_cast<std::uint64_t>(_w);
        _wall = sys.alloc("wall",
                          static_cast<std::uint64_t>(_rows) * w, 4,
                          false);
        _bufA = sys.alloc("bufA", w, 4, false);
        _bufB = sys.alloc("bufB", w, 4, false);

        sim::Rng rng(23);
        for (std::uint64_t i = 0; i < _wall.count; ++i)
            _wall.setI(i, static_cast<std::int64_t>(rng.nextBelow(10)));
        for (std::uint64_t j = 0; j < w; ++j)
            _bufA.setI(j, _wall.getI(j));

        // Reference.
        std::vector<std::int64_t> src(w), dst(w);
        for (std::uint64_t j = 0; j < w; ++j)
            src[j] = _wall.getI(j);
        for (std::int64_t r = 1; r < _rows; ++r) {
            for (std::int64_t j = 0; j < _w; ++j) {
                std::int64_t best = src[static_cast<std::size_t>(j)];
                if (j > 0)
                    best = std::min(
                        best, src[static_cast<std::size_t>(j - 1)]);
                if (j < _w - 1)
                    best = std::min(
                        best, src[static_cast<std::size_t>(j + 1)]);
                dst[static_cast<std::size_t>(j)] =
                    _wall.getI(static_cast<std::uint64_t>(r * _w + j)) +
                    best;
            }
            std::swap(src, dst);
        }
        _ref = src;

        KernelBuilder kb("pf_row");
        const int o_wall = kb.object("wall", _wall.count, 4, false);
        const int o_src = kb.object("src", w, 4, false);
        const int o_dst = kb.object("dst", w, 4, false);
        const int p_rb = kb.param("rowBase");
        kb.loopStatic(_w - 2);
        // Inner span j' = j - 1 over [0, W-2): dst[1+j'] uses
        // src[j'..j'+2].
        auto s0 = kb.load(o_src, kb.affine(0, 1));
        auto s1 = kb.load(o_src, kb.affine(1, 1));
        auto s2 = kb.load(o_src, kb.affine(2, 1));
        auto m = kb.imin(kb.imin(s1, s0), s2);
        auto wv = kb.load(o_wall, kb.affineP(1, 1, {{p_rb, 1}}));
        kb.store(o_dst, kb.affine(1, 1), kb.iadd(wv, m));
        _kernel = kb.build();
    }

    void
    run(ExecContext &ctx) override
    {
        ArrayRef src = _bufA, dst = _bufB;
        for (std::int64_t r = 1; r < _rows; ++r) {
            // Grid edges on the host (j = 0 and j = W-1).
            const std::int64_t s0 = ctx.hostLoadI(src, 0);
            const std::int64_t s1 = ctx.hostLoadI(src, 1);
            const std::int64_t w0 = ctx.hostLoadI(
                _wall, static_cast<std::uint64_t>(r * _w));
            ctx.hostStoreI(dst, 0, w0 + std::min(s0, s1));
            ctx.hostOps(4);

            ctx.invoke(_kernel, {_wall, src, dst},
                       {ExecContext::wi(r * _w)});

            const auto wlast = static_cast<std::uint64_t>(_w - 1);
            const std::int64_t sa = ctx.hostLoadI(src, wlast - 1);
            const std::int64_t sb = ctx.hostLoadI(src, wlast);
            const std::int64_t wl = ctx.hostLoadI(
                _wall, static_cast<std::uint64_t>(r * _w) + wlast);
            ctx.hostStoreI(dst, wlast, wl + std::min(sa, sb));
            ctx.hostOps(4);

            std::swap(src, dst);
        }
        _final = src;
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return arrayMatchesI(_final, _ref);
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kernel};
    }

  private:
    std::int64_t _w;
    std::int64_t _rows;
    ArrayRef _wall, _bufA, _bufB, _final;
    Kernel _kernel;
    std::vector<std::int64_t> _ref;
};

/** Needleman-Wunsch DP with diagonal/up/left maxima. */
class Nw : public Workload
{
  public:
    explicit Nw(double scale) : _n(scaled(512, scale, 16)) {}

    std::string name() const override { return "nw"; }

    std::uint64_t arenaBytes() const override
    {
        const auto m = static_cast<std::uint64_t>(_n + 1);
        return m * m * 4 +
               static_cast<std::uint64_t>(_n) * _n * 4 + (8 << 20);
    }

    void
    setup(System &sys) override
    {
        const auto m = static_cast<std::uint64_t>(_n + 1);
        _f = sys.alloc("F", m * m, 4, false);
        _refm = sys.alloc("ref", static_cast<std::uint64_t>(_n) * _n, 4,
                          false);

        sim::Rng rng(29);
        for (std::uint64_t i = 0; i < _refm.count; ++i)
            _refm.setI(i,
                       static_cast<std::int64_t>(rng.nextBelow(21)) -
                           10);
        for (std::uint64_t i = 0; i < m * m; ++i)
            _f.setI(i, 0);
        for (std::int64_t i = 0; i <= _n; ++i) {
            _f.setI(static_cast<std::uint64_t>(i) * m,
                    -penalty * i);
            _f.setI(static_cast<std::uint64_t>(i), -penalty * i);
        }

        // Reference.
        std::vector<std::int64_t> F(m * m, 0);
        for (std::int64_t i = 0; i <= _n; ++i) {
            F[static_cast<std::size_t>(i) * m] = -penalty * i;
            F[static_cast<std::size_t>(i)] = -penalty * i;
        }
        for (std::int64_t i = 1; i <= _n; ++i) {
            for (std::int64_t j = 1; j <= _n; ++j) {
                const auto fm = static_cast<std::int64_t>(m);
                const std::int64_t diag =
                    F[static_cast<std::size_t>((i - 1) * fm + j - 1)] +
                    _refm.getI(static_cast<std::uint64_t>(
                        (i - 1) * _n + j - 1));
                const std::int64_t up =
                    F[static_cast<std::size_t>((i - 1) * fm + j)] -
                    penalty;
                const std::int64_t left =
                    F[static_cast<std::size_t>(i * fm + j - 1)] -
                    penalty;
                F[static_cast<std::size_t>(i * fm + j)] =
                    std::max(std::max(diag, up), left);
            }
        }
        _ref = F;

        KernelBuilder kb("nw_row");
        const int o_f = kb.object("F", m * m, 4, false);
        const int o_ref = kb.object("ref", _refm.count, 4, false);
        const int p_rb = kb.param("rowBase");  // i * (N+1)
        const int p_refb = kb.param("refBase"); // (i-1) * N
        kb.loopStatic(_n);
        const auto fm = static_cast<std::int64_t>(m);
        auto diag0 = kb.load(o_f, kb.affineP(-fm, 1, {{p_rb, 1}}));
        auto rv = kb.load(o_ref, kb.affineP(0, 1, {{p_refb, 1}}));
        auto diag = kb.iadd(diag0, rv);
        auto up = kb.isub(kb.load(o_f, kb.affineP(-fm + 1, 1,
                                                  {{p_rb, 1}})),
                          kb.constInt(penalty));
        auto left = kb.isub(kb.load(o_f, kb.affineP(0, 1, {{p_rb, 1}})),
                            kb.constInt(penalty));
        auto best = kb.imax(kb.imax(diag, up), left);
        kb.store(o_f, kb.affineP(1, 1, {{p_rb, 1}}), best);
        _kernel = kb.build();
    }

    void
    run(ExecContext &ctx) override
    {
        const auto m = static_cast<std::int64_t>(_n + 1);
        for (std::int64_t i = 1; i <= _n; ++i) {
            ctx.invoke(_kernel, {_f, _refm},
                       {ExecContext::wi(i * m),
                        ExecContext::wi((i - 1) * _n)});
            ctx.hostOps(3);
        }
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return arrayMatchesI(_f, _ref);
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kernel};
    }

  private:
    static constexpr std::int64_t penalty = 10;
    std::int64_t _n;
    ArrayRef _f, _refm;
    Kernel _kernel;
    std::vector<std::int64_t> _ref;
};

} // namespace

std::unique_ptr<Workload>
makePathfinder(double scale)
{
    return std::make_unique<Pathfinder>(scale);
}

std::unique_ptr<Workload>
makeNw(double scale)
{
    return std::make_unique<Nw>(scale);
}

} // namespace distda::workloads
