/**
 * @file
 * Workload registry: maps Table IV benchmark names to factories.
 */

#include <map>

#include "src/sim/logging.hh"
#include "src/workloads/workload.hh"

namespace distda::workloads
{

// Factories implemented across the workload translation units.
std::unique_ptr<Workload> makeDisparity(double scale);
std::unique_ptr<Workload> makeTracking(double scale);
std::unique_ptr<Workload> makeFdtd2d(double scale);
std::unique_ptr<Workload> makeCholesky(double scale);
std::unique_ptr<Workload> makeAdi(double scale);
std::unique_ptr<Workload> makeSeidel2d(double scale);
std::unique_ptr<Workload> makePathfinder(double scale);
std::unique_ptr<Workload> makeNw(double scale);
std::unique_ptr<Workload> makeBfs(double scale);
std::unique_ptr<Workload> makePageRank(double scale);
std::unique_ptr<Workload> makePointerChase(double scale);
std::unique_ptr<Workload> makePca(double scale);
std::unique_ptr<Workload> makeSpmv(double scale);

namespace
{

using Factory = std::unique_ptr<Workload> (*)(double);

const std::vector<std::pair<std::string, Factory>> &
registry()
{
    static const std::vector<std::pair<std::string, Factory>> table = {
        {"dis", &makeDisparity},  {"tra", &makeTracking},
        {"fdt", &makeFdtd2d},     {"cho", &makeCholesky},
        {"adi", &makeAdi},        {"sei", &makeSeidel2d},
        {"pf", &makePathfinder},  {"nw", &makeNw},
        {"bfs", &makeBfs},        {"pr", &makePageRank},
        {"pch", &makePointerChase}, {"pca", &makePca},
        {"spmv", &makeSpmv},
    };
    return table;
}

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : registry()) {
        if (name != "spmv") // case study, not in the core 12
            names.push_back(name);
    }
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, double scale)
{
    for (const auto &[wname, factory] : registry()) {
        if (wname == name)
            return factory(scale);
    }
    fatal("unknown workload '%s'", name.c_str());
}

bool
hasWorkload(const std::string &name)
{
    for (const auto &[wname, factory] : registry()) {
        if (wname == name)
            return true;
    }
    return false;
}

} // namespace distda::workloads
