/**
 * @file
 * Graph / irregular-access workloads of Table IV: pointer chase (8MB
 * uniform chain), BFS (MachSuite-style, scale-12 edge-factor-32
 * default at paper scale) and PageRank (serial, Sable-style). BFS and
 * PageRank use an edge-centric synchronous formulation so the whole
 * level/iteration is one innermost-loop offload, exercising the
 * indirect cp_read/cp_write interface path.
 */

#include <algorithm>
#include <vector>

#include "src/workloads/common.hh"
#include "src/workloads/workload.hh"

namespace distda::workloads
{

using compiler::Kernel;
using compiler::KernelBuilder;
using compiler::Word;
using driver::ExecContext;
using driver::System;
using engine::ArrayRef;

namespace
{

/** Pointer chase: serial traversal of a random permutation cycle. */
class PointerChase : public Workload
{
  public:
    explicit PointerChase(double scale)
        : _n(scaled(1 << 20, scale, 1024))
    {
    }

    std::string name() const override { return "pch"; }

    std::uint64_t arenaBytes() const override
    {
        return _n * 8 + (16 << 20);
    }

    void
    setup(System &sys) override
    {
        _next = sys.alloc("next", static_cast<std::uint64_t>(_n), 8,
                          false);
        // A single-cycle random permutation (Sattolo's algorithm).
        std::vector<std::int64_t> perm(static_cast<std::size_t>(_n));
        for (std::int64_t i = 0; i < _n; ++i)
            perm[static_cast<std::size_t>(i)] = i;
        sim::Rng rng(42);
        for (std::int64_t i = _n - 1; i > 0; --i) {
            const auto j = static_cast<std::int64_t>(
                rng.nextBelow(static_cast<std::uint64_t>(i)));
            std::swap(perm[static_cast<std::size_t>(i)],
                      perm[static_cast<std::size_t>(j)]);
        }
        for (std::int64_t i = 0; i < _n; ++i)
            _next.setI(static_cast<std::uint64_t>(i),
                       perm[static_cast<std::size_t>(i)]);

        // Reference: chase _n steps from node 0.
        _refFinal = 0;
        for (std::int64_t s = 0; s < _n; ++s)
            _refFinal = perm[static_cast<std::size_t>(_refFinal)];

        KernelBuilder kb("pch_chase");
        kb.loopStatic(_n);
        const int next_obj =
            kb.object("next", static_cast<std::uint64_t>(_n), 8, false);
        auto ptr = kb.carry(Word{0}, false, "ptr");
        auto nxt = kb.loadIdx(next_obj, ptr);
        kb.setCarry(ptr, nxt);
        kb.markResult(ptr);
        _kernel = kb.build();
    }

    void
    run(ExecContext &ctx) override
    {
        ctx.invoke(_kernel, {_next}, {});
        _simFinal = ctx.resultI(0);
        ctx.hostOps(4);
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return _simFinal == _refFinal;
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kernel};
    }

  private:
    std::int64_t _n;
    ArrayRef _next;
    Kernel _kernel;
    std::int64_t _refFinal = 0;
    std::int64_t _simFinal = -1;
};

/** Deterministic R-MAT-ish edge list for BFS / PageRank. */
void
makeGraph(std::int64_t nodes, std::int64_t edges, sim::Rng &rng,
          std::vector<std::int64_t> &src, std::vector<std::int64_t> &dst)
{
    src.resize(static_cast<std::size_t>(edges));
    dst.resize(static_cast<std::size_t>(edges));
    for (std::int64_t e = 0; e < edges; ++e) {
        // Skewed endpoints approximating an R-MAT degree profile.
        auto pick = [&rng, nodes]() {
            std::int64_t v = 0;
            std::int64_t span = nodes;
            while (span > 1) {
                span /= 2;
                if (rng.nextDouble() < 0.62) {
                    // stay low
                } else {
                    v += span;
                }
            }
            return v;
        };
        src[static_cast<std::size_t>(e)] = pick();
        dst[static_cast<std::size_t>(e)] = pick();
    }
    // Guarantee a connected spine from node 0.
    for (std::int64_t v = 1; v < nodes && v < edges; ++v) {
        src[static_cast<std::size_t>(v - 1)] = v - 1;
        dst[static_cast<std::size_t>(v - 1)] = v;
    }
}

/** Edge-centric synchronous BFS (MachSuite graph shape). */
class Bfs : public Workload
{
  public:
    explicit Bfs(double scale)
        : _nodes(scaled(1 << 12, scale, 64)),
          _edges(_nodes * scaled(32, std::min(scale, 1.0), 8))
    {
    }

    std::string name() const override { return "bfs"; }

    std::uint64_t arenaBytes() const override
    {
        return static_cast<std::uint64_t>(_edges) * 16 + _nodes * 8 +
               (8 << 20);
    }

    void
    setup(System &sys) override
    {
        std::vector<std::int64_t> src, dst;
        sim::Rng rng(7);
        makeGraph(_nodes, _edges, rng, src, dst);

        _esrc = sys.alloc("esrc", static_cast<std::uint64_t>(_edges), 8,
                          false);
        _edst = sys.alloc("edst", static_cast<std::uint64_t>(_edges), 8,
                          false);
        _level = sys.alloc("level", static_cast<std::uint64_t>(_nodes),
                           8, false);
        for (std::int64_t e = 0; e < _edges; ++e) {
            _esrc.setI(static_cast<std::uint64_t>(e),
                       src[static_cast<std::size_t>(e)]);
            _edst.setI(static_cast<std::uint64_t>(e),
                       dst[static_cast<std::size_t>(e)]);
        }
        for (std::int64_t v = 0; v < _nodes; ++v)
            _level.setI(static_cast<std::uint64_t>(v), -1);
        _level.setI(0, 0);

        // Reference levels (synchronous edge relaxation).
        _ref.assign(static_cast<std::size_t>(_nodes), -1);
        _ref[0] = 0;
        for (std::int64_t lvl = 0;; ++lvl) {
            bool found = false;
            for (std::int64_t e = 0; e < _edges; ++e) {
                const auto s = static_cast<std::size_t>(
                    src[static_cast<std::size_t>(e)]);
                const auto d = static_cast<std::size_t>(
                    dst[static_cast<std::size_t>(e)]);
                if (_ref[s] == lvl && _ref[d] == -1) {
                    _ref[d] = lvl + 1;
                    found = true;
                }
            }
            if (!found)
                break;
            _refLevels = lvl + 1;
        }

        KernelBuilder kb("bfs_relax");
        kb.loopStatic(_edges);
        const int o_src =
            kb.object("esrc", static_cast<std::uint64_t>(_edges), 8,
                      false);
        const int o_dst =
            kb.object("edst", static_cast<std::uint64_t>(_edges), 8,
                      false);
        const int o_lvl =
            kb.object("level", static_cast<std::uint64_t>(_nodes), 8,
                      false);
        const int p_lvl = kb.param("lvl");
        kb.loopStatic(_edges);

        auto s = kb.load(o_src, kb.affine(0, 1));
        auto d = kb.load(o_dst, kb.affine(0, 1));
        auto ls = kb.loadIdx(o_lvl, s);
        auto ld = kb.loadIdx(o_lvl, d);
        auto cur = kb.paramValue(p_lvl);
        auto active = kb.compute(compiler::OpCode::ICmpEq, ls, cur);
        auto unseen =
            kb.compute(compiler::OpCode::ICmpEq, ld, kb.constInt(-1));
        auto fire = kb.compute(compiler::OpCode::IAnd, active, unseen);
        auto nlvl = kb.iadd(cur, kb.constInt(1));
        kb.storeIdxIf(fire, o_lvl, d, nlvl);
        auto found = kb.carry(Word{0}, false, "found");
        auto nfound = kb.compute(compiler::OpCode::IOr, found, fire);
        kb.setCarry(found, nfound);
        kb.markResult(found);
        _kernel = kb.build();
    }

    void
    run(ExecContext &ctx) override
    {
        for (std::int64_t lvl = 0;; ++lvl) {
            ctx.invoke(_kernel, {_esrc, _edst, _level},
                       {ExecContext::wi(lvl)});
            ctx.hostOps(6);
            if (ctx.resultI(0) == 0)
                break;
            if (lvl > _nodes)
                panic("bfs failed to converge");
        }
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return arrayMatchesI(_level, _ref);
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_kernel};
    }

  private:
    std::int64_t _nodes;
    std::int64_t _edges;
    ArrayRef _esrc, _edst, _level;
    Kernel _kernel;
    std::vector<std::int64_t> _ref;
    int _refLevels = 0;
};

/** Serial PageRank, edge-centric accumulate + node-wise update. */
class PageRank : public Workload
{
  public:
    explicit PageRank(double scale)
        : _nodes(scaled(49152, scale, 64)),
          _edges(_nodes * 10), _iters(6)
    {
    }

    std::string name() const override { return "pr"; }

    std::uint64_t arenaBytes() const override
    {
        return static_cast<std::uint64_t>(_edges) * 16 + _nodes * 32 +
               (8 << 20);
    }

    void
    setup(System &sys) override
    {
        std::vector<std::int64_t> src, dst;
        sim::Rng rng(11);
        makeGraph(_nodes, _edges, rng, src, dst);

        _esrc = sys.alloc("esrc", static_cast<std::uint64_t>(_edges), 8,
                          false);
        _edst = sys.alloc("edst", static_cast<std::uint64_t>(_edges), 8,
                          false);
        _pr = sys.alloc("pr", static_cast<std::uint64_t>(_nodes), 8,
                        true);
        _acc = sys.alloc("acc", static_cast<std::uint64_t>(_nodes), 8,
                         true);
        _invdeg = sys.alloc("invdeg",
                            static_cast<std::uint64_t>(_nodes), 8, true);

        std::vector<std::int64_t> outdeg(
            static_cast<std::size_t>(_nodes), 0);
        for (std::int64_t e = 0; e < _edges; ++e) {
            _esrc.setI(static_cast<std::uint64_t>(e),
                       src[static_cast<std::size_t>(e)]);
            _edst.setI(static_cast<std::uint64_t>(e),
                       dst[static_cast<std::size_t>(e)]);
            ++outdeg[static_cast<std::size_t>(
                src[static_cast<std::size_t>(e)])];
        }
        const double init = 1.0 / static_cast<double>(_nodes);
        for (std::int64_t v = 0; v < _nodes; ++v) {
            _pr.setF(static_cast<std::uint64_t>(v), init);
            _acc.setF(static_cast<std::uint64_t>(v), 0.0);
            const auto d = outdeg[static_cast<std::size_t>(v)];
            _invdeg.setF(static_cast<std::uint64_t>(v),
                         d > 0 ? 1.0 / static_cast<double>(d) : 0.0);
        }

        // Reference.
        std::vector<double> pr(static_cast<std::size_t>(_nodes), init);
        std::vector<double> acc(static_cast<std::size_t>(_nodes), 0.0);
        for (int it = 0; it < _iters; ++it) {
            for (std::int64_t e = 0; e < _edges; ++e) {
                const auto s = static_cast<std::size_t>(
                    src[static_cast<std::size_t>(e)]);
                const auto d = static_cast<std::size_t>(
                    dst[static_cast<std::size_t>(e)]);
                const double w =
                    outdeg[s] > 0 ? 1.0 / static_cast<double>(outdeg[s])
                                  : 0.0;
                acc[d] = acc[d] + pr[s] * w;
            }
            for (std::int64_t v = 0; v < _nodes; ++v) {
                const auto vi = static_cast<std::size_t>(v);
                pr[vi] = 0.15 * init + 0.85 * acc[vi];
                acc[vi] = 0.0;
            }
        }
        _ref = pr;

        {
            KernelBuilder kb("pr_scatter");
            kb.loopStatic(_edges);
            const int o_src = kb.object(
                "esrc", static_cast<std::uint64_t>(_edges), 8, false);
            const int o_dst = kb.object(
                "edst", static_cast<std::uint64_t>(_edges), 8, false);
            const int o_pr = kb.object(
                "pr", static_cast<std::uint64_t>(_nodes), 8, true);
            const int o_acc = kb.object(
                "acc", static_cast<std::uint64_t>(_nodes), 8, true);
            const int o_inv = kb.object(
                "invdeg", static_cast<std::uint64_t>(_nodes), 8, true);
            auto s = kb.load(o_src, kb.affine(0, 1));
            auto d = kb.load(o_dst, kb.affine(0, 1));
            auto prs = kb.loadIdx(o_pr, s);
            auto inv = kb.loadIdx(o_inv, s);
            auto contrib = kb.fmul(prs, inv);
            auto cur = kb.loadIdx(o_acc, d);
            auto sum = kb.fadd(cur, contrib);
            kb.storeIdx(o_acc, d, sum);
            _scatter = kb.build();
        }
        {
            KernelBuilder kb("pr_update");
            kb.loopStatic(_nodes);
            const int o_pr = kb.object(
                "pr", static_cast<std::uint64_t>(_nodes), 8, true);
            const int o_acc = kb.object(
                "acc", static_cast<std::uint64_t>(_nodes), 8, true);
            auto a = kb.load(o_acc, kb.affine(0, 1));
            auto scaled_a = kb.fmul(a, kb.constFloat(0.85));
            auto np = kb.fadd(
                scaled_a,
                kb.constFloat(0.15 / static_cast<double>(_nodes)));
            kb.store(o_pr, kb.affine(0, 1), np);
            kb.store(o_acc, kb.affine(0, 1), kb.constFloat(0.0));
            _update = kb.build();
        }
    }

    void
    run(ExecContext &ctx) override
    {
        for (int it = 0; it < _iters; ++it) {
            ctx.invoke(_scatter, {_esrc, _edst, _pr, _acc, _invdeg}, {});
            ctx.invoke(_update, {_pr, _acc}, {});
            ctx.hostOps(4);
        }
    }

    bool
    validate(System &sys) override
    {
        (void)sys;
        return arrayMatchesF(_pr, _ref, 1e-9);
    }

    std::vector<const Kernel *>
    kernels() const override
    {
        return {&_scatter, &_update};
    }

  private:
    std::int64_t _nodes;
    std::int64_t _edges;
    int _iters;
    ArrayRef _esrc, _edst, _pr, _acc, _invdeg;
    Kernel _scatter, _update;
    std::vector<double> _ref;
};

} // namespace

std::unique_ptr<Workload>
makePointerChase(double scale)
{
    return std::make_unique<PointerChase>(scale);
}

std::unique_ptr<Workload>
makeBfs(double scale)
{
    return std::make_unique<Bfs>(scale);
}

std::unique_ptr<Workload>
makePageRank(double scale)
{
    return std::make_unique<PageRank>(scale);
}

} // namespace distda::workloads
