/**
 * @file
 * Workload framework: each benchmark of Table IV provides setup (data
 * and kernels), a host program (run), and output validation against a
 * native reference computed on the side.
 */

#ifndef DISTDA_WORKLOADS_WORKLOAD_HH
#define DISTDA_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "src/compiler/dfg.hh"
#include "src/driver/context.hh"
#include "src/driver/system.hh"

namespace distda::workloads
{

/** A benchmark instance. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Arena size needed (accelerator-visible slab). */
    virtual std::uint64_t arenaBytes() const { return 64ULL << 20; }

    /** Allocate arrays, generate inputs, build kernels. */
    virtual void setup(driver::System &sys) = 0;

    /** The host program (outer loops + kernel invocations). */
    virtual void run(driver::ExecContext &ctx) = 0;

    /** Compare outputs against the native reference. */
    virtual bool validate(driver::System &sys) = 0;

    /** The kernels this workload offloads (Tables V/VI). */
    virtual std::vector<const compiler::Kernel *> kernels() const = 0;
};

/** Names of all registered workloads (Table IV order). */
std::vector<std::string> workloadNames();

/**
 * True when @p name is registered (including case studies excluded
 * from workloadNames(), e.g. "spmv"). Lets the serve layer turn an
 * unknown-workload request into an error reply without relying on
 * makeWorkload()'s fatal().
 */
bool hasWorkload(const std::string &name);

/**
 * Instantiate a workload. @p scale multiplies the default problem
 * size; 1.0 is the suite default documented in EXPERIMENTS.md.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       double scale = 1.0);

} // namespace distda::workloads

#endif // DISTDA_WORKLOADS_WORKLOAD_HH
