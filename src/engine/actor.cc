#include "src/engine/actor.hh"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "src/sim/logging.hh"
#include "src/sim/probe.hh"
#include "src/sim/trace.hh"

namespace distda::engine
{

using compiler::MicroInst;
using compiler::MicroKind;
using compiler::OpCode;
using compiler::Word;

namespace
{
std::atomic<bool> predecodeEnabledFlag{true};
const Word zeroWord{};
} // namespace

void
setPredecodeEnabled(bool enabled)
{
    predecodeEnabledFlag.store(enabled, std::memory_order_relaxed);
}

bool
predecodeEnabled()
{
    return predecodeEnabledFlag.load(std::memory_order_relaxed);
}

PartitionActor::PartitionActor(
    const Config &config, std::vector<AccessorRuntime> accessors,
    std::unique_ptr<accel::RandomUnit> random, std::vector<Channel *> ins,
    std::vector<Channel *> outs, std::vector<Word> param_values,
    MemBackend *backend, energy::Accountant *acct, noc::Mesh *mesh,
    accel::AccessStats *stats)
    : _config(config), _accessors(std::move(accessors)),
      _random(std::move(random)), _ins(std::move(ins)),
      _outs(std::move(outs)), _backend(backend), _acct(acct),
      _mesh(mesh), _stats(stats)
{
    const compiler::MicroProgram &prog = _config.part->program;
    _regs.assign(static_cast<std::size_t>(std::max(prog.numRegs, 1)),
                 Word{});

    // Reject corrupted microcode up front: execInst() and the preload
    // loops below index registers, accessors, channels and carry slots
    // without bounds checks, so a bad program must never start.
    auto check_reg = [&](std::uint16_t reg, const char *what) {
        DISTDA_ASSERT(reg == compiler::noReg || reg < _regs.size(),
                      "partition %d: %s register r%u out of range "
                      "(numRegs %d)",
                      _config.part->id, what, reg, prog.numRegs);
    };
    for (const auto &[param_idx, reg] : prog.paramRegs)
        check_reg(reg, "param");
    for (const auto &c : prog.constRegs)
        check_reg(c.reg, "const");
    for (const auto &c : prog.carries)
        check_reg(c.reg, "carry");
    check_reg(prog.ivReg, "induction");
    for (std::size_t pc = 0; pc < prog.insts.size(); ++pc) {
        const MicroInst &inst = prog.insts[pc];
        check_reg(inst.dst, "dst");
        check_reg(inst.a, "src");
        check_reg(inst.b, "src");
        check_reg(inst.c, "src");
        std::size_t limit = 0;
        switch (inst.kind) {
          case MicroKind::LoadStream:
          case MicroKind::StoreStream:
          case MicroKind::LoadIdx:
          case MicroKind::StoreIdx:
            limit = _accessors.size();
            break;
          case MicroKind::Consume: limit = _ins.size(); break;
          case MicroKind::Produce: limit = _outs.size(); break;
          case MicroKind::CarryWrite: limit = prog.carries.size(); break;
          default: continue;
        }
        DISTDA_ASSERT(inst.slot >= 0 &&
                          static_cast<std::size_t>(inst.slot) < limit,
                      "partition %d inst %zu: slot %d out of range "
                      "(limit %zu)",
                      _config.part->id, pc, inst.slot, limit);
    }

    for (const auto &[param_idx, reg] : prog.paramRegs) {
        DISTDA_ASSERT(param_idx >= 0 &&
                          param_idx <
                              static_cast<int>(param_values.size()),
                      "param %d unbound", param_idx);
        _regs[reg] = param_values[static_cast<std::size_t>(param_idx)];
    }
    for (const auto &c : prog.constRegs)
        _regs[c.reg] = c.value;
    for (const auto &c : prog.carries)
        _regs[c.reg] = c.init;
    if (prog.ivReg != compiler::noReg)
        _regs[prog.ivReg].i = 0;

    _now = config.startTick;
    _lastInit = config.startTick;
    _instCost = (config.kind == ActorKind::InOrder)
                    ? config.cycleTick /
                          static_cast<sim::Tick>(
                              std::max(config.issueWidth, 1))
                    : 0;

    _isCgra = config.kind == ActorKind::Cgra;
    // Same products the interpreter computes per instruction
    // (scale * 1.0 and scale * 0.4), hoisted so the energy charge
    // stays bit-identical between the two paths.
    _fullInstWeight = config.instEnergyScale;
    _portInstWeight = config.instEnergyScale * 0.4;
    _ivPtr = prog.ivReg != compiler::noReg ? &_regs[prog.ivReg]
                                           : nullptr;
    const bool use_predecode = config.predecode < 0
                                   ? predecodeEnabled()
                                   : config.predecode != 0;
    if (use_predecode) {
        _exec.reserve(prog.insts.size());
        for (const MicroInst &inst : prog.insts)
            _exec.push_back(predecode(inst));
    }
}

PartitionActor::ExecOp
PartitionActor::predecode(const MicroInst &inst)
{
    // Register pointers are stable: _regs is sized once in the
    // constructor and never reallocates.
    const auto dst_ptr = [this](std::uint16_t r) -> Word * {
        return r != compiler::noReg ? &_regs[r] : &_scratch;
    };
    const auto src_ptr = [this](std::uint16_t r) -> const Word * {
        return r != compiler::noReg ? &_regs[r] : &zeroWord;
    };
    const auto hoist_accessor = [this](ExecOp &op, std::int32_t slot) {
        const AccessorRuntime &ar =
            _accessors[static_cast<std::size_t>(slot)];
        op.stream = ar.stream;
        op.tapDistance = ar.tapDistance;
        op.baseElemOffset = ar.baseElemOffset;
        op.arrayBase = ar.array.base;
        op.arrayElemBytes = ar.array.elemBytes;
        op.arrayCount = ar.array.count;
        // Unwired accessors (construction-only actors, e.g. in the
        // verify tests) have no def; the interpreter would only touch
        // it at execution time, so construction must tolerate that.
        if (ar.def != nullptr) {
            op.ivCoeff = ar.def->affine.ivCoeff;
            op.elemBytes = ar.def->elemBytes;
            op.elemIsFloat = ar.def->elemIsFloat;
        }
    };

    ExecOp op;
    op.kind = inst.kind;
    switch (inst.kind) {
      case MicroKind::Alu:
        op.op = inst.op;
        op.dst = dst_ptr(inst.dst);
        op.a = src_ptr(inst.a);
        op.b = src_ptr(inst.b);
        op.c = src_ptr(inst.c);
        break;
      case MicroKind::LoadStream:
        hoist_accessor(op, inst.slot);
        op.dst = dst_ptr(inst.dst);
        break;
      case MicroKind::StoreStream:
        hoist_accessor(op, inst.slot);
        op.a = src_ptr(inst.a);
        op.pred = inst.c != compiler::noReg ? &_regs[inst.c] : nullptr;
        break;
      case MicroKind::LoadIdx:
        hoist_accessor(op, inst.slot);
        op.dst = dst_ptr(inst.dst);
        op.a = src_ptr(inst.a);
        break;
      case MicroKind::StoreIdx:
        hoist_accessor(op, inst.slot);
        op.a = src_ptr(inst.a);
        op.b = src_ptr(inst.b);
        op.pred = inst.c != compiler::noReg ? &_regs[inst.c] : nullptr;
        break;
      case MicroKind::Consume:
        op.ch = _ins[static_cast<std::size_t>(inst.slot)];
        op.dst = dst_ptr(inst.dst);
        break;
      case MicroKind::Produce:
        op.ch = _outs[static_cast<std::size_t>(inst.slot)];
        op.a = src_ptr(inst.a);
        op.chCross =
            op.ch != nullptr &&
            op.ch->srcCluster() != op.ch->dstCluster();
        break;
      case MicroKind::CarryWrite: {
          const auto &cs = _config.part->program
                               .carries[static_cast<std::size_t>(
                                   inst.slot)];
          op.dst = dst_ptr(cs.reg);
          op.a = src_ptr(inst.a);
          break;
      }
      default:
        panic("bad microcode kind %d", static_cast<int>(inst.kind));
    }
    return op;
}

Word
PartitionActor::evalAlu(const MicroInst &inst) const
{
    const Word a = inst.a != compiler::noReg ? _regs[inst.a] : Word{};
    const Word b = inst.b != compiler::noReg ? _regs[inst.b] : Word{};
    const Word c = inst.c != compiler::noReg ? _regs[inst.c] : Word{};
    return evalAluOp(inst.op, a, b, c);
}

Word
PartitionActor::evalAluOp(OpCode op, Word a, Word b, Word c)
{
    Word r{};
    switch (op) {
      case OpCode::IAdd: r.i = a.i + b.i; break;
      case OpCode::ISub: r.i = a.i - b.i; break;
      case OpCode::IMul: r.i = a.i * b.i; break;
      case OpCode::IDiv:
        DISTDA_ASSERT(b.i != 0, "integer division by zero");
        r.i = a.i / b.i;
        break;
      case OpCode::IRem:
        DISTDA_ASSERT(b.i != 0, "integer remainder by zero");
        r.i = a.i % b.i;
        break;
      case OpCode::IMin: r.i = std::min(a.i, b.i); break;
      case OpCode::IMax: r.i = std::max(a.i, b.i); break;
      case OpCode::IAbs: r.i = std::llabs(a.i); break;
      case OpCode::IAnd: r.i = a.i & b.i; break;
      case OpCode::IOr: r.i = a.i | b.i; break;
      case OpCode::IXor: r.i = a.i ^ b.i; break;
      case OpCode::IShl: r.i = a.i << b.i; break;
      case OpCode::IShr: r.i = a.i >> b.i; break;
      case OpCode::ICmpLt: r.i = a.i < b.i; break;
      case OpCode::ICmpLe: r.i = a.i <= b.i; break;
      case OpCode::ICmpEq: r.i = a.i == b.i; break;
      case OpCode::ICmpNe: r.i = a.i != b.i; break;
      case OpCode::FAdd: r.f = a.f + b.f; break;
      case OpCode::FSub: r.f = a.f - b.f; break;
      case OpCode::FMul: r.f = a.f * b.f; break;
      case OpCode::FDiv: r.f = a.f / b.f; break;
      case OpCode::FSqrt: r.f = std::sqrt(a.f); break;
      case OpCode::FAbs: r.f = std::fabs(a.f); break;
      case OpCode::FMin: r.f = std::min(a.f, b.f); break;
      case OpCode::FMax: r.f = std::max(a.f, b.f); break;
      case OpCode::FNeg: r.f = -a.f; break;
      case OpCode::FCmpLt: r.i = a.f < b.f; break;
      case OpCode::FCmpLe: r.i = a.f <= b.f; break;
      case OpCode::FCmpEq: r.i = a.f == b.f; break;
      case OpCode::Select: r = a.i ? b : c; break;
      case OpCode::I2F: r.f = static_cast<double>(a.i); break;
      case OpCode::F2I: r.i = static_cast<std::int64_t>(a.f); break;
      case OpCode::Mov: r = a; break;
      default:
        panic("bad ALU opcode %d", static_cast<int>(op));
    }
    return r;
}

bool
PartitionActor::execInst(const MicroInst &inst)
{
    switch (inst.kind) {
      case MicroKind::Alu: {
          _regs[inst.dst] = evalAlu(inst);
          _now += _instCost;
          break;
      }
      case MicroKind::LoadStream: {
          AccessorRuntime &ar =
              _accessors[static_cast<std::size_t>(inst.slot)];
          const std::int64_t off =
              ar.baseElemOffset + ar.def->affine.ivCoeff * _iter;
          DISTDA_ASSERT(off >= 0 && static_cast<std::uint64_t>(off) <
                                        ar.array.count,
                        "stream load offset %lld out of bounds",
                        static_cast<long long>(off));
          _regs[inst.dst] = _backend->load(ar.array.addrOf(
                                               static_cast<std::uint64_t>(
                                                   off)),
                                           ar.def->elemBytes,
                                           ar.def->elemIsFloat);
          {
              const sim::Tick ready =
                  ar.stream->readAt(_iter, _now, ar.tapDistance);
              _stalls.streamWait += ready - _now;
              _now = ready + _instCost;
          }
          _memOps += 1.0;
          break;
      }
      case MicroKind::StoreStream: {
          AccessorRuntime &ar =
              _accessors[static_cast<std::size_t>(inst.slot)];
          const bool pred =
              inst.c == compiler::noReg || _regs[inst.c].i != 0;
          if (pred) {
              const std::int64_t off =
                  ar.baseElemOffset + ar.def->affine.ivCoeff * _iter;
              DISTDA_ASSERT(off >= 0 &&
                                static_cast<std::uint64_t>(off) <
                                    ar.array.count,
                            "stream store offset %lld out of bounds",
                            static_cast<long long>(off));
              _backend->store(
                  ar.array.addrOf(static_cast<std::uint64_t>(off)),
                  _regs[inst.a], ar.def->elemBytes, ar.def->elemIsFloat);
              _now = ar.stream->writeAt(_iter, _now, ar.tapDistance) +
                     _instCost;
          } else {
              _now += _instCost;
          }
          _memOps += 1.0;
          break;
      }
      case MicroKind::LoadIdx: {
          AccessorRuntime &ar =
              _accessors[static_cast<std::size_t>(inst.slot)];
          const std::int64_t off = _regs[inst.a].i;
          DISTDA_ASSERT(off >= 0 && static_cast<std::uint64_t>(off) <
                                        ar.array.count,
                        "indirect load offset %lld out of bounds (%s)",
                        static_cast<long long>(off),
                        _config.part ? "partition" : "?");
          const mem::Addr addr =
              ar.array.addrOf(static_cast<std::uint64_t>(off));
          _regs[inst.dst] = _backend->load(addr, ar.def->elemBytes,
                                           ar.def->elemIsFloat);
          {
              const sim::Tick done = _random->access(
                  addr, ar.def->elemBytes, false, _now,
                  _config.hideTicks);
              _stalls.indirectWait += done - _now;
              _now = done;
          }
          _memOps += 1.0;
          break;
      }
      case MicroKind::StoreIdx: {
          AccessorRuntime &ar =
              _accessors[static_cast<std::size_t>(inst.slot)];
          const bool pred =
              inst.c == compiler::noReg || _regs[inst.c].i != 0;
          if (pred) {
              const std::int64_t off = _regs[inst.a].i;
              DISTDA_ASSERT(off >= 0 &&
                                static_cast<std::uint64_t>(off) <
                                    ar.array.count,
                            "indirect store offset %lld out of bounds",
                            static_cast<long long>(off));
              const mem::Addr addr =
                  ar.array.addrOf(static_cast<std::uint64_t>(off));
              _backend->store(addr, _regs[inst.b], ar.def->elemBytes,
                              ar.def->elemIsFloat);
              _now = _random->access(addr, ar.def->elemBytes, true, _now,
                                     0);
          } else {
              _now += _instCost;
          }
          _memOps += 1.0;
          break;
      }
      case MicroKind::Consume: {
          Channel *ch = _ins[static_cast<std::size_t>(inst.slot)];
          if (ch->empty()) {
              if (ch->drained())
                  panic("consume on drained channel (partition %d)",
                        _config.part->id);
              return false; // blocked; retried by the engine
          }
          const ChannelItem &item = ch->front();
          _regs[inst.dst] = item.value;
          if (item.readyAt > _now)
              _stalls.channelWait += item.readyAt - _now;
          _now = std::max(_now, item.readyAt) + _instCost;
          ch->pop();
          _stats->intraBytes += ch->elemBytes();
          _stats->bufferAccesses += 1.0;
          if (_acct)
              _acct->addEvents(energy::Component::Buffer, 1.0);
          break;
      }
      case MicroKind::Produce: {
          Channel *ch = _outs[static_cast<std::size_t>(inst.slot)];
          if (ch->full())
              return false; // credit backpressure
          sim::Tick arrive = _now;
          if (ch->srcCluster() != ch->dstCluster()) {
              auto xfer = _mesh->transfer(
                  ch->srcCluster(), ch->dstCluster(), ch->elemBytes(),
                  ch->isControl() ? noc::TrafficClass::AccCtrl
                                  : noc::TrafficClass::AccData,
                  _now);
              arrive = _now + xfer.latency;
          }
          ch->push(_regs[inst.a], arrive);
          _stats->aaBytes += ch->elemBytes();
          _stats->bufferAccesses += 1.0;
          if (_acct)
              _acct->addEvents(energy::Component::Buffer, 1.0);
          _now += _instCost;
          break;
      }
      case MicroKind::CarryWrite: {
          const auto &cs = _config.part->program
                               .carries[static_cast<std::size_t>(
                                   inst.slot)];
          _regs[cs.reg] = _regs[inst.a];
          _now += _instCost;
          break;
      }
      default:
        panic("bad microcode kind %d", static_cast<int>(inst.kind));
    }
    _insts += 1.0;
    if (_acct) {
        // cp_produce/cp_consume are implicit-dataflow buffer-port
        // operations (SS IV-B), cheaper than a full pipeline pass.
        const bool port_op = inst.kind == MicroKind::Produce ||
                             inst.kind == MicroKind::Consume;
        _acct->addEvents(_config.energyComp,
                         _config.instEnergyScale * (port_op ? 0.4 : 1.0));
    }
    return true;
}

ActorStatus
PartitionActor::runPredecoded(std::int64_t max_iters)
{
    const ExecOp *const ops = _exec.data();
    const std::size_t nops = _exec.size();
    std::int64_t done = 0;

    // Slice-batched counters. Counts are integers, so one batched add
    // equals the interpreter's per-instruction adds exactly; the same
    // holds for Buffer energy (integer count x per-event cost). The
    // compute-component charge stays per-instruction because its port
    // ops carry an inexact 0.4 weight and batching would change the
    // FP summation order (see DESIGN.md).
    double insts = 0.0, mem_ops = 0.0, buf_events = 0.0;
    const auto flush = [&] {
        _insts += insts;
        _memOps += mem_ops;
        if (_acct && buf_events != 0.0)
            _acct->addEvents(energy::Component::Buffer, buf_events);
    };

    while (_iter < _config.trip) {
        if (_pc == 0) {
            if (done >= max_iters) {
                flush();
                return ActorStatus::Running;
            }
            if (_isCgra) {
                // Initiation-interval pacing: one new iteration every
                // II fabric cycles once the pipeline is primed.
                const sim::Tick init =
                    _lastInit + static_cast<sim::Tick>(_config.ii) *
                                    _config.cycleTick;
                if (_iter > 0)
                    _now = std::max(_now, init);
                _lastInit = _now;
            }
            if (_ivPtr)
                _ivPtr->i = _iter;
        }
        while (_pc < nops) {
            const ExecOp &op = ops[_pc];
            bool port_op = false;
            switch (op.kind) {
              case MicroKind::Alu: {
                  *op.dst = evalAluOp(op.op, *op.a, *op.b, *op.c);
                  _now += _instCost;
                  break;
              }
              case MicroKind::LoadStream: {
                  const std::int64_t off =
                      op.baseElemOffset + op.ivCoeff * _iter;
                  DISTDA_ASSERT(off >= 0 &&
                                    static_cast<std::uint64_t>(off) <
                                        op.arrayCount,
                                "stream load offset %lld out of bounds",
                                static_cast<long long>(off));
                  *op.dst = _backend->load(
                      op.arrayBase + static_cast<std::uint64_t>(off) *
                                         op.arrayElemBytes,
                      op.elemBytes, op.elemIsFloat);
                  const sim::Tick ready =
                      op.stream->readAt(_iter, _now, op.tapDistance);
                  _stalls.streamWait += ready - _now;
                  _now = ready + _instCost;
                  mem_ops += 1.0;
                  break;
              }
              case MicroKind::StoreStream: {
                  if (!op.pred || op.pred->i != 0) {
                      const std::int64_t off =
                          op.baseElemOffset + op.ivCoeff * _iter;
                      DISTDA_ASSERT(
                          off >= 0 && static_cast<std::uint64_t>(off) <
                                          op.arrayCount,
                          "stream store offset %lld out of bounds",
                          static_cast<long long>(off));
                      _backend->store(
                          op.arrayBase +
                              static_cast<std::uint64_t>(off) *
                                  op.arrayElemBytes,
                          *op.a, op.elemBytes, op.elemIsFloat);
                      _now = op.stream->writeAt(_iter, _now,
                                                op.tapDistance) +
                             _instCost;
                  } else {
                      _now += _instCost;
                  }
                  mem_ops += 1.0;
                  break;
              }
              case MicroKind::LoadIdx: {
                  const std::int64_t off = op.a->i;
                  DISTDA_ASSERT(off >= 0 &&
                                    static_cast<std::uint64_t>(off) <
                                        op.arrayCount,
                                "indirect load offset %lld out of "
                                "bounds",
                                static_cast<long long>(off));
                  const mem::Addr addr =
                      op.arrayBase + static_cast<std::uint64_t>(off) *
                                         op.arrayElemBytes;
                  *op.dst = _backend->load(addr, op.elemBytes,
                                           op.elemIsFloat);
                  const sim::Tick done_t = _random->access(
                      addr, op.elemBytes, false, _now,
                      _config.hideTicks);
                  _stalls.indirectWait += done_t - _now;
                  _now = done_t;
                  mem_ops += 1.0;
                  break;
              }
              case MicroKind::StoreIdx: {
                  if (!op.pred || op.pred->i != 0) {
                      const std::int64_t off = op.a->i;
                      DISTDA_ASSERT(
                          off >= 0 && static_cast<std::uint64_t>(off) <
                                          op.arrayCount,
                          "indirect store offset %lld out of bounds",
                          static_cast<long long>(off));
                      const mem::Addr addr =
                          op.arrayBase +
                          static_cast<std::uint64_t>(off) *
                              op.arrayElemBytes;
                      _backend->store(addr, *op.b, op.elemBytes,
                                      op.elemIsFloat);
                      _now = _random->access(addr, op.elemBytes, true,
                                             _now, 0);
                  } else {
                      _now += _instCost;
                  }
                  mem_ops += 1.0;
                  break;
              }
              case MicroKind::Consume: {
                  Channel *ch = op.ch;
                  if (ch->empty()) {
                      if (ch->drained())
                          panic("consume on drained channel "
                                "(partition %d)",
                                _config.part->id);
                      flush();
                      return ActorStatus::Blocked;
                  }
                  const ChannelItem &item = ch->front();
                  *op.dst = item.value;
                  if (item.readyAt > _now)
                      _stalls.channelWait += item.readyAt - _now;
                  _now = std::max(_now, item.readyAt) + _instCost;
                  ch->pop();
                  _stats->intraBytes += ch->elemBytes();
                  _stats->bufferAccesses += 1.0;
                  buf_events += 1.0;
                  port_op = true;
                  break;
              }
              case MicroKind::Produce: {
                  Channel *ch = op.ch;
                  if (ch->full()) {
                      flush();
                      return ActorStatus::Blocked;
                  }
                  sim::Tick arrive = _now;
                  if (op.chCross) {
                      auto xfer = _mesh->transfer(
                          ch->srcCluster(), ch->dstCluster(),
                          ch->elemBytes(),
                          ch->isControl() ? noc::TrafficClass::AccCtrl
                                          : noc::TrafficClass::AccData,
                          _now);
                      arrive = _now + xfer.latency;
                  }
                  ch->push(*op.a, arrive);
                  _stats->aaBytes += ch->elemBytes();
                  _stats->bufferAccesses += 1.0;
                  buf_events += 1.0;
                  port_op = true;
                  _now += _instCost;
                  break;
              }
              case MicroKind::CarryWrite: {
                  *op.dst = *op.a;
                  _now += _instCost;
                  break;
              }
              default:
                panic("bad microcode kind %d",
                      static_cast<int>(op.kind));
            }
            insts += 1.0;
            if (_acct)
                _acct->addEvents(_config.energyComp,
                                 port_op ? _portInstWeight
                                         : _fullInstWeight);
            ++_pc;
        }
        _pc = 0;
        ++_iter;
        ++done;
        if (_isCgra && _iter == 1) {
            // Pipeline fill of the spatial schedule.
            _now += static_cast<sim::Tick>(_config.scheduleDepth) *
                    _config.cycleTick;
        }
    }

    flush();
    finish();
    return ActorStatus::Finished;
}

ActorStatus
PartitionActor::run(std::int64_t max_iters)
{
    if (_finished)
        return ActorStatus::Finished;

    if (!_config.probe) {
        return _exec.empty() ? runInterpreted(max_iters)
                             : runPredecoded(max_iters);
    }

    // Timeline slice batching: snapshot time/stall/inst counters, run
    // the slice at full speed, then attribute the elapsed interval —
    // one pointer test on the hot path when observability is off, a
    // handful of span records per 1024-iteration slice when on.
    const sim::Tick t0 = _now;
    const StallStats s0 = _stalls;
    const double i0 = _insts;
    const ActorStatus st = _exec.empty() ? runInterpreted(max_iters)
                                         : runPredecoded(max_iters);
    emitSlice(t0, s0, i0);
    return st;
}

void
PartitionActor::emitSlice(sim::Tick t0, const StallStats &s0, double i0)
{
    sim::Probe &probe = *_config.probe;
    const sim::Tick total = _now - t0;
    if (total > 0) {
        // Sequential attribution of the slice interval. The segments
        // are an aggregate, not an ordered replay, so clamp rather
        // than overrun when stalls overlap the whole interval.
        sim::Tick mem = (_stalls.streamWait - s0.streamWait) +
                        (_stalls.indirectWait - s0.indirectWait);
        sim::Tick chan = _stalls.channelWait - s0.channelWait;
        mem = std::min(mem, total);
        chan = std::min(chan, total - mem);
        const sim::Tick busy = total - mem - chan;
        sim::Tick t = t0;
        if (busy > 0) {
            probe.span(_config.track, "compute", t, t + busy);
            t += busy;
        }
        if (mem > 0) {
            probe.span(_config.track, "mem-blocked", t, t + mem);
            t += mem;
        }
        if (chan > 0)
            probe.span(_config.track, "chan-blocked", t, t + chan);
    }
    if (_config.sliceInsts && _insts > i0)
        _config.sliceInsts->sample(_insts - i0);
    if (_finished)
        probe.instant(_config.track, "finished", _finishTick);
}

ActorStatus
PartitionActor::runInterpreted(std::int64_t max_iters)
{
    const auto &insts = _config.part->program.insts;
    const std::uint16_t iv_reg = _config.part->program.ivReg;
    std::int64_t done = 0;

    while (_iter < _config.trip) {
        if (_pc == 0) {
            if (done >= max_iters)
                return ActorStatus::Running;
            if (_config.kind == ActorKind::Cgra) {
                // Initiation-interval pacing: one new iteration every
                // II fabric cycles once the pipeline is primed.
                const sim::Tick init =
                    _lastInit + static_cast<sim::Tick>(_config.ii) *
                                    _config.cycleTick;
                if (_iter > 0)
                    _now = std::max(_now, init);
                _lastInit = _now;
            }
            if (iv_reg != compiler::noReg)
                _regs[iv_reg].i = _iter;
        }
        while (_pc < insts.size()) {
            if (!execInst(insts[_pc]))
                return ActorStatus::Blocked;
            ++_pc;
        }
        _pc = 0;
        ++_iter;
        ++done;
        if (_config.kind == ActorKind::Cgra && _iter == 1) {
            // Pipeline fill of the spatial schedule.
            _now += static_cast<sim::Tick>(_config.scheduleDepth) *
                    _config.cycleTick;
        }
    }

    finish();
    return ActorStatus::Finished;
}

void
PartitionActor::finish()
{
    if (_finished)
        return;
    _finished = true;
    DISTDA_DPRINTF(Actor, _now, "actor",
                   "partition %d finished: %lld iterations, %.0f insts",
                   _config.part->id, static_cast<long long>(_iter),
                   _insts);
    sim::Tick done = _now;
    // Flush each store stream once. Combined taps share a unit, so the
    // accessor list can repeat streams; dedupe by scanning the earlier
    // entries — the list is a handful of elements, no container needed.
    for (std::size_t i = 0; i < _accessors.size(); ++i) {
        accel::StreamUnit *stream = _accessors[i].stream;
        if (!stream || !stream->params().hasStores)
            continue;
        bool first = true;
        for (std::size_t j = 0; j < i; ++j) {
            if (_accessors[j].stream == stream) {
                first = false;
                break;
            }
        }
        if (first)
            done = std::max(done, stream->flush(_now));
    }
    for (Channel *ch : _outs)
        ch->close();
    _finishTick = done;
    _now = done;
}

compiler::Word
PartitionActor::carryValue(std::size_t idx) const
{
    const auto &carries = _config.part->program.carries;
    DISTDA_ASSERT(idx < carries.size(), "carry %zu out of range", idx);
    return _regs[carries[idx].reg];
}

const std::vector<compiler::CarrySlot> &
PartitionActor::carrySlots() const
{
    return _config.part->program.carries;
}

} // namespace distda::engine
