/**
 * @file
 * A partition actor: one distributed accelerator definition executing
 * its microcode against its access units and channels. Actors are
 * decoupled — each carries its own local time — and the engine
 * round-robins them, so a producer partition runs ahead of its
 * consumers up to the buffer capacity, exactly the execution model of
 * §IV-B / Fig 3-5.
 */

#ifndef DISTDA_ENGINE_ACTOR_HH
#define DISTDA_ENGINE_ACTOR_HH

#include <memory>
#include <vector>

#include "src/accel/access_unit.hh"
#include "src/compiler/plan.hh"
#include "src/energy/energy_model.hh"
#include "src/engine/backend.hh"
#include "src/engine/channel.hh"
#include "src/noc/mesh.hh"

namespace distda::engine
{

/** Execution substrate of an actor (Table I "offload substrate"). */
enum class ActorKind : std::uint8_t
{
    InOrder, ///< 1-issue in-order core executing microcode
    Cgra,    ///< statically mapped CGRA fabric
};

enum class ActorStatus : std::uint8_t { Running, Blocked, Finished };

/** Runtime wiring of one accessor to its unit and bound array. */
struct AccessorRuntime
{
    const compiler::AccessorDef *def = nullptr;
    accel::StreamUnit *stream = nullptr; ///< shared by combined taps
    std::int64_t tapDistance = 0;
    ArrayRef array;
    std::int64_t baseElemOffset = 0; ///< pattern at iteration 0
};

/** One partition's executing instance. */
class PartitionActor
{
  public:
    struct Config
    {
        const compiler::Partition *part = nullptr;
        ActorKind kind = ActorKind::InOrder;
        sim::Tick cycleTick = 500; ///< 2GHz accelerator cycle
        int issueWidth = 1;
        double instEnergyScale = 1.0;
        int ii = 1;                ///< CGRA initiation interval
        int scheduleDepth = 1;     ///< CGRA pipeline fill
        int cluster = 0;
        std::int64_t trip = 0;
        bool swPrefetch = false;
        /** Indirect-access run-ahead window (0 for recurrences). */
        sim::Tick hideTicks = 0;
        energy::Component energyComp = energy::Component::IOCore;
        sim::Tick startTick = 0;
    };

    PartitionActor(const Config &config,
                   std::vector<AccessorRuntime> accessors,
                   std::unique_ptr<accel::RandomUnit> random,
                   std::vector<Channel *> ins,
                   std::vector<Channel *> outs,
                   std::vector<compiler::Word> param_values,
                   MemBackend *backend, energy::Accountant *acct,
                   noc::Mesh *mesh, accel::AccessStats *stats);

    /**
     * Execute up to @p max_iters loop iterations.
     * Returns Blocked when stalled on a channel, Finished when the
     * trip count is done (streams flushed, channels closed).
     */
    ActorStatus run(std::int64_t max_iters);

    sim::Tick now() const { return _now; }
    sim::Tick finishTick() const { return _finishTick; }

    /** Stall attribution (ticks spent waiting, by cause). */
    struct StallStats
    {
        sim::Tick streamWait = 0;   ///< fill-FSM data not ready
        sim::Tick channelWait = 0;  ///< consume on late operand
        sim::Tick indirectWait = 0; ///< random-access latency
    };
    const StallStats &stalls() const { return _stalls; }
    std::int64_t iteration() const { return _iter; }
    double instsExecuted() const { return _insts; }
    double memOps() const { return _memOps; }
    int cluster() const { return _config.cluster; }

    /** Final value of carry slot @p idx (after Finished). */
    compiler::Word carryValue(std::size_t idx) const;

    /** Carry slots (order matches MicroProgram::carries). */
    const std::vector<compiler::CarrySlot> &carrySlots() const;

  private:
    /** Execute one instruction; false means blocked (retry later). */
    bool execInst(const compiler::MicroInst &inst);

    void finish();

    compiler::Word evalAlu(const compiler::MicroInst &inst) const;

    Config _config;
    std::vector<AccessorRuntime> _accessors;
    std::unique_ptr<accel::RandomUnit> _random;
    std::vector<Channel *> _ins;
    std::vector<Channel *> _outs;
    MemBackend *_backend;
    energy::Accountant *_acct;
    noc::Mesh *_mesh;
    accel::AccessStats *_stats;

    std::vector<compiler::Word> _regs;
    std::size_t _pc = 0;
    std::int64_t _iter = 0;
    sim::Tick _now = 0;
    sim::Tick _lastInit = 0;
    sim::Tick _instCost = 0;
    sim::Tick _finishTick = 0;
    bool _finished = false;
    double _insts = 0.0;
    double _memOps = 0.0;
    StallStats _stalls;
};

} // namespace distda::engine

#endif // DISTDA_ENGINE_ACTOR_HH
