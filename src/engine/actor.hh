/**
 * @file
 * A partition actor: one distributed accelerator definition executing
 * its microcode against its access units and channels. Actors are
 * decoupled — each carries its own local time — and the engine
 * round-robins them, so a producer partition runs ahead of its
 * consumers up to the buffer capacity, exactly the execution model of
 * §IV-B / Fig 3-5.
 */

#ifndef DISTDA_ENGINE_ACTOR_HH
#define DISTDA_ENGINE_ACTOR_HH

#include <memory>
#include <vector>

#include "src/accel/access_unit.hh"
#include "src/compiler/plan.hh"
#include "src/energy/energy_model.hh"
#include "src/engine/backend.hh"
#include "src/engine/channel.hh"
#include "src/noc/mesh.hh"

namespace distda::engine
{

/** Execution substrate of an actor (Table I "offload substrate"). */
enum class ActorKind : std::uint8_t
{
    InOrder, ///< 1-issue in-order core executing microcode
    Cgra,    ///< statically mapped CGRA fabric
};

enum class ActorStatus : std::uint8_t { Running, Blocked, Finished };

/**
 * Globally enable/disable predecoded microcode execution (default on).
 * Actors built while this is off interpret the raw MicroProgram the
 * slow way; the interpreter-equivalence test uses that to check both
 * paths produce identical stats on every workload. Thread-safe, read
 * once per actor construction.
 */
void setPredecodeEnabled(bool enabled);
bool predecodeEnabled();

/** Runtime wiring of one accessor to its unit and bound array. */
struct AccessorRuntime
{
    const compiler::AccessorDef *def = nullptr;
    accel::StreamUnit *stream = nullptr; ///< shared by combined taps
    std::int64_t tapDistance = 0;
    ArrayRef array;
    std::int64_t baseElemOffset = 0; ///< pattern at iteration 0
};

/** One partition's executing instance. */
class PartitionActor
{
  public:
    struct Config
    {
        const compiler::Partition *part = nullptr;
        ActorKind kind = ActorKind::InOrder;
        sim::Tick cycleTick = 500; ///< 2GHz accelerator cycle
        int issueWidth = 1;
        double instEnergyScale = 1.0;
        int ii = 1;                ///< CGRA initiation interval
        int scheduleDepth = 1;     ///< CGRA pipeline fill
        int cluster = 0;
        std::int64_t trip = 0;
        bool swPrefetch = false;
        /** Indirect-access run-ahead window (0 for recurrences). */
        sim::Tick hideTicks = 0;
        energy::Component energyComp = energy::Component::IOCore;
        sim::Tick startTick = 0;
        /** -1: follow the global toggle; 0/1: force off/on. */
        int predecode = -1;
        /**
         * Observability wiring (null when off). Span emission is
         * batched per run() slice — one compute/mem-blocked/
         * chan-blocked breakdown per slice, not per instruction — so
         * the predecoded hot loop stays untouched.
         */
        sim::Probe *probe = nullptr;
        int track = -1;
        stats::Distribution *sliceInsts = nullptr;
    };

    PartitionActor(const Config &config,
                   std::vector<AccessorRuntime> accessors,
                   std::unique_ptr<accel::RandomUnit> random,
                   std::vector<Channel *> ins,
                   std::vector<Channel *> outs,
                   std::vector<compiler::Word> param_values,
                   MemBackend *backend, energy::Accountant *acct,
                   noc::Mesh *mesh, accel::AccessStats *stats);

    /**
     * Execute up to @p max_iters loop iterations.
     * Returns Blocked when stalled on a channel, Finished when the
     * trip count is done (streams flushed, channels closed).
     */
    ActorStatus run(std::int64_t max_iters);

    sim::Tick now() const { return _now; }
    sim::Tick finishTick() const { return _finishTick; }

    /** Stall attribution (ticks spent waiting, by cause). */
    struct StallStats
    {
        sim::Tick streamWait = 0;   ///< fill-FSM data not ready
        sim::Tick channelWait = 0;  ///< consume on late operand
        sim::Tick indirectWait = 0; ///< random-access latency
    };
    const StallStats &stalls() const { return _stalls; }
    std::int64_t iteration() const { return _iter; }
    double instsExecuted() const { return _insts; }
    double memOps() const { return _memOps; }
    int cluster() const { return _config.cluster; }

    /** Final value of carry slot @p idx (after Finished). */
    compiler::Word carryValue(std::size_t idx) const;

    /** Carry slots (order matches MicroProgram::carries). */
    const std::vector<compiler::CarrySlot> &carrySlots() const;

  private:
    /**
     * One predecoded instruction of the flat execution stream:
     * register and slot indices resolved to raw pointers, and every
     * per-instruction indirection the interpreter would chase
     * (accessor def fields, array bounds, channel cluster topology,
     * predication form) hoisted into the struct at construction.
     */
    struct ExecOp
    {
        compiler::MicroKind kind = compiler::MicroKind::Alu;
        compiler::OpCode op = compiler::OpCode::Mov; ///< Alu only
        bool elemIsFloat = false;
        bool chCross = false; ///< channel spans clusters (Produce)
        std::uint32_t elemBytes = 0;
        compiler::Word *dst = nullptr;
        const compiler::Word *a = nullptr;
        const compiler::Word *b = nullptr;
        const compiler::Word *c = nullptr;
        const compiler::Word *pred = nullptr; ///< null = unconditional
        accel::StreamUnit *stream = nullptr;
        Channel *ch = nullptr;
        std::int64_t tapDistance = 0;
        std::int64_t ivCoeff = 0;
        std::int64_t baseElemOffset = 0;
        mem::Addr arrayBase = 0;
        std::uint32_t arrayElemBytes = 8;
        std::uint64_t arrayCount = 0;
    };

    /** Execute one instruction; false means blocked (retry later). */
    bool execInst(const compiler::MicroInst &inst);

    /** Resolve one MicroInst into its predecoded form. */
    ExecOp predecode(const compiler::MicroInst &inst);

    /** run() over the predecoded stream with slice-batched stats. */
    ActorStatus runPredecoded(std::int64_t max_iters);

    /** run() interpreting the raw MicroProgram (predecode off). */
    ActorStatus runInterpreted(std::int64_t max_iters);

    /**
     * Emit this slice's timeline spans: the [t0, _now) interval split
     * into sequential compute / mem-blocked / chan-blocked segments
     * from the stall-counter deltas since (@p s0, @p i0).
     */
    void emitSlice(sim::Tick t0, const StallStats &s0, double i0);

    void finish();

    compiler::Word evalAlu(const compiler::MicroInst &inst) const;

    static compiler::Word evalAluOp(compiler::OpCode op,
                                    compiler::Word a, compiler::Word b,
                                    compiler::Word c);

    Config _config;
    std::vector<AccessorRuntime> _accessors;
    std::unique_ptr<accel::RandomUnit> _random;
    std::vector<Channel *> _ins;
    std::vector<Channel *> _outs;
    MemBackend *_backend;
    energy::Accountant *_acct;
    noc::Mesh *_mesh;
    accel::AccessStats *_stats;

    std::vector<compiler::Word> _regs;
    std::vector<ExecOp> _exec; ///< empty = interpret the raw program
    compiler::Word *_ivPtr = nullptr; ///< induction register, if any
    compiler::Word _scratch{};        ///< sink for noReg destinations
    double _fullInstWeight = 1.0;     ///< energy events per full inst
    double _portInstWeight = 0.4;     ///< energy events per port op
    bool _isCgra = false;
    std::size_t _pc = 0;
    std::int64_t _iter = 0;
    sim::Tick _now = 0;
    sim::Tick _lastInit = 0;
    sim::Tick _instCost = 0;
    sim::Tick _finishTick = 0;
    bool _finished = false;
    double _insts = 0.0;
    double _memOps = 0.0;
    StallStats _stalls;
};

} // namespace distda::engine

#endif // DISTDA_ENGINE_ACTOR_HH
