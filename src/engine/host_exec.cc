#include "src/engine/host_exec.hh"

#include <algorithm>
#include <cmath>

#include "src/sim/logging.hh"

namespace distda::engine
{

using compiler::AccessDir;
using compiler::Kernel;
using compiler::Node;
using compiler::NodeKind;
using compiler::OpCode;
using compiler::PatternKind;
using compiler::Word;

HostExecutor::HostExecutor(const Kernel &kernel, mem::Hierarchy *hier,
                           MemBackend *backend,
                           energy::Accountant *acct,
                           const HostParams &params)
    : _kernel(kernel), _hier(hier), _backend(backend), _acct(acct),
      _params(params), _dep(compiler::classifyKernel(kernel)),
      _topo(kernel.topoOrder())
{
}

HostExecutor::HostExecutor(
    std::shared_ptr<const compiler::OffloadPlan> plan,
    mem::Hierarchy *hier, MemBackend *backend, energy::Accountant *acct,
    const HostParams &params)
    : _planRef(std::move(plan)), _kernel(_planRef->kernel), _hier(hier),
      _backend(backend), _acct(acct), _params(params),
      _dep(compiler::classifyKernel(_kernel)),
      _topo(_kernel.topoOrder())
{
}

namespace
{

Word
evalCompute(const Node &n, const std::vector<Word> &vals)
{
    const Word a = n.inputA != compiler::noNode ? vals[static_cast<std::size_t>(n.inputA)] : Word{};
    const Word b = n.inputB != compiler::noNode ? vals[static_cast<std::size_t>(n.inputB)] : Word{};
    const Word c = n.inputC != compiler::noNode ? vals[static_cast<std::size_t>(n.inputC)] : Word{};
    Word r{};
    switch (n.op) {
      case OpCode::IAdd: r.i = a.i + b.i; break;
      case OpCode::ISub: r.i = a.i - b.i; break;
      case OpCode::IMul: r.i = a.i * b.i; break;
      case OpCode::IDiv: r.i = a.i / b.i; break;
      case OpCode::IRem: r.i = a.i % b.i; break;
      case OpCode::IMin: r.i = std::min(a.i, b.i); break;
      case OpCode::IMax: r.i = std::max(a.i, b.i); break;
      case OpCode::IAbs: r.i = std::llabs(a.i); break;
      case OpCode::IAnd: r.i = a.i & b.i; break;
      case OpCode::IOr: r.i = a.i | b.i; break;
      case OpCode::IXor: r.i = a.i ^ b.i; break;
      case OpCode::IShl: r.i = a.i << b.i; break;
      case OpCode::IShr: r.i = a.i >> b.i; break;
      case OpCode::ICmpLt: r.i = a.i < b.i; break;
      case OpCode::ICmpLe: r.i = a.i <= b.i; break;
      case OpCode::ICmpEq: r.i = a.i == b.i; break;
      case OpCode::ICmpNe: r.i = a.i != b.i; break;
      case OpCode::FAdd: r.f = a.f + b.f; break;
      case OpCode::FSub: r.f = a.f - b.f; break;
      case OpCode::FMul: r.f = a.f * b.f; break;
      case OpCode::FDiv: r.f = a.f / b.f; break;
      case OpCode::FSqrt: r.f = std::sqrt(a.f); break;
      case OpCode::FAbs: r.f = std::fabs(a.f); break;
      case OpCode::FMin: r.f = std::min(a.f, b.f); break;
      case OpCode::FMax: r.f = std::max(a.f, b.f); break;
      case OpCode::FNeg: r.f = -a.f; break;
      case OpCode::FCmpLt: r.i = a.f < b.f; break;
      case OpCode::FCmpLe: r.i = a.f <= b.f; break;
      case OpCode::FCmpEq: r.i = a.f == b.f; break;
      case OpCode::Select: r = a.i ? b : c; break;
      case OpCode::I2F: r.f = static_cast<double>(a.i); break;
      case OpCode::F2I: r.i = static_cast<std::int64_t>(a.f); break;
      case OpCode::Mov: r = a; break;
      default: panic("bad opcode");
    }
    return r;
}

} // namespace

HostRunResult
HostExecutor::run(const std::vector<ArrayRef> &bindings,
                  const std::vector<Word> &params, sim::Tick start_tick)
{
    DISTDA_ASSERT(bindings.size() == _kernel.objects.size(),
                  "host run: binding count mismatch");
    const sim::ClockDomain clock(_params.clockHz);
    const sim::Tick cycle = clock.period();

    std::int64_t trip = _kernel.loop.staticExtent;
    if (_kernel.loop.extentParam >= 0)
        trip = params[static_cast<std::size_t>(
                          _kernel.loop.extentParam)]
                   .i;

    // Per-iteration static op count.
    int ops = _params.loopOverheadOps;
    for (const Node &n : _kernel.nodes) {
        if (n.kind == NodeKind::Compute || n.kind == NodeKind::Access)
            ++ops;
    }
    int mem_ops_static = 0;
    for (const Node &n : _kernel.nodes) {
        if (n.kind == NodeKind::Access)
            ++mem_ops_static;
    }
    const double issue_cycles = std::max(
        {static_cast<double>(ops) /
             std::min<double>(_params.issueWidth, _params.sustainedIpc),
         static_cast<double>(mem_ops_static) / _params.memPortsPerCycle,
         static_cast<double>(_dep.carryChainCycles)});
    const auto compute_ticks = static_cast<sim::Tick>(
        issue_cycles * static_cast<double>(cycle));

    // Load dependence depths (indirect chains serialize).
    std::vector<int> depth(_kernel.nodes.size(), 0);
    int num_loads = 0;
    for (int id : _topo) {
        const Node &n = _kernel.node(id);
        int d = 0;
        for (int in : n.valueInputs())
            d = std::max(d, depth[static_cast<std::size_t>(in)]);
        if (n.kind == NodeKind::Access && n.dir == AccessDir::Load) {
            ++d;
            ++num_loads;
        }
        depth[static_cast<std::size_t>(id)] = d;
    }

    const double mlp = std::min<double>(
        _params.maxMlp, std::max(1, num_loads * 2));

    HostRunResult result;
    std::vector<Word> vals(_kernel.nodes.size(), Word{});
    std::vector<Word> carry_state(_kernel.nodes.size(), Word{});
    for (const Node &n : _kernel.nodes) {
        if (n.kind == NodeKind::Carry)
            carry_state[static_cast<std::size_t>(n.id)] = n.carryInit;
    }

    sim::Tick now = start_tick;
    std::vector<double> level_max(
        static_cast<std::size_t>(_dep.loadChainDepth) + 1, 0.0);
    for (std::int64_t it = 0; it < trip; ++it) {
        double load_lat_sum = 0.0;
        double chain_lat = 0.0; // deepest dependent-load chain
        std::fill(level_max.begin(), level_max.end(), 0.0);

        for (int id : _topo) {
            const Node &n = _kernel.node(id);
            switch (n.kind) {
              case NodeKind::IndVar:
                vals[static_cast<std::size_t>(id)].i = it;
                break;
              case NodeKind::Param:
                vals[static_cast<std::size_t>(id)] =
                    params[static_cast<std::size_t>(n.paramIdx)];
                break;
              case NodeKind::ConstInt:
              case NodeKind::ConstFloat:
                vals[static_cast<std::size_t>(id)] = n.imm;
                break;
              case NodeKind::Carry:
                vals[static_cast<std::size_t>(id)] =
                    carry_state[static_cast<std::size_t>(id)];
                break;
              case NodeKind::Compute:
                vals[static_cast<std::size_t>(id)] =
                    evalCompute(n, vals);
                break;
              case NodeKind::Access: {
                  const ArrayRef &arr =
                      bindings[static_cast<std::size_t>(n.objId)];
                  std::int64_t off = 0;
                  if (n.pattern == PatternKind::Affine) {
                      off = n.affine.constBase + n.affine.ivCoeff * it;
                      for (std::size_t k = 0;
                           k < n.affine.paramCoeffs.size(); ++k) {
                          if (n.affine.paramCoeffs[k] != 0)
                              off += n.affine.paramCoeffs[k] *
                                     params[k].i;
                      }
                  } else {
                      off = vals[static_cast<std::size_t>(n.addrInput)]
                                .i;
                  }
                  if (n.dir == AccessDir::Load) {
                      DISTDA_ASSERT(
                          off >= 0 && static_cast<std::uint64_t>(off) <
                                          arr.count,
                          "host load out of bounds: obj %d off %lld",
                          n.objId, static_cast<long long>(off));
                      const mem::Addr addr = arr.addrOf(
                          static_cast<std::uint64_t>(off));
                      vals[static_cast<std::size_t>(id)] =
                          _backend->load(addr, n.bits / 8,
                                         n.elemIsFloat);
                      const auto res = _hier->hostAccess(
                          addr, n.bits / 8, false, now);
                      load_lat_sum +=
                          static_cast<double>(res.latency);
                      const auto lvl = static_cast<std::size_t>(
                          depth[static_cast<std::size_t>(id)]);
                      if (lvl < level_max.size())
                          level_max[lvl] = std::max(
                              level_max[lvl],
                              static_cast<double>(res.latency));
                      result.memOps += 1.0;
                  } else {
                      const bool pred =
                          n.predInput == compiler::noNode ||
                          vals[static_cast<std::size_t>(n.predInput)]
                                  .i != 0;
                      if (pred) {
                          DISTDA_ASSERT(
                              off >= 0 &&
                                  static_cast<std::uint64_t>(off) <
                                      arr.count,
                              "host store out of bounds: obj %d off "
                              "%lld",
                              n.objId, static_cast<long long>(off));
                          const mem::Addr addr = arr.addrOf(
                              static_cast<std::uint64_t>(off));
                          _backend->store(
                              addr,
                              vals[static_cast<std::size_t>(
                                  n.valueInput)],
                              n.bits / 8, n.elemIsFloat);
                          // Store latency is hidden by the store
                          // buffer; traffic/energy still counted.
                          _hier->hostAccess(addr, n.bits / 8, true,
                                            now);
                      }
                      result.memOps += 1.0;
                  }
                  break;
              }
              default:
                break;
            }
        }
        // Latch carries.
        for (const Node &n : _kernel.nodes) {
            if (n.kind == NodeKind::Carry && n.carryUpdate != compiler::noNode)
                carry_state[static_cast<std::size_t>(n.id)] =
                    vals[static_cast<std::size_t>(n.carryUpdate)];
        }

        for (std::size_t lvl = 2; lvl < level_max.size(); ++lvl)
            chain_lat += level_max[lvl];

        sim::Tick mem_ticks;
        if (_dep.hasMemoryRecurrence) {
            // Pointer chasing: the next address needs this load.
            mem_ticks = static_cast<sim::Tick>(load_lat_sum);
        } else {
            mem_ticks = static_cast<sim::Tick>(
                chain_lat + (load_lat_sum - chain_lat) / mlp);
        }
        now += std::max(compute_ticks, mem_ticks);
        result.insts += ops;
        if (_acct)
            _acct->addEvents(energy::Component::OoOCore, ops);
    }

    for (int node : _kernel.resultCarries) {
        result.results.push_back(
            {node, carry_state[static_cast<std::size_t>(node)]});
    }
    result.endTick = now;
    result.record.start = start_tick;
    result.record.end = now;
    result.record.add(offload::Phase::Execute, now - start_tick);
    return result;
}

} // namespace distda::engine
