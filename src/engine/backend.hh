/**
 * @file
 * Functional memory backend: real bytes backing the slab arena so every
 * simulated load/store moves actual data. This is what lets the suite
 * validate each workload by running it to completion on every
 * configuration and comparing outputs with a native reference.
 */

#ifndef DISTDA_ENGINE_BACKEND_HH
#define DISTDA_ENGINE_BACKEND_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/compiler/dfg.hh"
#include "src/mem/addr.hh"
#include "src/sim/logging.hh"

namespace distda::engine
{

/** Byte-addressable backing store for the accelerator-visible arena. */
class MemBackend
{
  public:
    MemBackend(mem::Addr base, std::uint64_t size)
        : _base(base), _data(size, 0)
    {
    }

    mem::Addr base() const { return _base; }
    std::uint64_t size() const { return _data.size(); }

    /** Load an element; integers sign-extend, floats widen to double. */
    compiler::Word
    load(mem::Addr addr, std::uint32_t elem_bytes, bool is_float) const
    {
        const std::uint8_t *p = at(addr, elem_bytes);
        compiler::Word w{};
        if (is_float) {
            if (elem_bytes == 4) {
                float f;
                std::memcpy(&f, p, 4);
                w.f = f;
            } else {
                std::memcpy(&w.f, p, 8);
            }
        } else {
            switch (elem_bytes) {
              case 1: {
                  std::int8_t v;
                  std::memcpy(&v, p, 1);
                  w.i = v;
                  break;
              }
              case 2: {
                  std::int16_t v;
                  std::memcpy(&v, p, 2);
                  w.i = v;
                  break;
              }
              case 4: {
                  std::int32_t v;
                  std::memcpy(&v, p, 4);
                  w.i = v;
                  break;
              }
              default:
                std::memcpy(&w.i, p, 8);
                break;
            }
        }
        return w;
    }

    /** Store an element, narrowing as needed. */
    void
    store(mem::Addr addr, compiler::Word w, std::uint32_t elem_bytes,
          bool is_float)
    {
        std::uint8_t *p = at(addr, elem_bytes);
        if (is_float) {
            if (elem_bytes == 4) {
                const float f = static_cast<float>(w.f);
                std::memcpy(p, &f, 4);
            } else {
                std::memcpy(p, &w.f, 8);
            }
        } else {
            switch (elem_bytes) {
              case 1: {
                  const auto v = static_cast<std::int8_t>(w.i);
                  std::memcpy(p, &v, 1);
                  break;
              }
              case 2: {
                  const auto v = static_cast<std::int16_t>(w.i);
                  std::memcpy(p, &v, 2);
                  break;
              }
              case 4: {
                  const auto v = static_cast<std::int32_t>(w.i);
                  std::memcpy(p, &v, 4);
                  break;
              }
              default:
                std::memcpy(p, &w.i, 8);
                break;
            }
        }
    }

    /**
     * Byte-exact snapshot of [addr, addr+len): the differential fuzz
     * harness compares final memory-object state across backends with
     * memcmp rather than element-typed reads, so narrowing or padding
     * bugs cannot hide behind a lossy accessor.
     */
    void
    copyOut(mem::Addr addr, void *dst, std::uint64_t len) const
    {
        DISTDA_ASSERT(addr >= _base && addr + len <= _base + _data.size(),
                      "backend copyOut [0x%llx, +%llu) outside arena",
                      static_cast<unsigned long long>(addr),
                      static_cast<unsigned long long>(len));
        std::memcpy(dst, _data.data() + (addr - _base), len);
    }

  private:
    std::uint8_t *
    at(mem::Addr addr, std::uint32_t elem_bytes)
    {
        DISTDA_ASSERT(addr >= _base &&
                          addr + elem_bytes <= _base + _data.size(),
                      "backend access 0x%llx outside arena",
                      static_cast<unsigned long long>(addr));
        return _data.data() + (addr - _base);
    }

    const std::uint8_t *
    at(mem::Addr addr, std::uint32_t elem_bytes) const
    {
        return const_cast<MemBackend *>(this)->at(addr, elem_bytes);
    }

    mem::Addr _base;
    std::vector<std::uint8_t> _data;
};

/** A typed view of one allocated data structure. */
struct ArrayRef
{
    mem::Addr base = 0;
    std::uint64_t count = 0;
    std::uint32_t elemBytes = 8;
    bool isFloat = false;
    MemBackend *mem = nullptr;

    mem::Addr addrOf(std::uint64_t i) const { return base + i * elemBytes; }

    double
    getF(std::uint64_t i) const
    {
        return mem->load(addrOf(i), elemBytes, true).f;
    }

    void
    setF(std::uint64_t i, double v)
    {
        compiler::Word w;
        w.f = v;
        mem->store(addrOf(i), w, elemBytes, true);
    }

    std::int64_t
    getI(std::uint64_t i) const
    {
        return mem->load(addrOf(i), elemBytes, false).i;
    }

    void
    setI(std::uint64_t i, std::int64_t v)
    {
        compiler::Word w;
        w.i = v;
        mem->store(addrOf(i), w, elemBytes, false);
    }

    std::uint64_t sizeBytes() const { return count * elemBytes; }
};

} // namespace distda::engine

#endif // DISTDA_ENGINE_BACKEND_HH
