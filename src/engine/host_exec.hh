/**
 * @file
 * Baseline execution of a kernel on the out-of-order host (the OoO
 * configuration): every load/store walks the L1/L2/L3/DRAM hierarchy
 * and per-iteration time follows an analytical OoO model — issue-width
 * bound on the instruction stream, MSHR/window bound on memory-level
 * parallelism, and full serialization for pointer-chasing recurrences.
 */

#ifndef DISTDA_ENGINE_HOST_EXEC_HH
#define DISTDA_ENGINE_HOST_EXEC_HH

#include <memory>
#include <vector>

#include "src/compiler/classify.hh"
#include "src/compiler/dfg.hh"
#include "src/compiler/plan.hh"
#include "src/energy/energy_model.hh"
#include "src/engine/backend.hh"
#include "src/mem/hierarchy.hh"
#include "src/offload/lifecycle.hh"

namespace distda::engine
{

/** OoO pipeline parameters (Table III: 5-way Ice-Lake-class @2GHz). */
struct HostParams
{
    int issueWidth = 5;
    /**
     * Sustained IPC ceiling. The 5-way front end rarely extracts full
     * width on these loop bodies (FP dependence chains, load-use
     * delays, branches); calibrated to the ~1.2 sustained IPC a
     * gem5-class X86 O3 model achieves here, which the paper's own
     * ratios imply (its Mono-DA-IO 1-issue accelerators run close to
     * the OoO baseline).
     */
    double sustainedIpc = 1.2;
    double memPortsPerCycle = 2.0; ///< L1 load/store ports
    std::uint64_t clockHz = 2'000'000'000ULL;
    int maxMlp = 8;          ///< L1 MSHRs bound outstanding misses
    int loopOverheadOps = 4; ///< loop control per iteration
};

/** Outcome of a host-side kernel execution. */
struct HostRunResult
{
    sim::Tick endTick = 0;
    double insts = 0.0;
    double memOps = 0.0;
    std::vector<std::pair<int, compiler::Word>> results;
    /**
     * Lifecycle record of this run: the host path has no interface
     * traffic, so the whole end-to-end latency is Execute and the
     * other six phases are zero (trivially conserved).
     */
    offload::OffloadRecord record;
};

/** Executes kernels directly on the host core. */
class HostExecutor
{
  public:
    HostExecutor(const compiler::Kernel &kernel, mem::Hierarchy *hier,
                 MemBackend *backend, energy::Accountant *acct,
                 const HostParams &params = HostParams{});

    /**
     * Owning binding for the compile→instantiate split: executes the
     * plan's kernel and shares plan ownership so cached or
     * deserialized plans stay alive for the executor's lifetime.
     */
    HostExecutor(std::shared_ptr<const compiler::OffloadPlan> plan,
                 mem::Hierarchy *hier, MemBackend *backend,
                 energy::Accountant *acct,
                 const HostParams &params = HostParams{});

    HostRunResult run(const std::vector<ArrayRef> &bindings,
                      const std::vector<compiler::Word> &params,
                      sim::Tick start_tick);

  private:
    /** Owned plan for the shared_ptr constructor; null when borrowed. */
    std::shared_ptr<const compiler::OffloadPlan> _planRef;
    const compiler::Kernel &_kernel;
    mem::Hierarchy *_hier;
    MemBackend *_backend;
    energy::Accountant *_acct;
    HostParams _params;
    compiler::DependenceInfo _dep;
    std::vector<int> _topo;
};

} // namespace distda::engine

#endif // DISTDA_ENGINE_HOST_EXEC_HH
