/**
 * @file
 * The dataflow engine: instantiates one actor per compiled partition,
 * wires access units and channels according to the architecture model
 * under evaluation, and runs the decoupled actors to completion.
 *
 * The same compiled OffloadPlan executes under every architecture
 * configuration — the engine only changes *where* compute and access
 * units sit (Fig 1b-d):
 *  - centralized access (Mono-CA): units at the host-side node, fills
 *    through an 8KB private cache;
 *  - decentralized access, monolithic compute (Mono-DA): units at each
 *    object's home cluster forwarding operands to one compute node;
 *  - decentralized access, distributed compute (Dist-DA): partitions
 *    co-located with their objects, communicating through channels.
 */

#ifndef DISTDA_ENGINE_ENGINE_HH
#define DISTDA_ENGINE_ENGINE_HH

#include <memory>
#include <vector>

#include "src/cgra/cgra.hh"
#include "src/engine/actor.hh"
#include "src/mem/cache.hh"

namespace distda::engine
{

/** Architecture-model knobs for one engine run. */
struct EngineConfig
{
    ActorKind kind = ActorKind::InOrder;
    std::uint64_t accelClockHz = 2'000'000'000ULL;
    int issueWidth = 1;
    /**
     * Energy events charged per instruction relative to the substrate
     * default (Mono-CA's unconstrained monolithic accelerator burns
     * more per instruction than a minimal in-order core).
     */
    double instEnergyScale = 1.0;
    bool swPrefetch = false;
    /** Mono-CA: all access units sit with the compute node. */
    bool centralizedAccess = false;
    /**
     * Dist-DA: partitions (with their access units) co-locate at
     * their object's home cluster; remote lines arrive through the
     * memory interface at line granularity. When false (Mono-DA), the
     * single compute node is fed by data-anchored access units that
     * forward operands per element over the NoC (Fig 1c vs 1d).
     */
    bool distributedCompute = false;
    /** Mono-CA private cache size (0 = none). */
    std::uint32_t privateCacheBytes = 0;
    cgra::CgraParams fabric; ///< used when kind == Cgra
    std::uint32_t clusterBufferBytes = 4096;
    int channelCapacity = 64;
    /** Retain stream windows across invocations (§V-B reuse). */
    bool retainBuffers = true;
    /**
     * Per-engine predecode control: -1 follows the global
     * setPredecodeEnabled toggle, 0 forces the raw interpreter, 1
     * forces the predecoded stream. The differential fuzz harness runs
     * interpreter and predecoded engines concurrently on one pool, so
     * it cannot share the process-wide toggle.
     */
    int predecode = -1;
    /**
     * Per-run timeline probe (null = observability off). The engine
     * threads it into every actor, stream unit and channel it builds;
     * the caller owns the probe and must keep it alive across invoke().
     */
    sim::Probe *probe = nullptr;
};

/** Outcome of one kernel invocation. */
struct InvokeResult
{
    sim::Tick endTick = 0;
    /** (carry DFG node, final value) for kernel result carries. */
    std::vector<std::pair<int, compiler::Word>> results;
    double accelInsts = 0.0;
    double memOps = 0.0;
};

/** Executes one OffloadPlan under one architecture configuration. */
class DataflowEngine
{
  public:
    DataflowEngine(const compiler::OffloadPlan &plan,
                   const EngineConfig &config, mem::Hierarchy *hier,
                   MemBackend *backend, energy::Accountant *acct);

    /**
     * Run the offload once: @p bindings maps kernel object ids to
     * arrays, @p params supplies the host-set scalars.
     */
    InvokeResult invoke(const std::vector<ArrayRef> &bindings,
                        const std::vector<compiler::Word> &params,
                        sim::Tick start_tick);

    /** Accumulated Fig 9 access-distribution counters. */
    const accel::AccessStats &accessStats() const { return _stats; }

    /** Per-partition CGRA mappings (empty for in-order substrates). */
    const std::vector<cgra::CgraMapping> &mappings() const
    {
        return _mappings;
    }

    /** Total MMIO-visible configuration words per invocation. */
    int configWordsPerInvoke() const;

    /** One channel edge as the engine instantiates it. */
    struct ChannelEdge
    {
        int id = -1;
        int srcPartition = -1;
        int dstPartition = -1; ///< -1: host-consumed
        int elemBytes = 0;
        bool control = false;
        int capacity = 0; ///< decoupling depth in elements
    };

    /**
     * The actor/channel graph this engine executes, for external
     * inspection (verification tooling, tests). Mirrors the plan's
     * channel table with the engine's configured FIFO capacity.
     */
    std::vector<ChannelEdge> channelTopology() const;

  private:
    /**
     * Buffer retention across invocations (§V-B: resources are not
     * deallocated while outer-loop reuse exists): an accessor whose
     * stream configuration is unchanged reuses its window, so rereads
     * of a fully buffered range are buffer hits.
     */
    accel::StreamUnit *retainedStream(int node,
                                      const accel::StreamParams &sp,
                                      accel::MemPort port,
                                      sim::Tick now);

    const compiler::OffloadPlan &_plan;
    EngineConfig _config;
    mem::Hierarchy *_hier;
    MemBackend *_backend;
    energy::Accountant *_acct;
    accel::AccessStats _stats;
    std::vector<cgra::CgraMapping> _mappings;
    std::unique_ptr<mem::Cache> _privateCache; ///< Mono-CA only
    std::map<int, std::unique_ptr<accel::StreamUnit>> _retained;
};

} // namespace distda::engine

#endif // DISTDA_ENGINE_ENGINE_HH
