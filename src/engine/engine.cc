#include "src/engine/engine.hh"

#include <algorithm>
#include <map>
#include <string>

#include "src/sim/logging.hh"
#include "src/sim/probe.hh"

namespace distda::engine
{

using compiler::AccessDir;
using compiler::AccessorDef;
using compiler::OffloadPlan;
using compiler::Partition;
using compiler::PatternKind;
using compiler::Word;

DataflowEngine::DataflowEngine(const OffloadPlan &plan,
                               const EngineConfig &config,
                               mem::Hierarchy *hier, MemBackend *backend,
                               energy::Accountant *acct)
    : _plan(plan), _config(config), _hier(hier), _backend(backend),
      _acct(acct)
{
    if (config.kind == ActorKind::Cgra) {
        _mappings.reserve(plan.partitions.size());
        for (const Partition &part : plan.partitions)
            _mappings.push_back(
                cgra::mapProgram(part.program, config.fabric));
    }
    if (config.privateCacheBytes > 0) {
        mem::CacheParams pp;
        pp.name = "accel_private";
        pp.sizeBytes = config.privateCacheBytes;
        pp.assoc = 8;
        pp.latencyCycles = 1;
        pp.mshrs = 8;
        pp.component = energy::Component::Acp;
        _privateCache = std::make_unique<mem::Cache>(
            pp, acct,
            mem::Cache::Downstream(
                [](void *ctx, mem::Addr a, bool w, sim::Tick t) {
                    auto *self = static_cast<DataflowEngine *>(ctx);
                    return self->_hier->l3()
                        .access(a, mem::lineBytes, w,
                                self->_hier->mesh().hostNode(), t,
                                mem::TrafficTag{
                                    noc::TrafficClass::AccCtrl,
                                    noc::TrafficClass::AccData})
                        .latency;
                },
                this));
    }
}

int
DataflowEngine::configWordsPerInvoke() const
{
    // cp_config per partition, cp_config_stream/random per accessor
    // buffer, cp_set_rf per (partition, param), cp_run per partition.
    int words = 0;
    for (const Partition &part : _plan.partitions) {
        words += 2; // cp_config + cp_run
        words += part.streamBuffers;
        bool random = false;
        for (const AccessorDef &ad : part.accessors)
            random |= ad.pattern == PatternKind::Indirect;
        if (random)
            ++words;
        words += static_cast<int>(part.program.paramRegs.size());
    }
    return words;
}

std::vector<DataflowEngine::ChannelEdge>
DataflowEngine::channelTopology() const
{
    std::vector<ChannelEdge> edges;
    edges.reserve(_plan.channels.size());
    for (const compiler::ChannelDef &cd : _plan.channels) {
        ChannelEdge e;
        e.id = cd.id;
        e.srcPartition = cd.srcPartition;
        e.dstPartition = cd.dstPartition;
        e.elemBytes = cd.bits / 8;
        e.control = cd.control;
        e.capacity = _config.channelCapacity;
        edges.push_back(e);
    }
    return edges;
}

namespace
{

bool
sameStreamConfig(const accel::StreamParams &a,
                 const accel::StreamParams &b)
{
    return a.base == b.base && a.strideBytes == b.strideBytes &&
           a.elemBytes == b.elemBytes && a.hasLoads == b.hasLoads &&
           a.hasStores == b.hasStores &&
           a.unitCluster == b.unitCluster &&
           a.consumerCluster == b.consumerCluster &&
           a.capacityBytes == b.capacityBytes &&
           a.totalElems == b.totalElems;
}

} // namespace

accel::StreamUnit *
DataflowEngine::retainedStream(int node, const accel::StreamParams &sp,
                               accel::MemPort port, sim::Tick now)
{
    auto it = _retained.find(node);
    if (_config.retainBuffers && it != _retained.end() &&
        sameStreamConfig(it->second->params(), sp)) {
        it->second->rewind(now);
        return it->second.get();
    }
    sim::Probe *probe = _config.probe;
    int track = -1;
    stats::Distribution *fill_dist = nullptr;
    if (probe) {
        track = probe->addTrack(sp.unitCluster,
                                "stream" + std::to_string(node));
        fill_dist = &probe->addDist("stream.fill_latency_ticks", 0.0,
                                    100'000.0, 20);
    }
    auto unit = std::make_unique<accel::StreamUnit>(
        sp, std::move(port), &_hier->mesh(), &_stats, probe, track,
        fill_dist);
    _retained[node] = std::move(unit);
    return _retained[node].get();
}

InvokeResult
DataflowEngine::invoke(const std::vector<ArrayRef> &bindings,
                       const std::vector<Word> &params,
                       sim::Tick start_tick)
{
    const compiler::Kernel &kernel = _plan.kernel;
    DISTDA_ASSERT(bindings.size() == kernel.objects.size(),
                  "kernel '%s': %zu bindings for %zu objects",
                  kernel.name.c_str(), bindings.size(),
                  kernel.objects.size());

    // Trip count.
    std::int64_t trip = kernel.loop.staticExtent;
    if (kernel.loop.extentParam >= 0) {
        DISTDA_ASSERT(kernel.loop.extentParam <
                          static_cast<int>(params.size()),
                      "missing extent param");
        trip = params[static_cast<std::size_t>(kernel.loop.extentParam)].i;
    }

    const sim::ClockDomain accel_clock(_config.accelClockHz);
    const sim::Tick cycle = accel_clock.period();

    // Evaluate each accessor's element-0 offset under these params.
    auto base_offset = [&params](const AccessorDef &ad) {
        std::int64_t off = ad.affine.constBase;
        for (std::size_t k = 0; k < ad.affine.paramCoeffs.size(); ++k) {
            if (ad.affine.paramCoeffs[k] != 0) {
                DISTDA_ASSERT(k < params.size(), "missing param %zu", k);
                off += ad.affine.paramCoeffs[k] * params[k].i;
            }
        }
        return off;
    };

    // --- Home-node placement (runtime greedy, §V-B). ---
    const int host_node = _hier->mesh().hostNode();
    std::vector<int> part_cluster(_plan.partitions.size(), host_node);
    for (const Partition &part : _plan.partitions) {
        int cluster = host_node;
        if (_config.centralizedAccess) {
            cluster = host_node; // monolithic on the L3 bus
        } else if (part.level == compiler::PlacementLevel::NearHost) {
            cluster = host_node;
        } else if (part.objId >= 0) {
            // Greedy: the cluster holding the first address this
            // partition's object window touches.
            mem::Addr first = bindings[static_cast<std::size_t>(
                                           part.objId)]
                                  .base;
            for (const AccessorDef &ad : part.accessors) {
                if (ad.objId == part.objId &&
                    ad.pattern == PatternKind::Affine) {
                    const std::int64_t off = base_offset(ad);
                    first = bindings[static_cast<std::size_t>(part.objId)]
                                .addrOf(static_cast<std::uint64_t>(
                                    std::max<std::int64_t>(off, 0)));
                    break;
                }
            }
            cluster = _hier->l3().clusterOf(first);
        }
        part_cluster[static_cast<std::size_t>(part.id)] = cluster;
    }
    // Mono-DA: a single partition computes at its (single) home; its
    // access units decentralize below.
    const bool decentralized = !_config.centralizedAccess;

    // --- Count stream buffers per cluster for capacity sharing. ---
    std::map<int, int> buffers_in_cluster;
    auto unit_cluster_of = [&](const Partition &part,
                               const AccessorDef &ad) {
        // Mono-CA: centralized units at the compute node; Dist-DA:
        // units co-located with their partition at its home cluster;
        // Mono-DA: units anchored at the data, forwarding operands to
        // the single remote compute node (Fig 1c vs 1d).
        if (_config.centralizedAccess || _config.distributedCompute)
            return part_cluster[static_cast<std::size_t>(part.id)];
        (void)decentralized;
        const std::int64_t off = std::max<std::int64_t>(
            base_offset(ad), 0);
        const mem::Addr addr =
            bindings[static_cast<std::size_t>(ad.objId)].addrOf(
                static_cast<std::uint64_t>(off));
        return _hier->l3().clusterOf(addr);
    };
    for (const Partition &part : _plan.partitions) {
        for (const AccessorDef &ad : part.accessors) {
            if (ad.bufferSlot >= 0 && ad.combinedWithSlot < 0)
                ++buffers_in_cluster[unit_cluster_of(part, ad)];
        }
    }

    // --- Channels. ---
    std::vector<std::unique_ptr<Channel>> channels;
    channels.reserve(_plan.channels.size());
    for (const compiler::ChannelDef &cd : _plan.channels) {
        const int src =
            part_cluster[static_cast<std::size_t>(cd.srcPartition)];
        const int dst =
            cd.dstPartition >= 0
                ? part_cluster[static_cast<std::size_t>(cd.dstPartition)]
                : host_node;
        channels.push_back(std::make_unique<Channel>(
            static_cast<std::size_t>(_config.channelCapacity),
            cd.bits / 8, cd.control, src, dst));
    }

    // --- Memory port shared by units (ACP or Mono-CA private cache).
    // Both routes end in a plain Cache::access, so a port is just the
    // target cache plus one shared thunk. ---
    constexpr accel::MemPort::Fn cache_port =
        [](void *ctx, mem::Addr a, std::uint32_t s, bool w,
           sim::Tick t) {
            return static_cast<mem::Cache *>(ctx)->access(a, s, w, t)
                .latency;
        };
    auto port_at = [this](int cluster) -> accel::MemPort {
        mem::Cache &target =
            _privateCache ? *_privateCache : _hier->acp(cluster);
        return accel::MemPort(cache_port, &target);
    };

    // --- Build actors. ---
    std::vector<std::unique_ptr<PartitionActor>> actors;

    std::vector<Word> param_values = params;

    for (const Partition &part : _plan.partitions) {
        const int compute_cluster =
            part_cluster[static_cast<std::size_t>(part.id)];

        // Stream units: create every leader first, then wire follower
        // taps (program order may interleave them).
        std::map<int, accel::StreamUnit *> slot_stream;
        std::vector<AccessorRuntime> ars(part.accessors.size());
        for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t ai = 0; ai < part.accessors.size(); ++ai) {
            const AccessorDef &ad = part.accessors[ai];
            const bool leader_pass =
                ad.bufferSlot >= 0 && ad.combinedWithSlot < 0;
            if ((pass == 0) != leader_pass)
                continue;
            AccessorRuntime ar;
            ar.def = &ad;
            ar.array = bindings[static_cast<std::size_t>(ad.objId)];
            ar.baseElemOffset = base_offset(ad);
            if (ad.bufferSlot >= 0 && ad.combinedWithSlot < 0) {
                const int uc = unit_cluster_of(part, ad);
                accel::StreamParams sp;
                const std::int64_t off =
                    std::max<std::int64_t>(ar.baseElemOffset, 0);
                sp.base = ar.array.addrOf(
                    static_cast<std::uint64_t>(off));
                sp.strideBytes = ad.affine.ivCoeff *
                                 static_cast<std::int64_t>(ad.elemBytes);
                sp.elemBytes = ad.elemBytes;
                // Combined buffers are read-modify-write when the
                // group mixes loads and stores (Fig 2d).
                sp.hasLoads = false;
                sp.hasStores = false;
                for (const AccessorDef &other : part.accessors) {
                    if (other.bufferSlot == ad.bufferSlot) {
                        if (other.dir == AccessDir::Load)
                            sp.hasLoads = true;
                        else
                            sp.hasStores = true;
                    }
                }
                sp.unitCluster = uc;
                sp.consumerCluster = compute_cluster;
                sp.totalElems = static_cast<std::uint64_t>(
                    std::max<std::int64_t>(trip, 1));
                sp.cycleTick = cycle;
                const int nbuf =
                    std::max(buffers_in_cluster[uc], 1);
                sp.capacityBytes = std::max<std::uint32_t>(
                    _config.clusterBufferBytes /
                        static_cast<std::uint32_t>(nbuf),
                    256);
                ar.stream = retainedStream(ad.node, sp, port_at(uc),
                                           start_tick);
                slot_stream[ad.bufferSlot] = ar.stream;
                ar.tapDistance = 0;
            } else if (ad.bufferSlot >= 0) {
                // Follower tap on the leader's buffer.
                auto it = slot_stream.find(ad.combinedWithSlot);
                DISTDA_ASSERT(it != slot_stream.end(),
                              "follower before leader in partition %d",
                              part.id);
                ar.stream = it->second;
                const std::int64_t stride_elems = std::max<std::int64_t>(
                    std::llabs(ad.affine.ivCoeff), 1);
                ar.tapDistance = ad.combineDistance / stride_elems;
            }
            ars[ai] = ar;
        }
        }

        auto random = std::make_unique<accel::RandomUnit>(
            compute_cluster, port_at(compute_cluster), &_stats, cycle);

        std::vector<Channel *> ins, outs;
        ins.reserve(part.inChannels.size());
        for (int ch : part.inChannels)
            ins.push_back(channels[static_cast<std::size_t>(ch)].get());
        outs.reserve(part.outChannels.size());
        for (int ch : part.outChannels)
            outs.push_back(channels[static_cast<std::size_t>(ch)].get());

        PartitionActor::Config ac;
        ac.part = &part;
        ac.kind = _config.kind;
        ac.cycleTick = cycle;
        ac.issueWidth = _config.issueWidth;
        ac.instEnergyScale = _config.instEnergyScale;
        if (_config.kind == ActorKind::Cgra) {
            const cgra::CgraMapping &m =
                _mappings[static_cast<std::size_t>(part.id)];
            ac.ii = m.ii;
            ac.scheduleDepth = m.scheduleDepth;
            ac.energyComp = energy::Component::Cgra;
        } else {
            ac.energyComp = energy::Component::IOCore;
        }
        ac.cluster = compute_cluster;
        ac.trip = trip;
        ac.swPrefetch = _config.swPrefetch || part.swPrefetch;
        // Indirect accesses run ahead of the consumer when the index
        // is itself streamable (B[A[i]]); software prefetching widens
        // the window; pointer-chasing recurrences cannot run ahead.
        if (_plan.dep.hasMemoryRecurrence) {
            ac.hideTicks = 0;
        } else {
            const sim::Tick depth = ac.swPrefetch ? 96 : 48;
            ac.hideTicks = depth * cycle;
        }
        ac.startTick = start_tick;
        ac.predecode = _config.predecode;
        if (_config.probe) {
            ac.probe = _config.probe;
            ac.track = _config.probe->addTrack(
                compute_cluster, "part" + std::to_string(part.id));
            ac.sliceInsts = &_config.probe->addDist(
                "actor.slice_insts", 0.0, 8192.0, 32);
        }

        actors.push_back(std::make_unique<PartitionActor>(
            ac, std::move(ars), std::move(random), std::move(ins),
            std::move(outs), param_values, _backend, _acct,
            &_hier->mesh(), &_stats));
    }

    // Channel occupancy counter tracks: one counter per channel on its
    // source cluster's track, sampled once per round-robin round (the
    // probe coalesces to the configured interval).
    std::vector<int> ch_counters;
    if (_config.probe) {
        ch_counters.reserve(channels.size());
        for (std::size_t ci = 0; ci < channels.size(); ++ci) {
            const int track = _config.probe->addTrack(
                channels[ci]->srcCluster(),
                "ch" + std::to_string(_plan.channels[ci].id));
            ch_counters.push_back(
                _config.probe->addCounter(track, "occupancy"));
        }
    }

    // --- Round-robin decoupled execution until quiescence. ---
    constexpr std::int64_t chunk = 1024;
    bool all_done = false;
    while (!all_done) {
        all_done = true;
        double progress = 0.0;
        for (auto &actor : actors) {
            const double before = actor->instsExecuted();
            const ActorStatus st = actor->run(chunk);
            progress += actor->instsExecuted() - before;
            if (st != ActorStatus::Finished)
                all_done = false;
        }
        if (!all_done && progress == 0.0) {
            panic("dataflow deadlock in kernel '%s'",
                  kernel.name.c_str());
        }
        if (_config.probe) {
            sim::Tick round_now = start_tick;
            for (const auto &actor : actors)
                round_now = std::max(round_now, actor->now());
            for (std::size_t ci = 0; ci < channels.size(); ++ci) {
                _config.probe->counter(
                    ch_counters[ci], round_now,
                    static_cast<double>(channels[ci]->occupancy()),
                    all_done);
            }
        }
    }

    // Token conservation at quiescence: every dataflow channel must be
    // closed by its producer and fully drained by its consumer — a
    // leftover or missing token means partitions disagreed about the
    // iteration space, which execution-time backpressure can mask.
    for (std::size_t ci = 0; ci < channels.size(); ++ci) {
        const Channel &ch = *channels[ci];
        DISTDA_ASSERT(ch.closed(),
                      "kernel '%s': channel %d not closed at quiescence",
                      kernel.name.c_str(), _plan.channels[ci].id);
        DISTDA_ASSERT(ch.pushed() == ch.popped() && ch.empty(),
                      "kernel '%s': channel %d tokens not conserved "
                      "(pushed %llu, popped %llu, %zu in flight)",
                      kernel.name.c_str(), _plan.channels[ci].id,
                      static_cast<unsigned long long>(ch.pushed()),
                      static_cast<unsigned long long>(ch.popped()),
                      ch.occupancy());
    }

    if (_config.probe) {
        stats::Distribution &occ = _config.probe->addDist(
            "channel.max_occupancy", 0.0,
            static_cast<double>(_config.channelCapacity) + 1.0, 16);
        for (const auto &ch : channels)
            occ.sample(static_cast<double>(ch->maxOccupancy()));
    }

    InvokeResult result;
    for (const auto &actor : actors) {
        result.endTick = std::max(result.endTick, actor->finishTick());
        result.accelInsts += actor->instsExecuted();
        result.memOps += actor->memOps();
    }

    // Result carries read back by the host (cp_load_rf).
    for (int node : kernel.resultCarries) {
        for (const auto &actor : actors) {
            const auto &slots = actor->carrySlots();
            for (std::size_t i = 0; i < slots.size(); ++i) {
                if (slots[i].node == node)
                    result.results.push_back(
                        {node, actor->carryValue(i)});
            }
        }
    }
    return result;
}

} // namespace distda::engine
