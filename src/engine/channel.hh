/**
 * @file
 * Dataflow channels between decoupled partitions (§IV-B): bounded FIFOs
 * of timestamped values realizing the cp_produce / cp_consume / cp_step
 * producer-consumer semantics with credit-based backpressure — a
 * producer blocks when the consumer-side buffer has no free credits,
 * exactly like the access-unit buffers of Fig 4.
 */

#ifndef DISTDA_ENGINE_CHANNEL_HH
#define DISTDA_ENGINE_CHANNEL_HH

#include <cstdint>
#include <deque>

#include "src/compiler/dfg.hh"
#include "src/sim/ticks.hh"

namespace distda::engine
{

/** One in-flight operand. */
struct ChannelItem
{
    compiler::Word value{};
    sim::Tick readyAt = 0;
};

/** A bounded producer-consumer FIFO with arrival timestamps. */
class Channel
{
  public:
    Channel(std::size_t capacity, std::uint32_t elem_bytes,
            bool control, int src_cluster, int dst_cluster)
        : _capacity(capacity), _elemBytes(elem_bytes), _control(control),
          _srcCluster(src_cluster), _dstCluster(dst_cluster)
    {
    }

    std::size_t capacity() const { return _capacity; }
    std::uint32_t elemBytes() const { return _elemBytes; }
    bool isControl() const { return _control; }
    int srcCluster() const { return _srcCluster; }
    int dstCluster() const { return _dstCluster; }

    bool full() const { return _items.size() >= _capacity; }
    bool empty() const { return _items.empty(); }
    std::size_t occupancy() const { return _items.size(); }

    /** Producer finished; consumers see end-of-stream after drain. */
    void close() { _closed = true; }
    bool closed() const { return _closed; }
    bool drained() const { return _closed && _items.empty(); }

    /** Push a value that arrives at the consumer at @p ready_at. */
    void
    push(compiler::Word value, sim::Tick ready_at)
    {
        _items.push_back(ChannelItem{value, ready_at});
        ++_pushed;
        if (_items.size() > _maxOcc)
            _maxOcc = _items.size();
    }

    const ChannelItem &front() const { return _items.front(); }

    void
    pop()
    {
        _items.pop_front();
        ++_popped;
    }

    std::uint64_t pushed() const { return _pushed; }
    std::uint64_t popped() const { return _popped; }

    /** High-water occupancy over the channel's lifetime. */
    std::size_t maxOccupancy() const { return _maxOcc; }

  private:
    std::size_t _capacity;
    std::uint32_t _elemBytes;
    bool _control;
    int _srcCluster;
    int _dstCluster;
    bool _closed = false;
    std::deque<ChannelItem> _items;
    std::uint64_t _pushed = 0;
    std::uint64_t _popped = 0;
    std::size_t _maxOcc = 0;
};

} // namespace distda::engine

#endif // DISTDA_ENGINE_CHANNEL_HH
