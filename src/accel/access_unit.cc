#include "src/accel/access_unit.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "src/sim/logging.hh"
#include "src/sim/probe.hh"
#include "src/sim/trace.hh"

namespace distda::accel
{

StreamUnit::StreamUnit(const StreamParams &params, MemPort port,
                       noc::Mesh *mesh, AccessStats *stats,
                       sim::Probe *probe, int probe_track,
                       stats::Distribution *fill_dist)
    : _params(params), _port(std::move(port)), _mesh(mesh), _stats(stats),
      _probe(probe), _probeTrack(probe_track), _fillDist(fill_dist)
{
    const std::int64_t s =
        std::max<std::int64_t>(std::llabs(params.strideBytes), 1);
    if (params.strideBytes == 0) {
        // Loop-invariant element: one fetch covers the whole stream.
        _elemsPerFetch = std::max<std::int64_t>(
            static_cast<std::int64_t>(params.totalElems), 1);
        _fetchBytes = params.elemBytes;
    } else if (s >= static_cast<std::int64_t>(mem::lineBytes)) {
        // Sparse stride: the access unit requests only the element it
        // needs from the bank (access specialization) rather than
        // pulling whole lines across the NoC.
        _elemsPerFetch = 1;
        _fetchBytes = params.elemBytes;
    } else {
        _elemsPerFetch = std::max<std::int64_t>(
            static_cast<std::int64_t>(mem::lineBytes) / s, 1);
        _fetchBytes = mem::lineBytes;
    }
    _capacityChunks = std::max<std::int64_t>(
        params.capacityBytes / std::max<std::uint32_t>(_fetchBytes, 1),
        2);

    _sameCluster = params.unitCluster == params.consumerCluster;
    _lookahead = std::max<std::int64_t>(_capacityChunks / 2, 1);
    _lastChunk = chunkOf(
        static_cast<std::int64_t>(
            std::max<std::uint64_t>(params.totalElems, 1)) -
        1);
    updateFastBounds();
}

void
StreamUnit::updateFastBounds()
{
    _winLoK = _loChunk * _elemsPerFetch;
    _winHiK = _hiChunk * _elemsPerFetch;
    // The lookahead loop runs iff _hiChunk <= min(lead_c + lookahead,
    // last_c); once the window reaches past the last chunk it can
    // never run again.
    _fastLeadLimitK = _hiChunk > _lastChunk
                          ? std::numeric_limits<std::int64_t>::max()
                          : (_hiChunk - _lookahead) * _elemsPerFetch;
}

void
StreamUnit::grow(std::int64_t c, sim::Tick now, bool fetch)
{
    Chunk ch;
    if (fetch) {
        const sim::Tick issue = std::max(_fsmNow, now);
        const sim::Tick lat = _port(chunkAddr(c), _fetchBytes, false,
                                    issue);
        ch.ready = issue + lat;
        ch.fetched = true;
        _fsmNow = issue + _params.cycleTick;
        _stats->daBytes += _fetchBytes;
        _stats->bufferAccesses += _elemsPerFetch;
        if (_probe) {
            _probe->span(_probeTrack, "fill", issue, ch.ready);
            if (_fillDist)
                _fillDist->sample(static_cast<double>(lat));
        }
        DISTDA_DPRINTF(Stream, issue, "fill-fsm",
                       "fetch chunk %lld addr 0x%llx ready %llu",
                       static_cast<long long>(c),
                       static_cast<unsigned long long>(chunkAddr(c)),
                       static_cast<unsigned long long>(ch.ready));
    } else {
        ch.ready = now;
    }
    if (_window.empty()) {
        _loChunk = c;
        _hiChunk = c + 1;
        _window.push_back(ch);
    } else if (c == _hiChunk) {
        _window.push_back(ch);
        ++_hiChunk;
    } else if (c == _loChunk - 1) {
        _window.push_front(ch);
        --_loChunk;
    } else {
        panic("stream window grow at %lld outside [%lld,%lld)",
              static_cast<long long>(c),
              static_cast<long long>(_loChunk),
              static_cast<long long>(_hiChunk));
    }
    updateFastBounds();
}

void
StreamUnit::evictFront(sim::Tick now)
{
    Chunk &ch = _window.front();
    if (ch.dirty) {
        const sim::Tick issue = std::max(_fsmNow, now);
        const sim::Tick lat =
            _port(chunkAddr(_loChunk), _fetchBytes, true, issue);
        _fsmNow = issue + _params.cycleTick;
        _drainDone.push_back(issue + lat);
        _stats->daBytes += _fetchBytes;
        _stats->bufferAccesses += _elemsPerFetch;
        if (_probe)
            _probe->span(_probeTrack, "drain", issue, issue + lat);
        DISTDA_DPRINTF(Stream, issue, "drain-fsm",
                       "drain chunk %lld addr 0x%llx",
                       static_cast<long long>(_loChunk),
                       static_cast<unsigned long long>(
                           chunkAddr(_loChunk)));
    }
    _window.pop_front();
    ++_loChunk;
    updateFastBounds();
}

void
StreamUnit::ensure(std::int64_t c, sim::Tick now, bool fetch)
{
    if (!_window.empty() && c >= _loChunk && c < _hiChunk)
        return;
    // Grow toward c, evicting from the front when capacity is hit.
    // Reusable window space — chunks a trailing tap still needs — is
    // protected by the eviction bound.
    const std::int64_t protect = chunkOf(_leadK - _maxTapDistance);
    while (_window.empty() || c >= _hiChunk) {
        if (!_window.empty() &&
            _hiChunk - _loChunk >= _capacityChunks &&
            _loChunk < protect) {
            evictFront(now);
        }
        grow(_window.empty() ? c : _hiChunk, now, fetch);
        if (_hiChunk - _loChunk > _capacityChunks + 2 &&
            _loChunk < protect) {
            evictFront(now);
        }
    }
    while (c < _loChunk)
        grow(_loChunk - 1, now, fetch);
}

sim::Tick
StreamUnit::readAt(std::int64_t k, sim::Tick consumer_now,
                   std::int64_t tap_distance)
{
    DISTDA_ASSERT(_params.hasLoads, "readAt on a store-only stream");
    const std::int64_t eff_k = k - tap_distance;

    // Steady-state fast path: a same-cluster in-window read whose lead
    // is far enough behind the fill FSM that ensure() and the
    // lookahead loop below are provably no-ops. Everything observable
    // — stats, _leadK, the returned tick — matches the general path
    // exactly; only the skipped work is work that would do nothing.
    if (_sameCluster && tap_distance <= _maxTapDistance &&
        eff_k >= _winLoK && eff_k < _winHiK && k < _fastLeadLimitK &&
        _leadK < _fastLeadLimitK) {
        if (k > _leadK)
            _leadK = k;
        _stats->intraBytes += _params.elemBytes;
        _stats->bufferAccesses += 1.0;
        const sim::Tick ready =
            _window[static_cast<std::size_t>(chunkOf(eff_k) - _loChunk)]
                .ready;
        return ready > consumer_now ? ready : consumer_now;
    }

    const std::int64_t c = chunkOf(eff_k);

    _maxTapDistance = std::max(_maxTapDistance, tap_distance);
    _leadK = std::max(_leadK, k);

    ensure(c, consumer_now, true);

    // Fill-FSM lookahead: prefetch ahead of the lead tap, sliding the
    // window forward past chunks no tap still needs (this is what
    // decouples the partition from memory latency).
    const std::int64_t lead_c = chunkOf(_leadK);
    const std::int64_t lookahead =
        std::max<std::int64_t>(_capacityChunks / 2, 1);
    const std::uint64_t total = std::max<std::uint64_t>(
        _params.totalElems, 1);
    const std::int64_t last_c =
        chunkOf(static_cast<std::int64_t>(total) - 1);
    const std::int64_t protect = chunkOf(_leadK - _maxTapDistance);
    while (_hiChunk <= std::min(lead_c + lookahead, last_c)) {
        if (_hiChunk - _loChunk >= _capacityChunks) {
            if (_loChunk < protect)
                evictFront(consumer_now);
            else
                break; // every resident chunk is still live
        }
        grow(_hiChunk, consumer_now, true);
    }

    sim::Tick ready = chunk(c).ready;

    _stats->intraBytes += _params.elemBytes;
    _stats->bufferAccesses += 1.0;

    if (_params.unitCluster != _params.consumerCluster) {
        // Decentralized access unit proactively forwarding the operand
        // to the remote compute node's buffer (Mono-DA): the push
        // starts as soon as the element is in the unit's buffer, so a
        // prefetched element hides the hop latency; the consumer's
        // pointer-step/credit return rides back as control traffic.
        auto xfer = _mesh->transfer(
            _params.unitCluster, _params.consumerCluster,
            _params.elemBytes, noc::TrafficClass::AccData, ready);
        // Credits return batched at chunk granularity.
        if (eff_k % _elemsPerFetch == 0) {
            _mesh->transfer(_params.consumerCluster,
                            _params.unitCluster, 8,
                            noc::TrafficClass::AccCtrl, ready);
            _stats->aaBytes += 8.0;
        }
        ready += xfer.latency;
        _stats->aaBytes += _params.elemBytes;
        _stats->intraBytes += _params.elemBytes; // consumer-side buffer
        _stats->bufferAccesses += 1.0;
    }

    return std::max(ready, consumer_now);
}

sim::Tick
StreamUnit::writeAt(std::int64_t k, sim::Tick now,
                    std::int64_t tap_distance)
{
    DISTDA_ASSERT(_params.hasStores, "writeAt on a load-only stream");
    const std::int64_t eff_k = k - tap_distance;
    const std::int64_t c = chunkOf(eff_k);
    sim::Tick t = now;

    _maxTapDistance = std::max(_maxTapDistance, tap_distance);
    _leadK = std::max(_leadK, k);

    if (_params.unitCluster != _params.consumerCluster) {
        // Compute node posts the value to the remote access unit (the
        // credit protocol guarantees space, so the store is off the
        // critical path); the buffer credit returns as control.
        _mesh->transfer(_params.consumerCluster, _params.unitCluster,
                        _params.elemBytes, noc::TrafficClass::AccData,
                        t);
        // Credits return batched at chunk granularity.
        if (eff_k % _elemsPerFetch == 0) {
            _mesh->transfer(_params.unitCluster,
                            _params.consumerCluster, 8,
                            noc::TrafficClass::AccCtrl, t);
            _stats->aaBytes += 8.0;
        }
        _stats->aaBytes += _params.elemBytes;
    }

    // Combined load/store buffers fetch on a write miss (the loads
    // need the rest of the chunk); store-only buffers write-allocate
    // without fetching.
    ensure(c, t, _params.hasLoads);
    chunk(c).dirty = true;

    _stats->intraBytes += _params.elemBytes;
    _stats->bufferAccesses += 1.0;

    return t;
}

sim::Tick
StreamUnit::flush(sim::Tick now)
{
    for (std::int64_t c = _loChunk; c < _hiChunk; ++c) {
        Chunk &ch = chunk(c);
        if (!ch.dirty)
            continue;
        const sim::Tick issue = std::max(_fsmNow, now);
        const sim::Tick lat =
            _port(chunkAddr(c), _fetchBytes, true, issue);
        _fsmNow = issue + _params.cycleTick;
        _drainDone.push_back(issue + lat);
        _stats->daBytes += _fetchBytes;
        _stats->bufferAccesses += _elemsPerFetch;
        if (_probe)
            _probe->span(_probeTrack, "drain", issue, issue + lat);
        ch.dirty = false;
    }
    sim::Tick done = now;
    for (sim::Tick t : _drainDone)
        done = std::max(done, t);
    _drainDone.clear();
    return done;
}

void
StreamUnit::rewind(sim::Tick now)
{
    const std::uint64_t total = std::max<std::uint64_t>(
        _params.totalElems, 1);
    const std::int64_t first_c = chunkOf(-_maxTapDistance);
    const std::int64_t last_c =
        chunkOf(static_cast<std::int64_t>(total) - 1);
    const bool fully_resident =
        !_window.empty() && _loChunk <= first_c && _hiChunk > last_c;
    if (!fully_resident) {
        flush(now);
        _window.clear();
        _loChunk = _hiChunk = 0;
        updateFastBounds();
    }
    _leadK = 0;
    _maxTapDistance = 0;
}

RandomUnit::RandomUnit(int cluster, MemPort port, AccessStats *stats,
                       sim::Tick cycle_tick)
    : _cluster(cluster), _port(std::move(port)), _stats(stats),
      _cycleTick(cycle_tick)
{
}

} // namespace distda::accel
