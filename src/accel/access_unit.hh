/**
 * @file
 * Access units (Fig 2c): the SRAM-buffered, FSM-driven units that
 * decouple distributed partitions from the memory system and from each
 * other.
 *
 * A StreamUnit implements the hardware support for one-dimensional
 * strided patterns as a sliding window of chunks: the fill FSM
 * prefetches ahead of the consuming accelerator (bounded by buffer
 * capacity), dirty chunks drain on eviction or flush, and multiple
 * taps at constant access distance — loads and stores alike — share
 * one buffer (multi-access combining, Fig 2d). Windows survive across
 * invocations so reuse across outer-loop iterations is captured
 * (§V-B). A RandomUnit implements the cp_read/cp_write random-access
 * path through the translation block and the cluster's ACP.
 *
 * Units carry two cluster coordinates: where the unit sits (the data's
 * home cluster in decentralized-access configurations) and where its
 * consumer computes. When they differ — the Mono-DA configurations —
 * elements are forwarded over the NoC as inter-accelerator traffic.
 */

#ifndef DISTDA_ACCEL_ACCESS_UNIT_HH
#define DISTDA_ACCEL_ACCESS_UNIT_HH

#include <cstdint>
#include <deque>

#include "src/compiler/dfg.hh"
#include "src/mem/hierarchy.hh"
#include "src/sim/ticks.hh"

namespace distda::accel
{

/**
 * Memory-side port of an access unit: (addr, bytes, write, now) ->
 * latency. Normally the cluster's ACP into the local L3; the Mono-CA
 * configuration routes it through the accelerator's 8KB private cache.
 *
 * A non-owning function-pointer + context view rather than a
 * std::function: ports sit on the per-element simulation hot path and
 * the type-erased call (plus potential heap allocation) showed up in
 * profiles. The context object must outlive the unit holding the port;
 * in practice ports point at a Cache owned by the Hierarchy or the
 * DataflowEngine, both of which outlive every access unit.
 */
class MemPort
{
  public:
    using Fn = sim::Tick (*)(void *, mem::Addr, std::uint32_t, bool,
                             sim::Tick);

    MemPort() = default;
    MemPort(Fn fn, void *ctx) : _fn(fn), _ctx(ctx) {}

    /** Adapt any callable lvalue; @p f must outlive the port. */
    template <typename F>
    static MemPort
    of(F &f)
    {
        return MemPort(
            [](void *ctx, mem::Addr a, std::uint32_t s, bool w,
               sim::Tick t) {
                return (*static_cast<F *>(ctx))(a, s, w, t);
            },
            &f);
    }

    sim::Tick
    operator()(mem::Addr a, std::uint32_t s, bool w, sim::Tick t) const
    {
        return _fn(_ctx, a, s, w, t);
    }

    explicit operator bool() const { return _fn != nullptr; }

  private:
    Fn _fn = nullptr;
    void *_ctx = nullptr;
};

/** Figure 9's dynamic-access-distribution counters, in bytes. */
struct AccessStats
{
    double intraBytes = 0.0; ///< accelerator-local buffer traffic
    double daBytes = 0.0;    ///< accelerator <-> cache hierarchy
    double aaBytes = 0.0;    ///< accelerator <-> accelerator
    double bufferAccesses = 0.0;

    double total() const { return intraBytes + daBytes + aaBytes; }
};

/** Configuration of one stream buffer. */
struct StreamParams
{
    mem::Addr base = 0;           ///< address of element 0 (lead tap)
    std::int64_t strideBytes = 8; ///< per-iteration advance
    std::uint32_t elemBytes = 8;
    bool hasLoads = true;
    bool hasStores = false;
    int unitCluster = 0;          ///< where the buffer + FSM live
    int consumerCluster = 0;      ///< where the consuming actor runs
    std::uint32_t capacityBytes = 4096;
    std::uint64_t totalElems = 0; ///< trip count of the stream
    sim::Tick cycleTick = 500;    ///< one accelerator cycle in ticks
};

/**
 * One strided stream window with fill/drain FSM and multi-tap reuse.
 * Element index k (lead-tap space) maps to base + k * strideBytes; a
 * tap at distance d touches element k - d at iteration k.
 */
class StreamUnit
{
  public:
    /**
     * The trailing probe arguments are optional observability wiring:
     * fill-FSM fetches become "fill" spans and drains "drain" spans on
     * @p probe_track, and fetch latency samples into @p fill_dist.
     */
    StreamUnit(const StreamParams &params, MemPort port, noc::Mesh *mesh,
               AccessStats *stats, sim::Probe *probe = nullptr,
               int probe_track = -1,
               stats::Distribution *fill_dist = nullptr);

    const StreamParams &params() const { return _params; }

    /**
     * Read element for iteration @p k through a tap @p tap_distance
     * behind the lead tap. Returns the tick the value reaches the
     * consumer (>= @p consumer_now).
     */
    sim::Tick readAt(std::int64_t k, sim::Tick consumer_now,
                     std::int64_t tap_distance);

    /** Write through a tap; marks the chunk dirty for the drain FSM. */
    sim::Tick writeAt(std::int64_t k, sim::Tick now,
                      std::int64_t tap_distance);

    /** Drain dirty chunks (window stays resident); returns completion. */
    sim::Tick flush(sim::Tick now);

    /**
     * Rewind for a new pass over the same address range (reuse across
     * outer-loop iterations). When the previous pass fit entirely in
     * the buffer the window is retained and rereads are buffer hits;
     * otherwise the window is discarded (dirty chunks drain).
     */
    void rewind(sim::Tick now);

    /** Elements fetched per memory access (spatial locality). */
    std::int64_t elemsPerFetch() const { return _elemsPerFetch; }

    /** Chunks currently resident. */
    std::int64_t residentChunks() const { return _hiChunk - _loChunk; }

  private:
    struct Chunk
    {
        sim::Tick ready = 0;
        bool dirty = false;
        bool fetched = false;
    };

    std::int64_t
    chunkOf(std::int64_t k) const
    {
        return k >= 0 ? k / _elemsPerFetch
                      : (k - _elemsPerFetch + 1) / _elemsPerFetch;
    }

    mem::Addr
    chunkAddr(std::int64_t c) const
    {
        return static_cast<mem::Addr>(
            static_cast<std::int64_t>(_params.base) +
            c * _elemsPerFetch * _params.strideBytes);
    }

    /** Make chunk @p c resident (fetching when loads need data). */
    void ensure(std::int64_t c, sim::Tick now, bool fetch);

    /** Extend the window one chunk at @p c (front or back). */
    void grow(std::int64_t c, sim::Tick now, bool fetch);

    /** Evict the oldest chunk, draining when dirty. */
    void evictFront(sim::Tick now);

    /**
     * Refresh the precomputed element-space bounds the readAt fast
     * path checks against; call after any window shape change.
     */
    void updateFastBounds();

    Chunk &chunk(std::int64_t c)
    {
        return _window[static_cast<std::size_t>(c - _loChunk)];
    }

    StreamParams _params;
    MemPort _port;
    noc::Mesh *_mesh;
    AccessStats *_stats;
    sim::Probe *_probe;
    int _probeTrack;
    stats::Distribution *_fillDist;

    std::int64_t _elemsPerFetch;
    std::int64_t _capacityChunks;
    std::uint32_t _fetchBytes;

    std::deque<Chunk> _window;
    std::int64_t _loChunk = 0;
    std::int64_t _hiChunk = 0;
    std::int64_t _leadK = 0;
    std::int64_t _maxTapDistance = 0;
    sim::Tick _fsmNow = 0;
    std::deque<sim::Tick> _drainDone;

    // Steady-state fast-path state: the common sequential read is an
    // in-window hit that triggers neither ensure() nor the lookahead
    // loop. These bounds, refreshed by updateFastBounds() on every
    // window shape change, let readAt prove that with three compares.
    bool _sameCluster;       ///< unit and consumer co-located
    std::int64_t _lookahead; ///< fill-FSM lookahead distance, chunks
    std::int64_t _lastChunk; ///< chunk of the stream's final element
    std::int64_t _winLoK = 0;        ///< window start, element space
    std::int64_t _winHiK = 0;        ///< window end, element space
    std::int64_t _fastLeadLimitK = 0; ///< lead below which the
                                      ///< lookahead loop is a no-op
};

/** The random-access (cp_read / cp_write) path of one partition. */
class RandomUnit
{
  public:
    RandomUnit(int cluster, MemPort port, AccessStats *stats,
               sim::Tick cycle_tick);

    /**
     * Access @p elem_bytes at @p addr. @p hide_ticks models how far
     * ahead the access could be issued: indirect-stream patterns
     * (B[A[i]]) run ahead of the consumer, and the +SW configuration's
     * software prefetches extend the window further; pointer-chasing
     * recurrences pass zero. Inline: one call per irregular element.
     */
    sim::Tick
    access(mem::Addr addr, std::uint32_t elem_bytes, bool write,
           sim::Tick now, sim::Tick hide_ticks)
    {
        // One cycle in the translation block (object-buffer mapping).
        const sim::Tick start = now + _cycleTick;
        const sim::Tick lat = _port(addr, elem_bytes, write, start);
        _stats->daBytes += elem_bytes;

        if (write) {
            // Posted: the write drains through the memory interface
            // block in the background; ordering per object is
            // preserved by the partition's serial execution.
            return start;
        }

        // Indirect-stream run-ahead: when the index itself comes from
        // a prefetchable stream (B[A[i]]), the access unit issues the
        // access hide_ticks early; pointer-chasing recurrences get no
        // run-ahead.
        const sim::Tick visible = lat > hide_ticks ? lat - hide_ticks : 0;
        return start + visible;
    }

  private:
    int _cluster;
    MemPort _port;
    AccessStats *_stats;
    sim::Tick _cycleTick;
};

} // namespace distda::accel

#endif // DISTDA_ACCEL_ACCESS_UNIT_HH
