/**
 * @file
 * The offload runtime (§V-B execution flow): at the first invocation it
 * identifies home nodes, allocates and configures the accelerator
 * resources through the Table II intrinsics; every invocation transfers
 * scalar parameters (cp_set_rf), launches the partitions (cp_run),
 * blocks on the done token (cp_consume) and reads back result registers
 * (cp_load_rf). Resources stay allocated across outer-loop iterations.
 */

#ifndef DISTDA_OFFLOAD_RUNTIME_HH
#define DISTDA_OFFLOAD_RUNTIME_HH

#include <memory>
#include <vector>

#include "src/engine/engine.hh"
#include "src/offload/interface.hh"

namespace distda::offload
{

/** Outcome of one offloaded invocation, host-visible. */
struct OffloadRunResult
{
    sim::Tick endTick = 0;
    std::vector<std::pair<int, compiler::Word>> results;
    double accelInsts = 0.0;
    double memOps = 0.0;
    /**
     * Phase timing of this invocation (src/offload/lifecycle.hh);
     * always conserved: the phases telescope over the host timeline,
     * so they sum exactly to endTick - start_tick.
     */
    OffloadRecord record;
};

/** Drives one compiled plan through the interface, per invocation. */
class OffloadRuntime
{
  public:
    /** Borrowing binding: @p plan must outlive the runtime. */
    OffloadRuntime(const compiler::OffloadPlan &plan,
                   const engine::EngineConfig &config,
                   mem::Hierarchy *hier, engine::MemBackend *backend,
                   energy::Accountant *acct);

    /**
     * Owning binding: shares the plan, so a PlanCache eviction (or a
     * dropped caller reference) cannot leave the engine dangling.
     */
    OffloadRuntime(std::shared_ptr<const compiler::OffloadPlan> plan,
                   const engine::EngineConfig &config,
                   mem::Hierarchy *hier, engine::MemBackend *backend,
                   energy::Accountant *acct);

    OffloadRunResult invoke(const std::vector<engine::ArrayRef> &bindings,
                            const std::vector<compiler::Word> &params,
                            sim::Tick start_tick);

    const accel::AccessStats &accessStats() const
    {
        return _engine.accessStats();
    }

    const engine::DataflowEngine &engine() const { return _engine; }

    double mmioOps() const { return _iface.mmioOps(); }

    /** Deallocate accelerator resources (end of the offload's reuse). */
    void release();

  private:
    /** Owned plan for the shared_ptr constructor; null when borrowed. */
    std::shared_ptr<const compiler::OffloadPlan> _planRef;
    const compiler::OffloadPlan &_plan;
    engine::DataflowEngine _engine;
    CoprocessorInterface _iface;
    mem::Hierarchy *_hier;
    bool _allocated = false;
    std::vector<int> _bufIds;
};

/**
 * The separated instantiation step of the compile→execute split: bind
 * an immutable (freshly compiled, cached, or deserialized) plan to a
 * live engine. Instantiation never mutates the plan, which is what
 * lets one cached plan serve many concurrent engine bindings.
 */
std::unique_ptr<OffloadRuntime> instantiate(
    std::shared_ptr<const compiler::OffloadPlan> plan,
    const engine::EngineConfig &config, mem::Hierarchy *hier,
    engine::MemBackend *backend, energy::Accountant *acct);

} // namespace distda::offload

#endif // DISTDA_OFFLOAD_RUNTIME_HH
