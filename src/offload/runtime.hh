/**
 * @file
 * The offload runtime (§V-B execution flow): at the first invocation it
 * identifies home nodes, allocates and configures the accelerator
 * resources through the Table II intrinsics; every invocation transfers
 * scalar parameters (cp_set_rf), launches the partitions (cp_run),
 * blocks on the done token (cp_consume) and reads back result registers
 * (cp_load_rf). Resources stay allocated across outer-loop iterations.
 */

#ifndef DISTDA_OFFLOAD_RUNTIME_HH
#define DISTDA_OFFLOAD_RUNTIME_HH

#include <memory>
#include <vector>

#include "src/engine/engine.hh"
#include "src/offload/interface.hh"

namespace distda::offload
{

/** Outcome of one offloaded invocation, host-visible. */
struct OffloadRunResult
{
    sim::Tick endTick = 0;
    std::vector<std::pair<int, compiler::Word>> results;
    double accelInsts = 0.0;
    double memOps = 0.0;
};

/** Drives one compiled plan through the interface, per invocation. */
class OffloadRuntime
{
  public:
    OffloadRuntime(const compiler::OffloadPlan &plan,
                   const engine::EngineConfig &config,
                   mem::Hierarchy *hier, engine::MemBackend *backend,
                   energy::Accountant *acct);

    OffloadRunResult invoke(const std::vector<engine::ArrayRef> &bindings,
                            const std::vector<compiler::Word> &params,
                            sim::Tick start_tick);

    const accel::AccessStats &accessStats() const
    {
        return _engine.accessStats();
    }

    const engine::DataflowEngine &engine() const { return _engine; }

    double mmioOps() const { return _iface.mmioOps(); }

    /** Deallocate accelerator resources (end of the offload's reuse). */
    void release();

  private:
    const compiler::OffloadPlan &_plan;
    engine::DataflowEngine _engine;
    CoprocessorInterface _iface;
    mem::Hierarchy *_hier;
    bool _allocated = false;
    std::vector<int> _bufIds;
};

} // namespace distda::offload

#endif // DISTDA_OFFLOAD_RUNTIME_HH
