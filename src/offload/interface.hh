/**
 * @file
 * The architecture interface of Table II: MMIO-based software
 * intrinsics through which the host allocates, configures and launches
 * distributed accelerator resources, and through which accelerators
 * communicate as peers.
 *
 * Host-issued intrinsics cost one uncached MMIO operation plus a NoC
 * control transfer to the target cluster; accelerator-local dataflow
 * mechanisms (cp_produce/cp_consume/cp_step) execute in the actors at
 * single-cycle cost and are realized by the engine's channels and
 * stream units.
 */

#ifndef DISTDA_OFFLOAD_INTERFACE_HH
#define DISTDA_OFFLOAD_INTERFACE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "src/compiler/dfg.hh"
#include "src/energy/energy_model.hh"
#include "src/mem/hierarchy.hh"
#include "src/offload/lifecycle.hh"

namespace distda::offload
{

/**
 * The hardware scheduler of Fig 2b: maintains the buffer allocation
 * table (access-id to buf-id, per application context) and performs
 * multi-access combining at allocation time (Fig 2d).
 */
class AccelScheduler
{
  public:
    struct BufferEntry
    {
        int bufId = -1;
        int accessId = -1;
        int cluster = 0;
        mem::Addr start = 0;
        std::int64_t strideBytes = 0;
        std::uint32_t lengthBytes = 0;
        bool random = false;
        int combinedInto = -1; ///< buf-id this access was merged into
    };

    /**
     * Allocate a strided access; combining merges it into an existing
     * buffer on the same cluster when the runtime access distance fits
     * the buffer window (Fig 2d case 1). Returns the buf-id.
     */
    int allocStream(int access_id, int cluster, mem::Addr start,
                    std::int64_t stride_bytes, std::uint32_t length_bytes,
                    std::uint32_t buffer_bytes);

    /** Allocate a random-access window [start, end). */
    int allocRandom(int access_id, int cluster, mem::Addr start,
                    mem::Addr end);

    /** Free a buffer allocation. */
    void free(int buf_id);

    /** Look up the buffer backing @p access_id (-1 when absent). */
    int bufOf(int access_id) const;

    const std::map<int, BufferEntry> &table() const { return _table; }
    std::size_t liveBuffers() const { return _table.size(); }

    /**
     * The Fig 2d combining rule: accesses at constant distance @p
     * distance_bytes share a buffer when the trailing window fits.
     */
    static bool
    shouldCombine(std::int64_t distance_bytes,
                  std::uint32_t buffer_bytes)
    {
        return distance_bytes >= 0 &&
               static_cast<std::uint64_t>(distance_bytes) +
                       mem::lineBytes <=
                   buffer_bytes;
    }

  private:
    int _nextBuf = 0;
    std::map<int, BufferEntry> _table;   ///< buf-id -> entry
    std::map<int, int> _accessToBuf;     ///< access-id -> buf-id
};

/** Host-side view of the interface; counts MMIO traffic for Table VI. */
class CoprocessorInterface
{
  public:
    CoprocessorInterface(mem::Hierarchy *hier,
                         energy::Accountant *acct);

    AccelScheduler &scheduler() { return _sched; }

    /** cp_config: transfer an offload configuration of @p bytes. */
    sim::Tick cpConfig(int cluster, std::uint32_t config_bytes,
                       sim::Tick now);

    /** cp_config_stream: allocate a strided access unit. */
    sim::Tick cpConfigStream(int cluster, int access_id, mem::Addr start,
                             std::int64_t stride_bytes,
                             std::uint32_t length_bytes,
                             std::uint32_t buffer_bytes, sim::Tick now,
                             int *buf_id = nullptr);

    /** cp_config_random: allocate a random access window. */
    sim::Tick cpConfigRandom(int cluster, int access_id, mem::Addr start,
                             mem::Addr end, sim::Tick now,
                             int *buf_id = nullptr);

    /** cp_set_rf: write a scalar into an accelerator register. */
    sim::Tick cpSetRf(int cluster, int reg, compiler::Word value,
                      sim::Tick now);

    /** cp_load_rf: read a scalar back (value delivered by the engine). */
    sim::Tick cpLoadRf(int cluster, int reg, sim::Tick now);

    /** cp_run: start an offload. */
    sim::Tick cpRun(int cluster, sim::Tick now);

    /** Host-side blocking cp_consume (waits for a done token). */
    sim::Tick cpConsumeDone(int cluster, sim::Tick ready, sim::Tick now);

    /** MMIO operations issued so far (Table VI %init numerator). */
    double mmioOps() const { return _mmioOps; }

    /** Control bytes pushed for configurations. */
    double configBytes() const { return _configBytes; }

    /**
     * Attach the per-invocation lifecycle record host-time deltas are
     * attributed to: each intrinsic adds (returned tick - now) to its
     * phase — cp_config to Decode, cp_config_stream/random to
     * BufferAlloc, cp_set_rf to Enqueue, cp_run to Dispatch and
     * cp_load_rf to Complete. Null (the default) disables attribution;
     * cp_consume is left to the caller, whose done-token bookkeeping
     * is not a simple delta of the host timeline.
     */
    void setRecord(OffloadRecord *rec) { _rec = rec; }

  private:
    /**
     * One MMIO intrinsic: energy + NoC control transfer. Posted
     * writes (configs, cp_set_rf) cost the host one issue cycle;
     * synchronous intrinsics (cp_run, cp_load_rf) wait for the ack.
     */
    sim::Tick mmio(int cluster, std::uint32_t bytes, sim::Tick now,
                   bool posted);

    /** mmio() plus phase attribution of the host-visible delta. */
    sim::Tick mmioPhase(Phase phase, int cluster, std::uint32_t bytes,
                        sim::Tick now, bool posted);

    mem::Hierarchy *_hier;
    energy::Accountant *_acct;
    AccelScheduler _sched;
    OffloadRecord *_rec = nullptr;
    double _mmioOps = 0.0;
    double _configBytes = 0.0;
};

} // namespace distda::offload

#endif // DISTDA_OFFLOAD_INTERFACE_HH
