#include "src/offload/migration.hh"

#include <algorithm>

namespace distda::offload
{

const char *
migrationPolicyName(MigrationPolicy p)
{
    switch (p) {
      case MigrationPolicy::HostOnly: return "host-only";
      case MigrationPolicy::CoinFlip: return "coin-flip";
      case MigrationPolicy::DataLocation: return "data-location";
      default: return "?";
    }
}

MemoryServiceLayer::MemoryServiceLayer(mem::Hierarchy *hier,
                                       energy::Accountant *acct,
                                       MigrationPolicy policy,
                                       std::uint64_t seed)
    : _hier(hier), _iface(hier, acct), _policy(policy), _rng(seed)
{
}

sim::Tick
MemoryServiceLayer::runTask(engine::ArrayRef &arr, std::uint64_t idx,
                            double operand, sim::Tick now)
{
    const mem::Addr addr = arr.addrOf(idx);
    const int home = _hier->l3().clusterOf(addr);
    const int host = _hier->mesh().hostNode();

    OffloadRecord rec;
    rec.start = now;
    _iface.setRecord(&rec);

    if (!_configured && _policy != MigrationPolicy::HostOnly) {
        // One-time: configure the task accelerator at every cluster
        // (the "already configured accelerator" of §IV-B).
        for (int c = 0; c < _hier->mesh().numNodes(); ++c)
            now = _iface.cpConfig(c, 64, now);
        _configured = true;
    }

    _stats.tasks += 1.0;

    bool migrate = false;
    switch (_policy) {
      case MigrationPolicy::HostOnly:
        migrate = false;
        break;
      case MigrationPolicy::CoinFlip:
        migrate = _rng.nextBelow(2) == 0;
        break;
      case MigrationPolicy::DataLocation:
        migrate = true;
        break;
    }

    // Functional effect is policy-independent.
    const double cur = arr.getF(idx);
    arr.setF(idx, std::min(cur, operand));

    if (!migrate) {
        // Host executes the read-modify-write through its hierarchy.
        const sim::Tick queued = std::max(now, _hostBusy);
        rec.add(Phase::Enqueue, queued - now);
        const auto rd =
            _hier->hostAccess(addr, arr.elemBytes, false, queued);
        const sim::Tick t = queued + rd.latency + 500;
        rec.add(Phase::Execute, t - queued);
        _hier->hostAccess(addr, arr.elemBytes, true, t);
        _hostBusy = t + 500;
        rec.add(Phase::Writeback, _hostBusy - t);
        if (home == host)
            _stats.localExecutions += 1.0;
        _iface.setRecord(nullptr);
        rec.end = _hostBusy;
        _lifecycle.add(rec);
        return _hostBusy;
    }

    _stats.migrated += 1.0;
    // Operand + index ride cp_set_rf; cp_run fires the task; the task
    // body is a near-data RMW through the target cluster's ACP.
    sim::Tick t = now;
    const int target =
        (_policy == MigrationPolicy::CoinFlip &&
         _rng.nextBelow(4) == 0)
            ? static_cast<int>(_rng.nextBelow(
                  static_cast<std::uint64_t>(
                      _hier->mesh().numNodes())))
            : home;
    t = _iface.cpSetRf(target, 0, compiler::Word{.f = operand}, t);
    t = _iface.cpSetRf(target, 1,
                       compiler::Word{static_cast<std::int64_t>(idx)},
                       t);
    t = _iface.cpRun(target, t);
    const auto rd =
        _hier->accelAccess(addr, arr.elemBytes, false, target, t);
    t += rd.latency + 1000; // compare + select on the task unit
    rec.add(Phase::Execute, rd.latency + 1000);
    _hier->accelAccess(addr, arr.elemBytes, true, target, t);
    if (target == home)
        _stats.localExecutions += 1.0;
    _iface.setRecord(nullptr);
    rec.end = t;
    _lifecycle.add(rec);
    return t;
}

} // namespace distda::offload
