#include "src/offload/runtime.hh"

#include <algorithm>

#include "src/sim/logging.hh"
#include "src/sim/trace.hh"

namespace distda::offload
{

using compiler::AccessorDef;
using compiler::Partition;
using compiler::PatternKind;
using compiler::Word;

OffloadRuntime::OffloadRuntime(const compiler::OffloadPlan &plan,
                               const engine::EngineConfig &config,
                               mem::Hierarchy *hier,
                               engine::MemBackend *backend,
                               energy::Accountant *acct)
    : _plan(plan), _engine(plan, config, hier, backend, acct),
      _iface(hier, acct), _hier(hier)
{
}

OffloadRuntime::OffloadRuntime(
    std::shared_ptr<const compiler::OffloadPlan> plan,
    const engine::EngineConfig &config, mem::Hierarchy *hier,
    engine::MemBackend *backend, energy::Accountant *acct)
    : _planRef(std::move(plan)), _plan(*_planRef),
      _engine(*_planRef, config, hier, backend, acct),
      _iface(hier, acct), _hier(hier)
{
}

std::unique_ptr<OffloadRuntime>
instantiate(std::shared_ptr<const compiler::OffloadPlan> plan,
            const engine::EngineConfig &config, mem::Hierarchy *hier,
            engine::MemBackend *backend, energy::Accountant *acct)
{
    DISTDA_ASSERT(plan != nullptr, "instantiate: null plan");
    return std::make_unique<OffloadRuntime>(std::move(plan), config,
                                            hier, backend, acct);
}

OffloadRunResult
OffloadRuntime::invoke(const std::vector<engine::ArrayRef> &bindings,
                       const std::vector<Word> &params,
                       sim::Tick start_tick)
{
    sim::Tick t = start_tick;

    // Per-invocation lifecycle record: the interface attributes each
    // intrinsic's host-time delta to its phase; execution and the
    // done-token wait are attributed below. All deltas telescope over
    // the single monotone timeline, so conservation holds by
    // construction.
    OffloadRecord rec;
    rec.start = start_tick;
    _iface.setRecord(&rec);

    // Home clusters for MMIO targeting (greedy by object base).
    auto cluster_of = [&](const Partition &part) {
        if (part.level == compiler::PlacementLevel::NearHost ||
            part.objId < 0)
            return _hier->mesh().hostNode();
        return _hier->l3().clusterOf(
            bindings[static_cast<std::size_t>(part.objId)].base);
    };

    if (!_allocated) {
        // One-time allocation and configuration (§V-B step 1-3).
        for (const Partition &part : _plan.partitions) {
            const int cluster = cluster_of(part);
            t = _iface.cpConfig(cluster, part.program.byteSize(), t);
            bool random_done = false;
            for (const AccessorDef &ad : part.accessors) {
                if (ad.pattern == PatternKind::Affine &&
                    ad.bufferSlot >= 0 && ad.combinedWithSlot < 0) {
                    const auto &arr =
                        bindings[static_cast<std::size_t>(ad.objId)];
                    t = _iface.cpConfigStream(
                        cluster, ad.accessId, arr.base,
                        ad.affine.ivCoeff *
                            static_cast<std::int64_t>(ad.elemBytes),
                        static_cast<std::uint32_t>(
                            std::min<std::uint64_t>(arr.sizeBytes(),
                                                    ~std::uint32_t(0))),
                        4096, t, nullptr);
                } else if (ad.pattern == PatternKind::Indirect &&
                           !random_done) {
                    const auto &arr =
                        bindings[static_cast<std::size_t>(ad.objId)];
                    t = _iface.cpConfigRandom(cluster, ad.accessId,
                                              arr.base,
                                              arr.base + arr.sizeBytes(),
                                              t, nullptr);
                    random_done = true;
                }
            }
        }
        _allocated = true;
    }

    // Scalar parameters reach each partition that consumes them —
    // whether read by an instruction (paramRegs), folded into a stream
    // base (affine coefficients), or bounding the orchestrator loop.
    for (const Partition &part : _plan.partitions) {
        const int cluster = cluster_of(part);
        std::vector<bool> sent(params.size(), false);
        auto send = [&](int param_idx) {
            if (param_idx < 0 ||
                param_idx >= static_cast<int>(params.size()) ||
                sent[static_cast<std::size_t>(param_idx)])
                return;
            sent[static_cast<std::size_t>(param_idx)] = true;
            t = _iface.cpSetRf(
                cluster, param_idx,
                params[static_cast<std::size_t>(param_idx)], t);
        };
        for (const auto &[param_idx, reg] : part.program.paramRegs) {
            (void)reg;
            send(param_idx);
        }
        for (const AccessorDef &ad : part.accessors) {
            for (std::size_t k = 0; k < ad.affine.paramCoeffs.size();
                 ++k) {
                if (ad.affine.paramCoeffs[k] != 0)
                    send(static_cast<int>(k));
            }
        }
        send(_plan.kernel.loop.extentParam);
    }

    // Launch every partition.
    for (const Partition &part : _plan.partitions) {
        DISTDA_DPRINTF(Runtime, t, "runtime",
                       "cp_run kernel '%s' partition %d at cluster %d",
                       _plan.kernel.name.c_str(), part.id,
                       cluster_of(part));
        t = _iface.cpRun(cluster_of(part), t);
    }

    // Concurrent decoupled execution.
    engine::InvokeResult inv = _engine.invoke(bindings, params, t);
    rec.add(Phase::Execute, inv.endTick - t);

    // The host blocks consuming the done token from each sink.
    sim::Tick done = inv.endTick;
    for (const Partition &part : _plan.partitions) {
        if (part.outChannels.empty())
            done = std::max(done, _iface.cpConsumeDone(cluster_of(part),
                                                       inv.endTick, t));
    }
    rec.add(Phase::Writeback, done - inv.endTick);

    // Read back result registers.
    for (const auto &[node, value] : inv.results) {
        (void)value;
        const int pidx = _plan.partitionIndexOf(node);
        done = _iface.cpLoadRf(
            cluster_of(_plan.partitions[static_cast<std::size_t>(pidx)]),
            0, done);
    }

    _iface.setRecord(nullptr);
    rec.end = done;

    OffloadRunResult result;
    result.endTick = done;
    result.results = std::move(inv.results);
    result.accelInsts = inv.accelInsts;
    result.memOps = inv.memOps;
    result.record = rec;
    return result;
}

void
OffloadRuntime::release()
{
    _allocated = false;
}

} // namespace distda::offload
