/**
 * @file
 * The offload-lifecycle phase model: every offloaded invocation is
 * decomposed into the seven phases the paper's low-overhead argument
 * rests on — parameter enqueue, descriptor decode, buffer allocation,
 * dispatch, execution, writeback and completion — with per-phase tick
 * durations recorded into one OffloadRecord per invocation.
 *
 * The central contract is the **conservation invariant**: the phase
 * durations of a record sum exactly to its end-to-end latency
 * (end - start). Instrumentation attributes telescoping deltas of the
 * single monotone host timeline, so the invariant holds by
 * construction; it is asserted after every invocation and re-checked
 * per fuzz case, which is what keeps future edits honest.
 *
 * This header depends only on src/sim so both the engine (host
 * executor) and the offload runtime can include it without cycles.
 */

#ifndef DISTDA_OFFLOAD_LIFECYCLE_HH
#define DISTDA_OFFLOAD_LIFECYCLE_HH

#include <array>
#include <cstdint>

#include "src/sim/stats.hh"
#include "src/sim/ticks.hh"

namespace distda::offload
{

/** Lifecycle phases of one offload invocation, in timeline order. */
enum class Phase : std::uint8_t
{
    Enqueue,     ///< scalar-parameter transfer (cp_set_rf), queueing
    Decode,      ///< offload-descriptor transfer + decode (cp_config)
    BufferAlloc, ///< access-unit buffer allocation (cp_config_stream/
                 ///< cp_config_random through the hardware scheduler)
    Dispatch,    ///< launch until execution may start (cp_run)
    Execute,     ///< concurrent decoupled execution on the substrate
    Writeback,   ///< done-token propagation back to the host
    Complete,    ///< result-register readback (cp_load_rf)
    NumPhases,
};

constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::NumPhases);

const char *phaseName(Phase p);

/** Per-invocation phase timing; ticks are picoseconds. */
struct OffloadRecord
{
    sim::Tick start = 0; ///< host tick the invocation was issued
    sim::Tick end = 0;   ///< host tick the invocation completed
    std::array<sim::Tick, kNumPhases> phase{};

    void
    add(Phase p, sim::Tick ticks)
    {
        phase[static_cast<std::size_t>(p)] += ticks;
    }

    sim::Tick
    ticksIn(Phase p) const
    {
        return phase[static_cast<std::size_t>(p)];
    }

    sim::Tick
    phaseSum() const
    {
        sim::Tick sum = 0;
        for (const sim::Tick t : phase)
            sum += t;
        return sum;
    }

    sim::Tick endToEnd() const { return end - start; }

    /** The conservation invariant: phases account for every tick. */
    bool
    conserved() const
    {
        if (end < start)
            return false;
        // Ticks are unsigned: a negative-delta bug wraps to a huge
        // value, which this per-phase bound catches before the sum
        // (which could itself wrap back) is compared.
        for (const sim::Tick t : phase) {
            if (t > endToEnd())
                return false;
        }
        return phaseSum() == endToEnd();
    }
};

/**
 * Aggregation of OffloadRecords into per-phase duration distributions
 * plus an end-to-end latency distribution with streaming p50/p95/p99.
 * One instance per compiled kernel (driver) or service layer
 * (migration); always on — one add() per invocation is noise next to
 * simulating the invocation.
 */
class LifecycleStats
{
  public:
    LifecycleStats();

    /** Fold one completed record in. @p rec must be conserved. */
    void add(const OffloadRecord &rec);

    double invocations() const { return _e2e.count(); }

    const stats::Distribution &phaseDist(Phase p) const
    {
        return _phase[static_cast<std::size_t>(p)];
    }

    const stats::Distribution &e2eDist() const { return _e2e; }

    /** Total ticks spent in @p p across every recorded invocation. */
    double phaseTicks(Phase p) const
    {
        return _phase[static_cast<std::size_t>(p)].sum();
    }

    double e2eTicks() const { return _e2e.sum(); }

    void reset();

  private:
    std::array<stats::Distribution, kNumPhases> _phase;
    stats::Distribution _e2e;
};

} // namespace distda::offload

#endif // DISTDA_OFFLOAD_LIFECYCLE_HH
