#include "src/offload/lifecycle.hh"

#include "src/sim/logging.hh"

namespace distda::offload
{

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Enqueue: return "enqueue";
      case Phase::Decode: return "decode";
      case Phase::BufferAlloc: return "buffer_alloc";
      case Phase::Dispatch: return "dispatch";
      case Phase::Execute: return "execute";
      case Phase::Writeback: return "writeback";
      case Phase::Complete: return "complete";
      default: return "?";
    }
}

namespace
{

// Latency histogram range shared by every phase: the bucket grid is
// coarse on purpose (quantiles come from the streaming estimators, not
// the buckets) and the overflow counter catches multi-ms outliers.
constexpr double kLatLo = 0.0;
constexpr double kLatHi = 1e9; // 1 ms in picosecond ticks
constexpr std::size_t kLatBuckets = 50;

stats::Distribution
latencyDist()
{
    return stats::Distribution(kLatLo, kLatHi, kLatBuckets);
}

} // namespace

LifecycleStats::LifecycleStats() : _e2e(latencyDist())
{
    for (stats::Distribution &d : _phase)
        d = latencyDist();
}

void
LifecycleStats::add(const OffloadRecord &rec)
{
    DISTDA_ASSERT(rec.conserved(),
                  "offload record violates phase conservation: "
                  "phases %lld != end-to-end %lld",
                  static_cast<long long>(rec.phaseSum()),
                  static_cast<long long>(rec.endToEnd()));
    for (std::size_t i = 0; i < kNumPhases; ++i)
        _phase[i].sample(static_cast<double>(rec.phase[i]));
    _e2e.sample(static_cast<double>(rec.endToEnd()));
}

void
LifecycleStats::reset()
{
    for (stats::Distribution &d : _phase)
        d.reset();
    _e2e.reset();
}

} // namespace distda::offload
