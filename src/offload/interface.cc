#include "src/offload/interface.hh"

#include <cstdlib>

#include "src/sim/logging.hh"

namespace distda::offload
{

int
AccelScheduler::allocStream(int access_id, int cluster, mem::Addr start,
                            std::int64_t stride_bytes,
                            std::uint32_t length_bytes,
                            std::uint32_t buffer_bytes)
{
    // Multi-access combining: an existing stream on this cluster with
    // the same stride whose window covers the new access at constant
    // distance absorbs it (Fig 2d case 1).
    for (auto &[buf, entry] : _table) {
        if (entry.random || entry.cluster != cluster)
            continue;
        if (entry.strideBytes != stride_bytes)
            continue;
        const std::int64_t dist = std::llabs(
            static_cast<std::int64_t>(entry.start) -
            static_cast<std::int64_t>(start));
        if (shouldCombine(dist, buffer_bytes)) {
            _accessToBuf[access_id] = buf;
            return buf;
        }
    }
    const int buf = _nextBuf++;
    BufferEntry e;
    e.bufId = buf;
    e.accessId = access_id;
    e.cluster = cluster;
    e.start = start;
    e.strideBytes = stride_bytes;
    e.lengthBytes = length_bytes;
    _table[buf] = e;
    _accessToBuf[access_id] = buf;
    return buf;
}

int
AccelScheduler::allocRandom(int access_id, int cluster, mem::Addr start,
                            mem::Addr end)
{
    const int buf = _nextBuf++;
    BufferEntry e;
    e.bufId = buf;
    e.accessId = access_id;
    e.cluster = cluster;
    e.start = start;
    e.lengthBytes = static_cast<std::uint32_t>(
        std::min<mem::Addr>(end - start, ~std::uint32_t(0)));
    e.random = true;
    _table[buf] = e;
    _accessToBuf[access_id] = buf;
    return buf;
}

void
AccelScheduler::free(int buf_id)
{
    auto it = _table.find(buf_id);
    if (it == _table.end())
        panic("scheduler free of unknown buf %d", buf_id);
    for (auto a = _accessToBuf.begin(); a != _accessToBuf.end();) {
        if (a->second == buf_id)
            a = _accessToBuf.erase(a);
        else
            ++a;
    }
    _table.erase(it);
}

int
AccelScheduler::bufOf(int access_id) const
{
    auto it = _accessToBuf.find(access_id);
    return it == _accessToBuf.end() ? -1 : it->second;
}

CoprocessorInterface::CoprocessorInterface(mem::Hierarchy *hier,
                                           energy::Accountant *acct)
    : _hier(hier), _acct(acct)
{
}

sim::Tick
CoprocessorInterface::mmio(int cluster, std::uint32_t bytes,
                           sim::Tick now, bool posted)
{
    _mmioOps += 1.0;
    if (_acct)
        _acct->addEvents(energy::Component::Mmio, 1.0);
    const int host = _hier->mesh().hostNode();
    auto req = _hier->mesh().transfer(host, cluster, bytes,
                                      noc::TrafficClass::Ctrl, now);
    if (posted) {
        // Posted MMIO write: the host issues and moves on (one core
        // cycle); the write drains through the NoC behind it.
        return now + 500;
    }
    auto ack = _hier->mesh().transfer(cluster, host, 8,
                                      noc::TrafficClass::Ctrl,
                                      now + req.latency);
    return now + req.latency + ack.latency;
}

sim::Tick
CoprocessorInterface::mmioPhase(Phase phase, int cluster,
                                std::uint32_t bytes, sim::Tick now,
                                bool posted)
{
    const sim::Tick done = mmio(cluster, bytes, now, posted);
    if (_rec)
        _rec->add(phase, done - now);
    return done;
}

sim::Tick
CoprocessorInterface::cpConfig(int cluster, std::uint32_t config_bytes,
                               sim::Tick now)
{
    _configBytes += config_bytes;
    return mmioPhase(Phase::Decode, cluster, 8 + config_bytes, now,
                     true);
}

sim::Tick
CoprocessorInterface::cpConfigStream(int cluster, int access_id,
                                     mem::Addr start,
                                     std::int64_t stride_bytes,
                                     std::uint32_t length_bytes,
                                     std::uint32_t buffer_bytes,
                                     sim::Tick now, int *buf_id)
{
    const int buf = _sched.allocStream(access_id, cluster, start,
                                       stride_bytes, length_bytes,
                                       buffer_bytes);
    if (buf_id)
        *buf_id = buf;
    // start/stride/length/args
    return mmioPhase(Phase::BufferAlloc, cluster, 32, now, true);
}

sim::Tick
CoprocessorInterface::cpConfigRandom(int cluster, int access_id,
                                     mem::Addr start, mem::Addr end,
                                     sim::Tick now, int *buf_id)
{
    const int buf = _sched.allocRandom(access_id, cluster, start, end);
    if (buf_id)
        *buf_id = buf;
    return mmioPhase(Phase::BufferAlloc, cluster, 24, now, true);
}

sim::Tick
CoprocessorInterface::cpSetRf(int cluster, int reg, compiler::Word value,
                              sim::Tick now)
{
    (void)reg;
    (void)value;
    return mmioPhase(Phase::Enqueue, cluster, 16, now, true);
}

sim::Tick
CoprocessorInterface::cpLoadRf(int cluster, int reg, sim::Tick now)
{
    (void)reg;
    return mmioPhase(Phase::Complete, cluster, 8, now, false);
}

sim::Tick
CoprocessorInterface::cpRun(int cluster, sim::Tick now)
{
    // The launch must reach the accelerator before execution starts.
    return mmioPhase(Phase::Dispatch, cluster, 8, now, false);
}

sim::Tick
CoprocessorInterface::cpConsumeDone(int cluster, sim::Tick ready,
                                    sim::Tick now)
{
    // The done token rides the NoC as inter-accelerator control.
    const int host = _hier->mesh().hostNode();
    auto token = _hier->mesh().transfer(cluster, host, 8,
                                        noc::TrafficClass::AccCtrl,
                                        ready);
    return std::max(now, ready + token.latency);
}

} // namespace distda::offload
