/**
 * @file
 * A Livia-style "memory services" layer built on top of the Table II
 * interface, demonstrating §IV-B's interface-generality claim: the
 * migration scheme is implemented purely with cp_config (once per
 * cluster), cp_set_rf (operand transfer) and cp_run (invocation),
 * dispatching each single-cacheline task either to the host, to a
 * random location (Livia's coin flip) or to the cluster owning the
 * data (the NSC-style location lookup).
 *
 * The task used here is the canonical Livia example: an atomic
 * min-update of one element (arr[idx] = min(arr[idx], operand)).
 */

#ifndef DISTDA_OFFLOAD_MIGRATION_HH
#define DISTDA_OFFLOAD_MIGRATION_HH

#include "src/engine/backend.hh"
#include "src/offload/interface.hh"
#include "src/sim/rng.hh"

namespace distda::offload
{

/** Where a memory-service task executes. */
enum class MigrationPolicy
{
    HostOnly,     ///< every task runs on the host core
    CoinFlip,     ///< migrate to the data's cluster half the time
    DataLocation, ///< always run at the cluster owning the line
};

const char *migrationPolicyName(MigrationPolicy p);

/** Task-dispatch statistics. */
struct MigrationStats
{
    double tasks = 0.0;
    double migrated = 0.0;
    double localExecutions = 0.0; ///< ran at the data's home cluster
};

/**
 * The memory-service dispatcher. Accelerators at every cluster are
 * configured once with the task function; each runTask() then costs
 * only the operand cp_set_rf writes and a cp_run.
 */
class MemoryServiceLayer
{
  public:
    MemoryServiceLayer(mem::Hierarchy *hier, energy::Accountant *acct,
                       MigrationPolicy policy,
                       std::uint64_t seed = 1);

    /**
     * Min-update task: arr[idx] = min(arr[idx], operand), executed
     * functionally and charged per the chosen policy.
     * @return the tick the update is durable.
     */
    sim::Tick runTask(engine::ArrayRef &arr, std::uint64_t idx,
                      double operand, sim::Tick now);

    const MigrationStats &stats() const { return _stats; }
    double mmioOps() const { return _iface.mmioOps(); }

    /**
     * Per-task lifecycle breakdown (one OffloadRecord per runTask,
     * conservation-checked): host-path tasks split into Enqueue
     * (host-core queueing), Execute (read + update) and Writeback
     * (store drain); migrated tasks into Decode (one-time cp_config),
     * Enqueue (operand cp_set_rf), Dispatch (cp_run) and Execute
     * (the near-data read-modify-write).
     */
    const LifecycleStats &lifecycle() const { return _lifecycle; }

  private:
    mem::Hierarchy *_hier;
    CoprocessorInterface _iface;
    MigrationPolicy _policy;
    sim::Rng _rng;
    MigrationStats _stats;
    LifecycleStats _lifecycle;
    bool _configured = false;
    sim::Tick _hostBusy = 0;
};

} // namespace distda::offload

#endif // DISTDA_OFFLOAD_MIGRATION_HH
