#include "src/energy/energy_model.hh"

#include "src/sim/logging.hh"

namespace distda::energy
{

const char *
componentName(Component c)
{
    switch (c) {
      case Component::OoOCore: return "ooo_core";
      case Component::IOCore: return "io_core";
      case Component::Cgra: return "cgra";
      case Component::L1: return "l1";
      case Component::L2: return "l2";
      case Component::L3: return "l3";
      case Component::Dram: return "dram";
      case Component::Buffer: return "buffer";
      case Component::Noc: return "noc";
      case Component::Mmio: return "mmio";
      case Component::Acp: return "acp";
      default: panic("bad energy component %d", static_cast<int>(c));
    }
}

Accountant::Accountant(const EnergyParams &params) : _params(params)
{
}

void
Accountant::addEvents(Component c, double n)
{
    double per = 0.0;
    switch (c) {
      case Component::OoOCore: per = _params.oooPerInstPj; break;
      case Component::IOCore: per = _params.ioPerInstPj; break;
      case Component::Cgra: per = _params.cgraPerOpPj; break;
      case Component::L1: per = _params.l1AccessPj; break;
      case Component::L2: per = _params.l2AccessPj; break;
      case Component::L3: per = _params.l3AccessPj; break;
      case Component::Dram: per = _params.dramLinePj; break;
      case Component::Buffer: per = _params.bufferAccessPj; break;
      case Component::Noc: per = _params.nocHopFlitPj; break;
      case Component::Mmio: per = _params.mmioPj; break;
      case Component::Acp: per = _params.acpAccessPj; break;
      default: panic("bad energy component %d", static_cast<int>(c));
    }
    add(c, per * n);
}

double
Accountant::totalPj() const
{
    double total = 0.0;
    for (double v : _perComponent)
        total += v;
    return total;
}

void
Accountant::reset()
{
    _perComponent.fill(0.0);
}

void
Accountant::exportStats(stats::Group &group) const
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Component::NumComponents); ++i) {
        group.add(std::string("energy_pj.") +
                  componentName(static_cast<Component>(i))) =
            _perComponent[i];
    }
    group.add("energy_pj.total") = totalPj();
}

} // namespace distda::energy
