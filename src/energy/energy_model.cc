#include "src/energy/energy_model.hh"

#include "src/sim/logging.hh"

namespace distda::energy
{

const char *
componentName(Component c)
{
    switch (c) {
      case Component::OoOCore: return "ooo_core";
      case Component::IOCore: return "io_core";
      case Component::Cgra: return "cgra";
      case Component::L1: return "l1";
      case Component::L2: return "l2";
      case Component::L3: return "l3";
      case Component::Dram: return "dram";
      case Component::Buffer: return "buffer";
      case Component::Noc: return "noc";
      case Component::Mmio: return "mmio";
      case Component::Acp: return "acp";
      default: panic("bad energy component %d", static_cast<int>(c));
    }
}

Accountant::Accountant(const EnergyParams &params) : _params(params)
{
    const auto idx = [](Component c) {
        return static_cast<std::size_t>(c);
    };
    _perEvent[idx(Component::OoOCore)] = _params.oooPerInstPj;
    _perEvent[idx(Component::IOCore)] = _params.ioPerInstPj;
    _perEvent[idx(Component::Cgra)] = _params.cgraPerOpPj;
    _perEvent[idx(Component::L1)] = _params.l1AccessPj;
    _perEvent[idx(Component::L2)] = _params.l2AccessPj;
    _perEvent[idx(Component::L3)] = _params.l3AccessPj;
    _perEvent[idx(Component::Dram)] = _params.dramLinePj;
    _perEvent[idx(Component::Buffer)] = _params.bufferAccessPj;
    _perEvent[idx(Component::Noc)] = _params.nocHopFlitPj;
    _perEvent[idx(Component::Mmio)] = _params.mmioPj;
    _perEvent[idx(Component::Acp)] = _params.acpAccessPj;
}

double
Accountant::totalPj() const
{
    double total = 0.0;
    for (double v : _perComponent)
        total += v;
    return total;
}

void
Accountant::reset()
{
    _perComponent.fill(0.0);
}

void
Accountant::exportStats(stats::Group &group) const
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Component::NumComponents); ++i) {
        group.add(std::string("energy_pj.") +
                  componentName(static_cast<Component>(i))) =
            _perComponent[i];
    }
    group.add("energy_pj.total") = totalPj();
}

} // namespace distda::energy
