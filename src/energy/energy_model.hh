/**
 * @file
 * Dynamic-energy accounting in the spirit of McPAT/Cacti at 32nm.
 *
 * The evaluation reports *normalized* energy efficiency, so what matters
 * is that per-event costs sit in the right ratios: DRAM access >> L3
 * bank >> L2 >> L1 >> access-unit SRAM buffer >> ALU op, and an OoO
 * instruction (fetch/decode/rename/ROB/issue overheads included) costs
 * several times an in-order instruction, which in turn costs several
 * times a bare CGRA PE operation.
 */

#ifndef DISTDA_ENERGY_ENERGY_MODEL_HH
#define DISTDA_ENERGY_ENERGY_MODEL_HH

#include <array>
#include <cstdint>
#include <string>

#include "src/sim/stats.hh"

namespace distda::energy
{

/** System components that consume dynamic energy. */
enum class Component : std::uint8_t
{
    OoOCore,     ///< host out-of-order pipeline
    IOCore,      ///< in-order accelerator core
    Cgra,        ///< CGRA fabric PEs and local routing
    L1,          ///< private L1 data cache
    L2,          ///< private L2 cache
    L3,          ///< one NUCA L3 bank access
    Dram,        ///< LPDDR access
    Buffer,      ///< access-unit SRAM buffer access
    Noc,         ///< on-chip network hop traversal
    Mmio,        ///< host-side MMIO intrinsic issue
    Acp,         ///< accelerator coherency port access
    NumComponents
};

/** Human-readable component name, for stat registration. */
const char *componentName(Component c);

/**
 * Per-event energy costs in picojoules. Defaults approximate 32nm
 * McPAT/Cacti values for the Table III configuration.
 */
struct EnergyParams
{
    double oooPerInstPj = 320.0;    ///< full OoO pipeline per instruction
    double ioPerInstPj = 38.0;      ///< 1-issue in-order per instruction
    double cgraPerOpPj = 7.0;       ///< single PE operation + fabric hop
    double l1AccessPj = 30.0;       ///< 32KB 8-way per access
    double l2AccessPj = 80.0;       ///< 128KB 16-way per access
    double l3AccessPj = 180.0;      ///< 256KB bank per access
    double dramLinePj = 18000.0;    ///< LPDDR 64B line transfer
    double bufferAccessPj = 3.0;    ///< 4KB SRAM buffer, 8B access
    double nocHopFlitPj = 19.0;     ///< 8B flit: router + 2mm link
    double mmioPj = 200.0;          ///< uncached MMIO intrinsic
    double acpAccessPj = 8.0;       ///< 1KB ACP front-end access
};

/**
 * Accumulates dynamic energy per component. One Accountant exists per
 * simulated system; components hold a pointer and charge events.
 */
class Accountant
{
  public:
    explicit Accountant(const EnergyParams &params = EnergyParams{});

    const EnergyParams &params() const { return _params; }

    /** Charge @p pj picojoules to component @p c. */
    void
    add(Component c, double pj)
    {
        _perComponent[static_cast<std::size_t>(c)] += pj;
    }

    /**
     * Charge n events at the default per-event cost of @p c. Hot on
     * the simulation critical path (one call per modeled instruction
     * and cache access), so the per-event costs are pre-resolved into
     * a table at construction and the charge stays inline.
     */
    void
    addEvents(Component c, double n)
    {
        add(c, _perEvent[static_cast<std::size_t>(c)] * n);
    }

    /** Energy so far for one component, in picojoules. */
    double
    componentPj(Component c) const
    {
        return _perComponent[static_cast<std::size_t>(c)];
    }

    /** Total energy across all components, in picojoules. */
    double totalPj() const;

    /** Zero all accumulators. */
    void reset();

    /** Export per-component totals into @p group. */
    void exportStats(stats::Group &group) const;

  private:
    EnergyParams _params;
    std::array<double, static_cast<std::size_t>(Component::NumComponents)>
        _perComponent{};
    std::array<double, static_cast<std::size_t>(Component::NumComponents)>
        _perEvent{};
};

} // namespace distda::energy

#endif // DISTDA_ENERGY_ENERGY_MODEL_HH
