#include "src/mem/cache.hh"

#include <algorithm>

#include "src/sim/logging.hh"

namespace distda::mem
{

namespace
{
constexpr std::size_t strideTableEntries = 16;
} // namespace

Cache::Cache(const CacheParams &params, energy::Accountant *acct,
             Downstream downstream)
    : _params(params), _acct(acct), _downstream(std::move(downstream)),
      _clock(params.clockHz),
      _numSets(params.sizeBytes / lineBytes /
               static_cast<std::uint64_t>(params.assoc)),
      _lines(_numSets * static_cast<std::size_t>(params.assoc)),
      _mshrFree(static_cast<std::size_t>(std::max(params.mshrs, 1)), 0),
      _strideTable(strideTableEntries)
{
    if (_numSets == 0)
        fatal("cache '%s': size %llu too small for assoc %d",
              params.name.c_str(),
              static_cast<unsigned long long>(params.sizeBytes),
              params.assoc);
    if (!_downstream)
        fatal("cache '%s' has no downstream", params.name.c_str());
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    const Addr line = lineNum(line_addr);
    if (_params.setHash) {
        // Fibonacci hashing: high product bits mix every line bit, so
        // page-interleaved banks use all their sets.
        const Addr h = line * 0x9e3779b97f4a7c15ULL;
        return static_cast<std::size_t>(h >> 32) % _numSets;
    }
    return static_cast<std::size_t>(line) % _numSets;
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    const std::size_t set = setIndex(line_addr);
    const Addr tag = lineNum(line_addr);
    for (int w = 0; w < _params.assoc; ++w) {
        Line &line = _lines[set * _params.assoc + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

bool
Cache::contains(Addr addr) const
{
    return findLine(lineAlign(addr)) != nullptr;
}

CacheResult
Cache::access(Addr addr, std::uint32_t size, bool write, sim::Tick now)
{
    const Addr first = lineAlign(addr);
    const std::uint64_t nlines = linesCovering(addr, std::max(size, 1u));

    CacheResult total = accessLine(first, write, now);
    // Subsequent lines of a multi-line request are pipelined; they
    // extend latency only past the first line's completion.
    for (std::uint64_t i = 1; i < nlines; ++i) {
        CacheResult r =
            accessLine(first + i * lineBytes, write, now + total.latency);
        total.latency += r.latency;
        total.hit = total.hit && r.hit;
    }
    return total;
}

CacheResult
Cache::accessLine(Addr line_addr, bool write, sim::Tick now)
{
    _accesses += 1.0;
    if (_acct)
        _acct->addEvents(_params.component, 1.0);

    const sim::Tick tag_lat = _clock.cyclesToTicks(_params.latencyCycles);

    if (Line *line = findLine(line_addr)) {
        _hits += 1.0;
        line->lru = ++_lruTick;
        if (write)
            line->dirty = _params.writeback;
        if (!write && _params.stridePrefetch)
            prefetch(line_addr, now);
        return CacheResult{true, tag_lat};
    }

    _misses += 1.0;

    // Occupy the earliest-free MSHR; queue when all busy.
    auto slot = std::min_element(_mshrFree.begin(), _mshrFree.end());
    const sim::Tick start = std::max(now + tag_lat, *slot);
    const sim::Tick fill_lat = fill(line_addr, write && _params.writeback,
                                    start, true);
    const sim::Tick done = start + fill_lat;
    *slot = done;

    if (!write && _params.stridePrefetch)
        prefetch(line_addr, now);

    return CacheResult{false, done - now};
}

sim::Tick
Cache::fill(Addr line_addr, bool dirty, sim::Tick now, bool count_demand)
{
    (void)count_demand;
    const std::size_t set = setIndex(line_addr);

    // Victim selection: invalid way first, then LRU.
    Line *victim = nullptr;
    for (int w = 0; w < _params.assoc; ++w) {
        Line &line = _lines[set * _params.assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }

    if (victim->valid && victim->dirty) {
        _writebacks += 1.0;
        // Writeback is off the critical path; latency discarded.
        _downstream(victim->tag * lineBytes, true, now);
    }

    const sim::Tick miss_lat = _downstream(line_addr, false, now);

    victim->tag = lineNum(line_addr);
    victim->valid = true;
    victim->dirty = dirty;
    victim->lru = ++_lruTick;

    return miss_lat;
}

void
Cache::prefetch(Addr line_addr, sim::Tick now)
{
    const std::uint64_t region = line_addr >> 12;
    const auto line = static_cast<std::int64_t>(lineNum(line_addr));
    StrideEntry &entry = _strideTable[region % _strideTable.size()];

    if (entry.region != region) {
        entry.region = region;
        entry.lastLine = line;
        entry.stride = 0;
        entry.confidence = 0;
        return;
    }

    const std::int64_t delta = line - entry.lastLine;
    entry.lastLine = line;
    if (delta == 0)
        return;
    if (delta == entry.stride) {
        entry.confidence = std::min(entry.confidence + 1, 4);
    } else {
        entry.stride = delta;
        entry.confidence = 0;
        return;
    }

    if (entry.confidence < 2)
        return;

    for (int d = 1; d <= _params.prefetchDegree; ++d) {
        const std::int64_t target = line + entry.stride * d;
        if (target < 0)
            continue;
        const Addr target_addr = static_cast<Addr>(target) * lineBytes;
        if (findLine(target_addr))
            continue;
        _prefetches += 1.0;
        if (_acct)
            _acct->addEvents(_params.component, 1.0);
        // Prefetch fills are off the demand critical path.
        fill(target_addr, false, now, false);
    }
}

void
Cache::flush(sim::Tick now)
{
    for (Line &line : _lines) {
        if (line.valid && line.dirty) {
            _writebacks += 1.0;
            _downstream(line.tag * lineBytes, true, now);
        }
        line.valid = false;
        line.dirty = false;
    }
}

void
Cache::exportStats(stats::Group &group) const
{
    const std::string p = _params.name + ".";
    group.add(p + "accesses") = _accesses;
    group.add(p + "hits") = _hits;
    group.add(p + "misses") = _misses;
    group.add(p + "writebacks") = _writebacks;
    group.add(p + "prefetches") = _prefetches;
}

void
Cache::reset()
{
    for (Line &line : _lines)
        line = Line{};
    std::fill(_mshrFree.begin(), _mshrFree.end(), 0);
    for (StrideEntry &e : _strideTable)
        e = StrideEntry{};
    _lruTick = 0;
    _accesses = _hits = _misses = _writebacks = 0;
    _prefetches = _prefetchHits = 0;
}

} // namespace distda::mem
