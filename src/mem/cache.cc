#include "src/mem/cache.hh"

#include <algorithm>
#include <functional>

#include "src/sim/logging.hh"
#include "src/sim/probe.hh"

namespace distda::mem
{

namespace
{
constexpr std::size_t strideTableEntries = 16;
} // namespace

Cache::Cache(const CacheParams &params, energy::Accountant *acct,
             Downstream downstream)
    : _params(params), _acct(acct), _downstream(std::move(downstream)),
      _clock(params.clockHz),
      _numSets(params.sizeBytes / lineBytes /
               static_cast<std::uint64_t>(params.assoc)),
      _setMask((_numSets & (_numSets - 1)) == 0 ? _numSets - 1 : 0),
      _tagLat(_clock.cyclesToTicks(params.latencyCycles)),
      _lines(_numSets * static_cast<std::size_t>(params.assoc)),
      _mshrFree(static_cast<std::size_t>(std::max(params.mshrs, 1)), 0),
      _strideTable(strideTableEntries)
{
    if (_numSets == 0)
        fatal("cache '%s': size %llu too small for assoc %d",
              params.name.c_str(),
              static_cast<unsigned long long>(params.sizeBytes),
              params.assoc);
    if (!_downstream)
        fatal("cache '%s' has no downstream", params.name.c_str());
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    const Addr line = lineNum(line_addr);
    if (_params.setHash) {
        // Fibonacci hashing: high product bits mix every line bit, so
        // page-interleaved banks use all their sets.
        const Addr h = line * 0x9e3779b97f4a7c15ULL;
        const auto hi = static_cast<std::size_t>(h >> 32);
        return _setMask ? hi & _setMask : hi % _numSets;
    }
    // Power-of-two set counts (the common case) mask instead of
    // dividing; identical index, no hardware divide per probe.
    const auto l = static_cast<std::size_t>(line);
    return _setMask ? l & _setMask : l % _numSets;
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    const std::size_t set = setIndex(line_addr);
    const Addr tag = lineNum(line_addr);
    for (int w = 0; w < _params.assoc; ++w) {
        Line &line = _lines[set * _params.assoc + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

bool
Cache::contains(Addr addr) const
{
    return findLine(lineAlign(addr)) != nullptr;
}

CacheResult
Cache::accessLine(Addr line_addr, bool write, sim::Tick now)
{
    _accesses += 1.0;
    if (_acct)
        _acct->addEvents(_params.component, 1.0);

    // MRU filter: skip the set walk when the last-hit line matches.
    const Addr tag = lineNum(line_addr);
    Line *line = nullptr;
    Line *victim = nullptr;
    if (_mru && _mru->valid && _mru->tag == tag) {
        line = _mru;
    } else {
        // One walk serves both lookups: find the tag, and remember the
        // victim (first invalid way, else first-encountered LRU
        // minimum) in case this is a miss.
        Line *const set = &_lines[setIndex(line_addr) *
                                  static_cast<std::size_t>(_params.assoc)];
        bool invalid_victim = false;
        for (int w = 0; w < _params.assoc; ++w) {
            Line &l = set[w];
            if (l.valid && l.tag == tag) {
                line = &l;
                break;
            }
            if (!l.valid) {
                if (!invalid_victim) {
                    victim = &l;
                    invalid_victim = true;
                }
            } else if (!invalid_victim &&
                       (!victim || l.lru < victim->lru)) {
                victim = &l;
            }
        }
    }

    if (line) {
        _hits += 1.0;
        if (line->prefetched) {
            _prefetchHits += 1.0;
            line->prefetched = false;
        }
        _mru = line;
        line->lru = ++_lruTick;
        if (write)
            line->dirty = _params.writeback;
        if (!write && _params.stridePrefetch)
            prefetch(line_addr, now);
        return CacheResult{true, _tagLat};
    }

    _misses += 1.0;

    // Occupy the earliest-free MSHR; queue when all busy. _mshrFree is
    // a min-heap on completion time, so the earliest slot is the root
    // rather than a linear scan over every slot.
    std::pop_heap(_mshrFree.begin(), _mshrFree.end(),
                  std::greater<sim::Tick>());
    const sim::Tick start = std::max(now + _tagLat, _mshrFree.back());
    const sim::Tick fill_lat = fillVictim(
        victim, line_addr, write && _params.writeback, start, true);
    const sim::Tick done = start + fill_lat;
    _mshrFree.back() = done;
    std::push_heap(_mshrFree.begin(), _mshrFree.end(),
                   std::greater<sim::Tick>());

    if (_probe) {
        _probe->span(_probeTrack, "miss", start, done);
        if (_missDist)
            _missDist->sample(static_cast<double>(done - now));
    }

    if (!write && _params.stridePrefetch)
        prefetch(line_addr, now);

    return CacheResult{false, done - now};
}

sim::Tick
Cache::fill(Addr line_addr, bool dirty, sim::Tick now, bool count_demand)
{
    const std::size_t set = setIndex(line_addr);

    // Victim selection: invalid way first, then LRU.
    Line *victim = nullptr;
    for (int w = 0; w < _params.assoc; ++w) {
        Line &line = _lines[set * _params.assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }

    return fillVictim(victim, line_addr, dirty, now, count_demand);
}

sim::Tick
Cache::fillVictim(Line *victim, Addr line_addr, bool dirty, sim::Tick now,
                  bool count_demand)
{
    if (victim->valid && victim->dirty) {
        _writebacks += 1.0;
        // Writeback is off the critical path; latency discarded.
        _downstream(victim->tag * lineBytes, true, now);
    }

    const sim::Tick miss_lat = _downstream(line_addr, false, now);

    victim->tag = lineNum(line_addr);
    victim->valid = true;
    victim->dirty = dirty;
    victim->prefetched = !count_demand;
    victim->lru = ++_lruTick;
    if (count_demand)
        _mru = victim;

    return miss_lat;
}

void
Cache::prefetch(Addr line_addr, sim::Tick now)
{
    const std::uint64_t region = line_addr >> 12;
    const auto line = static_cast<std::int64_t>(lineNum(line_addr));
    StrideEntry &entry = _strideTable[region % _strideTable.size()];

    if (entry.region != region) {
        entry.region = region;
        entry.lastLine = line;
        entry.stride = 0;
        entry.confidence = 0;
        return;
    }

    const std::int64_t delta = line - entry.lastLine;
    entry.lastLine = line;
    if (delta == 0)
        return;
    if (delta == entry.stride) {
        entry.confidence = std::min(entry.confidence + 1, 4);
    } else {
        entry.stride = delta;
        entry.confidence = 0;
        return;
    }

    if (entry.confidence < 2)
        return;

    for (int d = 1; d <= _params.prefetchDegree; ++d) {
        const std::int64_t target = line + entry.stride * d;
        if (target < 0)
            continue;
        const Addr target_addr = static_cast<Addr>(target) * lineBytes;
        if (findLine(target_addr))
            continue;
        _prefetches += 1.0;
        if (_acct)
            _acct->addEvents(_params.component, 1.0);
        // Prefetch fills are off the demand critical path.
        fill(target_addr, false, now, false);
    }
}

void
Cache::flush(sim::Tick now)
{
    for (Line &line : _lines) {
        if (line.valid && line.dirty) {
            _writebacks += 1.0;
            _downstream(line.tag * lineBytes, true, now);
        }
        line.valid = false;
        line.dirty = false;
    }
}

void
Cache::exportStats(stats::Group &group) const
{
    const std::string p = _params.name + ".";
    group.add(p + "accesses") = _accesses;
    group.add(p + "hits") = _hits;
    group.add(p + "misses") = _misses;
    group.add(p + "writebacks") = _writebacks;
    group.add(p + "prefetches") = _prefetches;
    group.add(p + "prefetch_hits") = _prefetchHits;
}

void
Cache::reset()
{
    for (Line &line : _lines)
        line = Line{};
    std::fill(_mshrFree.begin(), _mshrFree.end(), 0);
    for (StrideEntry &e : _strideTable)
        e = StrideEntry{};
    _mru = nullptr;
    _lruTick = 0;
    _accesses = _hits = _misses = _writebacks = 0;
    _prefetches = _prefetchHits = 0;
}

} // namespace distda::mem
