#include "src/mem/nuca_l3.hh"

#include <algorithm>

#include "src/sim/logging.hh"
#include "src/sim/probe.hh"

namespace distda::mem
{

NucaL3::NucaL3(const NucaParams &params, noc::Mesh *mesh, Dram *dram,
               energy::Accountant *acct)
    : _params(params), _mesh(mesh), _dram(dram)
{
    if (params.clusters != mesh->numNodes())
        fatal("NUCA clusters (%d) must match mesh nodes (%d)",
              params.clusters, mesh->numNodes());
    for (int c = 0; c < params.clusters; ++c) {
        CacheParams bp;
        bp.name = "l3c" + std::to_string(c);
        bp.sizeBytes = params.clusterBytes;
        bp.assoc = params.assoc;
        bp.latencyCycles = params.latencyCycles;
        bp.mshrs = params.mshrs;
        bp.clockHz = params.clockHz;
        bp.setHash = true;
        bp.component = energy::Component::L3;
        _banks.push_back(std::make_unique<Cache>(
            bp, acct,
            Cache::Downstream(
                [](void *ctx, Addr a, bool w, sim::Tick t) {
                    return static_cast<Dram *>(ctx)->access(a, w, t);
                },
                _dram)));
    }
}

int
NucaL3::clusterOf(Addr addr) const
{
    // _affinity is sorted by base and ranges are disjoint (each byte of
    // the slab arena is handed out once), so at most one range can hold
    // addr: the last one starting at or below it.
    if (!_affinity.empty()) {
        const auto it = std::upper_bound(
            _affinity.begin(), _affinity.end(), addr,
            [](Addr a, const AffinityRange &r) { return a < r.base; });
        if (it != _affinity.begin()) {
            const AffinityRange &r = *(it - 1);
            if (addr - r.base < r.bytes)
                return r.cluster;
        }
    }
    return static_cast<int>((addr / _params.pageBytes) %
                            static_cast<std::uint64_t>(_params.clusters));
}

void
NucaL3::setAffinity(Addr base, std::uint64_t bytes, int cluster)
{
    DISTDA_ASSERT(cluster >= 0 && cluster < _params.clusters,
                  "affinity cluster %d", cluster);
    const auto it = std::upper_bound(
        _affinity.begin(), _affinity.end(), base,
        [](Addr b, const AffinityRange &r) { return b < r.base; });
    DISTDA_ASSERT((it == _affinity.end() || base + bytes <= it->base) &&
                      (it == _affinity.begin() ||
                       (it - 1)->base + (it - 1)->bytes <= base),
                  "overlapping affinity range at %llu",
                  static_cast<unsigned long long>(base));
    _affinity.insert(it, AffinityRange{base, bytes, cluster});
}

CacheResult
NucaL3::access(Addr addr, std::uint32_t size, bool write, int src_node,
               sim::Tick now, TrafficTag tag)
{
    const Addr first = lineAlign(addr);
    const std::uint64_t nlines = linesCovering(addr, std::max(size, 1u));

    CacheResult total{true, 0};
    std::uint64_t remaining = std::max(size, 1u);
    for (std::uint64_t i = 0; i < nlines; ++i) {
        const Addr la = first + i * lineBytes;
        const int cluster = clusterOf(la);
        const sim::Tick t = now + total.latency;
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(remaining, lineBytes));
        remaining -= chunk;

        sim::Tick net_lat = 0;
        if (src_node != cluster) {
            if (write) {
                // Request carries the data; small ack returns.
                auto req = _mesh->transfer(src_node, cluster, 8 + chunk,
                                           tag.data, t);
                auto ack = _mesh->transfer(cluster, src_node, 8, tag.req,
                                           t + req.latency);
                net_lat = req.latency + ack.latency;
            } else {
                auto req = _mesh->transfer(src_node, cluster, 8, tag.req, t);
                auto resp = _mesh->transfer(cluster, src_node, chunk,
                                            tag.data, t + req.latency);
                net_lat = req.latency + resp.latency;
            }
        }

        CacheResult r = _banks[static_cast<std::size_t>(cluster)]->access(
            la, chunk, write, t + net_lat);
        total.latency += net_lat + r.latency;
        total.hit = total.hit && r.hit;
    }
    return total;
}

double
NucaL3::totalAccesses() const
{
    double total = 0.0;
    for (const auto &b : _banks)
        total += b->accesses();
    return total;
}

double
NucaL3::totalMisses() const
{
    double total = 0.0;
    for (const auto &b : _banks)
        total += b->misses();
    return total;
}

void
NucaL3::exportStats(stats::Group &group) const
{
    for (const auto &b : _banks)
        b->exportStats(group);
    group.add("l3.accesses") = totalAccesses();
    group.add("l3.misses") = totalMisses();
}

void
NucaL3::attachProbe(sim::Probe &probe)
{
    // All banks funnel into one L3-wide miss-latency histogram; the
    // per-bank structure is visible on the timeline tracks instead.
    stats::Distribution &miss =
        probe.addDist("l3.miss_latency_ticks", 0.0, 200'000.0, 20);
    for (int c = 0; c < _params.clusters; ++c) {
        const int track = probe.addTrack(c, "l3bank");
        _banks[static_cast<std::size_t>(c)]->setProbe(&probe, track,
                                                      &miss);
    }
}

void
NucaL3::reset()
{
    for (auto &b : _banks)
        b->reset();
    _affinity.clear();
}

} // namespace distda::mem
