/**
 * @file
 * Physical address type and cache-line helpers.
 */

#ifndef DISTDA_MEM_ADDR_HH
#define DISTDA_MEM_ADDR_HH

#include <cstdint>

namespace distda::mem
{

/** A physical byte address. */
using Addr = std::uint64_t;

/** Cache line size used throughout the hierarchy. */
constexpr std::uint32_t lineBytes = 64;

/** Align @p a down to its cache line. */
constexpr Addr lineAlign(Addr a) { return a & ~static_cast<Addr>(lineBytes - 1); }

/** Line number containing @p a. */
constexpr Addr lineNum(Addr a) { return a / lineBytes; }

/** Number of lines covering [addr, addr+size). */
constexpr std::uint64_t
linesCovering(Addr addr, std::uint64_t size)
{
    if (size == 0)
        return 0;
    return lineNum(addr + size - 1) - lineNum(addr) + 1;
}

} // namespace distda::mem

#endif // DISTDA_MEM_ADDR_HH
