/**
 * @file
 * Static-NUCA L3 (Table III: 2MB total, 8 clusters of 256KB on the mesh
 * NoC, 16-way, 64 MSHRs, latency 10).
 *
 * Addresses map to clusters at page granularity so that an inner-loop
 * window of one data structure mostly falls in one cluster (which the
 * paper's greedy home-node placement exploits); explicit per-range
 * affinity overrides implement the manual allocation customization of
 * the Dist-DA-F+A configuration (Fig 14).
 */

#ifndef DISTDA_MEM_NUCA_L3_HH
#define DISTDA_MEM_NUCA_L3_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/mem/cache.hh"
#include "src/mem/dram.hh"
#include "src/noc/mesh.hh"

namespace distda::mem
{

/** NUCA L3 configuration. */
struct NucaParams
{
    int clusters = 8;
    std::uint64_t clusterBytes = 256 * 1024;
    int assoc = 16;
    sim::Cycles latencyCycles = 10;
    int mshrs = 64;
    std::uint64_t clockHz = 2'000'000'000ULL;
    /** Interleave granule: coarse enough that an inner-loop
     *  window (a few stencil rows) anchors in one cluster. */
    std::uint64_t pageBytes = 16384;
};

/** Traffic classes used for one requester's L3 traffic. */
struct TrafficTag
{
    noc::TrafficClass req = noc::TrafficClass::Ctrl;
    noc::TrafficClass data = noc::TrafficClass::Data;
};

/** The shared, distributed last-level cache. */
class NucaL3
{
  public:
    NucaL3(const NucaParams &params, noc::Mesh *mesh, Dram *dram,
           energy::Accountant *acct);

    const NucaParams &params() const { return _params; }

    /** Home cluster of @p addr (affinity override, else page interleave). */
    int clusterOf(Addr addr) const;

    /** Anchor [base, base+bytes) to @p cluster (allocation affinity). */
    void setAffinity(Addr base, std::uint64_t bytes, int cluster);

    /** Drop all affinity overrides. */
    void clearAffinity() { _affinity.clear(); }

    /**
     * Access @p size bytes at @p addr from mesh node @p src_node.
     * Cross-cluster requests ride the NoC with @p tag's classes.
     */
    CacheResult access(Addr addr, std::uint32_t size, bool write,
                       int src_node, sim::Tick now, TrafficTag tag);

    /** Per-cluster bank. */
    Cache &bank(int cluster) { return *_banks[static_cast<std::size_t>(cluster)]; }
    const Cache &bank(int cluster) const
    {
        return *_banks[static_cast<std::size_t>(cluster)];
    }

    /** Total bank accesses across clusters. */
    double totalAccesses() const;
    /** Total bank misses across clusters. */
    double totalMisses() const;

    void exportStats(stats::Group &group) const;
    void reset();

    /**
     * Register one timeline track per bank (under its cluster's
     * process) and route bank miss spans/latencies into @p probe.
     */
    void attachProbe(sim::Probe &probe);

  private:
    struct AffinityRange
    {
        Addr base;
        std::uint64_t bytes;
        int cluster;
    };

    NucaParams _params;
    noc::Mesh *_mesh;
    Dram *_dram;
    std::vector<std::unique_ptr<Cache>> _banks;
    std::vector<AffinityRange> _affinity;
};

} // namespace distda::mem

#endif // DISTDA_MEM_NUCA_L3_HH
