#include "src/mem/hierarchy.hh"

#include "src/sim/logging.hh"
#include "src/sim/probe.hh"

namespace distda::mem
{

HierarchyParams::HierarchyParams()
{
    l1.name = "l1d";
    l1.sizeBytes = 32 * 1024;
    l1.assoc = 8;
    l1.latencyCycles = 2;
    l1.mshrs = 8;
    l1.component = energy::Component::L1;

    l2.name = "l2";
    l2.sizeBytes = 128 * 1024;
    l2.assoc = 16;
    l2.latencyCycles = 4;
    l2.mshrs = 16;
    l2.stridePrefetch = true;
    l2.component = energy::Component::L2;

    acp.name = "acp";
    acp.sizeBytes = 1024;
    acp.assoc = 1;
    acp.latencyCycles = 1;
    // The ACP is a request port fronting a 64-MSHR L3 bank; its own
    // queue is deep enough not to throttle the fill FSMs.
    acp.mshrs = 32;
    acp.component = energy::Component::Acp;
}

sim::Tick
Hierarchy::L3Down::operator()(Addr a, bool w, sim::Tick t) const
{
    return l3->access(a, lineBytes, w, node, t, tag).latency;
}

sim::Tick
Hierarchy::CacheDown::operator()(Addr a, bool w, sim::Tick t) const
{
    return next->access(a, lineBytes, w, t).latency;
}

Hierarchy::Hierarchy(const HierarchyParams &params,
                     energy::Accountant *acct)
{
    _mesh = std::make_unique<noc::Mesh>(params.mesh, acct);
    _dram = std::make_unique<Dram>(params.dram, acct);
    _l3 = std::make_unique<NucaL3>(params.l3, _mesh.get(), _dram.get(),
                                   acct);

    _l2Down = L3Down{_l3.get(), _mesh->hostNode(),
                     TrafficTag{noc::TrafficClass::Ctrl,
                                noc::TrafficClass::Data}};
    _l2 = std::make_unique<Cache>(params.l2, acct,
                                  Cache::Downstream::of(_l2Down));
    _l1Down = CacheDown{_l2.get()};
    _l1 = std::make_unique<Cache>(params.l1, acct,
                                  Cache::Downstream::of(_l1Down));

    // Reserve first: the caches hold raw pointers into _acpDowns.
    _acpDowns.reserve(static_cast<std::size_t>(params.l3.clusters));
    for (int c = 0; c < params.l3.clusters; ++c) {
        _acpDowns.push_back(
            L3Down{_l3.get(), c,
                   TrafficTag{noc::TrafficClass::AccCtrl,
                              noc::TrafficClass::AccData}});
        CacheParams ap = params.acp;
        ap.name = "acp" + std::to_string(c);
        _acps.push_back(std::make_unique<Cache>(
            ap, acct, Cache::Downstream::of(_acpDowns.back())));
    }
}

CacheResult
Hierarchy::hostAccess(Addr addr, std::uint32_t size, bool write,
                      sim::Tick now)
{
    return _l1->access(addr, size, write, now);
}

CacheResult
Hierarchy::accelAccess(Addr addr, std::uint32_t size, bool write,
                       int cluster, sim::Tick now)
{
    DISTDA_ASSERT(cluster >= 0 &&
                      cluster < static_cast<int>(_acps.size()),
                  "accel access from bad cluster %d", cluster);
    return _acps[static_cast<std::size_t>(cluster)]->access(addr, size,
                                                            write, now);
}

double
Hierarchy::cacheAccesses() const
{
    double total = _l1->accesses() + _l2->accesses() +
                   _l3->totalAccesses();
    for (const auto &a : _acps)
        total += a->accesses();
    return total;
}

void
Hierarchy::exportStats(stats::Group &group) const
{
    _l1->exportStats(group);
    _l2->exportStats(group);
    _l3->exportStats(group);
    _dram->exportStats(group);
    _mesh->exportStats(group);
    double acp_acc = 0.0;
    for (const auto &a : _acps)
        acp_acc += a->accesses();
    group.add("acp.accesses") = acp_acc;
    group.add("cache_accesses_total") = cacheAccesses();
}

void
Hierarchy::attachProbe(sim::Probe &probe)
{
    const int host = _mesh->hostNode();
    _l1->setProbe(&probe, probe.addTrack(host, "l1d"),
                  &probe.addDist("l1d.miss_latency_ticks", 0.0,
                                 200'000.0, 20));
    _l2->setProbe(&probe, probe.addTrack(host, "l2"),
                  &probe.addDist("l2.miss_latency_ticks", 0.0,
                                 200'000.0, 20));
    stats::Distribution &acp_miss =
        probe.addDist("acp.miss_latency_ticks", 0.0, 200'000.0, 20);
    for (std::size_t c = 0; c < _acps.size(); ++c) {
        _acps[c]->setProbe(
            &probe, probe.addTrack(static_cast<int>(c), "acp"),
            &acp_miss);
    }
    _l3->attachProbe(probe);
    _mesh->setProbe(&probe);
}

void
Hierarchy::reset()
{
    _l1->reset();
    _l2->reset();
    _l3->reset();
    _dram->reset();
    _mesh->reset();
    for (auto &a : _acps)
        a->reset();
}

} // namespace distda::mem
