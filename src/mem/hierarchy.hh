/**
 * @file
 * The full memory system of Table III wired together: private L1/L2 for
 * the host (L2 with a stride prefetcher), the NUCA L3 on the mesh NoC,
 * LPDDR DRAM behind it, and per-cluster accelerator coherency ports
 * (ACP, 1-way 1KB) through which all accelerator requests pass.
 */

#ifndef DISTDA_MEM_HIERARCHY_HH
#define DISTDA_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "src/mem/cache.hh"
#include "src/mem/dram.hh"
#include "src/mem/nuca_l3.hh"
#include "src/noc/mesh.hh"

namespace distda::mem
{

/** Whole-hierarchy configuration (defaults reproduce Table III). */
struct HierarchyParams
{
    CacheParams l1;
    CacheParams l2;
    NucaParams l3;
    DramParams dram;
    noc::MeshParams mesh;
    CacheParams acp;

    HierarchyParams();
};

/** The assembled memory system. */
class Hierarchy
{
  public:
    Hierarchy(const HierarchyParams &params, energy::Accountant *acct);

    noc::Mesh &mesh() { return *_mesh; }
    NucaL3 &l3() { return *_l3; }
    Dram &dram() { return *_dram; }
    Cache &l1() { return *_l1; }
    Cache &l2() { return *_l2; }
    Cache &acp(int cluster)
    {
        return *_acps[static_cast<std::size_t>(cluster)];
    }

    /** Host demand access: L1 -> L2 -> L3 -> DRAM. */
    CacheResult hostAccess(Addr addr, std::uint32_t size, bool write,
                           sim::Tick now);

    /** Accelerator access through the cluster-local ACP into the L3. */
    CacheResult accelAccess(Addr addr, std::uint32_t size, bool write,
                            int cluster, sim::Tick now);

    /**
     * Total cache accesses (L1 + L2 + L3 banks + ACPs), the Figure 8
     * metric.
     */
    double cacheAccesses() const;

    void exportStats(stats::Group &group) const;
    void reset();

    /**
     * Wire a per-run timeline probe through the whole memory system:
     * host L1/L2 tracks at the host cluster, one ACP track per
     * cluster, one track per L3 bank, and the mesh's per-node packet
     * tracks. Call once per run, before simulation starts.
     */
    void attachProbe(sim::Probe &probe);

  private:
    /**
     * Stable storage for the caches' non-owning Downstream views: one
     * adapter per edge in the hierarchy graph, owned alongside the
     * caches that point at it.
     */
    struct L3Down
    {
        NucaL3 *l3 = nullptr;
        int node = 0;
        TrafficTag tag{};
        sim::Tick operator()(Addr a, bool w, sim::Tick t) const;
    };
    struct CacheDown
    {
        Cache *next = nullptr;
        sim::Tick operator()(Addr a, bool w, sim::Tick t) const;
    };

    std::unique_ptr<noc::Mesh> _mesh;
    std::unique_ptr<Dram> _dram;
    std::unique_ptr<NucaL3> _l3;
    L3Down _l2Down;
    CacheDown _l1Down;
    std::vector<L3Down> _acpDowns;
    std::unique_ptr<Cache> _l2;
    std::unique_ptr<Cache> _l1;
    std::vector<std::unique_ptr<Cache>> _acps;
};

} // namespace distda::mem

#endif // DISTDA_MEM_HIERARCHY_HH
