/**
 * @file
 * Slab allocator for accelerator-visible memory (paper §IV-D): a large
 * contiguous region is pre-mapped for accelerator-accessible data
 * structures so that translations are per-object instead of per-page.
 *
 * Small requests are served from power-of-two slab classes with free
 * lists; large requests take contiguous ranges from a bump region.
 */

#ifndef DISTDA_MEM_SLAB_ALLOCATOR_HH
#define DISTDA_MEM_SLAB_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/mem/addr.hh"

namespace distda::mem
{

/** One live allocation. */
struct Allocation
{
    Addr base = 0;
    std::uint64_t bytes = 0;
    std::string name;
};

/** Slab allocator over one contiguous accelerator-visible arena. */
class SlabAllocator
{
  public:
    /** Manage [base, base+size). @p base must be line-aligned. */
    SlabAllocator(Addr base, std::uint64_t size);

    /**
     * Allocate @p bytes (rounded up to a slab class or page multiple).
     * @return base address of the allocation.
     */
    Addr allocate(std::uint64_t bytes, const std::string &name);

    /** Free a previous allocation by base address. */
    void free(Addr base);

    /** Look up a live allocation; nullptr when none covers @p addr. */
    const Allocation *find(Addr addr) const;

    /** Number of live allocations. */
    std::size_t liveAllocations() const { return _live.size(); }

    /** Bytes currently handed out (after rounding). */
    std::uint64_t bytesInUse() const { return _bytesInUse; }

    /** Arena base. */
    Addr arenaBase() const { return _base; }

    /** Arena size in bytes. */
    std::uint64_t arenaSize() const { return _size; }

  private:
    static constexpr std::uint64_t minSlab = 4096;
    static constexpr int numClasses = 8; ///< 4KB .. 512KB

    static int classFor(std::uint64_t bytes);
    static std::uint64_t classBytes(int cls);

    Addr _base;
    std::uint64_t _size;
    Addr _bump;
    std::uint64_t _bytesInUse = 0;
    std::vector<std::vector<Addr>> _freeLists;
    std::map<Addr, Allocation> _live;
};

/**
 * Per-object translation table (the "translation block" of Fig 2c):
 * accelerators address data structures by object ID and element offset;
 * this table maps that to physical addresses.
 */
class ObjectTable
{
  public:
    /** Register object @p obj_id at @p base with @p elem_bytes elements. */
    void registerObject(int obj_id, Addr base, std::uint64_t elem_count,
                        std::uint32_t elem_bytes, std::string name);

    /** Remove an object mapping. */
    void unregisterObject(int obj_id);

    /** Physical address of element @p elem_offset of @p obj_id. */
    Addr addrOf(int obj_id, std::uint64_t elem_offset) const;

    /** Element size for an object. */
    std::uint32_t elemBytes(int obj_id) const;

    /** Element count for an object. */
    std::uint64_t elemCount(int obj_id) const;

    /** Base physical address for an object. */
    Addr baseOf(int obj_id) const;

    bool contains(int obj_id) const { return _entries.count(obj_id) > 0; }
    std::size_t size() const { return _entries.size(); }

  private:
    struct Entry
    {
        Addr base;
        std::uint64_t elemCount;
        std::uint32_t elemBytes;
        std::string name;
    };
    const Entry &entry(int obj_id) const;
    std::map<int, Entry> _entries;
};

} // namespace distda::mem

#endif // DISTDA_MEM_SLAB_ALLOCATOR_HH
