/**
 * @file
 * Set-associative write-back cache with LRU replacement, a finite-MSHR
 * occupancy model and an optional stride prefetcher (Table III gives
 * the L2 a stride prefetcher).
 *
 * The cache is functional-with-timing: tags are tracked exactly so hit
 * and miss counts (and therefore data-movement numbers) are real, and
 * latency is accumulated along the walk through lower levels. MSHRs
 * bound the memory-level parallelism: a miss occupies the
 * earliest-free MSHR and queues when all are busy.
 */

#ifndef DISTDA_MEM_CACHE_HH
#define DISTDA_MEM_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/energy/energy_model.hh"
#include "src/mem/addr.hh"
#include "src/sim/stats.hh"
#include "src/sim/ticks.hh"

namespace distda::sim
{
class Probe;
} // namespace distda::sim

namespace distda::mem
{

/** Static configuration for one cache. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    int assoc = 8;
    sim::Cycles latencyCycles = 2;
    int mshrs = 8;
    std::uint64_t clockHz = 2'000'000'000ULL;
    bool writeback = true;
    bool stridePrefetch = false;
    int prefetchDegree = 2;
    /**
     * XOR-fold high line bits into the set index. NUCA banks need
     * this: cluster selection consumes page bits, so without hashing
     * only a fraction of a bank's sets would ever be used.
     */
    bool setHash = false;
    energy::Component component = energy::Component::L1;
};

/** Outcome of a single cache access. */
struct CacheResult
{
    bool hit = false;
    sim::Tick latency = 0;
};

/**
 * One cache level. Lower levels are reached through a downstream
 * callback so the same class serves private L1/L2, NUCA L3 banks, the
 * Mono-CA private cache and the ACP front-ends.
 */
class Cache
{
  public:
    /**
     * Downstream line-fill handler: (line_addr, is_write, now) ->
     * latency. Writebacks call it with is_write=true; the returned
     * latency of writebacks is not added to the critical path.
     *
     * A non-owning function-pointer + context view rather than a
     * std::function: every miss and writeback goes through it, and the
     * type-erased call cost was measurable in sweep profiles. The
     * context must outlive the cache; downstreams point at hierarchy
     * components owned alongside the cache itself.
     */
    class Downstream
    {
      public:
        using Fn = sim::Tick (*)(void *, Addr, bool, sim::Tick);

        Downstream() = default;
        Downstream(Fn fn, void *ctx) : _fn(fn), _ctx(ctx) {}

        /** Adapt any callable lvalue; @p f must outlive the cache. */
        template <typename F>
        static Downstream
        of(F &f)
        {
            return Downstream(
                [](void *ctx, Addr a, bool w, sim::Tick t) {
                    return (*static_cast<F *>(ctx))(a, w, t);
                },
                &f);
        }

        sim::Tick
        operator()(Addr a, bool w, sim::Tick t) const
        {
            return _fn(_ctx, a, w, t);
        }

        explicit operator bool() const { return _fn != nullptr; }

      private:
        Fn _fn = nullptr;
        void *_ctx = nullptr;
    };

    Cache(const CacheParams &params, energy::Accountant *acct,
          Downstream downstream);

    const CacheParams &params() const { return _params; }

    /**
     * Access @p size bytes at @p addr. Multi-line requests walk each
     * covered line; the reported latency is the first-word latency plus
     * line-pipelined continuation. Inline so the common single-line
     * request is one direct call into accessLine.
     */
    CacheResult
    access(Addr addr, std::uint32_t size, bool write, sim::Tick now)
    {
        const Addr first = lineAlign(addr);
        const std::uint64_t nlines =
            linesCovering(addr, std::max(size, 1u));

        CacheResult total = accessLine(first, write, now);
        // Subsequent lines of a multi-line request are pipelined; they
        // extend latency only past the first line's completion.
        for (std::uint64_t i = 1; i < nlines; ++i) {
            CacheResult r = accessLine(first + i * lineBytes, write,
                                       now + total.latency);
            total.latency += r.latency;
            total.hit = total.hit && r.hit;
        }
        return total;
    }

    /** True when the line containing @p addr is resident. */
    bool contains(Addr addr) const;

    /** Invalidate every line (accelerator/host scope handoff). */
    void flush(sim::Tick now);

    double accesses() const { return _accesses; }
    double hits() const { return _hits; }
    double misses() const { return _misses; }
    double writebacks() const { return _writebacks; }
    double prefetchesIssued() const { return _prefetches; }
    /** Demand hits whose line was brought in by the prefetcher. */
    double prefetchHits() const { return _prefetchHits; }

    void exportStats(stats::Group &group) const;
    void reset();

    /**
     * Attach a timeline probe: demand misses emit "miss" spans on
     * @p track and sample @p miss_dist with their latency in ticks.
     * Null @p probe detaches; the hot path then pays one pointer test.
     */
    void
    setProbe(sim::Probe *probe, int track,
             stats::Distribution *miss_dist)
    {
        _probe = probe;
        _probeTrack = track;
        _missDist = miss_dist;
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false; ///< filled by the prefetcher, no
                                 ///< demand hit yet
        std::uint64_t lru = 0;
    };

    /** Access one line; returns (hit, latency). */
    CacheResult accessLine(Addr line_addr, bool write, sim::Tick now);

    /** Fill @p line_addr, evicting as needed; returns fill latency. */
    sim::Tick fill(Addr line_addr, bool dirty, sim::Tick now,
                   bool count_demand);

    /** Fill into a pre-selected victim way (no victim scan). */
    sim::Tick fillVictim(Line *victim, Addr line_addr, bool dirty,
                         sim::Tick now, bool count_demand);

    std::size_t setIndex(Addr line_addr) const;
    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;

    /** Train the stride prefetcher and issue prefetch fills. */
    void prefetch(Addr line_addr, sim::Tick now);

    CacheParams _params;
    energy::Accountant *_acct;
    Downstream _downstream;
    sim::ClockDomain _clock;
    std::size_t _numSets;
    /** _numSets - 1 when the set count is a power of two, else 0. */
    std::size_t _setMask;
    sim::Tick _tagLat; ///< tag/hit latency in ticks, fixed per cache
    std::vector<Line> _lines;          ///< numSets * assoc entries
    std::vector<sim::Tick> _mshrFree;  ///< next-free ticks, min-heap
    std::uint64_t _lruTick = 0;
    /**
     * One-entry MRU filter in front of the tag walk: sequential
     * streams hit the same line repeatedly, so most lookups resolve
     * with one compare. Tags are full line numbers (unique across the
     * cache) and _lines never reallocates, so a stale pointer
     * self-invalidates via the valid+tag check.
     */
    Line *_mru = nullptr;

    struct StrideEntry
    {
        std::uint64_t region = ~0ULL;
        std::int64_t lastLine = 0;
        std::int64_t stride = 0;
        int confidence = 0;
    };
    std::vector<StrideEntry> _strideTable;

    double _accesses = 0, _hits = 0, _misses = 0, _writebacks = 0;
    double _prefetches = 0, _prefetchHits = 0;

    sim::Probe *_probe = nullptr;
    int _probeTrack = -1;
    stats::Distribution *_missDist = nullptr;
};

} // namespace distda::mem

#endif // DISTDA_MEM_CACHE_HH
