#include "src/mem/dram.hh"

#include <algorithm>

#include "src/sim/logging.hh"

namespace distda::mem
{

Dram::Dram(const DramParams &params, energy::Accountant *acct)
    : _params(params), _acct(acct),
      _openRow(static_cast<std::size_t>(params.banks), -1),
      _bankBusyUntil(static_cast<std::size_t>(params.banks), 0)
{
    if (params.banks < 1)
        fatal("dram needs at least one bank");
}

sim::Tick
Dram::access(Addr addr, bool write, sim::Tick now)
{
    const std::int64_t row =
        static_cast<std::int64_t>(addr / _params.rowBytes);
    const auto bank =
        static_cast<std::size_t>(row % _params.banks);

    sim::Tick start = std::max(now, _bankBusyUntil[bank]);
    sim::Tick access_lat = 0;
    if (_openRow[bank] == row) {
        access_lat = _params.tCl;
        _rowHits += 1.0;
    } else {
        access_lat = _params.tRp + _params.tRcd + _params.tCl;
        _rowMisses += 1.0;
        _openRow[bank] = row;
    }

    // Line transfer over the shared bus.
    const auto xfer = static_cast<sim::Tick>(
        static_cast<double>(lineBytes) / _params.busBytesPerNs * 1000.0);
    sim::Tick bus_start = std::max(start + access_lat, _busBusyUntil);
    sim::Tick done = bus_start + xfer;

    _bankBusyUntil[bank] = start + access_lat;
    _busBusyUntil = done;

    if (write)
        _writes += 1.0;
    else
        _reads += 1.0;
    if (_acct)
        _acct->addEvents(energy::Component::Dram, 1.0);

    return done - now;
}

void
Dram::exportStats(stats::Group &group) const
{
    group.add("dram.reads") = _reads;
    group.add("dram.writes") = _writes;
    group.add("dram.row_hits") = _rowHits;
    group.add("dram.row_misses") = _rowMisses;
}

void
Dram::reset()
{
    std::fill(_openRow.begin(), _openRow.end(), -1);
    std::fill(_bankBusyUntil.begin(), _bankBusyUntil.end(), 0);
    _busBusyUntil = 0;
    _reads = _writes = _rowHits = _rowMisses = 0;
}

} // namespace distda::mem
