#include "src/mem/slab_allocator.hh"

#include "src/sim/logging.hh"

namespace distda::mem
{

SlabAllocator::SlabAllocator(Addr base, std::uint64_t size)
    : _base(base), _size(size), _bump(base),
      _freeLists(static_cast<std::size_t>(numClasses))
{
    if (base % lineBytes != 0)
        fatal("slab arena base must be line-aligned");
    if (size < minSlab)
        fatal("slab arena too small");
}

int
SlabAllocator::classFor(std::uint64_t bytes)
{
    std::uint64_t sz = minSlab;
    for (int cls = 0; cls < numClasses; ++cls) {
        if (bytes <= sz)
            return cls;
        sz *= 2;
    }
    return -1; // large allocation
}

std::uint64_t
SlabAllocator::classBytes(int cls)
{
    return minSlab << cls;
}

Addr
SlabAllocator::allocate(std::uint64_t bytes, const std::string &name)
{
    if (bytes == 0)
        fatal("zero-byte allocation '%s'", name.c_str());
    // Reject before rounding: for bytes within minSlab of UINT64_MAX
    // the round-up below would wrap and hand out a tiny range aliasing
    // a later allocation instead of failing.
    if (bytes > _size)
        fatal("allocation '%s' of %llu bytes exceeds the %llu-byte arena",
              name.c_str(), static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(_size));

    const int cls = classFor(bytes);
    std::uint64_t rounded;
    Addr addr;

    if (cls >= 0 && !_freeLists[static_cast<std::size_t>(cls)].empty()) {
        auto &fl = _freeLists[static_cast<std::size_t>(cls)];
        addr = fl.back();
        fl.pop_back();
        rounded = classBytes(cls);
    } else {
        rounded = (cls >= 0)
                      ? classBytes(cls)
                      : ((bytes + minSlab - 1) / minSlab) * minSlab;
        if (_bump + rounded > _base + _size)
            fatal("slab arena exhausted allocating %llu bytes for '%s'",
                  static_cast<unsigned long long>(bytes), name.c_str());
        addr = _bump;
        // Page coloring: stagger consecutive allocations by one page
        // so power-of-two-sized objects do not all anchor to the same
        // NUCA cluster under page interleaving.
        _bump += rounded + minSlab;
    }

    _live[addr] = Allocation{addr, rounded, name};
    _bytesInUse += rounded;
    return addr;
}

void
SlabAllocator::free(Addr base)
{
    auto it = _live.find(base);
    if (it == _live.end())
        panic("slab free of unknown address 0x%llx",
              static_cast<unsigned long long>(base));
    const std::uint64_t bytes = it->second.bytes;
    _bytesInUse -= bytes;
    const int cls = classFor(bytes);
    if (cls >= 0 && classBytes(cls) == bytes)
        _freeLists[static_cast<std::size_t>(cls)].push_back(base);
    // Large ranges are not recycled (arena is sized for the workload).
    _live.erase(it);
}

const Allocation *
SlabAllocator::find(Addr addr) const
{
    auto it = _live.upper_bound(addr);
    if (it == _live.begin())
        return nullptr;
    --it;
    const Allocation &a = it->second;
    if (addr >= a.base && addr < a.base + a.bytes)
        return &a;
    return nullptr;
}

void
ObjectTable::registerObject(int obj_id, Addr base, std::uint64_t elem_count,
                            std::uint32_t elem_bytes, std::string name)
{
    _entries[obj_id] = Entry{base, elem_count, elem_bytes, std::move(name)};
}

void
ObjectTable::unregisterObject(int obj_id)
{
    _entries.erase(obj_id);
}

const ObjectTable::Entry &
ObjectTable::entry(int obj_id) const
{
    auto it = _entries.find(obj_id);
    if (it == _entries.end())
        panic("object %d not registered in translation table", obj_id);
    return it->second;
}

Addr
ObjectTable::addrOf(int obj_id, std::uint64_t elem_offset) const
{
    const Entry &e = entry(obj_id);
    DISTDA_ASSERT(elem_offset < e.elemCount,
                  "object %d offset %llu out of %llu", obj_id,
                  static_cast<unsigned long long>(elem_offset),
                  static_cast<unsigned long long>(e.elemCount));
    return e.base + elem_offset * e.elemBytes;
}

std::uint32_t
ObjectTable::elemBytes(int obj_id) const
{
    return entry(obj_id).elemBytes;
}

std::uint64_t
ObjectTable::elemCount(int obj_id) const
{
    return entry(obj_id).elemCount;
}

Addr
ObjectTable::baseOf(int obj_id) const
{
    return entry(obj_id).base;
}

} // namespace distda::mem
