/**
 * @file
 * LPDDR main-memory model (Table III: "LPDDR 2GB").
 *
 * Models per-bank row buffers (open-page policy), bank busy times and a
 * shared data bus; latencies follow typical LPDDR4-class timings. All
 * requests are cache-line (64B) granularity.
 */

#ifndef DISTDA_MEM_DRAM_HH
#define DISTDA_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "src/energy/energy_model.hh"
#include "src/mem/addr.hh"
#include "src/sim/stats.hh"
#include "src/sim/ticks.hh"

namespace distda::mem
{

/** DRAM timing/geometry parameters. */
struct DramParams
{
    std::uint64_t capacityBytes = 2ULL << 30; ///< 2GB
    int banks = 8;
    std::uint32_t rowBytes = 2048;
    sim::Tick tRcd = 18'000;  ///< row activate, ps
    sim::Tick tRp = 18'000;   ///< precharge, ps
    sim::Tick tCl = 15'000;   ///< CAS, ps
    double busBytesPerNs = 12.8; ///< shared data bus bandwidth
};

/** Open-page LPDDR model. */
class Dram
{
  public:
    Dram(const DramParams &params, energy::Accountant *acct);

    /**
     * Access one 64B line at @p addr.
     * @return total latency in ticks from @p now.
     */
    sim::Tick access(Addr addr, bool write, sim::Tick now);

    double reads() const { return _reads; }
    double writes() const { return _writes; }
    double rowHits() const { return _rowHits; }
    double rowMisses() const { return _rowMisses; }

    void exportStats(stats::Group &group) const;
    void reset();

  private:
    DramParams _params;
    energy::Accountant *_acct;
    std::vector<std::int64_t> _openRow;  ///< per-bank open row (-1 none)
    std::vector<sim::Tick> _bankBusyUntil;
    sim::Tick _busBusyUntil = 0;
    double _reads = 0, _writes = 0, _rowHits = 0, _rowMisses = 0;
};

} // namespace distda::mem

#endif // DISTDA_MEM_DRAM_HH
