/**
 * @file
 * Channel-graph liveness: checks the SSIV-B decoupling contract on the
 * actor/channel graph implied by the partition plan. Per channel, the
 * producer and consumer must agree on the per-iteration token count
 * (otherwise occupancy drifts until the FIFO wedges or starves); no
 * channel may have zero capacity; and the per-iteration channel-op
 * dependence graph (program order within each partition, plus
 * produce -> consume across each channel) must be acyclic — a cycle
 * means every involved actor waits on another before it would ever
 * produce, a first-iteration deadlock no FIFO depth can fix.
 */

#include <map>
#include <vector>

#include "src/verify/checks.hh"

namespace distda::verify
{

using compiler::ChannelDef;
using compiler::MicroInst;
using compiler::MicroKind;
using compiler::OffloadPlan;
using compiler::Partition;

namespace
{

constexpr const char *passName = "channels";

/** One channel endpoint operation in some partition's program. */
struct ChanOp
{
    int partition = -1;
    std::size_t pc = 0;
    int channel = -1;
    bool isProduce = false;
};

/** Channel-op list per partition, in program order. */
std::vector<std::vector<ChanOp>>
collectOps(const OffloadPlan &plan)
{
    std::vector<std::vector<ChanOp>> ops(plan.partitions.size());
    for (const Partition &part : plan.partitions) {
        for (std::size_t pc = 0; pc < part.program.insts.size(); ++pc) {
            const MicroInst &inst = part.program.insts[pc];
            if (inst.kind != MicroKind::Consume &&
                inst.kind != MicroKind::Produce)
                continue;
            ChanOp op;
            op.partition = part.id;
            op.pc = pc;
            op.isProduce = inst.kind == MicroKind::Produce;
            const auto &table =
                op.isProduce ? part.outChannels : part.inChannels;
            if (inst.slot >= 0 &&
                inst.slot < static_cast<int>(table.size()))
                op.channel = table[static_cast<std::size_t>(inst.slot)];
            if (op.channel >= 0 &&
                op.channel >= static_cast<int>(plan.channels.size()))
                op.channel = -1; // bad slot: microcode pass reports it
            if (part.id >= 0 &&
                part.id < static_cast<int>(ops.size()))
                ops[static_cast<std::size_t>(part.id)].push_back(op);
        }
    }
    return ops;
}

void
checkTokenBalance(const OffloadPlan &plan,
                  const std::vector<std::vector<ChanOp>> &ops,
                  Report &report)
{
    std::vector<int> produced(plan.channels.size(), 0);
    std::vector<int> consumed(plan.channels.size(), 0);
    for (const auto &part_ops : ops) {
        for (const ChanOp &op : part_ops) {
            if (op.channel < 0)
                continue;
            auto &count = op.isProduce ? produced : consumed;
            ++count[static_cast<std::size_t>(op.channel)];
        }
    }
    for (const ChannelDef &ch : plan.channels) {
        if (ch.id < 0 || ch.id >= static_cast<int>(produced.size()))
            continue;
        const int p = produced[static_cast<std::size_t>(ch.id)];
        const int c = consumed[static_cast<std::size_t>(ch.id)];
        if (ch.dstPartition < 0) {
            // Host-consumed channel: only the producer side is
            // microcode; the host drains it via cp_consume.
            continue;
        }
        if (p == 0 && c == 0) {
            report.add(Severity::Warning, passName, kernelLoc(plan),
                       "channel %d (partition %d -> %d) is never "
                       "produced or consumed",
                       ch.id, ch.srcPartition, ch.dstPartition);
        } else if (p != c) {
            report.add(Severity::Error, passName, kernelLoc(plan),
                       "channel %d (partition %d -> %d) produce/consume "
                       "count mismatch: %d produced vs %d consumed per "
                       "iteration",
                       ch.id, ch.srcPartition, ch.dstPartition, p, c);
        }
    }
}

void
checkDependenceCycles(const OffloadPlan &plan,
                      const std::vector<std::vector<ChanOp>> &ops,
                      Report &report)
{
    // Node ids: flatten the per-partition op lists.
    std::vector<const ChanOp *> nodes;
    std::vector<std::vector<int>> succ;
    std::map<std::pair<int, std::size_t>, int> id_of;
    for (const auto &part_ops : ops) {
        for (const ChanOp &op : part_ops) {
            id_of[{op.partition, op.pc}] =
                static_cast<int>(nodes.size());
            nodes.push_back(&op);
        }
    }
    succ.resize(nodes.size());

    // Program order: an op depends on its predecessor completing.
    for (const auto &part_ops : ops) {
        for (std::size_t i = 1; i < part_ops.size(); ++i) {
            succ[static_cast<std::size_t>(id_of[{part_ops[i - 1].partition,
                                                 part_ops[i - 1].pc}])]
                .push_back(id_of[{part_ops[i].partition,
                                  part_ops[i].pc}]);
        }
    }
    // Data: the first consume of a channel waits on its first produce.
    std::map<int, int> first_produce, first_consume;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const ChanOp &op = *nodes[i];
        if (op.channel < 0)
            continue;
        auto &table = op.isProduce ? first_produce : first_consume;
        if (!table.count(op.channel))
            table[op.channel] = static_cast<int>(i);
    }
    for (const auto &[ch, prod] : first_produce) {
        auto it = first_consume.find(ch);
        if (it != first_consume.end())
            succ[static_cast<std::size_t>(prod)].push_back(it->second);
    }

    // Iterative DFS cycle detection (colors: 0 white, 1 grey, 2 black).
    std::vector<int> color(nodes.size(), 0);
    std::vector<int> stack;
    for (std::size_t root = 0; root < nodes.size(); ++root) {
        if (color[root] != 0)
            continue;
        stack.push_back(static_cast<int>(root));
        while (!stack.empty()) {
            const int v = stack.back();
            if (color[static_cast<std::size_t>(v)] == 0) {
                color[static_cast<std::size_t>(v)] = 1;
                for (int w : succ[static_cast<std::size_t>(v)]) {
                    if (color[static_cast<std::size_t>(w)] == 1) {
                        report.add(
                            Severity::Error, passName,
                            partLoc(plan, nodes[static_cast<std::size_t>(
                                                    w)]
                                              ->partition),
                            "channel-dependence cycle: partitions wait "
                            "on each other before any token is "
                            "produced (first-iteration deadlock)");
                        return;
                    }
                    if (color[static_cast<std::size_t>(w)] == 0)
                        stack.push_back(w);
                }
            } else {
                color[static_cast<std::size_t>(v)] = 2;
                stack.pop_back();
            }
        }
    }
}

} // namespace

void
checkChannels(const OffloadPlan &plan, const Options &opts,
              Report &report)
{
    if (!plan.channels.empty() && opts.channelCapacity <= 0) {
        report.add(Severity::Error, passName, kernelLoc(plan),
                   "%zu channels with zero decoupling capacity: every "
                   "produce blocks forever",
                   plan.channels.size());
    }
    const auto ops = collectOps(plan);
    checkTokenBalance(plan, ops, report);
    checkDependenceCycles(plan, ops, report);
}

} // namespace distda::verify
