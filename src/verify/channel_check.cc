/**
 * @file
 * Channel-graph liveness: checks the SSIV-B decoupling contract on the
 * actor/channel graph implied by the partition plan. Per channel, the
 * producer and consumer must agree on the per-iteration token count
 * (otherwise occupancy drifts until the FIFO wedges or starves); no
 * channel may have zero capacity; and the marked-graph model of the
 * channel ops (src/verify/token_graph.hh) must be live — a zero-token
 * cycle through program-order and data edges alone is a
 * first-iteration deadlock no FIFO depth can fix, while a cycle that
 * closes only through a capacity back-edge means the configured
 * decoupling depth is too shallow for this plan's token schedule.
 */

#include "src/verify/checks.hh"
#include "src/verify/token_graph.hh"

namespace distda::verify
{

using compiler::ChannelDef;
using compiler::OffloadPlan;

namespace
{

constexpr const char *passName = "channels";

void
checkTokenBalance(const OffloadPlan &plan,
                  const std::vector<std::vector<ChanOp>> &ops,
                  Report &report)
{
    std::vector<int> produced(plan.channels.size(), 0);
    std::vector<int> consumed(plan.channels.size(), 0);
    for (const auto &part_ops : ops) {
        for (const ChanOp &op : part_ops) {
            if (op.channel < 0)
                continue;
            auto &count = op.isProduce ? produced : consumed;
            ++count[static_cast<std::size_t>(op.channel)];
        }
    }
    for (const ChannelDef &ch : plan.channels) {
        if (ch.id < 0 || ch.id >= static_cast<int>(produced.size()))
            continue;
        const int p = produced[static_cast<std::size_t>(ch.id)];
        const int c = consumed[static_cast<std::size_t>(ch.id)];
        if (ch.dstPartition < 0) {
            // Host-consumed channel: only the producer side is
            // microcode; the host drains it via cp_consume.
            continue;
        }
        if (p == 0 && c == 0) {
            report.add(Severity::Warning, passName, kernelLoc(plan),
                       "channel %d (partition %d -> %d) is never "
                       "produced or consumed",
                       ch.id, ch.srcPartition, ch.dstPartition);
        } else if (p != c) {
            report.add(Severity::Error, passName, kernelLoc(plan),
                       "channel %d (partition %d -> %d) produce/consume "
                       "count mismatch: %d produced vs %d consumed per "
                       "iteration",
                       ch.id, ch.srcPartition, ch.dstPartition, p, c);
        }
    }
}

void
checkLiveness(const OffloadPlan &plan, const Options &opts,
              Report &report)
{
    const TokenGraph graph(plan);
    int partition = -1;
    if (graph.structuralDeadlock(&partition)) {
        report.add(Severity::Error, passName, partLoc(plan, partition),
                   "channel-dependence cycle: partitions wait "
                   "on each other before any token is "
                   "produced (first-iteration deadlock)");
        return;
    }
    if (!graph.balanced())
        return; // token-balance errors already explain the drift
    std::vector<int> caps(plan.channels.size(), opts.channelCapacity);
    int channel = -1;
    if (graph.deadlocksWith(caps, &channel)) {
        const int need =
            channel >= 0 ? graph.minSafeCapacity(channel) : -1;
        report.add(Severity::Error, passName, kernelLoc(plan),
                   "channel-dependence cycle under capacity %d "
                   "(capacity deadlock): channel %d needs capacity "
                   ">= %d",
                   opts.channelCapacity, channel, need);
    }
}

} // namespace

void
checkChannels(const OffloadPlan &plan, const Options &opts,
              Report &report)
{
    if (!plan.channels.empty() && opts.channelCapacity <= 0) {
        report.add(Severity::Error, passName, kernelLoc(plan),
                   "%zu channels with zero decoupling capacity: every "
                   "produce blocks forever",
                   plan.channels.size());
        return; // the liveness model degenerates at capacity zero
    }
    const auto ops = collectChannelOps(plan);
    checkTokenBalance(plan, ops, report);
    checkLiveness(plan, opts, report);
}

} // namespace distda::verify
