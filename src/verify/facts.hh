/**
 * @file
 * The shared fact store of the plan-analysis framework: every analysis
 * (bounds, channel liveness, purity, interference) deposits structured,
 * machine-checkable facts about one compiled plan here. Facts carry a
 * three-valued verdict — Proven facts are load-bearing (the optimizer
 * and the parallel simulator may act on them), Violated facts are
 * guaranteed failures, Unknown is the sound default — and serialize
 * into the run-report JSON so tooling and the differential fuzzer's
 * soundness oracle can cross-check them against dynamic observation.
 */

#ifndef DISTDA_VERIFY_FACTS_HH
#define DISTDA_VERIFY_FACTS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace distda::sim
{
class JsonWriter;
}

namespace distda::verify
{

/** Three-valued analysis verdict (the fact lattice's top/bottom). */
enum class Verdict : std::uint8_t
{
    Proven,   ///< holds on every execution consistent with the profile
    Unknown,  ///< analysis could not decide; assume nothing
    Violated, ///< fails on every execution consistent with the profile
};

const char *verdictName(Verdict v);

/** Bounds fact for one access (one accessor of one partition). */
struct BoundsFact
{
    int node = -1;      ///< originating DFG access node
    int partition = -1;
    int objId = -1;
    bool affine = true; ///< affine stream vs indirect random access
    bool store = false;
    Verdict verdict = Verdict::Unknown;
    /** Abstract element-index range (valid when rangeKnown). */
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    bool rangeKnown = false;
    /** Element count the range was checked against. */
    std::uint64_t objectElems = 0;
};

/** Token-flow fact for one channel. */
struct ChannelFact
{
    int channel = -1;
    int tokensPerIter = 0;
    /**
     * Smallest FIFO capacity at which this channel (others unbounded)
     * is steady-state live; -1 when no finite capacity suffices or the
     * channel graph was malformed.
     */
    int minSafeCapacity = -1;
    int configuredCapacity = 0;
};

/** Invocation purity classification (the memoization lattice). */
enum class PurityClass : std::uint8_t
{
    Pure,       ///< reads objects, writes none; outputs via carries only
    Idempotent, ///< writes only objects it never reads
    Stateful,   ///< reads an object it also writes
};

const char *purityClassName(PurityClass c);

struct PurityFact
{
    PurityClass cls = PurityClass::Stateful;
    /**
     * True when re-invocation with identical inputs is provably
     * byte-equivalent to a cache hit: Pure or Idempotent, and no
     * observed invocation aliased two object bindings.
     */
    bool memoizable = false;
    std::vector<int> readObjects;    ///< kernel object ids loaded
    std::vector<int> writtenObjects; ///< kernel object ids stored
};

/** Cluster-interference fact: who can affect whom, and how fast. */
struct InterferenceFact
{
    int numPartitions = 0;
    /** Row-major numPartitions^2 may-interact matrix (reflexive). */
    std::vector<std::uint8_t> interacts;
    /** Number of connected components of the channel graph. */
    int components = 0;
    /**
     * Conservative lookahead window for a cluster-partitioned parallel
     * simulator: no cross-cluster effect propagates in fewer ticks
     * than this (min mesh hop + serialization). 0 when unbounded.
     */
    std::uint64_t lookaheadTicks = 0;
    /** True when no channel crosses partitions at all. */
    bool lookaheadUnbounded = false;

    bool
    mayInteract(int a, int b) const
    {
        if (a < 0 || b < 0 || a >= numPartitions || b >= numPartitions)
            return true; // conservative on bad indices
        return interacts[static_cast<std::size_t>(a * numPartitions + b)]
               != 0;
    }
};

/** Everything the analyses proved about one compiled plan. */
struct FactStore
{
    std::string kernel;
    std::vector<BoundsFact> bounds;
    Verdict deadlockFree = Verdict::Unknown;
    std::vector<ChannelFact> channels;
    PurityFact purity;
    InterferenceFact interference;

    /** Count of bounds facts with the given verdict. */
    int boundsCount(Verdict v) const;
    /** Total count of Violated facts across every analysis. */
    int violations() const;

    /** Serialize as one JSON object (keys up through interference). */
    void json(sim::JsonWriter &w) const;
    /** Human-readable multi-line summary. */
    std::string str() const;
};

} // namespace distda::verify

#endif // DISTDA_VERIFY_FACTS_HH
