/**
 * @file
 * Structured diagnostics for the static verification layer: every
 * finding carries the pass that produced it, a severity, a location
 * string (kernel/partition/instruction) and a human-readable message,
 * so callers can both pretty-print reports and assert on individual
 * findings in tests.
 */

#ifndef DISTDA_VERIFY_DIAG_HH
#define DISTDA_VERIFY_DIAG_HH

#include <string>
#include <vector>

namespace distda::verify
{

/** How bad one finding is. */
enum class Severity : std::uint8_t
{
    Warning, ///< smell: plan runs, but something looks wasteful/dead
    Error,   ///< invariant violation: running this plan is unsafe
};

const char *severityName(Severity s);

/** One finding of one verification pass. */
struct Diag
{
    Severity severity = Severity::Error;
    std::string pass;     ///< producing pass, e.g. "microcode"
    std::string location; ///< e.g. "kernel 'fdt' partition 2 inst 5"
    std::string message;

    /** "error [microcode] kernel 'x' partition 2 inst 5: ..." */
    std::string str() const;
};

/** The collected findings of one verification run. */
class Report
{
  public:
    /** Append a finding (printf-formatted message). */
    void add(Severity severity, const std::string &pass,
             const std::string &location, const char *fmt, ...)
        __attribute__((format(printf, 5, 6)));

    const std::vector<Diag> &diags() const { return _diags; }
    bool empty() const { return _diags.empty(); }

    int errorCount() const;
    int warningCount() const;
    bool ok() const { return errorCount() == 0; }

    /** True when some diagnostic's message contains @p needle. */
    bool mentions(const std::string &needle) const;
    /** True when pass @p pass produced at least one error. */
    bool hasErrorFrom(const std::string &pass) const;

    /** All findings, one per line. */
    std::string str() const;

  private:
    std::vector<Diag> _diags;
};

} // namespace distda::verify

#endif // DISTDA_VERIFY_DIAG_HH
