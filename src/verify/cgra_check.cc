/**
 * @file
 * CGRA mapping legality: when the plan will run on a fabric substrate,
 * every instruction's FU class must be provisioned on the target
 * fabric, the static mapper must produce a feasible mapping, and the
 * achieved initiation interval must respect both resource (ResMII) and
 * recurrence (RecMII) lower bounds.
 */

#include "src/verify/checks.hh"

namespace distda::verify
{

using compiler::FuClass;
using compiler::MicroInst;
using compiler::OffloadPlan;
using compiler::Partition;

namespace
{

constexpr const char *passName = "cgra";

const char *
fuClassName(FuClass c)
{
    switch (c) {
      case FuClass::Int: return "int";
      case FuClass::Float: return "float";
      case FuClass::Complex: return "complex";
      case FuClass::Mem: return "port (mem)";
      case FuClass::Ctrl: return "port (ctrl)";
      default: return "?";
    }
}

int
fuAvailable(const cgra::CgraParams &fabric, FuClass c)
{
    switch (c) {
      case FuClass::Int: return fabric.intFus;
      case FuClass::Float: return fabric.floatFus;
      case FuClass::Complex: return fabric.complexFus;
      case FuClass::Mem:
      case FuClass::Ctrl: return fabric.portFus;
      default: return 0;
    }
}

} // namespace

void
checkCgra(const OffloadPlan &plan, const Options &opts, Report &report)
{
    if (!opts.checkCgra)
        return;
    for (const Partition &part : plan.partitions) {
        for (std::size_t pc = 0; pc < part.program.insts.size(); ++pc) {
            const MicroInst &inst = part.program.insts[pc];
            const FuClass c = cgra::fuClassOfInst(inst);
            if (fuAvailable(opts.fabric, c) <= 0) {
                report.add(Severity::Error, passName,
                           instLoc(plan, part.id, pc),
                           "needs a %s FU but the %dx%d fabric "
                           "provisions none",
                           fuClassName(c), opts.fabric.rows,
                           opts.fabric.cols);
            }
        }
        const cgra::CgraMapping m =
            cgra::mapProgram(part.program, opts.fabric);
        if (!m.feasible) {
            report.add(Severity::Error, passName, partLoc(plan, part.id),
                       "static mapping onto the %dx%d fabric infeasible",
                       opts.fabric.rows, opts.fabric.cols);
            continue;
        }
        if (m.ii < m.resMii || m.ii < m.recMii) {
            report.add(Severity::Error, passName, partLoc(plan, part.id),
                       "mapping II %d below lower bound "
                       "max(ResMII %d, RecMII %d)",
                       m.ii, m.resMii, m.recMii);
        }
        if (m.opsMapped != static_cast<int>(part.program.insts.size())) {
            report.add(Severity::Error, passName, partLoc(plan, part.id),
                       "mapper placed %d of %zu instructions",
                       m.opsMapped, part.program.insts.size());
        }
        if (m.tilesUsed > opts.fabric.tiles()) {
            report.add(Severity::Error, passName, partLoc(plan, part.id),
                       "mapping claims %d tiles on a %d-tile fabric",
                       m.tilesUsed, opts.fabric.tiles());
        }
    }
}

} // namespace distda::verify
