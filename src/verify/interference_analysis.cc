/**
 * @file
 * Cluster interference/lookahead analysis: partitions the plan's
 * actors into channel-connected components (two clusters in different
 * components can never affect each other within a run) and derives the
 * conservative lookahead window a cluster-partitioned parallel
 * simulator may advance without synchronizing — no cross-cluster
 * effect travels faster than one minimum-latency mesh transfer, i.e.
 * one hop of routing plus the serialization of the smallest channel
 * element.
 */

#include <algorithm>

#include "src/sim/ticks.hh"
#include "src/verify/analysis.hh"

namespace distda::verify
{

using compiler::ChannelDef;
using compiler::OffloadPlan;

namespace
{

int
findRoot(std::vector<int> &parent, int v)
{
    while (parent[static_cast<std::size_t>(v)] != v) {
        parent[static_cast<std::size_t>(v)] =
            parent[static_cast<std::size_t>(
                parent[static_cast<std::size_t>(v)])];
        v = parent[static_cast<std::size_t>(v)];
    }
    return v;
}

} // namespace

void
analyzeInterference(const OffloadPlan &plan, const AnalysisOptions &opts,
                    FactStore &facts)
{
    InterferenceFact f;
    const int n = static_cast<int>(plan.partitions.size());
    f.numPartitions = n;
    f.interacts.assign(static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(n),
                       0);
    if (n == 0) {
        f.components = 0;
        f.lookaheadUnbounded = true;
        facts.interference = f;
        return;
    }

    std::vector<int> parent(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        parent[static_cast<std::size_t>(i)] = i;

    bool any_cross = false;
    std::uint64_t min_elem_bytes = 0;
    for (const ChannelDef &ch : plan.channels) {
        if (ch.srcPartition < 0 || ch.srcPartition >= n ||
            ch.dstPartition < 0 || ch.dstPartition >= n)
            continue; // host endpoints do not couple clusters
        const int a = findRoot(parent, ch.srcPartition);
        const int b = findRoot(parent, ch.dstPartition);
        if (a != b)
            parent[static_cast<std::size_t>(a)] = b;
        const std::uint64_t bytes = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(ch.bits) / 8);
        min_elem_bytes = any_cross
                             ? std::min(min_elem_bytes, bytes)
                             : bytes;
        any_cross = true;
    }

    std::vector<int> roots;
    for (int i = 0; i < n; ++i)
        roots.push_back(findRoot(parent, i));
    std::vector<int> uniq = roots;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    f.components = static_cast<int>(uniq.size());

    for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
            if (a == b || roots[static_cast<std::size_t>(a)] ==
                              roots[static_cast<std::size_t>(b)])
                f.interacts[static_cast<std::size_t>(a * n + b)] = 1;
        }
    }

    if (!any_cross) {
        f.lookaheadUnbounded = true;
        f.lookaheadTicks = 0;
    } else {
        // Fastest possible cross-cluster effect: one mesh hop of
        // routing plus the serialization of the smallest element.
        const std::uint64_t hz = std::max<std::uint64_t>(
            1, opts.mesh.clockHz);
        const sim::Tick period =
            static_cast<sim::Tick>(sim::ticksPerSecond / hz);
        const std::uint64_t link =
            std::max<std::uint64_t>(1, opts.mesh.linkBytes);
        const std::uint64_t flits =
            (min_elem_bytes + link - 1) / link;
        f.lookaheadTicks =
            static_cast<sim::Tick>(opts.mesh.hopCycles) * period +
            flits * period;
    }
    facts.interference = f;
}

} // namespace distda::verify
