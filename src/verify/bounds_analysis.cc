/**
 * @file
 * Value-range/affine bounds analysis: abstract-interprets every
 * partition's microcode over the interval + affine-form domain
 * (src/verify/analysis.hh) and proves each accessor in-bounds across
 * all invocations joined into the profile.
 *
 * Stream (affine) accessors are decided from their declared pattern:
 * against the profile's exact joined per-invocation ranges when one is
 * available (no correlation loss between base offsets and trip
 * counts), else abstractly over the joined parameter/trip intervals.
 * Random (indirect) accessors are decided from the abstract value of
 * their offset register at each LoadIdx/StoreIdx site, computed by a
 * fixpoint over the carry cells (loop feedback within a partition) and
 * channel cells (dataflow between partitions): indices rebuilt from
 * the induction variable or parameters are proven, indices loaded from
 * memory stay Unknown — the sound default.
 */

#include <algorithm>
#include <limits>
#include <map>

#include "src/verify/analysis.hh"

namespace distda::verify
{

using compiler::AccessorDef;
using compiler::AffinePattern;
using compiler::MicroInst;
using compiler::MicroKind;
using compiler::MicroProgram;
using compiler::OffloadPlan;
using compiler::OpCode;
using compiler::Partition;
using compiler::PatternKind;
using compiler::noReg;

namespace
{

/** Joined invocation view the analysis runs against. */
struct ProfileView
{
    Interval trip;                ///< bottom = unknown
    std::vector<Interval> params; ///< missing/bottom = unconstrained
    const InvocationProfile *profile = nullptr;

    explicit ProfileView(const compiler::Kernel &kernel,
                         const AnalysisOptions &opts)
    {
        if (opts.profile && opts.profile->invocations > 0) {
            profile = opts.profile;
            trip = profile->trip;
            params = profile->params;
            return;
        }
        // Static fallback: only a compile-time-constant extent pins
        // the trip count.
        if (kernel.loop.extentParam < 0)
            trip = Interval::exact(kernel.loop.staticExtent);
    }

    std::uint64_t
    objectElems(const compiler::Kernel &kernel, int obj_id) const
    {
        if (profile && obj_id >= 0 &&
            static_cast<std::size_t>(obj_id) <
                profile->objectElems.size() &&
            profile->objectElems[static_cast<std::size_t>(obj_id)] > 0)
            return profile->objectElems[static_cast<std::size_t>(obj_id)];
        for (const compiler::MemObjectDecl &o : kernel.objects) {
            if (o.id == obj_id)
                return o.elemCount;
        }
        return 0;
    }

    Interval
    ivRange() const
    {
        if (trip.isBottom())
            return Interval{0,
                            std::numeric_limits<std::int64_t>::max()};
        if (trip.hi < 1)
            return Interval{}; // the loop body never executes
        return Interval{0, trip.hi - 1};
    }
};

bool
affineIsConstant(const AffineForm &f)
{
    if (!f.known || f.ivCoeff != 0)
        return false;
    return std::all_of(f.paramCoeffs.begin(), f.paramCoeffs.end(),
                       [](std::int64_t c) { return c == 0; });
}

AbstractValue
aluTransfer(const MicroInst &inst,
            const std::vector<AbstractValue> &regs)
{
    auto at = [&](std::uint16_t r) -> AbstractValue {
        if (r == noReg || r >= regs.size())
            return AbstractValue::top();
        return regs[r];
    };
    const AbstractValue a = at(inst.a);
    const AbstractValue b = at(inst.b);
    AbstractValue out = AbstractValue::top();
    switch (inst.op) {
      case OpCode::Mov:
        return a;
      case OpCode::IAdd:
        out.itv = a.itv.add(b.itv);
        out.affine = a.affine.add(b.affine);
        return out;
      case OpCode::ISub:
        out.itv = a.itv.sub(b.itv);
        out.affine = a.affine.sub(b.affine);
        return out;
      case OpCode::IMul:
        out.itv = a.itv.mul(b.itv);
        if (affineIsConstant(b.affine))
            out.affine = a.affine.scale(b.affine.base);
        else if (affineIsConstant(a.affine))
            out.affine = b.affine.scale(a.affine.base);
        return out;
      case OpCode::IMin:
        out.itv = a.itv.minWith(b.itv);
        return out;
      case OpCode::IMax:
        out.itv = a.itv.maxWith(b.itv);
        return out;
      case OpCode::IAbs:
        out.itv = a.itv.absVal();
        return out;
      case OpCode::ICmpLt:
      case OpCode::ICmpLe:
      case OpCode::ICmpEq:
      case OpCode::ICmpNe:
      case OpCode::FCmpLt:
      case OpCode::FCmpLe:
      case OpCode::FCmpEq:
        out.itv = Interval{0, 1};
        return out;
      case OpCode::IRem:
        // a % b lies strictly inside (-|b|, |b|) (truncated division),
        // and is non-negative when a is.
        if (!a.itv.isBottom() && !b.itv.isBottom()) {
            const Interval mag = b.itv.absVal();
            if (mag.hi > 0 && mag.hi !=
                                  std::numeric_limits<std::int64_t>::max()) {
                out.itv = Interval{a.itv.lo >= 0 ? 0 : 1 - mag.hi,
                                   mag.hi - 1};
            }
        }
        return out;
      case OpCode::IAnd:
        if (!a.itv.isBottom() && !b.itv.isBottom() && a.itv.lo >= 0 &&
            b.itv.lo >= 0)
            out.itv = Interval{0, std::min(a.itv.hi, b.itv.hi)};
        return out;
      case OpCode::IShr:
        if (!a.itv.isBottom() && a.itv.lo >= 0)
            out.itv = Interval{0, a.itv.hi};
        return out;
      case OpCode::Select: {
          const AbstractValue t = at(inst.b);
          const AbstractValue f = at(inst.c);
          return t.join(f);
      }
      default:
        // Division, shifts left, bitwise or/xor, and every float op:
        // no useful integer range.
        return AbstractValue::top();
    }
}

/** One abstract execution of a partition's program. */
struct PartitionInterp
{
    PartitionInterp(const Partition &part, const ProfileView &view,
                    std::vector<FixpointCell> &chan_cells,
                    std::vector<FixpointCell> &carry_cells)
        : part(part), view(view), chanCells(chan_cells),
          carryCells(carry_cells)
    {
    }

    const Partition &part;
    const ProfileView &view;
    std::vector<FixpointCell> &chanCells;   ///< by channel id
    std::vector<FixpointCell> &carryCells;  ///< this partition's slots
    bool widen = false;
    bool changed = false;

    /** Offset value joined per accessor slot (final pass only). */
    std::map<int, Interval> *indirectOffsets = nullptr;

    void
    run()
    {
        const MicroProgram &prog = part.program;
        _regs.assign(
            static_cast<std::size_t>(std::max(prog.numRegs, 0)),
            AbstractValue{});
        std::vector<AbstractValue> &regs = _regs;

        auto setReg = [&](std::uint16_t r, const AbstractValue &v) {
            if (r != noReg && r < regs.size())
                regs[r] = v;
        };

        for (const auto &c : prog.constRegs)
            setReg(c.reg, c.isFloat ? AbstractValue::top()
                                    : AbstractValue::exact(c.value.i));
        for (const auto &[param, reg] : prog.paramRegs) {
            AbstractValue v = AbstractValue::top();
            if (param >= 0) {
                if (static_cast<std::size_t>(param) < view.params.size() &&
                    !view.params[static_cast<std::size_t>(param)]
                         .isBottom())
                    v.itv = view.params[static_cast<std::size_t>(param)];
                v.affine =
                    AffineForm::param(static_cast<std::size_t>(param));
            }
            setReg(reg, v);
        }
        if (prog.ivReg != noReg) {
            AbstractValue v;
            v.itv = view.ivRange();
            v.affine = AffineForm::iv();
            setReg(prog.ivReg, v);
        }
        for (std::size_t s = 0; s < prog.carries.size(); ++s)
            setReg(prog.carries[s].reg, carryCells[s].get());

        auto at = [&](std::uint16_t r) -> AbstractValue {
            if (r == noReg || r >= regs.size())
                return AbstractValue::top();
            return regs[r];
        };

        for (const MicroInst &inst : prog.insts) {
            switch (inst.kind) {
              case MicroKind::Alu:
                setReg(inst.dst, aluTransfer(inst, regs));
                break;
              case MicroKind::LoadStream:
              case MicroKind::LoadIdx:
                // Memory contents are outside the domain.
                if (inst.kind == MicroKind::LoadIdx)
                    recordOffset(inst);
                setReg(inst.dst, AbstractValue::top());
                break;
              case MicroKind::StoreStream:
                break;
              case MicroKind::StoreIdx:
                recordOffset(inst);
                break;
              case MicroKind::Consume: {
                  AbstractValue v = AbstractValue::top();
                  const int ch = channelOf(inst, part.inChannels);
                  if (ch >= 0)
                      v = chanCells[static_cast<std::size_t>(ch)].get();
                  setReg(inst.dst, v);
                  break;
              }
              case MicroKind::Produce: {
                  const int ch = channelOf(inst, part.outChannels);
                  if (ch >= 0)
                      changed |= chanCells[static_cast<std::size_t>(ch)]
                                     .joinFrom(at(inst.a), widen);
                  break;
              }
              case MicroKind::CarryWrite:
                if (inst.slot >= 0 &&
                    inst.slot <
                        static_cast<int>(carryCells.size()))
                    changed |=
                        carryCells[static_cast<std::size_t>(inst.slot)]
                            .joinFrom(at(inst.a), widen);
                break;
              default:
                break;
            }
        }
    }

    int
    channelOf(const MicroInst &inst, const std::vector<int> &table) const
    {
        if (inst.slot < 0 ||
            inst.slot >= static_cast<int>(table.size()))
            return -1;
        const int ch = table[static_cast<std::size_t>(inst.slot)];
        if (ch < 0 || ch >= static_cast<int>(chanCells.size()))
            return -1;
        return ch;
    }

    void
    recordOffset(const MicroInst &inst)
    {
        if (!indirectOffsets)
            return;
        AbstractValue off = AbstractValue::top();
        if (inst.a != noReg && inst.a < _regs.size())
            off = _regs[inst.a];
        Interval r = off.itv;
        // An affine offset refines the raw interval: evaluate the
        // relation over the joined parameter/trip view and intersect.
        if (off.affine.known) {
            AffinePattern pat;
            pat.constBase = off.affine.base;
            pat.ivCoeff = off.affine.ivCoeff;
            pat.paramCoeffs = off.affine.paramCoeffs;
            const Interval a =
                affineRangeAbstract(pat, view.params, view.trip);
            if (a.isBottom() || r.isBottom())
                r = Interval{};
            else
                r = Interval{std::max(r.lo, a.lo), std::min(r.hi, a.hi)};
        }
        auto [it, fresh] = indirectOffsets->try_emplace(inst.slot, r);
        if (!fresh)
            it->second = it->second.join(r);
    }

    std::vector<AbstractValue> _regs;
};

BoundsFact
streamFact(const AccessorDef &ad, const compiler::Kernel &kernel,
           int partition, const ProfileView &view)
{
    BoundsFact f;
    f.node = ad.node;
    f.partition = partition;
    f.objId = ad.objId;
    f.affine = true;
    f.store = ad.dir == compiler::AccessDir::Store;
    f.objectElems = view.objectElems(kernel, ad.objId);

    Interval range;
    bool exact = false;
    if (view.profile) {
        const auto it = view.profile->accessRanges.find(ad.node);
        if (it != view.profile->accessRanges.end()) {
            range = it->second;
            exact = true;
        }
    }
    if (!exact)
        range = affineRangeAbstract(ad.affine, view.params, view.trip);

    if (!range.isBottom() && range.lo != std::numeric_limits<
                                             std::int64_t>::min() &&
        range.hi != std::numeric_limits<std::int64_t>::max()) {
        f.rangeKnown = true;
        f.lo = range.lo;
        f.hi = range.hi;
    }
    if (f.objectElems == 0) {
        f.verdict = Verdict::Unknown;
    } else if (range.within(f.objectElems)) {
        f.verdict = Verdict::Proven;
    } else if (exact || range.disjointFrom(f.objectElems)) {
        // Exact profile ranges make any excursion a real fault; an
        // abstract range must miss the object entirely to be certain.
        f.verdict = Verdict::Violated;
    } else {
        f.verdict = Verdict::Unknown;
    }
    return f;
}

} // namespace

void
analyzeBounds(const OffloadPlan &plan, const AnalysisOptions &opts,
              FactStore &facts)
{
    const ProfileView view(plan.kernel, opts);

    // Interprocedural fixpoint over channel and carry cells.
    std::vector<FixpointCell> chanCells(plan.channels.size());
    std::vector<std::vector<FixpointCell>> carryCells(
        plan.partitions.size());
    for (std::size_t p = 0; p < plan.partitions.size(); ++p) {
        const MicroProgram &prog = plan.partitions[p].program;
        carryCells[p].resize(prog.carries.size());
        for (std::size_t s = 0; s < prog.carries.size(); ++s) {
            const compiler::CarrySlot &cs = prog.carries[s];
            carryCells[p][s].seed(cs.isFloat
                                      ? AbstractValue::top()
                                      : AbstractValue::exact(cs.init.i));
        }
    }

    for (int round = 0; round < maxFixpointRounds; ++round) {
        bool changed = false;
        for (std::size_t p = 0; p < plan.partitions.size(); ++p) {
            PartitionInterp interp{plan.partitions[p], view, chanCells,
                                   carryCells[p]};
            interp.widen = round >= wideningDelay;
            interp.run();
            changed = changed || interp.changed;
        }
        if (!changed)
            break;
    }

    // Final pass: collect facts with the converged cells.
    for (std::size_t p = 0; p < plan.partitions.size(); ++p) {
        const Partition &part = plan.partitions[p];
        std::map<int, Interval> offsets;
        PartitionInterp interp{part, view, chanCells, carryCells[p]};
        interp.indirectOffsets = &offsets;
        interp.run();

        for (std::size_t slot = 0; slot < part.accessors.size();
             ++slot) {
            const AccessorDef &ad = part.accessors[slot];
            if (ad.pattern == PatternKind::Affine) {
                facts.bounds.push_back(
                    streamFact(ad, plan.kernel, part.id, view));
                continue;
            }
            BoundsFact f;
            f.node = ad.node;
            f.partition = part.id;
            f.objId = ad.objId;
            f.affine = false;
            f.store = ad.dir == compiler::AccessDir::Store;
            f.objectElems = view.objectElems(plan.kernel, ad.objId);
            const auto it = offsets.find(static_cast<int>(slot));
            const Interval r =
                it != offsets.end() ? it->second : Interval::top();
            if (!r.isBottom() &&
                r.lo != std::numeric_limits<std::int64_t>::min() &&
                r.hi != std::numeric_limits<std::int64_t>::max()) {
                f.rangeKnown = true;
                f.lo = r.lo;
                f.hi = r.hi;
            }
            if (f.objectElems == 0)
                f.verdict = Verdict::Unknown;
            else if (r.within(f.objectElems))
                f.verdict = Verdict::Proven;
            else if (r.disjointFrom(f.objectElems))
                f.verdict = Verdict::Violated;
            else
                f.verdict = Verdict::Unknown;
            facts.bounds.push_back(f);
        }
    }
}

} // namespace distda::verify
