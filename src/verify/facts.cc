#include "src/verify/facts.hh"

#include <sstream>

#include "src/sim/json.hh"

namespace distda::verify
{

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Proven: return "proven";
      case Verdict::Unknown: return "unknown";
      case Verdict::Violated: return "violated";
      default: return "?";
    }
}

const char *
purityClassName(PurityClass c)
{
    switch (c) {
      case PurityClass::Pure: return "pure";
      case PurityClass::Idempotent: return "idempotent";
      case PurityClass::Stateful: return "stateful";
      default: return "?";
    }
}

int
FactStore::boundsCount(Verdict v) const
{
    int n = 0;
    for (const BoundsFact &f : bounds)
        n += f.verdict == v ? 1 : 0;
    return n;
}

int
FactStore::violations() const
{
    int n = boundsCount(Verdict::Violated);
    n += deadlockFree == Verdict::Violated ? 1 : 0;
    return n;
}

void
FactStore::json(sim::JsonWriter &w) const
{
    w.beginObject();
    w.key("kernel").value(kernel);

    w.key("bounds").beginObject();
    w.key("proven").value(boundsCount(Verdict::Proven));
    w.key("unknown").value(boundsCount(Verdict::Unknown));
    w.key("violated").value(boundsCount(Verdict::Violated));
    w.key("accesses").beginArray();
    for (const BoundsFact &f : bounds) {
        w.beginObject();
        w.key("node").value(f.node);
        w.key("partition").value(f.partition);
        w.key("object").value(f.objId);
        w.key("affine").value(f.affine);
        w.key("store").value(f.store);
        w.key("verdict").value(verdictName(f.verdict));
        if (f.rangeKnown) {
            w.key("lo").value(f.lo);
            w.key("hi").value(f.hi);
        }
        w.key("object_elems").value(f.objectElems);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("channels").beginObject();
    w.key("deadlock_free").value(verdictName(deadlockFree));
    w.key("channels").beginArray();
    for (const ChannelFact &f : channels) {
        w.beginObject();
        w.key("id").value(f.channel);
        w.key("tokens_per_iter").value(f.tokensPerIter);
        w.key("min_safe_capacity").value(f.minSafeCapacity);
        w.key("configured_capacity").value(f.configuredCapacity);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("purity").beginObject();
    w.key("class").value(purityClassName(purity.cls));
    w.key("memoizable").value(purity.memoizable);
    w.key("reads").beginArray();
    for (int o : purity.readObjects)
        w.value(o);
    w.endArray();
    w.key("writes").beginArray();
    for (int o : purity.writtenObjects)
        w.value(o);
    w.endArray();
    w.endObject();

    w.key("interference").beginObject();
    w.key("partitions").value(interference.numPartitions);
    w.key("components").value(interference.components);
    w.key("lookahead_ticks").value(interference.lookaheadTicks);
    w.key("lookahead_unbounded").value(interference.lookaheadUnbounded);
    w.key("independent_pairs").beginArray();
    for (int a = 0; a < interference.numPartitions; ++a) {
        for (int b = a + 1; b < interference.numPartitions; ++b) {
            if (interference.mayInteract(a, b))
                continue;
            w.beginArray();
            w.value(a);
            w.value(b);
            w.endArray();
        }
    }
    w.endArray();
    w.endObject();

    w.endObject();
}

std::string
FactStore::str() const
{
    std::ostringstream out;
    out << "kernel '" << kernel << "':\n";
    out << "  bounds: " << boundsCount(Verdict::Proven) << " proven, "
        << boundsCount(Verdict::Unknown) << " unknown, "
        << boundsCount(Verdict::Violated) << " violated of "
        << bounds.size() << " access(es)\n";
    for (const BoundsFact &f : bounds) {
        out << "    node " << f.node << " partition " << f.partition
            << (f.store ? " store " : " load ")
            << (f.affine ? "affine" : "indirect") << " obj "
            << f.objId << ": " << verdictName(f.verdict);
        if (f.rangeKnown)
            out << " [" << f.lo << ", " << f.hi << "] of "
                << f.objectElems;
        out << '\n';
    }
    out << "  channels: deadlock-free " << verdictName(deadlockFree);
    if (!channels.empty()) {
        out << "; min safe capacities";
        for (const ChannelFact &f : channels)
            out << " ch" << f.channel << "=" << f.minSafeCapacity;
    }
    out << '\n';
    out << "  purity: " << purityClassName(purity.cls)
        << (purity.memoizable ? " (memoizable)" : " (not memoizable)")
        << ", reads " << purity.readObjects.size() << ", writes "
        << purity.writtenObjects.size() << " object(s)\n";
    out << "  interference: " << interference.numPartitions
        << " partition(s), " << interference.components
        << " component(s), lookahead ";
    if (interference.lookaheadUnbounded)
        out << "unbounded";
    else
        out << interference.lookaheadTicks << " ticks";
    out << '\n';
    return out.str();
}

} // namespace distda::verify
