/**
 * @file
 * Plan-level abstract interpretation over compiled OffloadPlans: the
 * interval/affine value domain, the invocation profile that closes the
 * analyses over "all invocations" the host actually issued, the
 * fixpoint machinery shared by the analyses, and the analysis registry
 * (bounds, channels, purity, interference) mirroring verify::passes().
 *
 * The soundness contract: a Proven fact holds on every execution
 * consistent with the analysis inputs (the plan, and the profile when
 * one is supplied); a Violated fact fails on every such execution;
 * everything else is Unknown. The differential fuzzer enforces this
 * contract dynamically — any run that contradicts a Proven or Violated
 * fact is a campaign failure (src/fuzz/diff.cc).
 */

#ifndef DISTDA_VERIFY_ANALYSIS_HH
#define DISTDA_VERIFY_ANALYSIS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "src/compiler/plan.hh"
#include "src/noc/mesh.hh"
#include "src/verify/facts.hh"

namespace distda::verify
{

/**
 * A signed integer interval with +/-inf encoded as the int64 extremes
 * and saturating arithmetic, the base lattice of the bounds analysis.
 * Default-constructed intervals are bottom ("no value observed");
 * top() is the unconstrained interval.
 */
struct Interval
{
    std::int64_t lo = 0;
    std::int64_t hi = -1; ///< lo > hi encodes bottom

    static Interval
    exact(std::int64_t v)
    {
        return Interval{v, v};
    }

    static Interval
    of(std::int64_t lo, std::int64_t hi)
    {
        return Interval{lo, hi};
    }

    static Interval top();

    bool isBottom() const { return lo > hi; }
    bool isTop() const;

    bool
    contains(std::int64_t v) const
    {
        return !isBottom() && lo <= v && v <= hi;
    }

    /** True when every value lies in [0, elems). */
    bool within(std::uint64_t elems) const;
    /** True when no value lies in [0, elems). */
    bool disjointFrom(std::uint64_t elems) const;

    Interval join(const Interval &o) const;
    /** Standard widening: escaping bounds jump to +/-inf. */
    Interval widen(const Interval &next) const;

    Interval add(const Interval &o) const;
    Interval sub(const Interval &o) const;
    Interval mul(const Interval &o) const;
    Interval neg() const;
    Interval minWith(const Interval &o) const;
    Interval maxWith(const Interval &o) const;
    Interval absVal() const;

    bool operator==(const Interval &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
    bool operator!=(const Interval &o) const { return !(*this == o); }
};

/**
 * An affine relation c0 + ivCoeff * i + sum_k paramCoeffs[k] * p_k
 * tracked alongside intervals so index computations rebuilt in
 * microcode recover the same precision as declared stream patterns.
 */
struct AffineForm
{
    bool known = false;
    std::int64_t base = 0;
    std::int64_t ivCoeff = 0;
    std::vector<std::int64_t> paramCoeffs;

    static AffineForm constant(std::int64_t v);
    static AffineForm iv();
    static AffineForm param(std::size_t k);

    AffineForm add(const AffineForm &o) const;
    AffineForm sub(const AffineForm &o) const;
    AffineForm scale(std::int64_t c) const;
};

/** One abstract register/channel/carry value. */
struct AbstractValue
{
    Interval itv;      ///< bottom by default
    AffineForm affine; ///< unknown by default

    static AbstractValue top();
    static AbstractValue exact(std::int64_t v);

    AbstractValue join(const AbstractValue &o) const;
    bool operator==(const AbstractValue &o) const;
};

/**
 * Joined observations of every invocation of one kernel, recorded by
 * the driver (ExecContext) or rebuilt from a fuzz case. The analyses
 * interpret "across all invocations" as "across everything joined into
 * this profile"; with no profile they fall back to what the kernel
 * alone implies (static trip counts, declared object shapes).
 */
struct InvocationProfile
{
    std::int64_t invocations = 0;
    bool aliasedBindings = false;
    Interval trip;                ///< joined trip counts
    std::vector<Interval> params; ///< joined per-param integer views
    /** Min bound element count per kernel object id (0 = never bound). */
    std::vector<std::uint64_t> objectElems;
    /** Joined exact per-invocation element ranges per affine access. */
    std::map<int, Interval> accessRanges;

    /**
     * Join one observed invocation: @p param_ints are the parameter
     * words' integer views, @p object_elems the bound array lengths in
     * kernel-object order, @p aliased whether any two bindings overlap.
     */
    void record(const compiler::Kernel &kernel,
                const std::vector<std::int64_t> &param_ints,
                const std::vector<std::uint64_t> &object_elems,
                bool aliased);
};

/** What to analyze against. */
struct AnalysisOptions
{
    /** Decoupling depth the engine instantiates (elements). */
    int channelCapacity = 64;
    /** Per-channel capacity overrides by channel id (empty: uniform). */
    std::vector<int> channelCapacities;
    /** Mesh the clusters sit on (Table III defaults). */
    noc::MeshParams mesh;
    /** Observed invocations; null = static-only analysis. */
    const InvocationProfile *profile = nullptr;

    int capacityOf(int channel) const;
};

/** One registered analysis. */
struct AnalysisPass
{
    const char *name;
    void (*run)(const compiler::OffloadPlan &plan,
                const AnalysisOptions &opts, FactStore &facts);
};

/** All analyses in execution order. */
const std::vector<AnalysisPass> &analyses();

/** Run every analysis over @p plan and collect the facts. */
FactStore analyzePlan(const compiler::OffloadPlan &plan,
                      const AnalysisOptions &opts = AnalysisOptions{});

// The registered analyses (definitions live in one file per analysis).
void analyzeBounds(const compiler::OffloadPlan &plan,
                   const AnalysisOptions &opts, FactStore &facts);
void analyzeChannels(const compiler::OffloadPlan &plan,
                     const AnalysisOptions &opts, FactStore &facts);
void analyzePurity(const compiler::OffloadPlan &plan,
                   const AnalysisOptions &opts, FactStore &facts);
void analyzeInterference(const compiler::OffloadPlan &plan,
                         const AnalysisOptions &opts, FactStore &facts);

/**
 * A join-semilattice cell for the interprocedural fixpoint: channel
 * and carry values are cells, each transfer round joins into them, and
 * the engine iterates until every cell is stable (widening after
 * wideningDelay rounds bounds the iteration count).
 */
class FixpointCell
{
  public:
    const AbstractValue &get() const { return _value; }

    /** Join @p v in; returns true when the cell changed. */
    bool joinFrom(const AbstractValue &v, bool widen);

    /** Seed the cell without marking a change. */
    void seed(const AbstractValue &v) { _value = v; }

  private:
    AbstractValue _value;
};

/** Rounds before widening kicks in. */
constexpr int wideningDelay = 3;
/** Hard iteration bound (widening converges far earlier). */
constexpr int maxFixpointRounds = 64;

/**
 * Exact element range of one affine pattern under per-invocation
 * parameter values @p param_ints and trip count @p trip (>= 1).
 */
Interval affineRangeExact(const compiler::AffinePattern &pattern,
                          const std::vector<std::int64_t> &param_ints,
                          std::int64_t trip);

/**
 * Abstract element range of an affine pattern over parameter
 * intervals and a trip interval (bottom trip = unknown).
 */
Interval affineRangeAbstract(const compiler::AffinePattern &pattern,
                             const std::vector<Interval> &params,
                             const Interval &trip);

} // namespace distda::verify

#endif // DISTDA_VERIFY_ANALYSIS_HH
