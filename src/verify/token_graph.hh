/**
 * @file
 * Marked-graph model of a plan's channel-op structure, shared by the
 * channels verify pass (src/verify/channel_check.cc) and the channel
 * liveness analysis (src/verify/channel_analysis.cc).
 *
 * Nodes are the Produce/Consume micro-ops of every partition; edges
 * carry initial token counts: program order within a partition (zero
 * tokens; the wrap from last op to first carries one token and is
 * therefore never part of a deadlock cycle), the j-th produce of a
 * channel to its j-th consume (zero tokens), and — under a finite
 * FIFO capacity K — a back-edge from a consume to the produce it
 * unblocks, carrying (j' - j + K) / p tokens. By Commoner's theorem a
 * marked graph deadlocks iff some directed cycle carries zero tokens
 * in total, i.e. iff the zero-token edge subgraph has a cycle — which
 * is what this class tests.
 */

#ifndef DISTDA_VERIFY_TOKEN_GRAPH_HH
#define DISTDA_VERIFY_TOKEN_GRAPH_HH

#include <climits>
#include <cstddef>
#include <vector>

#include "src/compiler/plan.hh"

namespace distda::verify
{

/** One channel endpoint operation in some partition's program. */
struct ChanOp
{
    int partition = -1;
    std::size_t pc = 0;
    int channel = -1; ///< -1 for malformed slots (microcode pass reports)
    bool isProduce = false;
};

/** Channel-op list per partition, in program order. */
std::vector<std::vector<ChanOp>>
collectChannelOps(const compiler::OffloadPlan &plan);

/** Sentinel capacity meaning "unbounded FIFO: no back-pressure". */
constexpr int unboundedCapacity = INT_MAX;

class TokenGraph
{
  public:
    explicit TokenGraph(const compiler::OffloadPlan &plan);

    /** True when any partition has channel ops at all. */
    bool hasOps() const { return _numOps > 0; }

    /**
     * True when every inter-partition channel's produce and consume
     * counts match and no op had a malformed slot. Liveness verdicts
     * on an unbalanced graph are meaningless (occupancy drifts).
     */
    bool balanced() const { return _balanced; }

    /** Produce ops per iteration on @p channel (0 when out of range). */
    int tokensPerIter(int channel) const;

    /**
     * Zero-token cycle using only program-order and data edges: the
     * involved actors all wait before ever producing, so no FIFO
     * depth helps. Optionally reports one involved partition.
     */
    bool structuralDeadlock(int *partition = nullptr) const;

    /**
     * Deadlock under per-channel capacities (indexed by channel id;
     * values <= 0 mean a zero-depth FIFO, unboundedCapacity removes
     * the back-pressure edges). Optionally reports one channel whose
     * capacity edge closes the cycle (-1 for a structural cycle).
     */
    bool deadlocksWith(const std::vector<int> &capacities,
                       int *channel = nullptr) const;

    /**
     * Smallest capacity K >= 1 making the graph live when @p channel
     * has capacity K and every other channel is unbounded; -1 when no
     * finite capacity helps (structural deadlock or malformed graph).
     * K never needs to exceed the channel's tokens per iteration.
     */
    int minSafeCapacity(int channel) const;

    std::size_t numChannels() const { return _producers.size(); }

  private:
    struct Edge
    {
        int from;
        int to;
    };

    bool cyclic(const std::vector<std::vector<int>> &succ,
                int *witness) const;

    std::size_t _numOps = 0;
    bool _balanced = true;
    /** Zero-token structural edges (program order + data). */
    std::vector<Edge> _structural;
    /** Per channel: producing op ids in program order. */
    std::vector<std::vector<int>> _producers;
    /** Per channel: consuming op ids in program order. */
    std::vector<std::vector<int>> _consumers;
    /** True when the channel's consumer is the host (dst < 0). */
    std::vector<bool> _hostSink;
    /** Op id -> partition, for diagnostics. */
    std::vector<int> _opPartition;
    /** Op id -> channel, for diagnostics. */
    std::vector<int> _opChannel;
};

} // namespace distda::verify

#endif // DISTDA_VERIFY_TOKEN_GRAPH_HH
