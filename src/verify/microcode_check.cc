/**
 * @file
 * The microcode verifier: validates each partition's straight-line
 * program before the interpreter (or the CGRA's static mapping) ever
 * touches it — register def-before-use dataflow, register indices
 * within the register file, accessor/channel/carry slot bounds against
 * the plan's buffer-allocation table, ALU opcode/operand arity,
 * int/float type propagation through CarrySlots, and the Table VI
 * byteSize() == 8 * insts encoding rule.
 */

#include <vector>

#include "src/verify/checks.hh"

namespace distda::verify
{

using compiler::AccessDir;
using compiler::AccessorDef;
using compiler::CarrySlot;
using compiler::MicroInst;
using compiler::MicroKind;
using compiler::MicroProgram;
using compiler::NodeKind;
using compiler::noReg;
using compiler::OffloadPlan;
using compiler::OpCode;
using compiler::Partition;
using compiler::PatternKind;

namespace
{

constexpr const char *passName = "microcode";

/** Operand arity of an ALU opcode. */
int
aluArity(OpCode op)
{
    switch (op) {
      case OpCode::IAbs:
      case OpCode::FSqrt:
      case OpCode::FAbs:
      case OpCode::FNeg:
      case OpCode::I2F:
      case OpCode::F2I:
      case OpCode::Mov:
        return 1;
      case OpCode::Select:
        return 3;
      default:
        return 2;
    }
}

/** Expected type of value operands (a/b for binary, b/c for Select). */
VType
aluOperandType(OpCode op)
{
    switch (op) {
      case OpCode::FAdd:
      case OpCode::FSub:
      case OpCode::FMul:
      case OpCode::FDiv:
      case OpCode::FSqrt:
      case OpCode::FAbs:
      case OpCode::FMin:
      case OpCode::FMax:
      case OpCode::FNeg:
      case OpCode::FCmpLt:
      case OpCode::FCmpLe:
      case OpCode::FCmpEq:
      case OpCode::F2I:
        return VType::Float;
      case OpCode::Mov:
      case OpCode::Select:
        return VType::Unknown; // polymorphic
      default:
        return VType::Int;
    }
}

/** Result type of an ALU opcode (Unknown for polymorphic ops). */
VType
aluResultType(OpCode op)
{
    if (op == OpCode::Mov || op == OpCode::Select)
        return VType::Unknown;
    return compiler::producesFloat(op) ? VType::Float : VType::Int;
}

/** Per-partition verification state. */
struct ProgState
{
    std::vector<bool> defined;
    std::vector<VType> type;

    explicit ProgState(int num_regs)
        : defined(static_cast<std::size_t>(std::max(num_regs, 0)), false),
          type(static_cast<std::size_t>(std::max(num_regs, 0)),
               VType::Unknown)
    {
    }

    bool
    inRange(std::uint16_t reg) const
    {
        return reg < defined.size();
    }

    void
    define(std::uint16_t reg, VType t)
    {
        if (inRange(reg)) {
            defined[reg] = true;
            type[reg] = t;
        }
    }
};

void
checkPreloads(const OffloadPlan &plan, const Partition &part,
              ProgState &st, Report &report)
{
    const MicroProgram &prog = part.program;
    const std::string loc = partLoc(plan, part.id);

    auto preload = [&](std::uint16_t reg, VType t, const char *what) {
        if (reg >= st.defined.size()) {
            report.add(Severity::Error, passName, loc,
                       "%s register r%u outside register file of %d",
                       what, reg, prog.numRegs);
            return;
        }
        st.define(reg, t);
    };

    for (const auto &c : prog.constRegs)
        preload(c.reg, c.isFloat ? VType::Float : VType::Int, "constant");
    for (const auto &[param, reg] : prog.paramRegs) {
        if (param < 0) {
            report.add(Severity::Error, passName, loc,
                       "negative parameter index %d preloaded", param);
        }
        preload(reg, VType::Unknown, "parameter");
    }
    if (prog.ivReg != noReg)
        preload(prog.ivReg, VType::Int, "induction-variable");

    for (std::size_t i = 0; i < prog.carries.size(); ++i) {
        const CarrySlot &cs = prog.carries[i];
        preload(cs.reg, cs.isFloat ? VType::Float : VType::Int, "carry");
        if (cs.node < 0 ||
            cs.node >= static_cast<int>(plan.kernel.nodes.size()) ||
            plan.kernel.node(cs.node).kind != NodeKind::Carry) {
            report.add(Severity::Error, passName, loc,
                       "carry slot %zu bound to node %d which is not a "
                       "carry node",
                       i, cs.node);
            continue;
        }
        if (plan.kernel.node(cs.node).carryIsFloat != cs.isFloat) {
            report.add(Severity::Error, passName, loc,
                       "carry slot %zu float-ness disagrees with DFG "
                       "node %d",
                       i, cs.node);
        }
    }
}

/** The accessor a stream/random instruction addresses, or null. */
const AccessorDef *
accessorAt(const OffloadPlan &plan, const Partition &part,
           std::size_t pc, const MicroInst &inst, Report &report)
{
    if (inst.slot < 0 ||
        inst.slot >= static_cast<int>(part.accessors.size())) {
        report.add(Severity::Error, passName,
                   instLoc(plan, part.id, pc),
                   "accessor slot %d outside this partition's %zu "
                   "accessors",
                   inst.slot, part.accessors.size());
        return nullptr;
    }
    const AccessorDef &ad =
        part.accessors[static_cast<std::size_t>(inst.slot)];
    const bool wants_stream = inst.kind == MicroKind::LoadStream ||
                              inst.kind == MicroKind::StoreStream;
    if (wants_stream != (ad.pattern == PatternKind::Affine)) {
        report.add(Severity::Error, passName, instLoc(plan, part.id, pc),
                   "%s instruction addresses a %s accessor",
                   wants_stream ? "stream" : "random-access",
                   ad.pattern == PatternKind::Affine ? "stream"
                                                     : "random-access");
        return nullptr;
    }
    const bool wants_load = inst.kind == MicroKind::LoadStream ||
                            inst.kind == MicroKind::LoadIdx;
    if (wants_load != (ad.dir == AccessDir::Load)) {
        report.add(Severity::Error, passName, instLoc(plan, part.id, pc),
                   "%s instruction addresses a %s accessor",
                   wants_load ? "load" : "store",
                   ad.dir == AccessDir::Load ? "load" : "store");
        return nullptr;
    }
    return &ad;
}

void
checkProgram(const OffloadPlan &plan, const Partition &part,
             Report &report)
{
    const MicroProgram &prog = part.program;
    ProgState st(prog.numRegs);
    checkPreloads(plan, part, st, report);

    // Table VI: one instruction is 8 bytes.
    if (prog.byteSize() !=
        prog.insts.size() * compiler::microInstBytes) {
        report.add(Severity::Error, passName, partLoc(plan, part.id),
                   "byteSize() %u != 8 * %zu instructions",
                   prog.byteSize(), prog.insts.size());
    }

    bool saw_carry_write = false;
    for (std::size_t pc = 0; pc < prog.insts.size(); ++pc) {
        const MicroInst &inst = prog.insts[pc];
        const std::string loc = instLoc(plan, part.id, pc);

        // Carry write-backs are the program epilogue: anything after
        // one would observe post-update carry values.
        if (saw_carry_write && inst.kind != MicroKind::CarryWrite) {
            report.add(Severity::Error, passName, loc,
                       "instruction after CarryWrite epilogue");
        }

        // A source register must be in range and defined; returns its
        // propagated type (Unknown on any failure).
        auto use = [&](std::uint16_t reg, const char *operand) -> VType {
            if (reg == noReg) {
                report.add(Severity::Error, passName, loc,
                           "missing %s operand", operand);
                return VType::Unknown;
            }
            if (!st.inRange(reg)) {
                report.add(Severity::Error, passName, loc,
                           "%s operand r%u outside register file of %d",
                           operand, reg, prog.numRegs);
                return VType::Unknown;
            }
            if (!st.defined[reg]) {
                report.add(Severity::Error, passName, loc,
                           "%s operand r%u used before definition",
                           operand, reg);
                return VType::Unknown;
            }
            return st.type[reg];
        };
        auto use_typed = [&](std::uint16_t reg, const char *operand,
                             VType want) {
            const VType got = use(reg, operand);
            if (typeClash(got, want)) {
                report.add(Severity::Error, passName, loc,
                           "%s operand r%u is %s but %s is required",
                           operand, reg,
                           got == VType::Float ? "float" : "int",
                           want == VType::Float ? "float" : "int");
            }
            return got;
        };
        auto def = [&](std::uint16_t reg, VType t) {
            if (reg == noReg) {
                report.add(Severity::Error, passName, loc,
                           "instruction produces a value but has no "
                           "destination register");
                return;
            }
            if (!st.inRange(reg)) {
                report.add(Severity::Error, passName, loc,
                           "destination r%u outside register file of %d",
                           reg, prog.numRegs);
                return;
            }
            st.define(reg, t);
        };
        auto unused = [&](std::uint16_t reg, const char *operand) {
            if (reg != noReg) {
                report.add(Severity::Error, passName, loc,
                           "unexpected %s operand r%u", operand, reg);
            }
        };

        switch (inst.kind) {
          case MicroKind::Alu: {
              const int arity = aluArity(inst.op);
              const VType in = aluOperandType(inst.op);
              VType result = aluResultType(inst.op);
              if (inst.op == OpCode::Select) {
                  use_typed(inst.a, "predicate", VType::Int);
                  const VType t = use(inst.b, "true-value");
                  const VType f = use(inst.c, "false-value");
                  if (typeClash(t, f)) {
                      report.add(Severity::Error, passName, loc,
                                 "Select mixes int and float values");
                  }
                  result = t != VType::Unknown ? t : f;
              } else {
                  const VType a = use_typed(inst.a, "first", in);
                  if (arity >= 2)
                      use_typed(inst.b, "second", in);
                  else
                      unused(inst.b, "second");
                  unused(inst.c, "third");
                  if (inst.op == OpCode::Mov)
                      result = a;
              }
              def(inst.dst, result);
              break;
          }
          case MicroKind::LoadStream:
          case MicroKind::LoadIdx: {
              const AccessorDef *ad =
                  accessorAt(plan, part, pc, inst, report);
              if (inst.kind == MicroKind::LoadIdx)
                  use_typed(inst.a, "offset", VType::Int);
              else
                  unused(inst.a, "offset");
              unused(inst.b, "value");
              def(inst.dst, !ad ? VType::Unknown
                                : ad->elemIsFloat ? VType::Float
                                                  : VType::Int);
              break;
          }
          case MicroKind::StoreStream:
          case MicroKind::StoreIdx: {
              const AccessorDef *ad =
                  accessorAt(plan, part, pc, inst, report);
              const VType elem = !ad ? VType::Unknown
                                     : ad->elemIsFloat ? VType::Float
                                                       : VType::Int;
              if (inst.kind == MicroKind::StoreIdx) {
                  use_typed(inst.a, "offset", VType::Int);
                  use_typed(inst.b, "value", elem);
              } else {
                  use_typed(inst.a, "value", elem);
                  unused(inst.b, "value");
              }
              if (inst.c != noReg)
                  use_typed(inst.c, "predicate", VType::Int);
              break;
          }
          case MicroKind::Consume: {
              VType t = VType::Unknown;
              if (inst.slot < 0 ||
                  inst.slot >= static_cast<int>(part.inChannels.size())) {
                  report.add(Severity::Error, passName, loc,
                             "consume slot %d outside this partition's "
                             "%zu in-channels",
                             inst.slot, part.inChannels.size());
              } else {
                  const int ch_id = part.inChannels[static_cast<
                      std::size_t>(inst.slot)];
                  if (ch_id >= 0 &&
                      ch_id < static_cast<int>(plan.channels.size())) {
                      t = nodeValueType(
                          plan.kernel,
                          plan.channels[static_cast<std::size_t>(ch_id)]
                              .srcNode);
                  }
              }
              unused(inst.a, "first");
              unused(inst.b, "second");
              def(inst.dst, t);
              break;
          }
          case MicroKind::Produce: {
              if (inst.slot < 0 ||
                  inst.slot >=
                      static_cast<int>(part.outChannels.size())) {
                  report.add(Severity::Error, passName, loc,
                             "produce slot %d outside this partition's "
                             "%zu out-channels",
                             inst.slot, part.outChannels.size());
              }
              use(inst.a, "value");
              unused(inst.b, "second");
              break;
          }
          case MicroKind::CarryWrite: {
              saw_carry_write = true;
              if (inst.slot < 0 ||
                  inst.slot >= static_cast<int>(prog.carries.size())) {
                  report.add(Severity::Error, passName, loc,
                             "carry slot %d outside this partition's "
                             "%zu carries",
                             inst.slot, prog.carries.size());
                  use(inst.a, "value");
                  break;
              }
              const CarrySlot &cs =
                  prog.carries[static_cast<std::size_t>(inst.slot)];
              use_typed(inst.a, "value",
                        cs.isFloat ? VType::Float : VType::Int);
              break;
          }
          default:
            report.add(Severity::Error, passName, loc,
                       "unknown microcode kind %d",
                       static_cast<int>(inst.kind));
        }
    }
}

} // namespace

void
checkMicrocode(const OffloadPlan &plan, const Options &opts,
               Report &report)
{
    (void)opts;
    for (const Partition &part : plan.partitions)
        checkProgram(plan, part, report);
}

} // namespace distda::verify
