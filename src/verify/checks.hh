/**
 * @file
 * Internal declarations shared by the verification passes. Not part of
 * the public verify interface.
 */

#ifndef DISTDA_VERIFY_CHECKS_HH
#define DISTDA_VERIFY_CHECKS_HH

#include <string>

#include "src/verify/verify.hh"

namespace distda::verify
{

// The registered passes (definitions live in one file per pass).
void checkPlan(const compiler::OffloadPlan &plan, const Options &opts,
               Report &report);
void checkMicrocode(const compiler::OffloadPlan &plan, const Options &opts,
                    Report &report);
void checkChannels(const compiler::OffloadPlan &plan, const Options &opts,
                   Report &report);
void checkCgra(const compiler::OffloadPlan &plan, const Options &opts,
               Report &report);
void checkSmells(const compiler::OffloadPlan &plan, const Options &opts,
                 Report &report);

/** Three-valued type lattice for int/float propagation. */
enum class VType : std::uint8_t { Unknown, Int, Float };

/** True when @p a and @p b are both known and disagree. */
inline bool
typeClash(VType a, VType b)
{
    return a != VType::Unknown && b != VType::Unknown && a != b;
}

/** Static value type of DFG node @p id (Unknown when indeterminable). */
VType nodeValueType(const compiler::Kernel &kernel, int id);

/** "kernel 'x'" */
std::string kernelLoc(const compiler::OffloadPlan &plan);
/** "kernel 'x' partition N" */
std::string partLoc(const compiler::OffloadPlan &plan, int part);
/** "kernel 'x' partition N inst I" */
std::string instLoc(const compiler::OffloadPlan &plan, int part,
                    std::size_t inst);

} // namespace distda::verify

#endif // DISTDA_VERIFY_CHECKS_HH
