/**
 * @file
 * The plan linter: re-checks the partitioner's invariants (SSV-A)
 * statically — node coverage, one memory object per partition, accessor
 * placement against the buffer-allocation table, cut-edge
 * materialization as channels, carry cycles staying intra-partition —
 * plus Table VI characteristics consistency.
 */

#include <map>
#include <set>

#include "src/mem/addr.hh"
#include "src/verify/checks.hh"

namespace distda::verify
{

using compiler::AccessorDef;
using compiler::ChannelDef;
using compiler::Kernel;
using compiler::Node;
using compiler::NodeKind;
using compiler::OffloadPlan;
using compiler::Partition;
using compiler::PatternKind;

namespace
{

constexpr const char *passName = "plan";

/** True when a value of this node kind replicates for free (no edge). */
bool
replicable(NodeKind kind)
{
    return kind == NodeKind::ConstInt || kind == NodeKind::ConstFloat ||
           kind == NodeKind::Param || kind == NodeKind::IndVar ||
           kind == NodeKind::MemObject;
}

void
checkNodeCoverage(const OffloadPlan &plan, Report &report)
{
    const std::size_t n = plan.kernel.nodes.size();
    std::vector<int> seen(n, 0);
    for (const Partition &part : plan.partitions) {
        for (int id : part.nodes) {
            if (id < 0 || id >= static_cast<int>(n)) {
                report.add(Severity::Error, passName,
                           partLoc(plan, part.id),
                           "partition references nonexistent DFG node %d",
                           id);
                continue;
            }
            ++seen[static_cast<std::size_t>(id)];
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (seen[i] == 0) {
            report.add(Severity::Error, passName, kernelLoc(plan),
                       "DFG node %zu ('%s') lost: not in any partition",
                       i, plan.kernel.nodes[i].name.c_str());
        } else if (seen[i] > 1) {
            report.add(Severity::Error, passName, kernelLoc(plan),
                       "DFG node %zu ('%s') duplicated across %d "
                       "partitions",
                       i, plan.kernel.nodes[i].name.c_str(), seen[i]);
        }
    }
}

void
checkObjectConstraint(const OffloadPlan &plan, Report &report)
{
    // The <=1-objects-per-partition rule only binds partitioned plans;
    // a monolithic plan legitimately folds every object together.
    if (plan.partitions.size() <= 1)
        return;
    for (const Partition &part : plan.partitions) {
        std::set<int> objs;
        for (const AccessorDef &ad : part.accessors)
            objs.insert(ad.objId);
        if (objs.size() > 1) {
            report.add(Severity::Error, passName, partLoc(plan, part.id),
                       "partition touches %zu memory objects "
                       "(at most one allowed)",
                       objs.size());
        }
    }
}

void
checkAccessorPlacement(const OffloadPlan &plan, const Options &opts,
                       Report &report)
{
    const Kernel &kernel = plan.kernel;
    std::set<int> access_ids;
    for (const Partition &part : plan.partitions) {
        std::set<int> placed;
        std::map<int, const AccessorDef *> leader_of_slot;
        for (const AccessorDef &ad : part.accessors) {
            const std::string loc = partLoc(plan, part.id);
            if (ad.node < 0 ||
                ad.node >= static_cast<int>(kernel.nodes.size()) ||
                kernel.node(ad.node).kind != NodeKind::Access) {
                report.add(Severity::Error, passName, loc,
                           "accessor bound to node %d which is not an "
                           "access node",
                           ad.node);
                continue;
            }
            if (!placed.insert(ad.node).second) {
                report.add(Severity::Error, passName, loc,
                           "access node %d has duplicate accessors",
                           ad.node);
            }
            if (!access_ids.insert(ad.accessId).second) {
                report.add(Severity::Error, passName, loc,
                           "access-id %d reused across accessors",
                           ad.accessId);
            }
            if (ad.pattern == PatternKind::Affine) {
                if (ad.bufferSlot < 0 ||
                    ad.bufferSlot >= part.streamBuffers) {
                    report.add(Severity::Error, passName, loc,
                               "stream accessor (node %d) slot %d "
                               "outside buffer-allocation table [0, %d)",
                               ad.node, ad.bufferSlot,
                               part.streamBuffers);
                }
                if (ad.combinedWithSlot < 0)
                    leader_of_slot[ad.bufferSlot] = &ad;
            } else if (ad.bufferSlot >= 0) {
                report.add(Severity::Error, passName, loc,
                           "random-access accessor (node %d) holds "
                           "stream buffer slot %d",
                           ad.node, ad.bufferSlot);
            }
        }
        // Followers tap a leader's buffer on the same object with a
        // window-bounded distance (Fig 2d).
        for (const AccessorDef &ad : part.accessors) {
            if (ad.combinedWithSlot < 0)
                continue;
            const std::string loc = partLoc(plan, part.id);
            if (ad.combinedWithSlot != ad.bufferSlot) {
                report.add(Severity::Error, passName, loc,
                           "follower accessor (node %d) slot %d differs "
                           "from its leader slot %d",
                           ad.node, ad.bufferSlot, ad.combinedWithSlot);
                continue;
            }
            auto it = leader_of_slot.find(ad.combinedWithSlot);
            if (it == leader_of_slot.end()) {
                report.add(Severity::Error, passName, loc,
                           "follower accessor (node %d) has no leader "
                           "for slot %d",
                           ad.node, ad.combinedWithSlot);
                continue;
            }
            const AccessorDef &leader = *it->second;
            if (leader.objId != ad.objId ||
                !leader.affine.sameStrideAs(ad.affine)) {
                report.add(Severity::Error, passName, loc,
                           "follower accessor (node %d) combined with a "
                           "leader on another object/stride",
                           ad.node);
            }
            const std::uint64_t span =
                static_cast<std::uint64_t>(std::llabs(ad.combineDistance)) *
                    ad.elemBytes +
                mem::lineBytes;
            if (span > opts.bufferBytes) {
                report.add(Severity::Error, passName, loc,
                           "follower accessor (node %d) tap distance "
                           "%lld exceeds the %u-byte buffer window",
                           ad.node,
                           static_cast<long long>(ad.combineDistance),
                           opts.bufferBytes);
            }
        }
        // Every access node mapped here must have been specialized.
        for (int id : part.nodes) {
            if (id < 0 || id >= static_cast<int>(kernel.nodes.size()))
                continue;
            if (kernel.node(id).kind == NodeKind::Access &&
                !placed.count(id)) {
                report.add(Severity::Error, passName,
                           partLoc(plan, part.id),
                           "access node %d has no specialized accessor",
                           id);
            }
        }
    }
}

void
checkChannelMaterialization(const OffloadPlan &plan, Report &report)
{
    const Kernel &kernel = plan.kernel;
    const std::size_t n = kernel.nodes.size();

    // Node -> partition map (tolerates coverage errors reported above).
    std::vector<int> node_part(n, -1);
    for (const Partition &part : plan.partitions) {
        for (int id : part.nodes) {
            if (id >= 0 && id < static_cast<int>(n))
                node_part[static_cast<std::size_t>(id)] = part.id;
        }
    }

    // Channel lookup by (srcNode, dstPartition).
    std::map<std::pair<int, int>, const ChannelDef *> by_edge;
    for (const ChannelDef &ch : plan.channels)
        by_edge[{ch.srcNode, ch.dstPartition}] = &ch;

    std::set<std::pair<int, int>> needed;
    for (const Node &node : kernel.nodes) {
        const int dst = node_part[static_cast<std::size_t>(node.id)];
        for (int in : node.valueInputs()) {
            if (in < 0 || in >= static_cast<int>(n) ||
                replicable(kernel.node(in).kind))
                continue;
            const int src = node_part[static_cast<std::size_t>(in)];
            if (src < 0 || dst < 0 || src == dst)
                continue;
            needed.insert({in, dst});
            auto it = by_edge.find({in, dst});
            if (it == by_edge.end()) {
                report.add(Severity::Error, passName, kernelLoc(plan),
                           "cut edge node %d (partition %d) -> node %d "
                           "(partition %d) has no channel",
                           in, src, node.id, dst);
                continue;
            }
            const ChannelDef &ch = *it->second;
            if (ch.srcPartition != src) {
                report.add(Severity::Error, passName, kernelLoc(plan),
                           "channel %d source partition %d does not "
                           "match producer node %d's partition %d",
                           ch.id, ch.srcPartition, in, src);
            }
            if (ch.bits != kernel.node(in).bits) {
                report.add(Severity::Error, passName, kernelLoc(plan),
                           "channel %d width %u bits does not match "
                           "producer node %d width %u",
                           ch.id, ch.bits, in, kernel.node(in).bits);
            }
        }
    }
    for (const ChannelDef &ch : plan.channels) {
        if (ch.dstPartition >= 0 &&
            !needed.count({ch.srcNode, ch.dstPartition})) {
            report.add(Severity::Error, passName, kernelLoc(plan),
                       "channel %d (node %d -> partition %d) matches no "
                       "cross-partition DFG edge",
                       ch.id, ch.srcNode, ch.dstPartition);
        }
    }

    // Carry recurrences must not cross partitions (no back-edges).
    for (const Node &node : kernel.nodes) {
        if (node.kind != NodeKind::Carry ||
            node.carryUpdate == compiler::noNode)
            continue;
        if (node.carryUpdate < 0 ||
            node.carryUpdate >= static_cast<int>(n))
            continue;
        const int cp = node_part[static_cast<std::size_t>(node.id)];
        const int up =
            node_part[static_cast<std::size_t>(node.carryUpdate)];
        if (cp >= 0 && up >= 0 && cp != up) {
            report.add(Severity::Error, passName, kernelLoc(plan),
                       "carry node %d (partition %d) updated from "
                       "partition %d: recurrence crosses partitions",
                       node.id, cp, up);
        }
    }
}

void
checkWiring(const OffloadPlan &plan, Report &report)
{
    const int nparts = static_cast<int>(plan.partitions.size());
    for (std::size_t i = 0; i < plan.channels.size(); ++i) {
        const ChannelDef &ch = plan.channels[i];
        const std::string loc = kernelLoc(plan);
        if (ch.id != static_cast<int>(i)) {
            report.add(Severity::Error, passName, loc,
                       "channel at index %zu carries id %d", i, ch.id);
        }
        if (ch.srcPartition < 0 || ch.srcPartition >= nparts) {
            report.add(Severity::Error, passName, loc,
                       "channel %d source partition %d out of range",
                       ch.id, ch.srcPartition);
            continue;
        }
        if (ch.dstPartition >= nparts) {
            report.add(Severity::Error, passName, loc,
                       "channel %d destination partition %d out of range",
                       ch.id, ch.dstPartition);
            continue;
        }
        auto count_in = [](const std::vector<int> &v, int id) {
            int c = 0;
            for (int x : v)
                c += x == id;
            return c;
        };
        const Partition &src =
            plan.partitions[static_cast<std::size_t>(ch.srcPartition)];
        if (count_in(src.outChannels, ch.id) != 1) {
            report.add(Severity::Error, passName, partLoc(plan, src.id),
                       "channel %d appears %d times in source partition's "
                       "out-channel list (expected once)",
                       ch.id, count_in(src.outChannels, ch.id));
        }
        if (ch.dstPartition >= 0) {
            const Partition &dst = plan.partitions[static_cast<std::size_t>(
                ch.dstPartition)];
            if (count_in(dst.inChannels, ch.id) != 1) {
                report.add(Severity::Error, passName,
                           partLoc(plan, dst.id),
                           "channel %d appears %d times in destination "
                           "partition's in-channel list (expected once)",
                           ch.id, count_in(dst.inChannels, ch.id));
            }
        }
    }
    // No partition may list a channel the channel table disagrees with.
    for (const Partition &part : plan.partitions) {
        for (int id : part.inChannels) {
            if (id < 0 || id >= static_cast<int>(plan.channels.size()) ||
                plan.channels[static_cast<std::size_t>(id)].dstPartition !=
                    part.id) {
                report.add(Severity::Error, passName,
                           partLoc(plan, part.id),
                           "in-channel %d is not a channel into this "
                           "partition",
                           id);
            }
        }
        for (int id : part.outChannels) {
            if (id < 0 || id >= static_cast<int>(plan.channels.size()) ||
                plan.channels[static_cast<std::size_t>(id)].srcPartition !=
                    part.id) {
                report.add(Severity::Error, passName,
                           partLoc(plan, part.id),
                           "out-channel %d is not a channel out of this "
                           "partition",
                           id);
            }
        }
    }
}

void
checkCharacteristics(const OffloadPlan &plan, Report &report)
{
    const auto &ch = plan.characteristics;
    if (ch.numPartitions != static_cast<int>(plan.partitions.size())) {
        report.add(Severity::Error, passName, kernelLoc(plan),
                   "characteristics claim %d partitions, plan has %zu",
                   ch.numPartitions, plan.partitions.size());
    }
    if (ch.maxInstBytes !=
        ch.maxInsts * static_cast<int>(compiler::microInstBytes)) {
        report.add(Severity::Error, passName, kernelLoc(plan),
                   "Table VI insts(B) %d != 8 * %d static insts",
                   ch.maxInstBytes, ch.maxInsts);
    }
}

} // namespace

void
checkPlan(const OffloadPlan &plan, const Options &opts, Report &report)
{
    if (plan.partitions.empty()) {
        report.add(Severity::Error, passName, kernelLoc(plan),
                   "plan has no partitions");
        return;
    }
    checkNodeCoverage(plan, report);
    checkObjectConstraint(plan, report);
    checkAccessorPlacement(plan, opts, report);
    checkChannelMaterialization(plan, report);
    checkWiring(plan, report);
    checkCharacteristics(plan, report);
}

} // namespace distda::verify
